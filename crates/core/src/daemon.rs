//! Background degradation pump.
//!
//! The paper's timely-degradation guarantee assumes degradation runs as
//! *system transactions alongside* foreground activity, not only when the
//! application remembers to call [`Db::pump_degradation`]. The
//! [`DegradationDaemon`] owns a thread that fires due batches on a fixed
//! tick; the sharded buffer pool lets those batches rewrite pages
//! concurrently with queries touching other pages, so the daemon adds
//! latency only to the tuples actually being degraded.
//!
//! Lock conflicts with readers/writers are already absorbed inside
//! [`Db::pump_one_batch`] (the victim transition is re-queued); any other
//! error stops the daemon and is handed back from [`DegradationDaemon::stop`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use instant_common::Result;

use crate::db::{Db, PumpReport};

/// Handle to the background pump thread. Stop it explicitly with
/// [`stop`](DegradationDaemon::stop); dropping without stopping detaches
/// nothing — the drop impl signals and joins too, discarding the report.
pub struct DegradationDaemon {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<Result<PumpReport>>>,
}

impl std::fmt::Debug for DegradationDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DegradationDaemon")
            .field("running", &self.handle.is_some())
            .finish()
    }
}

impl DegradationDaemon {
    /// Spawn a pump thread over `db`, firing every `tick` of wall-clock
    /// time (the *due* times themselves come from the db's own clock, so a
    /// mock clock still controls which transitions are due).
    pub fn spawn(db: Arc<Db>, tick: std::time::Duration) -> DegradationDaemon {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let handle = std::thread::spawn(move || -> Result<PumpReport> {
            let mut total = PumpReport::default();
            loop {
                let r = db.pump_degradation()?;
                total.fired += r.fired;
                total.expunged += r.expunged;
                total.deferred += r.deferred;
                if flag.load(Ordering::Acquire) {
                    return Ok(total);
                }
                std::thread::park_timeout(tick);
            }
        });
        DegradationDaemon {
            stop,
            handle: Some(handle),
        }
    }

    /// Signal the thread, wait for a final drain pump, and return the
    /// cumulative report. A panic on the pump thread is re-raised here.
    pub fn stop(mut self) -> Result<PumpReport> {
        match self
            .signal_and_join()
            .expect("stop called once on a live daemon")
        {
            Ok(r) => r,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }

    fn signal_and_join(&mut self) -> Option<std::thread::Result<Result<PumpReport>>> {
        let handle = self.handle.take()?;
        self.stop.store(true, Ordering::Release);
        handle.thread().unpark();
        Some(handle.join())
    }
}

impl Drop for DegradationDaemon {
    fn drop(&mut self) {
        // Unlike stop(), a drop must swallow a pump-thread panic: this
        // drop may itself run during an unwind, and resuming a second
        // panic there would abort the process and mask both errors.
        let _ = self.signal_and_join();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DbConfig;
    use crate::schema::{Column, TableSchema};
    use instant_common::{DataType, Duration, MockClock, Value};
    use instant_lcp::gtree::location_tree_fig1;
    use instant_lcp::hierarchy::Hierarchy;
    use instant_lcp::AttributeLcp;

    fn db_with_person(clock: &MockClock) -> Arc<Db> {
        let db = Arc::new(Db::open(DbConfig::default(), clock.shared()).unwrap());
        let gt: Arc<dyn Hierarchy> = Arc::new(location_tree_fig1());
        db.create_table(
            TableSchema::new(
                "person",
                vec![
                    Column::stable("id", DataType::Int),
                    Column::degradable(
                        "location",
                        DataType::Str,
                        gt,
                        AttributeLcp::fig2_location(),
                    )
                    .unwrap(),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn daemon_pumps_due_transitions_in_background() {
        let clock = MockClock::new();
        let db = db_with_person(&clock);
        for i in 0..20 {
            db.insert(
                "person",
                &[Value::Int(i), Value::Str("4 rue Jussieu".into())],
            )
            .unwrap();
        }
        let daemon = DegradationDaemon::spawn(db.clone(), std::time::Duration::from_millis(1));
        clock.advance(Duration::hours(2));
        // The background thread must drain the queue without any foreground
        // pump call.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while db.scheduler().fired() < 20 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        let report = daemon.stop().unwrap();
        assert_eq!(report.fired, 20, "all first transitions fired: {report:?}");
        let table = db.catalog().get("person").unwrap();
        for (_, t) in table.scan().unwrap() {
            assert_eq!(t.row[1], Value::Str("Paris".into()));
        }
    }

    #[test]
    fn daemon_stop_is_idempotent_via_drop() {
        let clock = MockClock::new();
        let db = db_with_person(&clock);
        let daemon = DegradationDaemon::spawn(db, std::time::Duration::from_millis(1));
        drop(daemon); // must not hang or double-join
    }
}
