//! Background daemons: the degradation pump and the checkpointer.
//!
//! The paper's timely-degradation guarantee assumes degradation runs as
//! *system transactions alongside* foreground activity, not only when the
//! application remembers to call [`Db::pump_degradation`]; likewise the
//! log only stays bounded (and shredded windows only get physically
//! destroyed) if checkpoints fire on their own. Both daemons share one
//! scaffolding, [`DaemonCore`]: a thread that runs a step on a fixed
//! wall-clock tick, accumulates a report, and joins cleanly on stop —
//! with a final drain step before exiting, so stop-after-advance tests
//! never race the tick.
//!
//! * [`DegradationDaemon`] fires due degradation batches; lock conflicts
//!   with readers/writers are absorbed inside [`Db::pump_one_batch`] (the
//!   victim transition is re-queued).
//! * [`Checkpointer`] periodically flushes dirty pages through the sharded
//!   pool, rotates the WAL so its `Checkpoint` record (routed through the
//!   group-commit pipeline) starts a fresh segment, shreds key windows
//!   older than the checkpoint, and then physically truncates the dead
//!   log prefix by **deleting whole segments** — the rotate → checkpoint
//!   → shred → delete lifecycle that turns "unreadable" into "destroyed".
//!   Each cycle costs O(segments freed) unlinks, never a rewrite of
//!   retained log data, so it is cheap enough to run constantly. Idle
//!   ticks (no WAL growth since the last checkpoint) are skipped.
//!
//! Any non-retryable error stops the owning daemon and is handed back
//! from its `stop` method.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration as StdDuration;

use instant_common::Result;
use instant_wal::Lsn;

use crate::db::{Db, PumpReport};

/// Shared daemon scaffolding: spawn a pump thread over mutable state `R`,
/// tick it on a fixed wall-clock interval, and return the final state on
/// stop. The step always runs once more after the stop signal (drain).
/// Public so out-of-crate daemons (the replication segment shipper) ride
/// the same stop/drain/panic-propagation contract.
pub struct DaemonCore<R> {
    stop: Arc<AtomicBool>,
    handle: Option<JoinHandle<Result<R>>>,
}

impl<R: Send + 'static> DaemonCore<R> {
    /// Fails only if the OS cannot spawn the thread (resource exhaustion);
    /// the caller surfaces that as a typed error instead of panicking.
    pub fn spawn<F>(name: &str, tick: StdDuration, init: R, mut step: F) -> Result<DaemonCore<R>>
    where
        F: FnMut(&mut R) -> Result<()> + Send + 'static,
    {
        let stop = Arc::new(AtomicBool::new(false));
        let flag = stop.clone();
        let handle =
            std::thread::Builder::new()
                .name(name.into())
                .spawn(move || -> Result<R> {
                    let mut state = init;
                    loop {
                        step(&mut state)?;
                        if flag.load(Ordering::Acquire) {
                            return Ok(state);
                        }
                        std::thread::park_timeout(tick);
                    }
                })?;
        Ok(DaemonCore {
            stop,
            handle: Some(handle),
        })
    }

    /// Signal the thread, wait for a final drain step, and return the
    /// accumulated state. A panic on the daemon thread is re-raised here.
    pub fn stop(mut self) -> Result<R> {
        match self
            .signal_and_join()
            .expect("stop called once on a live daemon") // lint:allow(L001, handle is Some until stop() consumes self)
        {
            Ok(r) => r,
            Err(panic) => std::panic::resume_unwind(panic),
        }
    }

    /// Is the daemon thread still attached (not yet stopped)?
    pub fn is_running(&self) -> bool {
        self.handle.is_some()
    }
}

impl<R> DaemonCore<R> {
    fn signal_and_join(&mut self) -> Option<std::thread::Result<Result<R>>> {
        let handle = self.handle.take()?;
        self.stop.store(true, Ordering::Release);
        handle.thread().unpark();
        Some(handle.join())
    }
}

impl<R> Drop for DaemonCore<R> {
    fn drop(&mut self) {
        // Unlike stop(), a drop must swallow a daemon-thread panic: this
        // drop may itself run during an unwind, and resuming a second
        // panic there would abort the process and mask both errors.
        // lint:allow(L006, drop during unwind must swallow the join error; stop() is the reporting path)
        let _ = self.signal_and_join();
    }
}

/// Handle to the background degradation pump. Stop it explicitly with
/// [`stop`](DegradationDaemon::stop); dropping without stopping detaches
/// nothing — the drop impl signals and joins too, discarding the report.
pub struct DegradationDaemon {
    core: DaemonCore<PumpReport>,
}

impl std::fmt::Debug for DegradationDaemon {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DegradationDaemon")
            .field("running", &self.core.is_running())
            .finish()
    }
}

impl DegradationDaemon {
    /// Spawn a pump thread over `db`, firing every `tick` of wall-clock
    /// time (the *due* times themselves come from the db's own clock, so a
    /// mock clock still controls which transitions are due). Fails only if
    /// the OS cannot spawn the thread.
    pub fn spawn(db: Arc<Db>, tick: StdDuration) -> Result<DegradationDaemon> {
        let core = DaemonCore::spawn(
            "degradation-daemon",
            tick,
            PumpReport::default(),
            move |total| {
                let r = db.pump_degradation()?;
                total.fired += r.fired;
                total.expunged += r.expunged;
                total.deferred += r.deferred;
                Ok(())
            },
        )?;
        Ok(DegradationDaemon { core })
    }

    /// Signal the thread, wait for a final drain pump, and return the
    /// cumulative report. A panic on the pump thread is re-raised here.
    pub fn stop(self) -> Result<PumpReport> {
        self.core.stop()
    }
}

/// What a [`Checkpointer`] did over its lifetime.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct CheckpointReport {
    /// Checkpoints executed (flush → log → truncate → shred).
    pub checkpoints: usize,
    /// Ticks skipped because the WAL had not grown since the last one.
    pub skipped_idle: usize,
}

/// Background checkpoint daemon — the sibling of [`DegradationDaemon`].
///
/// Every tick with WAL growth it runs [`Db::checkpoint`]: flushes dirty
/// pages, rotates the WAL segment, commits a `Checkpoint` record through
/// the group-commit pipeline, persists catalog meta, shreds key windows
/// older than the checkpoint and deletes the wholly-dead log segments.
/// See the module docs for why truncation must chase shredding.
pub struct Checkpointer {
    core: DaemonCore<CheckpointReport>,
}

impl std::fmt::Debug for Checkpointer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Checkpointer")
            .field("running", &self.core.is_running())
            .finish()
    }
}

impl Checkpointer {
    /// Spawn a checkpoint thread over `db`, checkpointing every `every` of
    /// wall-clock time whenever the database has mutated since the last
    /// one (WAL head when logging is on; engine mutation counters when it
    /// is off, so a `WalMode::Off` store is not re-flushed every tick).
    /// Fails only if the OS cannot spawn the thread.
    pub fn spawn(db: Arc<Db>, every: StdDuration) -> Result<Checkpointer> {
        fn fingerprint(db: &Db) -> Lsn {
            match db.wal() {
                Some(w) => w.next_lsn(),
                None => {
                    let s = db.stats();
                    let o = Ordering::Relaxed;
                    s.inserts.load(o)
                        + s.updates.load(o)
                        + s.user_deletes.load(o)
                        + s.degrade_steps.load(o)
                        + s.expunges.load(o)
                }
            }
        }
        // Sentinel start: the first tick always checkpoints, bounding any
        // log the database inherited from a previous run.
        let mut last_seen: Option<Lsn> = None;
        let core = DaemonCore::spawn(
            "checkpointer",
            every,
            CheckpointReport::default(),
            move |report| {
                // Sample *before* checkpointing and credit only the
                // checkpoint's own record: a commit racing in after the
                // gate reopens must leave the fingerprints unequal so the
                // next tick checkpoints (and eventually truncates) it too,
                // even if the database then goes quiet.
                let pre = fingerprint(&db);
                if last_seen == Some(pre) {
                    report.skipped_idle += 1;
                    return Ok(());
                }
                db.checkpoint()?;
                let own_record = u64::from(db.wal().is_some());
                last_seen = Some(pre + own_record);
                report.checkpoints += 1;
                Ok(())
            },
        )?;
        Ok(Checkpointer { core })
    }

    /// Spawn from [`DbConfig::checkpoint_every`](crate::db::DbConfig);
    /// `Ok(None)` when the config leaves background checkpointing off.
    pub fn spawn_from_config(db: &Arc<Db>) -> Result<Option<Checkpointer>> {
        db.config()
            .checkpoint_every
            .map(|every| Checkpointer::spawn(db.clone(), every))
            .transpose()
    }

    /// Signal the thread, wait for a final tick, and return the report.
    pub fn stop(self) -> Result<CheckpointReport> {
        self.core.stop()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DbConfig;
    use crate::schema::{Column, TableSchema};
    use instant_common::{DataType, Duration, MockClock, Value};
    use instant_lcp::gtree::location_tree_fig1;
    use instant_lcp::hierarchy::Hierarchy;
    use instant_lcp::AttributeLcp;

    fn db_with_person(clock: &MockClock) -> Arc<Db> {
        let db = Arc::new(Db::open(DbConfig::default(), clock.shared()).unwrap());
        let gt: Arc<dyn Hierarchy> = Arc::new(location_tree_fig1());
        db.create_table(
            TableSchema::new(
                "person",
                vec![
                    Column::stable("id", DataType::Int),
                    Column::degradable(
                        "location",
                        DataType::Str,
                        gt,
                        AttributeLcp::fig2_location(),
                    )
                    .unwrap(),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        db
    }

    #[test]
    fn daemon_pumps_due_transitions_in_background() {
        let clock = MockClock::new();
        let db = db_with_person(&clock);
        for i in 0..20 {
            db.insert(
                "person",
                &[Value::Int(i), Value::Str("4 rue Jussieu".into())],
            )
            .unwrap();
        }
        let daemon =
            DegradationDaemon::spawn(db.clone(), std::time::Duration::from_millis(1)).unwrap();
        clock.advance(Duration::hours(2));
        // The background thread must drain the queue without any foreground
        // pump call.
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while db.scheduler().fired() < 20 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        let report = daemon.stop().unwrap();
        assert_eq!(report.fired, 20, "all first transitions fired: {report:?}");
        let table = db.catalog().get("person").unwrap();
        for (_, t) in table.scan().unwrap() {
            assert_eq!(t.row[1], Value::Str("Paris".into()));
        }
    }

    #[test]
    fn daemon_stop_is_idempotent_via_drop() {
        let clock = MockClock::new();
        let db = db_with_person(&clock);
        let daemon = DegradationDaemon::spawn(db, std::time::Duration::from_millis(1)).unwrap();
        drop(daemon); // must not hang or double-join
    }

    #[test]
    fn checkpointer_truncates_log_in_background() {
        let clock = MockClock::new();
        let db = db_with_person(&clock);
        for i in 0..10 {
            db.insert(
                "person",
                &[Value::Int(i), Value::Str("4 rue Jussieu".into())],
            )
            .unwrap();
        }
        let ckpt = Checkpointer::spawn(db.clone(), std::time::Duration::from_millis(1)).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while db.wal().unwrap().base_lsn() == 0 && std::time::Instant::now() < deadline {
            std::thread::yield_now();
        }
        let report = ckpt.stop().unwrap();
        assert!(report.checkpoints >= 1, "{report:?}");
        let wal = db.wal().unwrap();
        assert!(wal.base_lsn() > 0, "dead log prefix physically truncated");
        assert!(wal.truncated_bytes() > 0);
        // Everything still physically present replays from the checkpoint.
        let records = wal.iterate().unwrap();
        assert!(records
            .iter()
            .any(|(_, r)| matches!(r, instant_wal::LogRecord::Checkpoint { .. })));
    }

    #[test]
    fn checkpointer_skips_idle_ticks() {
        let clock = MockClock::new();
        let db = db_with_person(&clock);
        db.insert(
            "person",
            &[Value::Int(1), Value::Str("4 rue Jussieu".into())],
        )
        .unwrap();
        let ckpt = Checkpointer::spawn(db.clone(), std::time::Duration::from_millis(1)).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        // Wait for the first checkpoint plus a few idle ticks after it.
        while db
            .stats()
            .checkpoints
            .load(std::sync::atomic::Ordering::Relaxed)
            == 0
            && std::time::Instant::now() < deadline
        {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        let report = ckpt.stop().unwrap();
        assert_eq!(
            report.checkpoints, 1,
            "no WAL growth → exactly one checkpoint: {report:?}"
        );
        assert!(report.skipped_idle >= 1, "{report:?}");
    }

    #[test]
    fn checkpointer_idles_with_wal_off() {
        // WalMode::Off has no log to bound; after the first flush the
        // daemon must idle on the mutation counters, not re-flush every
        // tick forever.
        let clock = MockClock::new();
        let db = Arc::new(
            Db::open(
                DbConfig {
                    wal_mode: crate::db::WalMode::Off,
                    ..DbConfig::default()
                },
                clock.shared(),
            )
            .unwrap(),
        );
        let ckpt = Checkpointer::spawn(db.clone(), std::time::Duration::from_millis(1)).unwrap();
        let deadline = std::time::Instant::now() + std::time::Duration::from_secs(10);
        while db
            .stats()
            .checkpoints
            .load(std::sync::atomic::Ordering::Relaxed)
            == 0
            && std::time::Instant::now() < deadline
        {
            std::thread::yield_now();
        }
        std::thread::sleep(std::time::Duration::from_millis(20));
        let report = ckpt.stop().unwrap();
        assert_eq!(report.checkpoints, 1, "{report:?}");
        assert!(report.skipped_idle >= 1, "{report:?}");
    }

    #[test]
    fn checkpointer_spawn_from_config_respects_knob() {
        let clock = MockClock::new();
        // Explicit `None`: the production default, pinned here because the
        // CI config matrix overrides `DbConfig::default()` via env knobs.
        let db = Arc::new(
            Db::open(
                DbConfig {
                    checkpoint_every: None,
                    ..DbConfig::default()
                },
                clock.shared(),
            )
            .unwrap(),
        );
        assert!(
            Checkpointer::spawn_from_config(&db).unwrap().is_none(),
            "checkpoint_every: None leaves background checkpointing off"
        );
        let db2 = Arc::new(
            Db::open(
                DbConfig {
                    checkpoint_every: Some(std::time::Duration::from_millis(1)),
                    ..DbConfig::default()
                },
                clock.shared(),
            )
            .unwrap(),
        );
        let ckpt = Checkpointer::spawn_from_config(&db2)
            .unwrap()
            .expect("knob set → daemon");
        ckpt.stop().unwrap();
    }
}
