//! # instant-core
//!
//! The InstantDB engine: a single-node relational DBMS whose defining
//! feature is **enforced, timely, irreversible degradation** of sensitive
//! attributes according to Life Cycle Policies (ICDE 2008, Section II),
//! built on the substrates of the sibling crates:
//!
//! * [`schema`] / [`tuple`](crate::tuple) — tables mix *stable* and *degradable* columns;
//!   stored tuples carry their insert time and the current accuracy level
//!   of every degradable attribute.
//! * [`catalog`] — catalog and physical tables: a heap file (capacity-
//!   reserving slots, secure overwrite) plus a degradation-aware
//!   multi-level index per indexed column.
//! * [`scheduler`] — the degradation engine: a due-time priority queue of
//!   pending transitions, pumped by [`db::Db::pump_degradation`], each batch
//!   running as a system transaction (2PL, WAL-logged, secure rewrite).
//!   Lateness statistics feed experiment E7.
//! * [`daemon`] — background threads on shared scaffolding: the
//!   degradation pump fires due batches on a tick, and the
//!   [`Checkpointer`] periodically flushes, truncates the dead log prefix
//!   and shreds old key windows — both concurrent with foreground queries
//!   (the sharded buffer pool keeps page access parallel, the group-commit
//!   pipeline keeps the log append path ordered).
//! * [`query`] — the SQL front end: `DECLARE PURPOSE … SET ACCURACY LEVEL`,
//!   `SELECT`/`INSERT`/`DELETE` with the paper's `σ_P,k` / `π_*,k`
//!   semantics (only subsets whose state can compute level `k` participate;
//!   values are degraded with `f_k` before predicate evaluation).
//! * [`db`] — the façade tying storage, WAL (plain / sealed / off), key
//!   shredding, checkpointing, recovery and the clock together.
//! * [`baseline`] — the paper's comparison points: no protection, limited
//!   retention (all-or-nothing TTL), static anonymization at ingest.
//! * [`metrics`] — the exposure metric (residual information summed over
//!   the store) behind the privacy/security experiments E4–E6.
//! * [`ext`] — Section IV future-work features: event-triggered
//!   transitions, predicate-conditioned degradation, per-tuple (user-
//!   defined) LCPs, and relaxed query semantics.

pub mod baseline;
pub mod catalog;
pub mod config;
pub mod daemon;
pub mod db;
pub mod ext;
pub mod metrics;
pub mod query;
pub mod scheduler;
pub mod schema;
pub mod tuple;

pub use config::{DbConfig, DbConfigBuilder, WalMode};
pub use daemon::{CheckpointReport, Checkpointer, DaemonCore, DegradationDaemon};
pub use db::{CommitHandle, Db, ReplicaApplyState};
pub use instant_wal::{GroupCommitConfig, GroupCommitStats};
pub use query::session::{HierarchyRegistry, Session};
pub use schema::{Column, ColumnKind, TableSchema};
