//! Baseline protection schemes (paper Section I).
//!
//! The paper positions degradation against the existing alternatives; all
//! three are expressible inside the same engine as limiting cases of the
//! LCP model, which makes the comparisons of E4–E6 apples-to-apples:
//!
//! * **No protection** — a single-stage LCP at the accurate level with an
//!   effectively infinite retention: data stays accurate forever.
//! * **Limited retention** — a single-stage LCP at the accurate level with
//!   retention = the TTL: the paper's "all-or-nothing behaviour" (accurate
//!   until the limit, then gone). Its overstatement pathology — "retention
//!   limits … expressed in terms of years" — is reproduced by choosing a
//!   long TTL.
//! * **Static anonymization** — a single-stage LCP whose *first* stage sits
//!   at a coarse level: the engine generalizes at ingest (the accurate
//!   form never reaches the page) and never degrades further. This models
//!   publish-time generalization; identity columns remain, matching the
//!   paper's observation that degradation (unlike anonymization) keeps
//!   donor identity for user-oriented services.
//! * **Degradation** — a full multi-stage LCP.

use std::sync::Arc;

use instant_common::{DataType, Duration, LevelId, Result};
use instant_lcp::hierarchy::Hierarchy;
use instant_lcp::{AttributeLcp, LcpStage};

use crate::schema::{Column, TableSchema};

/// Effectively-forever retention for the no-protection/static-anon cases.
pub const FOREVER: Duration = Duration::years(100);

/// The protection scheme applied to a sensitive attribute.
#[derive(Debug, Clone)]
pub enum Protection {
    /// Accurate forever.
    None,
    /// Accurate for the TTL, then the tuple disappears.
    Retention(Duration),
    /// Generalized to `level` at ingest, kept (at that accuracy) for the
    /// given retention (use [`FOREVER`] for publish-style anonymization).
    StaticAnon(LevelId, Duration),
    /// Progressive degradation under the given LCP.
    Degradation(AttributeLcp),
}

impl Protection {
    /// The LCP realizing this scheme.
    pub fn lcp(&self) -> Result<AttributeLcp> {
        match self {
            Protection::None => AttributeLcp::new(vec![LcpStage {
                level: LevelId(0),
                retention: FOREVER,
            }]),
            Protection::Retention(ttl) => AttributeLcp::new(vec![LcpStage {
                level: LevelId(0),
                retention: *ttl,
            }]),
            Protection::StaticAnon(level, retention) => AttributeLcp::new(vec![LcpStage {
                level: *level,
                retention: *retention,
            }]),
            Protection::Degradation(lcp) => Ok(lcp.clone()),
        }
    }

    pub fn label(&self) -> String {
        match self {
            Protection::None => "no-protection".into(),
            Protection::Retention(d) => format!("retention({d})"),
            Protection::StaticAnon(l, _) => format!("static-anon(d{})", l.0),
            Protection::Degradation(_) => "degradation".into(),
        }
    }
}

/// Build the standard experiment schema: `(id, user, location, …)` with the
/// location column protected by `scheme`. Used by E4–E6 so every scheme
/// runs identical workloads on identical table shapes.
pub fn protected_location_schema(
    table_name: &str,
    hierarchy: Arc<dyn Hierarchy>,
    scheme: &Protection,
) -> Result<TableSchema> {
    TableSchema::new(
        table_name,
        vec![
            Column::stable("id", DataType::Int).with_index(),
            Column::stable("user", DataType::Str),
            Column::degradable("location", DataType::Str, hierarchy, scheme.lcp()?)?.with_index(),
        ],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{Db, DbConfig};
    use crate::metrics::total_exposure;
    use instant_common::{MockClock, Value};
    use instant_lcp::gtree::location_tree_fig1;

    fn db_with(scheme: &Protection, clock: &MockClock) -> Db {
        let db = Db::open(DbConfig::default(), clock.shared()).unwrap();
        let gt: Arc<dyn Hierarchy> = Arc::new(location_tree_fig1());
        db.create_table(protected_location_schema("events", gt, scheme).unwrap())
            .unwrap();
        db
    }

    fn seed(db: &Db, n: i64) {
        for i in 0..n {
            db.insert(
                "events",
                &[
                    Value::Int(i),
                    Value::Str(format!("user{}", i % 3)),
                    Value::Str("4 rue Jussieu".into()),
                ],
            )
            .unwrap();
        }
    }

    #[test]
    fn no_protection_never_degrades() {
        let clock = MockClock::new();
        let db = db_with(&Protection::None, &clock);
        seed(&db, 3);
        clock.advance(Duration::years(2));
        db.pump_degradation().unwrap();
        assert!((total_exposure(&db).unwrap() - 3.0).abs() < 1e-9);
    }

    #[test]
    fn retention_is_all_or_nothing() {
        let clock = MockClock::new();
        let db = db_with(&Protection::Retention(Duration::days(30)), &clock);
        seed(&db, 3);
        clock.advance(Duration::days(29));
        db.pump_degradation().unwrap();
        // Fully accurate just before the limit…
        assert!((total_exposure(&db).unwrap() - 3.0).abs() < 1e-9);
        clock.advance(Duration::days(2));
        db.pump_degradation().unwrap();
        // …gone right after.
        assert_eq!(total_exposure(&db).unwrap(), 0.0);
        assert_eq!(db.catalog().get("events").unwrap().live_count().unwrap(), 0);
    }

    #[test]
    fn static_anon_never_stores_accurate_form() {
        let clock = MockClock::new();
        let db = db_with(&Protection::StaticAnon(LevelId(2), FOREVER), &clock);
        seed(&db, 1);
        let table = db.catalog().get("events").unwrap();
        let (_tid, t) = &table.scan().unwrap()[0];
        assert_eq!(t.row[2], Value::Str("Ile-de-France".into()));
        // The accurate form is absent even from the raw heap image.
        let needle = b"4 rue Jussieu";
        let (_, img) = &db.forensic_images().unwrap()[0];
        assert!(!img.windows(needle.len()).any(|w| w == needle));
        // Exposure sits strictly between removed and accurate.
        let e = total_exposure(&db).unwrap();
        assert!(e > 0.0 && e < 1.0);
    }

    #[test]
    fn degradation_exposure_below_retention_after_first_step() {
        let clock = MockClock::new();
        let deg = db_with(
            &Protection::Degradation(AttributeLcp::fig2_location()),
            &clock,
        );
        let ret = db_with(&Protection::Retention(Duration::years(1)), &clock);
        seed(&deg, 5);
        seed(&ret, 5);
        clock.advance(Duration::days(2));
        deg.pump_degradation().unwrap();
        ret.pump_degradation().unwrap();
        let e_deg = total_exposure(&deg).unwrap();
        let e_ret = total_exposure(&ret).unwrap();
        assert!(
            e_deg < e_ret,
            "claim 1: degradation ({e_deg}) must expose less than retention ({e_ret})"
        );
    }

    #[test]
    fn labels() {
        assert_eq!(Protection::None.label(), "no-protection");
        assert!(Protection::Retention(Duration::days(365))
            .label()
            .contains("365d"));
        assert_eq!(
            Protection::StaticAnon(LevelId(2), FOREVER).label(),
            "static-anon(d2)"
        );
    }
}
