//! Stored-tuple format.
//!
//! Every record carries, ahead of its row values, the metadata the
//! degradation engine needs to survive restarts without consulting the log:
//!
//! ```text
//! [ insert_ts: u64 ]                      when the life cycle started
//! [ ndeg: u8 ]                            number of degradable columns
//! [ level[i]: u8 … ]                      current LCP *stage index* per
//!                                         degradable column (255 = removed)
//! [ row: codec::encode_row ]              current (possibly degraded) values
//! ```
//!
//! The stage bytes are authoritative: after a crash the engine re-arms the
//! scheduler from `(insert_ts, stage)` rather than trusting wall-clock
//! arithmetic alone, so a tuple can never *regain* accuracy through clock
//! skew.

use instant_common::codec::{decode_row, encode_row, raw};
use instant_common::{Error, LevelId, Result, Timestamp, Value};

/// Fixed metadata bytes before the per-column stage bytes: insert_ts (8) +
/// ndeg (1).
pub const META_BASE: usize = 9;

/// Sentinel stage byte for "value removed".
pub const STAGE_REMOVED: u8 = u8::MAX;

/// A decoded stored tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct StoredTuple {
    pub insert_ts: Timestamp,
    /// Current stage index per degradable column (schema order);
    /// `None` = removed. NB: this is the index into the column's LCP
    /// stages, not the accuracy level — the level is
    /// `lcp.stages()[stage].level`.
    pub stages: Vec<Option<u8>>,
    pub row: Vec<Value>,
}

/// Encode a stored tuple. `stages` uses `Some(level)` semantics translated
/// by the caller to stage indices; here we take raw stage options.
pub fn encode_stored(insert_ts: Timestamp, stages: &[Option<LevelId>], row: &[Value]) -> Vec<u8> {
    // Accept LevelId for ergonomic tests; stored as raw bytes.
    let mut out = Vec::with_capacity(META_BASE + stages.len() + 16 * row.len());
    raw::put_u64(&mut out, insert_ts.0);
    out.push(stages.len() as u8);
    for s in stages {
        out.push(match s {
            Some(l) => l.0,
            None => STAGE_REMOVED,
        });
    }
    encode_row(row, &mut out);
    out
}

/// Encode from raw stage indices (the engine's native form).
pub fn encode_stored_raw(insert_ts: Timestamp, stages: &[Option<u8>], row: &[Value]) -> Vec<u8> {
    let as_levels: Vec<Option<LevelId>> = stages.iter().map(|s| s.map(LevelId)).collect();
    encode_stored(insert_ts, &as_levels, row)
}

/// Decode a stored tuple.
pub fn decode_stored(mut bytes: &[u8]) -> Result<StoredTuple> {
    let buf = &mut bytes;
    let insert_ts = Timestamp(raw::get_u64(buf)?);
    if buf.is_empty() {
        return Err(Error::Corrupt("tuple truncated at ndeg".into()));
    }
    let ndeg = buf[0] as usize;
    *buf = &buf[1..];
    if buf.len() < ndeg {
        return Err(Error::Corrupt("tuple truncated in stage bytes".into()));
    }
    let mut stages = Vec::with_capacity(ndeg);
    for i in 0..ndeg {
        let b = buf[i];
        stages.push(if b == STAGE_REMOVED { None } else { Some(b) });
    }
    *buf = &buf[ndeg..];
    let row = decode_row(buf)?;
    if !buf.is_empty() {
        return Err(Error::Corrupt(format!(
            "{} trailing bytes after stored tuple",
            buf.len()
        )));
    }
    Ok(StoredTuple {
        insert_ts,
        stages,
        row,
    })
}

impl StoredTuple {
    /// Age at `now`.
    pub fn age(&self, now: Timestamp) -> instant_common::Duration {
        now.since(self.insert_ts)
    }

    /// Have all degradable attributes been removed? (Then the tuple itself
    /// is due for expunge.)
    pub fn fully_degraded(&self) -> bool {
        !self.stages.is_empty() && self.stages.iter().all(|s| s.is_none())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> (Timestamp, Vec<Option<u8>>, Vec<Value>) {
        (
            Timestamp::micros(777),
            vec![Some(0), Some(2), None],
            vec![
                Value::Int(1),
                Value::Str("alice".into()),
                Value::Str("Paris".into()),
                Value::Range { lo: 2000, hi: 3000 },
                Value::Removed,
            ],
        )
    }

    #[test]
    fn round_trip() {
        let (ts, stages, row) = sample();
        let bytes = encode_stored_raw(ts, &stages, &row);
        let t = decode_stored(&bytes).unwrap();
        assert_eq!(t.insert_ts, ts);
        assert_eq!(t.stages, stages);
        assert_eq!(t.row, row);
    }

    #[test]
    fn truncation_detected_everywhere() {
        let (ts, stages, row) = sample();
        let bytes = encode_stored_raw(ts, &stages, &row);
        for cut in 0..bytes.len() {
            assert!(decode_stored(&bytes[..cut]).is_err(), "cut {cut}");
        }
    }

    #[test]
    fn trailing_garbage_detected() {
        let (ts, stages, row) = sample();
        let mut bytes = encode_stored_raw(ts, &stages, &row);
        bytes.push(7);
        assert!(decode_stored(&bytes).is_err());
    }

    #[test]
    fn fully_degraded_detection() {
        let t = StoredTuple {
            insert_ts: Timestamp::ZERO,
            stages: vec![None, None],
            row: vec![Value::Removed, Value::Removed],
        };
        assert!(t.fully_degraded());
        let t2 = StoredTuple {
            insert_ts: Timestamp::ZERO,
            stages: vec![None, Some(1)],
            row: vec![],
        };
        assert!(!t2.fully_degraded());
        // No degradable columns → never "fully degraded" via this path.
        let t3 = StoredTuple {
            insert_ts: Timestamp::ZERO,
            stages: vec![],
            row: vec![],
        };
        assert!(!t3.fully_degraded());
    }

    #[test]
    fn age_computation() {
        let t = StoredTuple {
            insert_ts: Timestamp::micros(100),
            stages: vec![],
            row: vec![],
        };
        assert_eq!(
            t.age(Timestamp::micros(250)),
            instant_common::Duration::micros(150)
        );
        // Clock earlier than insert saturates to zero.
        assert_eq!(t.age(Timestamp::micros(50)), instant_common::Duration::ZERO);
    }

    #[test]
    fn empty_row_and_no_degradables() {
        let bytes = encode_stored_raw(Timestamp::ZERO, &[], &[Value::Int(9)]);
        let t = decode_stored(&bytes).unwrap();
        assert!(t.stages.is_empty());
        assert_eq!(t.row, vec![Value::Int(9)]);
    }
}
