//! Table schemas: stable vs degradable columns.
//!
//! "A tuple is a composition of stable attributes which do not participate
//! in the degradation process and degradable attributes" (Section II).
//! A degradable column binds a [`Degrader`] (hierarchy + LCP). The schema
//! also computes the **life-cycle-maximum encoded size** of a row, which
//! the heap uses to reserve slot capacity so degradation rewrites never
//! relocate tuples.

use std::sync::Arc;

use instant_common::codec::encode_value;
use instant_common::{ColumnId, DataType, Error, LevelId, Result, Value};
use instant_lcp::hierarchy::Hierarchy;
use instant_lcp::{AttributeLcp, Degrader};

/// Whether (and how) a column degrades.
#[derive(Debug, Clone)]
pub enum ColumnKind {
    /// Never degraded; updatable as in a classical DBMS.
    Stable,
    /// Subject to a Life Cycle Policy; immutable after insert; rewritten by
    /// the degradation engine.
    Degradable(Degrader),
}

/// One column.
#[derive(Debug, Clone)]
pub struct Column {
    pub name: String,
    pub ty: DataType,
    pub kind: ColumnKind,
    /// Build a secondary index for this column?
    pub indexed: bool,
}

impl Column {
    pub fn stable(name: &str, ty: DataType) -> Column {
        Column {
            name: name.to_string(),
            ty,
            kind: ColumnKind::Stable,
            indexed: false,
        }
    }

    pub fn degradable(
        name: &str,
        ty: DataType,
        hierarchy: Arc<dyn Hierarchy>,
        lcp: AttributeLcp,
    ) -> Result<Column> {
        Ok(Column {
            name: name.to_string(),
            ty,
            kind: ColumnKind::Degradable(Degrader::new(hierarchy, lcp)?),
            indexed: false,
        })
    }

    pub fn with_index(mut self) -> Column {
        self.indexed = true;
        self
    }

    pub fn is_degradable(&self) -> bool {
        matches!(self.kind, ColumnKind::Degradable(_))
    }

    pub fn degrader(&self) -> Option<&Degrader> {
        match &self.kind {
            ColumnKind::Degradable(d) => Some(d),
            ColumnKind::Stable => None,
        }
    }

    /// Largest encoded size this column's value can take over the tuple's
    /// life cycle (for slot capacity reservation).
    fn max_encoded_size(&self, v: &Value) -> Result<usize> {
        let mut buf = Vec::new();
        match &self.kind {
            ColumnKind::Stable => {
                encode_value(v, &mut buf);
                Ok(buf.len())
            }
            ColumnKind::Degradable(d) => {
                let mut max = {
                    // Removed placeholder is 1 byte, include it.
                    let mut b = Vec::new();
                    encode_value(&Value::Removed, &mut b);
                    b.len()
                };
                for stage in d.lcp().stages() {
                    let form = d.hierarchy().generalize(v, stage.level)?;
                    buf.clear();
                    encode_value(&form, &mut buf);
                    max = max.max(buf.len());
                }
                Ok(max)
            }
        }
    }
}

/// A table schema.
#[derive(Debug, Clone)]
pub struct TableSchema {
    pub name: String,
    pub columns: Vec<Column>,
}

impl TableSchema {
    pub fn new(name: &str, columns: Vec<Column>) -> Result<TableSchema> {
        if columns.is_empty() {
            return Err(Error::Schema(format!("table {name} has no columns")));
        }
        for i in 0..columns.len() {
            for j in i + 1..columns.len() {
                if columns[i].name.eq_ignore_ascii_case(&columns[j].name) {
                    return Err(Error::Schema(format!(
                        "duplicate column '{}' in table {name}",
                        columns[i].name
                    )));
                }
            }
        }
        Ok(TableSchema {
            name: name.to_string(),
            columns,
        })
    }

    pub fn arity(&self) -> usize {
        self.columns.len()
    }

    /// Ordinal of `name` (case-insensitive, as in the paper's upper-cased SQL).
    pub fn column_id(&self, name: &str) -> Result<ColumnId> {
        self.columns
            .iter()
            .position(|c| c.name.eq_ignore_ascii_case(name))
            .map(|i| ColumnId(i as u16))
            .ok_or_else(|| Error::NotFound(format!("column '{name}' in table {}", self.name)))
    }

    pub fn column(&self, id: ColumnId) -> &Column {
        &self.columns[id.0 as usize]
    }

    /// Ordinals of degradable columns, in schema order.
    pub fn degradable_columns(&self) -> Vec<ColumnId> {
        self.columns
            .iter()
            .enumerate()
            .filter(|(_, c)| c.is_degradable())
            .map(|(i, _)| ColumnId(i as u16))
            .collect()
    }

    /// Validate an insert row: arity, types, and the Section II rule that
    /// degradable values arrive at the most accurate state (`d0` of their
    /// hierarchy) — "insertions of new elements are granted only in the most
    /// accurate state".
    pub fn validate_insert(&self, row: &[Value]) -> Result<()> {
        if row.len() != self.arity() {
            return Err(Error::Schema(format!(
                "table {} expects {} values, got {}",
                self.name,
                self.arity(),
                row.len()
            )));
        }
        for (col, v) in self.columns.iter().zip(row) {
            if !v.conforms_to(col.ty) {
                return Err(Error::Schema(format!(
                    "column {} is {}, got {v}",
                    col.name, col.ty
                )));
            }
            if let Some(d) = col.degrader() {
                if v.is_null() || v.is_removed() {
                    return Err(Error::Policy(format!(
                        "degradable column {} requires a concrete value",
                        col.name
                    )));
                }
                match d.hierarchy().level_of(v) {
                    Some(LevelId(0)) => {}
                    Some(l) => {
                        return Err(Error::Policy(format!(
                            "insertions are granted only in the most accurate state: \
                             column {} received a d{} value ({v})",
                            col.name, l.0
                        )))
                    }
                    None => {
                        return Err(Error::NotFound(format!(
                            "value {v} not in the domain of column {}",
                            col.name
                        )))
                    }
                }
            }
        }
        Ok(())
    }

    /// Slot capacity to reserve for `row` (its largest life-cycle encoding
    /// plus tuple metadata — see `tuple::encode_stored`).
    pub fn reserve_size(&self, row: &[Value]) -> Result<usize> {
        let mut total = crate::tuple::META_BASE + self.degradable_columns().len();
        total += 2; // row count prefix
        for (col, v) in self.columns.iter().zip(row) {
            total += col.max_encoded_size(v)?;
        }
        Ok(total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instant_common::Duration;
    use instant_lcp::gtree::location_tree_fig1;
    use instant_lcp::RangeHierarchy;

    fn person() -> TableSchema {
        let gt: Arc<dyn Hierarchy> = Arc::new(location_tree_fig1());
        let sal: Arc<dyn Hierarchy> = Arc::new(RangeHierarchy::salary());
        TableSchema::new(
            "person",
            vec![
                Column::stable("id", DataType::Int).with_index(),
                Column::stable("name", DataType::Str),
                Column::degradable("location", DataType::Str, gt, AttributeLcp::fig2_location())
                    .unwrap()
                    .with_index(),
                Column::degradable(
                    "salary",
                    DataType::Int,
                    sal,
                    AttributeLcp::from_pairs(&[
                        (0, Duration::minutes(10)),
                        (2, Duration::days(30)),
                    ])
                    .unwrap(),
                )
                .unwrap(),
            ],
        )
        .unwrap()
    }

    fn valid_row() -> Vec<Value> {
        vec![
            Value::Int(1),
            Value::Str("alice".into()),
            Value::Str("4 rue Jussieu".into()),
            Value::Int(2340),
        ]
    }

    #[test]
    fn column_lookups() {
        let s = person();
        assert_eq!(s.column_id("LOCATION").unwrap(), ColumnId(2));
        assert!(s.column_id("nope").is_err());
        assert_eq!(s.degradable_columns(), vec![ColumnId(2), ColumnId(3)]);
        assert!(s.column(ColumnId(2)).is_degradable());
        assert!(!s.column(ColumnId(0)).is_degradable());
    }

    #[test]
    fn duplicate_columns_rejected() {
        let r = TableSchema::new(
            "t",
            vec![
                Column::stable("x", DataType::Int),
                Column::stable("X", DataType::Str),
            ],
        );
        assert!(matches!(r, Err(Error::Schema(_))));
        assert!(TableSchema::new("t", vec![]).is_err());
    }

    #[test]
    fn validate_insert_accepts_accurate_row() {
        person().validate_insert(&valid_row()).unwrap();
    }

    #[test]
    fn validate_insert_rejects_wrong_arity_and_types() {
        let s = person();
        assert!(s.validate_insert(&valid_row()[..3]).is_err());
        let mut bad = valid_row();
        bad[0] = Value::Str("one".into());
        assert!(matches!(s.validate_insert(&bad), Err(Error::Schema(_))));
    }

    #[test]
    fn validate_insert_rejects_degraded_values() {
        let s = person();
        let mut row = valid_row();
        row[2] = Value::Str("Paris".into()); // a d1 (city) value
        assert!(matches!(s.validate_insert(&row), Err(Error::Policy(_))));
        let mut row2 = valid_row();
        row2[3] = Value::Range { lo: 2000, hi: 3000 }; // degraded salary
        assert!(matches!(s.validate_insert(&row2), Err(Error::Policy(_))));
    }

    #[test]
    fn validate_insert_rejects_unknown_domain_value() {
        let s = person();
        let mut row = valid_row();
        row[2] = Value::Str("Atlantis Boulevard".into());
        assert!(matches!(s.validate_insert(&row), Err(Error::NotFound(_))));
    }

    #[test]
    fn validate_insert_rejects_null_degradable() {
        let s = person();
        let mut row = valid_row();
        row[3] = Value::Null;
        assert!(matches!(s.validate_insert(&row), Err(Error::Policy(_))));
    }

    #[test]
    fn reserve_size_covers_every_life_cycle_form() {
        let s = person();
        let row = valid_row();
        let reserve = s.reserve_size(&row).unwrap();
        // The longest location form is "4 rue Jussieu" (13) vs
        // "Ile-de-France" (13); reserve must cover row + meta comfortably.
        let now_len = crate::tuple::encode_stored(
            instant_common::Timestamp::ZERO,
            &[Some(LevelId(0)), Some(LevelId(0))],
            &row,
        )
        .len();
        assert!(reserve >= now_len, "reserve {reserve} < current {now_len}");
        // Degrade location to "Ile-de-France" and salary to a range: still fits.
        let mut degraded = row.clone();
        degraded[2] = Value::Str("Ile-de-France".into());
        degraded[3] = Value::Range { lo: 2000, hi: 3000 };
        let deg_len = crate::tuple::encode_stored(
            instant_common::Timestamp::ZERO,
            &[Some(LevelId(2)), Some(LevelId(2))],
            &degraded,
        )
        .len();
        assert!(reserve >= deg_len, "reserve {reserve} < degraded {deg_len}");
    }
}
