//! Catalog and physical tables.
//!
//! A [`Table`] couples a schema with its heap file and its secondary
//! indexes: a degradation-aware [`MultiLevelIndex`] per indexed degradable
//! column, a plain B+-tree per indexed stable column. The [`Catalog`] maps
//! names to tables.
//!
//! Tables expose *physical* primitives (insert/read/rewrite/expunge with
//! index maintenance); the transactional choreography (locks, WAL, clock)
//! lives in [`crate::db`].

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::RwLock;

use instant_common::{ColumnId, Error, LevelId, Result, TableId, Timestamp, TupleId, Value};
use instant_index::btree::BPlusTree;
use instant_index::multilevel::MultiLevelIndex;
use instant_index::SecondaryIndex;
use instant_storage::{BufferPool, HeapFile, SecurePolicy};

use crate::schema::TableSchema;
use crate::tuple::{decode_stored, encode_stored_raw, StoredTuple};

/// A physical table.
pub struct Table {
    id: TableId,
    schema: TableSchema,
    heap: HeapFile,
    deg_indexes: RwLock<HashMap<ColumnId, MultiLevelIndex>>, // lock-rank: 320
    stable_indexes: RwLock<HashMap<ColumnId, BPlusTree>>,    // lock-rank: 330
}

impl std::fmt::Debug for Table {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Table")
            .field("id", &self.id)
            .field("name", &self.schema.name)
            .finish()
    }
}

impl Table {
    pub fn new(
        id: TableId,
        schema: TableSchema,
        pool: Arc<BufferPool>,
        policy: SecurePolicy,
    ) -> Table {
        let mut deg = HashMap::new();
        let mut stable = HashMap::new();
        for (i, col) in schema.columns.iter().enumerate() {
            if !col.indexed {
                continue;
            }
            let cid = ColumnId(i as u16);
            match col.degrader() {
                Some(d) => {
                    deg.insert(cid, MultiLevelIndex::new(d.hierarchy().levels()));
                }
                None => {
                    stable.insert(cid, BPlusTree::new());
                }
            }
        }
        Table {
            id,
            schema,
            heap: HeapFile::create(pool, policy),
            deg_indexes: RwLock::ranked(320, deg),
            stable_indexes: RwLock::ranked(330, stable),
        }
    }

    /// Reattach a table whose heap pages already exist on disk (recovery).
    /// Indexes start empty; call [`Table::rebuild_indexes`] after.
    pub fn attach(
        id: TableId,
        schema: TableSchema,
        pool: Arc<BufferPool>,
        pages: Vec<instant_common::PageId>,
        policy: SecurePolicy,
    ) -> Table {
        let mut deg = HashMap::new();
        let mut stable = HashMap::new();
        for (i, col) in schema.columns.iter().enumerate() {
            if !col.indexed {
                continue;
            }
            let cid = ColumnId(i as u16);
            match col.degrader() {
                Some(d) => {
                    deg.insert(cid, MultiLevelIndex::new(d.hierarchy().levels()));
                }
                None => {
                    stable.insert(cid, BPlusTree::new());
                }
            }
        }
        Table {
            id,
            schema,
            heap: HeapFile::attach(pool, pages, policy),
            deg_indexes: RwLock::ranked(320, deg),
            stable_indexes: RwLock::ranked(330, stable),
        }
    }

    pub fn id(&self) -> TableId {
        self.id
    }

    pub fn schema(&self) -> &TableSchema {
        &self.schema
    }

    pub fn heap(&self) -> &HeapFile {
        &self.heap
    }

    /// Physically insert a validated row (degradable values supplied at the
    /// accurate domain state, per Section II). The value actually *stored*
    /// for a degradable column is its generalization to the LCP's first
    /// stage level — normally `d0` (identity), but a coarser first stage
    /// (the static-anonymization baseline) generalizes at ingest, so the
    /// accurate form never reaches the page. Returns the tuple id.
    pub fn insert_physical(&self, now: Timestamp, row: &[Value]) -> Result<TupleId> {
        let deg_cols = self.schema.degradable_columns();
        let stages: Vec<Option<u8>> = deg_cols.iter().map(|_| Some(0)).collect();
        // Materialize the stored row: degradable values at stage-0 level.
        let mut stored_row = row.to_vec();
        for cid in &deg_cols {
            let col = self.schema.column(*cid);
            let d = col.degrader().expect("degradable"); // lint:allow(L001, column from degradable_columns() always has a degrader)
            let level = d.lcp().stages()[0].level;
            stored_row[cid.0 as usize] = d.hierarchy().generalize(&row[cid.0 as usize], level)?;
        }
        let bytes = encode_stored_raw(now, &stages, &stored_row);
        let reserve = self.schema.reserve_size(row)?;
        let tid = self.heap.insert(&bytes, reserve.max(bytes.len()))?;
        // Secondary index maintenance.
        {
            let mut deg = self.deg_indexes.write();
            for cid in &deg_cols {
                if let Some(idx) = deg.get_mut(cid) {
                    let col = self.schema.column(*cid);
                    let d = col.degrader().expect("degradable"); // lint:allow(L001, column from degradable_columns() always has a degrader)
                    let level = d.lcp().stages()[0].level;
                    idx.insert_at(level, &stored_row[cid.0 as usize], tid)?;
                }
            }
        }
        {
            let mut stable = self.stable_indexes.write();
            for (cid, idx) in stable.iter_mut() {
                idx.insert(&stored_row[cid.0 as usize], tid);
            }
        }
        Ok(tid)
    }

    /// Read and decode a stored tuple.
    pub fn get(&self, tid: TupleId) -> Result<StoredTuple> {
        decode_stored(&self.heap.read(tid)?)
    }

    pub fn exists(&self, tid: TupleId) -> bool {
        self.heap.exists(tid)
    }

    /// Rewrite a tuple in place (degradation step or stable-column update),
    /// maintaining indexes. `index_moves` describes degradable index
    /// migrations: `(column, old_level, old_key, new_level, new_key)`.
    #[allow(clippy::type_complexity)]
    pub fn rewrite_physical(
        &self,
        tid: TupleId,
        new_tuple: &StoredTuple,
        index_moves: &[(ColumnId, LevelId, Value, Option<(LevelId, Value)>)],
        stable_updates: &[(ColumnId, Value, Value)],
    ) -> Result<()> {
        let bytes = encode_stored_raw(new_tuple.insert_ts, &new_tuple.stages, &new_tuple.row);
        self.heap.update(tid, &bytes)?;
        {
            let mut deg = self.deg_indexes.write();
            for (cid, old_level, old_key, new) in index_moves {
                if let Some(idx) = deg.get_mut(cid) {
                    let (nl, nk) = match new {
                        Some((l, k)) => (Some(*l), Some(k)),
                        None => (None, None),
                    };
                    idx.migrate(*old_level, old_key, nl, nk, tid)?;
                }
            }
        }
        {
            let mut stable = self.stable_indexes.write();
            for (cid, old, new) in stable_updates {
                if let Some(idx) = stable.get_mut(cid) {
                    idx.remove(old, tid);
                    idx.insert(new, tid);
                }
            }
        }
        Ok(())
    }

    /// Physically remove a tuple and every index entry referencing it.
    pub fn expunge_physical(&self, tid: TupleId) -> Result<StoredTuple> {
        let tuple = self.get(tid)?;
        // Drop index entries for current values.
        {
            let mut deg = self.deg_indexes.write();
            let deg_cols = self.schema.degradable_columns();
            for (slot, cid) in deg_cols.iter().enumerate() {
                if let Some(idx) = deg.get_mut(cid) {
                    if let Some(stage) = tuple.stages[slot] {
                        let col = self.schema.column(*cid);
                        let d = col.degrader().expect("degradable"); // lint:allow(L001, column from degradable_columns() always has a degrader)
                        let level = d.lcp().stages()[stage as usize].level;
                        idx.remove_at(level, &tuple.row[cid.0 as usize], tid)?;
                    }
                }
            }
        }
        {
            let mut stable = self.stable_indexes.write();
            for (cid, idx) in stable.iter_mut() {
                idx.remove(&tuple.row[cid.0 as usize], tid);
            }
        }
        self.heap.delete(tid)?;
        Ok(tuple)
    }

    /// Insert pre-encoded stored-tuple bytes (WAL replay path): decodes to
    /// validate and to register index entries at the recorded stage levels.
    pub fn insert_raw_stored(&self, bytes: &[u8]) -> Result<TupleId> {
        let tuple = decode_stored(bytes)?;
        let reserve = self
            .schema
            .reserve_size(&tuple.row)
            .unwrap_or(bytes.len())
            .max(bytes.len());
        let tid = self.heap.insert(bytes, reserve)?;
        self.index_tuple(tid, &tuple)?;
        Ok(tid)
    }

    /// Replace a stored tuple wholesale, recomputing index entries from the
    /// old and new images (WAL replay path — idempotent).
    pub fn replace_stored(&self, tid: TupleId, new: &StoredTuple) -> Result<()> {
        let old = self.get(tid)?;
        self.unindex_tuple(tid, &old)?;
        let bytes = encode_stored_raw(new.insert_ts, &new.stages, &new.row);
        self.heap.update(tid, &bytes)?;
        self.index_tuple(tid, new)?;
        Ok(())
    }

    /// Register every index entry for `tuple`.
    fn index_tuple(&self, tid: TupleId, tuple: &StoredTuple) -> Result<()> {
        let deg_cols = self.schema.degradable_columns();
        let mut deg = self.deg_indexes.write();
        for (slot, cid) in deg_cols.iter().enumerate() {
            if let (Some(idx), Some(stage)) =
                (deg.get_mut(cid), tuple.stages.get(slot).copied().flatten())
            {
                let d = self.schema.column(*cid).degrader().expect("degradable"); // lint:allow(L001, column from degradable_columns() always has a degrader)
                let level = d.lcp().stages()[stage as usize].level;
                idx.insert_at(level, &tuple.row[cid.0 as usize], tid)?;
            }
        }
        drop(deg);
        let mut stable = self.stable_indexes.write();
        for (cid, idx) in stable.iter_mut() {
            idx.insert(&tuple.row[cid.0 as usize], tid);
        }
        Ok(())
    }

    /// Remove every index entry for `tuple`.
    fn unindex_tuple(&self, tid: TupleId, tuple: &StoredTuple) -> Result<()> {
        let deg_cols = self.schema.degradable_columns();
        let mut deg = self.deg_indexes.write();
        for (slot, cid) in deg_cols.iter().enumerate() {
            if let (Some(idx), Some(stage)) =
                (deg.get_mut(cid), tuple.stages.get(slot).copied().flatten())
            {
                let d = self.schema.column(*cid).degrader().expect("degradable"); // lint:allow(L001, column from degradable_columns() always has a degrader)
                let level = d.lcp().stages()[stage as usize].level;
                idx.remove_at(level, &tuple.row[cid.0 as usize], tid)?;
            }
        }
        drop(deg);
        let mut stable = self.stable_indexes.write();
        for (cid, idx) in stable.iter_mut() {
            idx.remove(&tuple.row[cid.0 as usize], tid);
        }
        Ok(())
    }

    /// Full scan of live tuples.
    pub fn scan(&self) -> Result<Vec<(TupleId, StoredTuple)>> {
        let mut out = Vec::new();
        for (tid, bytes) in self.heap.scan()? {
            out.push((tid, decode_stored(&bytes)?));
        }
        Ok(out)
    }

    pub fn live_count(&self) -> Result<usize> {
        self.heap.live_count()
    }

    /// Equality probe on a degradable column's index at a specific level.
    pub fn index_probe_deg(
        &self,
        cid: ColumnId,
        level: LevelId,
        key: &Value,
    ) -> Option<Vec<TupleId>> {
        self.deg_indexes
            .read()
            .get(&cid)
            .map(|idx| idx.get_at(level, key).unwrap_or_default())
    }

    /// Range probe on a degradable column's index at a level.
    pub fn index_range_deg(
        &self,
        cid: ColumnId,
        level: LevelId,
        lo: Option<&Value>,
        hi: Option<&Value>,
    ) -> Option<Vec<TupleId>> {
        self.deg_indexes
            .read()
            .get(&cid)
            .and_then(|idx| idx.range_at(level, lo, hi).ok().flatten())
    }

    /// All tuples currently indexed at `level` for `cid` (level occupancy).
    pub fn index_level_members(&self, cid: ColumnId, level: LevelId) -> Option<Vec<TupleId>> {
        self.index_range_deg(cid, level, None, None)
    }

    /// Equality probe on a stable column's index.
    pub fn index_probe_stable(&self, cid: ColumnId, key: &Value) -> Option<Vec<TupleId>> {
        self.stable_indexes.read().get(&cid).map(|i| i.get(key))
    }

    /// Range probe on a stable column's index.
    pub fn index_range_stable(
        &self,
        cid: ColumnId,
        lo: Option<&Value>,
        hi: Option<&Value>,
    ) -> Option<Vec<TupleId>> {
        self.stable_indexes
            .read()
            .get(&cid)
            .and_then(|i| i.range(lo, hi))
    }

    /// Per-level index occupancy for a degradable column (E2/E7 reporting).
    pub fn index_occupancy(&self, cid: ColumnId) -> Option<Vec<usize>> {
        self.deg_indexes.read().get(&cid).map(|i| i.occupancy())
    }

    /// Vacuum the heap (compaction + residue scrub). Returns bytes reclaimed.
    pub fn vacuum(&self) -> Result<usize> {
        self.heap.vacuum()
    }

    /// Rebuild all indexes from the heap (recovery path).
    pub fn rebuild_indexes(&self) -> Result<()> {
        let mut deg = self.deg_indexes.write();
        let mut stable = self.stable_indexes.write();
        for idx in deg.values_mut() {
            *idx = MultiLevelIndex::new(idx.num_levels());
        }
        for idx in stable.values_mut() {
            *idx = BPlusTree::new();
        }
        let deg_cols = self.schema.degradable_columns();
        // lint:allow(L102, rebuild scans the heap under both index write guards so no stale entry is visible mid-rebuild; a page fault may write back an evicted page)
        for (tid, tuple) in self.scan()? {
            for (slot, cid) in deg_cols.iter().enumerate() {
                if let (Some(idx), Some(stage)) = (deg.get_mut(cid), tuple.stages[slot]) {
                    let d = self.schema.column(*cid).degrader().expect("degradable"); // lint:allow(L001, column from degradable_columns() always has a degrader)
                    let level = d.lcp().stages()[stage as usize].level;
                    idx.insert_at(level, &tuple.row[cid.0 as usize], tid)?;
                }
            }
            for (cid, idx) in stable.iter_mut() {
                idx.insert(&tuple.row[cid.0 as usize], tid);
            }
        }
        Ok(())
    }
}

/// Name → table registry.
#[derive(Debug)]
pub struct Catalog {
    tables: RwLock<HashMap<String, Arc<Table>>>, // lock-rank: 300
    by_id: RwLock<HashMap<TableId, Arc<Table>>>, // lock-rank: 310
    next_id: std::sync::atomic::AtomicU32,
}

impl Default for Catalog {
    fn default() -> Catalog {
        Catalog::new()
    }
}

impl Catalog {
    pub fn new() -> Catalog {
        Catalog {
            tables: RwLock::ranked(300, HashMap::new()),
            by_id: RwLock::ranked(310, HashMap::new()),
            next_id: std::sync::atomic::AtomicU32::new(1),
        }
    }

    pub fn create_table(
        &self,
        schema: TableSchema,
        pool: Arc<BufferPool>,
        policy: SecurePolicy,
    ) -> Result<Arc<Table>> {
        let key = schema.name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(Error::Schema(format!(
                "table {} already exists",
                schema.name
            )));
        }
        let id = TableId(
            self.next_id
                .fetch_add(1, std::sync::atomic::Ordering::SeqCst),
        );
        let table = Arc::new(Table::new(id, schema, pool, policy));
        tables.insert(key, table.clone());
        self.by_id.write().insert(id, table.clone());
        Ok(table)
    }

    /// Register a reattached table under its original id (recovery).
    pub fn attach_table(
        &self,
        id: TableId,
        schema: TableSchema,
        pool: Arc<BufferPool>,
        pages: Vec<instant_common::PageId>,
        policy: SecurePolicy,
    ) -> Result<Arc<Table>> {
        let key = schema.name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        if tables.contains_key(&key) {
            return Err(Error::Schema(format!(
                "table {} already exists",
                schema.name
            )));
        }
        let table = Arc::new(Table::attach(id, schema, pool, pages, policy));
        tables.insert(key, table.clone());
        self.by_id.write().insert(id, table.clone());
        // Keep the id counter ahead of attached ids.
        let _ = self
            .next_id
            .fetch_max(id.0 + 1, std::sync::atomic::Ordering::SeqCst);
        Ok(table)
    }

    /// Remove a table from the catalog by name — the undo for error
    /// paths where a just-executed CREATE could not be externalized
    /// (e.g. a server's DDL-journal fsync failed) and the table must not
    /// stay reachable. If the table holds the most recently allocated
    /// id, the id is handed back so the sequence stays dense (recovery
    /// re-derives ids from creation order); the caller must ensure no
    /// concurrent CREATE can interleave (the server holds its DDL lock
    /// across execute + journal + detach). Heap pages the table already
    /// allocated are not reclaimed until restart.
    pub fn detach_table(&self, name: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        let mut tables = self.tables.write();
        let table = tables
            .remove(&key)
            .ok_or_else(|| Error::NotFound(format!("table {name}")))?;
        self.by_id.write().remove(&table.id());
        let _ = self.next_id.compare_exchange(
            table.id().0 + 1,
            table.id().0,
            std::sync::atomic::Ordering::SeqCst,
            std::sync::atomic::Ordering::SeqCst,
        );
        Ok(())
    }

    pub fn get(&self, name: &str) -> Result<Arc<Table>> {
        self.tables
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("table {name}")))
    }

    pub fn get_by_id(&self, id: TableId) -> Result<Arc<Table>> {
        self.by_id
            .read()
            .get(&id)
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("table id {id}")))
    }

    pub fn table_names(&self) -> Vec<String> {
        let mut names: Vec<String> = self.tables.read().keys().cloned().collect();
        names.sort();
        names
    }

    pub fn all_tables(&self) -> Vec<Arc<Table>> {
        self.tables.read().values().cloned().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use instant_common::DataType;
    use instant_lcp::gtree::location_tree_fig1;
    use instant_lcp::hierarchy::Hierarchy;
    use instant_lcp::AttributeLcp;
    use instant_storage::DiskManager;

    fn pool() -> Arc<BufferPool> {
        Arc::new(BufferPool::new(
            Arc::new(DiskManager::temp("catalog").unwrap()),
            64,
        ))
    }

    fn schema() -> TableSchema {
        let gt: Arc<dyn Hierarchy> = Arc::new(location_tree_fig1());
        TableSchema::new(
            "person",
            vec![
                Column::stable("id", DataType::Int).with_index(),
                Column::degradable("location", DataType::Str, gt, AttributeLcp::fig2_location())
                    .unwrap()
                    .with_index(),
            ],
        )
        .unwrap()
    }

    fn row(id: i64, addr: &str) -> Vec<Value> {
        vec![Value::Int(id), Value::Str(addr.into())]
    }

    #[test]
    fn create_and_lookup() {
        let cat = Catalog::new();
        let t = cat
            .create_table(schema(), pool(), SecurePolicy::Overwrite)
            .unwrap();
        assert_eq!(cat.get("PERSON").unwrap().id(), t.id());
        assert_eq!(cat.get_by_id(t.id()).unwrap().schema().name, "person");
        assert!(cat.get("missing").is_err());
        assert!(cat
            .create_table(schema(), pool(), SecurePolicy::Overwrite)
            .is_err());
        assert_eq!(cat.table_names(), vec!["person".to_string()]);
    }

    #[test]
    fn insert_read_scan() {
        let cat = Catalog::new();
        let t = cat
            .create_table(schema(), pool(), SecurePolicy::Overwrite)
            .unwrap();
        let tid = t
            .insert_physical(Timestamp::micros(5), &row(1, "4 rue Jussieu"))
            .unwrap();
        let back = t.get(tid).unwrap();
        assert_eq!(back.insert_ts, Timestamp::micros(5));
        assert_eq!(back.stages, vec![Some(0)]);
        assert_eq!(back.row, row(1, "4 rue Jussieu"));
        assert_eq!(t.scan().unwrap().len(), 1);
        assert_eq!(t.live_count().unwrap(), 1);
    }

    #[test]
    fn indexes_populated_on_insert() {
        let cat = Catalog::new();
        let t = cat
            .create_table(schema(), pool(), SecurePolicy::Overwrite)
            .unwrap();
        let tid = t
            .insert_physical(Timestamp::ZERO, &row(7, "Drienerlolaan 5"))
            .unwrap();
        // Stable index on id.
        assert_eq!(
            t.index_probe_stable(ColumnId(0), &Value::Int(7)).unwrap(),
            vec![tid]
        );
        // Degradable index at level 0.
        assert_eq!(
            t.index_probe_deg(
                ColumnId(1),
                LevelId(0),
                &Value::Str("Drienerlolaan 5".into())
            )
            .unwrap(),
            vec![tid]
        );
        assert_eq!(t.index_occupancy(ColumnId(1)).unwrap(), vec![1, 0, 0, 0]);
    }

    #[test]
    fn rewrite_migrates_indexes() {
        let cat = Catalog::new();
        let t = cat
            .create_table(schema(), pool(), SecurePolicy::Overwrite)
            .unwrap();
        let tid = t
            .insert_physical(Timestamp::ZERO, &row(1, "4 rue Jussieu"))
            .unwrap();
        let mut tuple = t.get(tid).unwrap();
        tuple.stages[0] = Some(1);
        tuple.row[1] = Value::Str("Paris".into());
        t.rewrite_physical(
            tid,
            &tuple,
            &[(
                ColumnId(1),
                LevelId(0),
                Value::Str("4 rue Jussieu".into()),
                Some((LevelId(1), Value::Str("Paris".into()))),
            )],
            &[],
        )
        .unwrap();
        assert!(t
            .index_probe_deg(ColumnId(1), LevelId(0), &Value::Str("4 rue Jussieu".into()))
            .unwrap()
            .is_empty());
        assert_eq!(
            t.index_probe_deg(ColumnId(1), LevelId(1), &Value::Str("Paris".into()))
                .unwrap(),
            vec![tid]
        );
        let back = t.get(tid).unwrap();
        assert_eq!(back.row[1], Value::Str("Paris".into()));
        assert_eq!(back.stages[0], Some(1));
    }

    #[test]
    fn expunge_clears_heap_and_indexes() {
        let cat = Catalog::new();
        let t = cat
            .create_table(schema(), pool(), SecurePolicy::Overwrite)
            .unwrap();
        let tid = t
            .insert_physical(Timestamp::ZERO, &row(1, "Rue de la Paix"))
            .unwrap();
        t.expunge_physical(tid).unwrap();
        assert!(!t.exists(tid));
        assert!(t
            .index_probe_stable(ColumnId(0), &Value::Int(1))
            .unwrap()
            .is_empty());
        assert!(t
            .index_probe_deg(
                ColumnId(1),
                LevelId(0),
                &Value::Str("Rue de la Paix".into())
            )
            .unwrap()
            .is_empty());
        assert_eq!(t.live_count().unwrap(), 0);
    }

    #[test]
    fn rebuild_indexes_matches_heap() {
        let cat = Catalog::new();
        let t = cat
            .create_table(schema(), pool(), SecurePolicy::Overwrite)
            .unwrap();
        let mut tids = Vec::new();
        for i in 0..20 {
            tids.push(
                t.insert_physical(Timestamp::ZERO, &row(i, "4 rue Jussieu"))
                    .unwrap(),
            );
        }
        t.expunge_physical(tids[3]).unwrap();
        t.rebuild_indexes().unwrap();
        assert_eq!(
            t.index_probe_deg(ColumnId(1), LevelId(0), &Value::Str("4 rue Jussieu".into()))
                .unwrap()
                .len(),
            19
        );
        assert!(t
            .index_probe_stable(ColumnId(0), &Value::Int(3))
            .unwrap()
            .is_empty());
        assert_eq!(
            t.index_probe_stable(ColumnId(0), &Value::Int(5))
                .unwrap()
                .len(),
            1
        );
    }

    #[test]
    fn stable_update_reindexes() {
        let cat = Catalog::new();
        let t = cat
            .create_table(schema(), pool(), SecurePolicy::Overwrite)
            .unwrap();
        let tid = t
            .insert_physical(Timestamp::ZERO, &row(1, "4 rue Jussieu"))
            .unwrap();
        let mut tuple = t.get(tid).unwrap();
        tuple.row[0] = Value::Int(99);
        t.rewrite_physical(
            tid,
            &tuple,
            &[],
            &[(ColumnId(0), Value::Int(1), Value::Int(99))],
        )
        .unwrap();
        assert!(t
            .index_probe_stable(ColumnId(0), &Value::Int(1))
            .unwrap()
            .is_empty());
        assert_eq!(
            t.index_probe_stable(ColumnId(0), &Value::Int(99)).unwrap(),
            vec![tid]
        );
    }
}
