//! The engine façade.
//!
//! [`Db`] owns the buffer pool, catalog, WAL + key store, transaction
//! manager, degradation scheduler and clock, and choreographs them:
//!
//! * **Insert** (Section II: only at the most accurate state): validates,
//!   stores with life-cycle capacity reservation, indexes at the initial
//!   level, WAL-logs (sealed in [`WalMode::Sealed`]), and arms the first
//!   LCP transition per degradable attribute.
//! * **Degradation pump**: pops due transitions, executes each batch as a
//!   **system transaction** under tuple X locks (readers delay the
//!   degrader, never see torn state), rewrites in place with secure
//!   overwrite, migrates index levels, redo-logs the after-image only, and
//!   re-arms. Reader/degrader lock casualties are counted, not fatal —
//!   the victim transition is re-queued.
//! * **Checkpoint**: flush pages → `Checkpoint` record → fsync → persist
//!   catalog meta → physically truncate the old log → **shred** key windows
//!   older than the checkpoint. After a checkpoint, no pre-checkpoint image
//!   exists in readable form anywhere.
//! * **Recovery** ([`Db::recover_with_schemas`]): reattach heaps (state as
//!   of the last flush), rebuild indexes, logically redo committed WAL
//!   operations after the checkpoint (idempotently, with tuple-id
//!   remapping), and re-arm the scheduler from stored stage bytes — a tuple
//!   can therefore never *regain* accuracy through a crash.

use std::collections::{HashMap, HashSet};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use instant_common::{ColumnId, Error, Result, SharedClock, TableId, Timestamp, TupleId, Value};
use instant_obs::{Obs, Stage};
use instant_storage::{BufferPool, DiskManager};
use instant_tx::{LockMode, Resource, TxHandle, TxManager};
use instant_wal::group::{CommitTicket, GroupCommitSet, GroupCommitStats};
use instant_wal::record::{LogRecord, Lsn, Payload};
use instant_wal::recovery::{self, Op};
use instant_wal::{KeyStore, WalSet};

use crate::catalog::{Catalog, Table};
use crate::scheduler::{DegradationScheduler, PendingTransition};
use crate::schema::TableSchema;
use crate::tuple::{encode_stored_raw, StoredTuple};

// Configuration moved to its own module; the re-export keeps the
// historical `crate::db::DbConfig` paths (and downstream `instant_core::
// db::…` imports) compiling.
pub use crate::config::{test_profile, DbConfig, DbConfigBuilder, TestProfile, WalMode};

/// Engine statistics (monotonic counters).
#[derive(Debug, Default)]
pub struct DbStats {
    pub inserts: AtomicU64,
    pub updates: AtomicU64,
    pub degrade_steps: AtomicU64,
    pub expunges: AtomicU64,
    pub user_deletes: AtomicU64,
    pub degrader_lock_retries: AtomicU64,
    pub checkpoints: AtomicU64,
    /// Checkpoints forced by [`DbConfig::wal_retention_segments`] that
    /// failed; the triggering commit was already durable and is not
    /// failed retroactively.
    pub forced_checkpoint_failures: AtomicU64,
}

/// Result of one degradation pump.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct PumpReport {
    /// Attribute transitions executed.
    pub fired: usize,
    /// Whole tuples expunged.
    pub expunged: usize,
    /// Transitions deferred due to lock conflicts with readers/writers.
    pub deferred: usize,
}

/// Carry-over state for [`Db::replay_external_ops`]: a replication
/// follower applies the shipped log in barrier-bounded slices, and this
/// struct preserves idempotence bookkeeping (tuple-id remapping, the
/// replayed-written set) plus the applied frontier between slices.
#[derive(Debug, Default)]
pub struct ReplicaApplyState {
    remap: HashMap<(TableId, TupleId), TupleId>,
    replay_written: HashSet<(TableId, TupleId)>,
    /// Ops with LSN below this frontier have already been applied and
    /// are skipped on the next call.
    pub applied_upto: Lsn,
}

/// The InstantDB engine.
pub struct Db {
    cfg: DbConfig,
    clock: SharedClock,
    pool: Arc<BufferPool>,
    catalog: Catalog,
    // `group` is declared before `wal` so every per-shard pipeline's
    // writer/fsync thread pair is joined (and its last fsync completed)
    // before the log handles drop.
    group: Option<GroupCommitSet>,
    wal: Option<Arc<WalSet>>,
    keys: KeyStore,
    txs: TxManager,
    sched: DegradationScheduler,
    stats: DbStats,
    /// The observability plane (see `instant_obs`): latency histograms,
    /// tracing spans, per-purpose counters, the slow-query ring. Shared
    /// with the group-commit writer thread and the served front-end.
    obs: Arc<Obs>,
    /// Commit/checkpoint ordering gate. User ops hold the shared side
    /// across their page mutation *and* record enqueue; a checkpoint's
    /// flush→Checkpoint-record window holds the exclusive side. Together
    /// these give two invariants (see [`Db::checkpoint`]): truncation
    /// never destroys an unflushed acknowledged commit, and a flush never
    /// persists a user-op page mutation whose records are not enqueued.
    ckpt_gate: RwLock<()>, // lock-rank: 210
    /// Serializes whole checkpoints against each other; commits never
    /// touch it. Truncation runs outside the `ckpt_gate` exclusive
    /// section so mutations and enqueues proceed during the rewrite —
    /// though drain *acknowledgments* still serialize against it on the
    /// Wal's own lock (see [`Db::checkpoint`]).
    ckpt_serial: Mutex<()>, // lock-rank: 200
}

impl std::fmt::Debug for Db {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Db").field("cfg", &self.cfg).finish()
    }
}

impl Db {
    /// Open a fresh database.
    pub fn open(cfg: DbConfig, clock: SharedClock) -> Result<Db> {
        let disk = match &cfg.path {
            Some(p) => Arc::new(DiskManager::open(with_ext(p, "idb"))?),
            None => Arc::new(DiskManager::temp("db")?),
        };
        let pool = Arc::new(if cfg.pool_shards == 0 {
            BufferPool::new(disk, cfg.buffer_frames)
        } else {
            BufferPool::with_shards(disk, cfg.buffer_frames, cfg.pool_shards)
        });
        let seg_cfg = instant_wal::segment::SegmentConfig {
            segment_bytes: cfg.wal_segment_bytes,
        };
        // The shard count is resolved here (auto → parallelism-derived);
        // `WalSet::open_with` may still widen it to match a directory
        // that already holds more shards.
        let shards = cfg.effective_wal_shards();
        let wal = match cfg.wal_mode {
            WalMode::Off => None,
            _ => Some(Arc::new(match &cfg.path {
                Some(p) => WalSet::open_with(with_ext(p, "wal"), shards, seg_cfg)?,
                None => WalSet::temp_with("db", shards, seg_cfg)?,
            })),
        };
        let obs = Arc::new(Obs::new());
        obs.set_slow_query_threshold(cfg.slow_query);
        let group = match (&wal, &cfg.group_commit) {
            (Some(w), Some(gc)) => Some(GroupCommitSet::spawn_obs(w, gc.clone(), obs.clone())?),
            _ => None,
        };
        let keys = KeyStore::new(cfg.key_window, cfg.key_seed);
        if let Some(p) = &cfg.path {
            // Reload shredded windows so destroyed keys stay destroyed.
            if let Ok(meta) = std::fs::read_to_string(with_ext(p, "meta")) {
                let shredded = parse_meta_shredded(&meta);
                keys.mark_shredded(&shredded);
            }
        }
        Ok(Db {
            cfg,
            clock,
            pool,
            catalog: Catalog::new(),
            group,
            wal,
            keys,
            txs: TxManager::new(),
            sched: DegradationScheduler::new(),
            stats: DbStats::default(),
            obs,
            ckpt_gate: RwLock::ranked(210, ()),
            ckpt_serial: Mutex::ranked(200, ()),
        })
    }

    pub fn config(&self) -> &DbConfig {
        &self.cfg
    }
    pub fn clock(&self) -> &SharedClock {
        &self.clock
    }
    pub fn now(&self) -> Timestamp {
        self.clock.now()
    }
    pub fn catalog(&self) -> &Catalog {
        &self.catalog
    }
    pub fn stats(&self) -> &DbStats {
        &self.stats
    }
    /// The observability plane: histograms, spans, purpose counters,
    /// the slow-query ring. See [`crate::metrics::stats_snapshot`] for
    /// the full engine snapshot behind `SHOW STATS`.
    pub fn obs(&self) -> &Arc<Obs> {
        &self.obs
    }
    pub fn scheduler(&self) -> &DegradationScheduler {
        &self.sched
    }
    pub fn tx_manager(&self) -> &TxManager {
        &self.txs
    }
    /// The sharded log (all shards behind one LSN allocator); `None` in
    /// [`WalMode::Off`].
    pub fn wal(&self) -> Option<&WalSet> {
        self.wal.as_deref()
    }
    /// Group-commit pipeline counters aggregated across every shard
    /// pipeline; `None` when the pipeline is off.
    pub fn group_commit_stats(&self) -> Option<GroupCommitStats> {
        self.group.as_ref().map(|g| g.stats())
    }
    /// Per-shard pipeline counters, indexed by WAL shard; `None` when
    /// the pipeline is off.
    pub fn group_commit_stats_per_shard(&self) -> Option<Vec<GroupCommitStats>> {
        self.group.as_ref().map(|g| g.pipe_stats())
    }
    pub fn keystore(&self) -> &KeyStore {
        &self.keys
    }
    pub fn buffer_pool(&self) -> &Arc<BufferPool> {
        &self.pool
    }

    /// Create a table.
    pub fn create_table(&self, schema: TableSchema) -> Result<Arc<Table>> {
        self.catalog
            .create_table(schema, self.pool.clone(), self.cfg.secure)
    }

    /// Durably commit a batch of log records: through the group-commit
    /// pipeline when enabled, else append + fsync inline. Returns the LSN
    /// of the batch's first record (`None` when logging is off).
    ///
    /// Acquires the shared side of `ckpt_gate` itself — callers whose
    /// page mutations must be covered by the same gate hold (the user
    /// ops) use [`Db::enqueue_records_gated`] under their own guard
    /// instead.
    fn commit_records(&self, records: Vec<LogRecord>) -> Result<Option<Lsn>> {
        self.enqueue_records(records)?.wait()
    }

    /// Hand a record batch to the durability path and return a
    /// [`CommitHandle`] — the single commit entry point regardless of
    /// whether the pipeline is on. Callers pick how to redeem it:
    /// [`CommitHandle::wait`] blocks to durability,
    /// [`CommitHandle::try_poll`] checks without blocking (the async
    /// server path). No caller needs to branch on
    /// [`DbConfig::group_commit`].
    ///
    /// Routing: one batch lands on one WAL shard (keyed by the batch's
    /// transaction id), so a transaction's records stay contiguous in
    /// its shard's byte stream while unrelated transactions drain and
    /// fsync on other shards in parallel.
    pub fn enqueue_records(&self, records: Vec<LogRecord>) -> Result<CommitHandle> {
        let _shared = self.ckpt_gate.read();
        self.enqueue_records_gated(records)
    }

    /// [`Db::enqueue_records`] for callers already holding `ckpt_gate`
    /// (either side). With the pipeline on this only *enqueues* — the
    /// fsync is awaited via [`CommitHandle::wait`] outside the gate,
    /// keeping committers parallel. Inline, it appends and fsyncs right
    /// here: releasing the gate between those two steps would let a
    /// checkpoint truncate the still-unsynced records and then
    /// acknowledge them anyway.
    fn enqueue_records_gated(&self, records: Vec<LogRecord>) -> Result<CommitHandle> {
        let Some(wal) = &self.wal else {
            return Ok(CommitHandle(HandleState::Off));
        };
        if records.is_empty() {
            return Ok(CommitHandle(HandleState::Off));
        }
        // Span-gated: with the pipeline this measures the enqueue alone;
        // inline it covers the whole append + fsync.
        let _submit = self.obs.span(Stage::CommitSubmit);
        let shard = wal.shard_for_batch(&records);
        match &self.group {
            Some(g) => Ok(CommitHandle(HandleState::Ticket(g.submit(shard, records)?))),
            None => {
                // Inline path: the append + fsync below *is* the commit's
                // durability wait, so time it as the ack latency (the
                // pipeline path records acks at ticket completion).
                let started = std::time::Instant::now();
                let lsn = wal.append_batch(shard, &records)?;
                wal.sync(shard)?;
                self.obs.commit_ack.record_duration(started.elapsed());
                Ok(CommitHandle(HandleState::Done(lsn)))
            }
        }
    }

    fn payload(&self, bytes: &[u8], now: Timestamp) -> Result<Payload> {
        match self.cfg.wal_mode {
            WalMode::Sealed => Payload::seal(&self.keys, now, bytes),
            _ => Ok(Payload::Plain(bytes.to_vec())),
        }
    }

    /// Insert a row (auto-commit). Degradable values must be at the most
    /// accurate domain state; they are stored at their LCP's first-stage
    /// level and their first transitions are armed.
    pub fn insert(&self, table_name: &str, row: &[Value]) -> Result<TupleId> {
        let table = self.catalog.get(table_name)?;
        table.schema().validate_insert(row)?;
        let now = self.now();
        let tx = self.txs.begin();
        tx.lock(Resource::Table(table.id()), LockMode::IntentionExclusive)?;
        // Gate held across mutation *and* enqueue: a checkpoint's
        // flush_all can then never persist this page write before its
        // log records exist in the pipeline (steal of an unlogged
        // mutation). The only lock taken inside the gate is on the
        // freshly allocated tuple id, which nothing else can contend.
        let (tid, stored, pending) = {
            let _shared = self.ckpt_gate.read();
            let tid = table.insert_physical(now, row)?;
            tx.lock(Resource::Tuple(table.id(), tid), LockMode::Exclusive)?;
            // WAL: the logged image is the *stored* tuple (already
            // generalized to the first stage level), so a coarse-ingest
            // table never logs the accurate form at all.
            let stored = table.get(tid)?;
            let bytes = encode_stored_raw(stored.insert_ts, &stored.stages, &stored.row);
            let pending = self.enqueue_records_gated(vec![
                LogRecord::Begin {
                    tx: tx.id(),
                    at: now,
                },
                LogRecord::Insert {
                    tx: tx.id(),
                    table: table.id(),
                    tid,
                    row: self.payload(&bytes, now)?,
                    at: now,
                },
                LogRecord::Commit {
                    tx: tx.id(),
                    at: now,
                },
            ])?;
            (tid, stored, pending)
        };
        pending.wait()?;
        tx.commit()?;
        self.arm_transitions(&table, tid, &stored);
        self.stats.inserts.fetch_add(1, Ordering::Relaxed);
        self.enforce_wal_retention();
        Ok(tid)
    }

    /// Arm the next pending transition for every degradable attribute of a
    /// tuple, from its stored stage bytes.
    fn arm_transitions(&self, table: &Table, tid: TupleId, stored: &StoredTuple) {
        let deg_cols = table.schema().degradable_columns();
        for (slot, cid) in deg_cols.iter().enumerate() {
            let Some(stage) = stored.stages.get(slot).copied().flatten() else {
                continue;
            };
            let d = table.schema().column(*cid).degrader().expect("degradable"); // lint:allow(L001, column from degradable_columns() always has a degrader)
            if let Some(due) = d.due_time(stored.insert_ts, stage as usize) {
                self.sched.schedule(PendingTransition {
                    due,
                    table: table.id(),
                    tid,
                    deg_slot: slot as u8,
                    from_stage: stage,
                });
            }
        }
    }

    /// Delete one tuple under a user transaction (executor path). Removes
    /// both stable and degradable attributes, physically.
    pub fn delete_tuple(&self, table: &Table, tid: TupleId) -> Result<()> {
        let now = self.now();
        let tx = self.txs.begin();
        tx.lock(Resource::Table(table.id()), LockMode::IntentionExclusive)?;
        tx.lock(Resource::Tuple(table.id(), tid), LockMode::Exclusive)?;
        if !table.exists(tid) {
            return Err(Error::NotFound(format!("tuple {tid}")));
        }
        // Locks are all held already; the gate covers mutation + enqueue
        // so a checkpoint flush can never persist an unlogged expunge.
        let pending = {
            let _shared = self.ckpt_gate.read();
            table.expunge_physical(tid)?;
            self.enqueue_records_gated(vec![
                LogRecord::Begin {
                    tx: tx.id(),
                    at: now,
                },
                LogRecord::Delete {
                    tx: tx.id(),
                    table: table.id(),
                    tid,
                    at: now,
                },
                LogRecord::Commit {
                    tx: tx.id(),
                    at: now,
                },
            ])?
        };
        pending.wait()?;
        tx.commit()?;
        self.stats.user_deletes.fetch_add(1, Ordering::Relaxed);
        self.enforce_wal_retention();
        Ok(())
    }

    /// Update a stable column of one tuple (degradable columns are
    /// immutable after commit, per Section II).
    pub fn update_stable(
        &self,
        table: &Table,
        tid: TupleId,
        cid: ColumnId,
        new_value: Value,
    ) -> Result<()> {
        let col = table.schema().column(cid);
        if col.is_degradable() {
            return Err(Error::Policy(format!(
                "column {} is degradable: updates are not granted after tuple creation",
                col.name
            )));
        }
        if !new_value.conforms_to(col.ty) {
            return Err(Error::Schema(format!(
                "column {} is {}, got {new_value}",
                col.name, col.ty
            )));
        }
        let now = self.now();
        let tx = self.txs.begin();
        tx.lock(Resource::Table(table.id()), LockMode::IntentionExclusive)?;
        tx.lock(Resource::Tuple(table.id(), tid), LockMode::Exclusive)?;
        // Locks are all held already; the gate covers mutation + enqueue
        // so a checkpoint flush can never persist an unlogged rewrite.
        let pending = {
            let _shared = self.ckpt_gate.read();
            let mut tuple = table.get(tid)?;
            let old_value = tuple.row[cid.0 as usize].clone();
            tuple.row[cid.0 as usize] = new_value.clone();
            table.rewrite_physical(tid, &tuple, &[], &[(cid, old_value, new_value)])?;
            let bytes = encode_stored_raw(tuple.insert_ts, &tuple.stages, &tuple.row);
            self.enqueue_records_gated(vec![
                LogRecord::Begin {
                    tx: tx.id(),
                    at: now,
                },
                LogRecord::Update {
                    tx: tx.id(),
                    table: table.id(),
                    tid,
                    row: self.payload(&bytes, now)?,
                    at: now,
                },
                LogRecord::Commit {
                    tx: tx.id(),
                    at: now,
                },
            ])?
        };
        pending.wait()?;
        tx.commit()?;
        self.stats.updates.fetch_add(1, Ordering::Relaxed);
        self.enforce_wal_retention();
        Ok(())
    }

    /// Read one tuple under a shared lock (reader path).
    pub fn read_tuple(&self, table: &Table, tid: TupleId) -> Result<StoredTuple> {
        let tx = self.txs.begin();
        tx.lock(Resource::Table(table.id()), LockMode::IntentionShared)?;
        tx.lock(Resource::Tuple(table.id(), tid), LockMode::Shared)?;
        let t = table.get(tid)?;
        tx.commit()?;
        Ok(t)
    }

    /// Execute every degradation transition due at the current clock time.
    /// Returns when the queue has no due work left.
    pub fn pump_degradation(&self) -> Result<PumpReport> {
        let mut total = PumpReport::default();
        loop {
            let r = self.pump_one_batch()?;
            total.fired += r.fired;
            total.expunged += r.expunged;
            total.deferred += r.deferred;
            if r.fired == 0 {
                return Ok(total);
            }
        }
    }

    /// Execute at most one batch of due transitions as a single system
    /// transaction.
    ///
    /// Unlike the user ops, the batch's page rewrites are *not* held
    /// under the checkpoint gate (the degrader takes tuple locks per
    /// transition and must never block while gating out a checkpoint).
    /// A checkpoint flush may therefore persist a degradation rewrite
    /// before its record is enqueued — which is safe *only* because
    /// degradation is monotone: recovering a further-degraded or
    /// expunged state than the log claims can never resurrect accuracy,
    /// and `rearm_all` re-arms from the stored stage bytes.
    pub fn pump_one_batch(&self) -> Result<PumpReport> {
        let now = self.now();
        let batch = self.sched.due_batch(now, self.cfg.batch_max);
        if batch.is_empty() {
            return Ok(PumpReport::default());
        }
        let mut report = PumpReport::default();
        let tx = self.txs.begin_system();
        // The batch's log records accumulate here and commit as one unit
        // through the pipeline (one ticket, one shared fsync).
        let mut recs: Vec<LogRecord> = Vec::new();
        for pt in batch {
            match self.apply_transition(&tx, &pt, now, &mut recs) {
                Ok(Applied::Stepped) => {
                    report.fired += 1;
                    self.sched.record_fired(pt.due, now);
                    self.stats.degrade_steps.fetch_add(1, Ordering::Relaxed);
                }
                Ok(Applied::Expunged) => {
                    report.fired += 1;
                    report.expunged += 1;
                    self.sched.record_fired(pt.due, now);
                    self.stats.degrade_steps.fetch_add(1, Ordering::Relaxed);
                    self.stats.expunges.fetch_add(1, Ordering::Relaxed);
                }
                Ok(Applied::Skipped) => {}
                Err(e) if e.is_retryable() => {
                    // A reader/writer holds the tuple: defer, retry next pump.
                    self.sched.schedule(pt);
                    report.deferred += 1;
                    self.stats
                        .degrader_lock_retries
                        .fetch_add(1, Ordering::Relaxed);
                }
                Err(e) => return Err(e),
            }
        }
        if !recs.is_empty() {
            recs.push(LogRecord::Commit {
                tx: tx.id(),
                at: now,
            });
            self.commit_records(recs)?;
            self.enforce_wal_retention();
        }
        tx.commit()?;
        Ok(report)
    }

    fn apply_transition(
        &self,
        tx: &TxHandle,
        pt: &PendingTransition,
        now: Timestamp,
        recs: &mut Vec<LogRecord>,
    ) -> Result<Applied> {
        let table = self.catalog.get_by_id(pt.table)?;
        tx.lock(Resource::Table(table.id()), LockMode::IntentionExclusive)?;
        tx.lock(Resource::Tuple(table.id(), pt.tid), LockMode::Exclusive)?;
        if !table.exists(pt.tid) {
            return Ok(Applied::Skipped); // deleted meanwhile
        }
        let mut tuple = table.get(pt.tid)?;
        let deg_cols = table.schema().degradable_columns();
        let slot = pt.deg_slot as usize;
        let cid = deg_cols[slot];
        match tuple.stages.get(slot).copied().flatten() {
            Some(stage) if stage == pt.from_stage => {}
            _ => return Ok(Applied::Skipped), // already advanced / removed
        }
        let d = table.schema().column(cid).degrader().expect("degradable"); // lint:allow(L001, column from degradable_columns() always has a degrader)
        let stages = d.lcp().stages();
        let old_level = stages[pt.from_stage as usize].level;
        let old_value = tuple.row[cid.0 as usize].clone();
        let tx_id = tx.id();
        let push_logged = |recs: &mut Vec<LogRecord>, rec: LogRecord| {
            if recs.is_empty() {
                recs.push(LogRecord::Begin { tx: tx_id, at: now });
            }
            recs.push(rec);
        };
        if let Some(next) = stages.get(pt.from_stage as usize + 1) {
            // Degrade one step.
            let new_value = d.hierarchy().generalize(&old_value, next.level)?;
            tuple.stages[slot] = Some(pt.from_stage + 1);
            tuple.row[cid.0 as usize] = new_value.clone();
            table.rewrite_physical(
                pt.tid,
                &tuple,
                &[(cid, old_level, old_value, Some((next.level, new_value)))],
                &[],
            )?;
            let bytes = encode_stored_raw(tuple.insert_ts, &tuple.stages, &tuple.row);
            push_logged(
                recs,
                LogRecord::Degrade {
                    tx: tx.id(),
                    table: table.id(),
                    tid: pt.tid,
                    column: cid,
                    to_level: Some(next.level),
                    row: self.payload(&bytes, now)?,
                    at: now,
                },
            );
            // Arm the next transition of this attribute.
            if let Some(due) = d.due_time(tuple.insert_ts, pt.from_stage as usize + 1) {
                self.sched.schedule(PendingTransition {
                    due,
                    table: table.id(),
                    tid: pt.tid,
                    deg_slot: pt.deg_slot,
                    from_stage: pt.from_stage + 1,
                });
            }
            Ok(Applied::Stepped)
        } else {
            // Final transition: remove the attribute value.
            tuple.stages[slot] = None;
            tuple.row[cid.0 as usize] = Value::Removed;
            if tuple.fully_degraded() {
                // Whole tuple leaves the database (stable attributes too).
                table.expunge_physical(pt.tid)?;
                push_logged(
                    recs,
                    LogRecord::Expunge {
                        tx: tx.id(),
                        table: table.id(),
                        tid: pt.tid,
                        at: now,
                    },
                );
                Ok(Applied::Expunged)
            } else {
                table.rewrite_physical(
                    pt.tid,
                    &tuple,
                    &[(cid, old_level, old_value, None)],
                    &[],
                )?;
                let bytes = encode_stored_raw(tuple.insert_ts, &tuple.stages, &tuple.row);
                push_logged(
                    recs,
                    LogRecord::Degrade {
                        tx: tx.id(),
                        table: table.id(),
                        tid: pt.tid,
                        column: cid,
                        to_level: None,
                        row: self.payload(&bytes, now)?,
                        at: now,
                    },
                );
                Ok(Applied::Stepped)
            }
        }
    }

    /// Checkpoint: flush → rotate the WAL segment → log Checkpoint →
    /// persist meta → shred key windows before the checkpoint → delete
    /// the dead log segments.
    ///
    /// Holds the exclusive side of `ckpt_gate` so no commit can enqueue
    /// between `flush_all` and the `Checkpoint` record: every record the
    /// truncation below destroys is therefore covered by the flush, and
    /// every record it retains replays from the checkpoint. (Without the
    /// gate, a commit acknowledged between flush and the checkpoint
    /// record would be physically truncated while its pages were still
    /// memory-only — lost on the next crash.) Conversely, because user
    /// ops mutate pages only while holding the shared side, this flush
    /// can never persist a half-done unlogged user operation.
    pub fn checkpoint(&self) -> Result<()> {
        let _serial = self.ckpt_serial.lock();
        // lint:allow(L102, ckpt_serial exists to serialize whole checkpoints including their flush and fsync)
        self.checkpoint_serial_held()
    }

    /// Checkpoint iff no other checkpoint is in flight; returns whether
    /// one ran. The retention enforcement below uses this so committers
    /// observing an over-cap log don't pile up behind one checkpoint.
    fn try_checkpoint(&self) -> Result<bool> {
        match self.ckpt_serial.try_lock() {
            Some(_serial) => {
                // lint:allow(L102, ckpt_serial exists to serialize whole checkpoints including their flush and fsync)
                self.checkpoint_serial_held()?;
                Ok(true)
            }
            None => Ok(false),
        }
    }

    /// [`Db::checkpoint`] body; caller holds `ckpt_serial`.
    fn checkpoint_serial_held(&self) -> Result<()> {
        let _t = self.obs.timed(Stage::Checkpoint);
        let ckpt_lsn = {
            let _excl = self.ckpt_gate.write();
            let now = self.now();
            // lint:allow(L102, the checkpoint flush must run under the gate's exclusive side so no user op mutates pages mid-flush)
            self.pool.flush_all()?;
            // Rotate every shard so the Checkpoint record starts a fresh
            // segment on its shard and everything before it lives in
            // wholly-dead segments the truncation below can delete
            // outright. (Pipeline batches already enqueued may still
            // drain after the rotate and land ahead of the Checkpoint
            // record in a fresh segment — their page writes were covered
            // by this flush, and replay starts after the checkpoint LSN,
            // so retaining them briefly is harmless; they die with the
            // next checkpoint.)
            if let Some(wal) = &self.wal {
                wal.rotate_all()?;
            }
            // The Checkpoint record rides the same unified commit path
            // as every other batch (shard 0 — it carries no transaction
            // id), so it can never land in the middle of another
            // committer's unsynced batch. We already hold the gate's
            // exclusive side, so use the gated enqueue rather than
            // re-entering the shared side; waiting here (still inside
            // the gate) is required — the meta write below must record
            // a state consistent with the durable checkpoint LSN.
            // lint:allow(L102, the checkpoint record must be appended and made durable while the gate is exclusively held so it cannot interleave with a committer's batch)
            let ckpt_lsn = self
                .enqueue_records_gated(vec![LogRecord::Checkpoint { at: now }])?
                .wait()?;
            // Shred + persist catalog meta (heap page lists + shredded
            // windows) still inside the gate: the page lists must match
            // the flush exactly — a page allocated by a commit racing in
            // here would be listed with unflushed content.
            let shredded = self.keys.shred_before(now);
            let _ = shredded;
            if let Some(p) = &self.cfg.path {
                let meta = self.render_meta();
                std::fs::write(with_ext(p, "meta"), meta)?;
            }
            ckpt_lsn
        };
        // Truncation deletes whole dead segments — O(segments freed)
        // unlinks, no retained byte rewritten — and runs after the gate
        // reopens: commits landing now get LSNs above `ckpt_lsn` and are
        // retained. The Wal lock is held only to splice the in-memory
        // segment list (the unlinks happen outside it), so appends,
        // fsyncs and therefore commit acknowledgments never stall behind
        // truncation I/O. `ckpt_serial` keeps a second checkpoint from
        // interleaving.
        if let (Some(wal), Some(lsn)) = (&self.wal, ckpt_lsn) {
            wal.truncate_before(lsn)?;
        }
        self.stats.checkpoints.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Enforce [`DbConfig::wal_retention_segments`]: if the live segment
    /// count exceeds the cap, force an early checkpoint (unless one is
    /// already running — its truncation will bring the count back down).
    /// Called at the end of every committed user/system operation, after
    /// the commit is acknowledged, so the cap holds under a write burst
    /// without any background daemon armed.
    ///
    /// Deliberately infallible from the caller's view: the operation this
    /// rides on is already committed and acknowledged, so a failing
    /// forced checkpoint must not convert that success into an error (a
    /// caller retrying the "failed" insert would apply it twice). The
    /// failure is counted in [`DbStats::forced_checkpoint_failures`] and
    /// will resurface on the next explicit/background checkpoint.
    fn enforce_wal_retention(&self) {
        let (Some(cap), Some(wal)) = (self.cfg.wal_retention_segments, &self.wal) else {
            return;
        };
        if wal.segment_stats().segments > cap.max(1) && self.try_checkpoint().is_err() {
            self.stats
                .forced_checkpoint_failures
                .fetch_add(1, Ordering::Relaxed);
        }
    }

    fn render_meta(&self) -> String {
        let mut out = String::new();
        let shredded: Vec<String> = self
            .keys
            .export_shredded()
            .iter()
            .map(|w| w.0.to_string())
            .collect();
        out.push_str(&format!("shredded {}\n", shredded.join(",")));
        for table in self.catalog.all_tables() {
            let pages: Vec<String> = table
                .heap()
                .page_ids()
                .iter()
                .map(|p| p.0.to_string())
                .collect();
            out.push_str(&format!(
                "table {} {} pages {}\n",
                table.schema().name,
                table.id().0,
                pages.join(",")
            ));
        }
        out
    }

    /// Reopen a crashed database: reattach heaps from the checkpoint meta,
    /// rebuild indexes, redo the committed WAL suffix, re-arm the scheduler.
    /// `schemas` must match the schemas at crash time (catalog DDL
    /// persistence is out of the reproduced scope — see DESIGN.md).
    pub fn recover_with_schemas(
        cfg: DbConfig,
        clock: SharedClock,
        schemas: Vec<TableSchema>,
    ) -> Result<Db> {
        let path = cfg
            .path
            .clone()
            .ok_or_else(|| Error::Unsupported("recovery needs a persistent path".into()))?;
        let db = Db::open(cfg, clock)?;
        let recovery_timer = db.obs.timed(Stage::Recovery);
        // 1. Reattach tables from meta.
        let meta = std::fs::read_to_string(with_ext(&path, "meta")).unwrap_or_default();
        let table_pages = parse_meta_tables(&meta);
        for schema in schemas {
            let key = schema.name.to_ascii_lowercase();
            match table_pages.get(&key) {
                Some((id, pages)) => {
                    let t = db.catalog.attach_table(
                        TableId(*id),
                        schema,
                        db.pool.clone(),
                        pages.iter().map(|p| instant_common::PageId(*p)).collect(),
                        db.cfg.secure,
                    )?;
                    t.rebuild_indexes()?;
                }
                None => {
                    // Table never checkpointed: starts empty, rebuilt from log.
                    db.create_table(schema)?;
                }
            }
        }
        // 2. Redo the committed suffix.
        if let Some(wal) = &db.wal {
            // The k-way merge behind `WalSet::iterate` re-serializes the
            // per-shard streams into global LSN order, so replay sees one
            // log exactly as it would have with a single shard.
            let plan = recovery::recover_set(wal, &db.keys)?;
            let mut remap: HashMap<(TableId, TupleId), TupleId> = HashMap::new();
            let mut replay_written: HashSet<(TableId, TupleId)> = HashSet::new();
            for op in &plan.ops {
                db.apply_recovery_op(op, &mut remap, &mut replay_written)?;
            }
        }
        // 3. Re-arm the scheduler from stored stage bytes.
        db.rearm_all()?;
        drop(recovery_timer);
        Ok(db)
    }

    /// Apply externally shipped recovery ops to this **live** database —
    /// the replication follower's apply path. `ops` is an LSN-tagged,
    /// LSN-ordered slice (usually `RecoveryPlan::ops` zipped with
    /// `RecoveryPlan::op_lsns` from `recovery::replay_all`); `state`
    /// carries the tid remap and the applied frontier across calls, so a
    /// follower can feed successive barrier-bounded slices of the same
    /// logical stream. Ops below `state.applied_upto` are skipped
    /// (already applied by an earlier call). Returns the number applied.
    ///
    /// When [`DbConfig::replica_degrade_to`] is `Some(s)`, every stored
    /// image is eagerly degraded through at least `s` transitions before
    /// it reaches the heap (a fully-degraded result becomes an expunge),
    /// and the stage floor is re-verified on the final image — a tuple
    /// more precise than stage `s` fails with [`Error::Policy`] instead
    /// of being written.
    pub fn replay_external_ops(
        &self,
        ops: &[(Lsn, Op)],
        state: &mut ReplicaApplyState,
    ) -> Result<u64> {
        let mut applied = 0u64;
        for (lsn, op) in ops {
            if *lsn < state.applied_upto {
                continue;
            }
            match self.cfg.replica_degrade_to {
                Some(stage) => {
                    let degraded = self.degrade_op_to_stage(op, stage)?;
                    self.apply_recovery_op(&degraded, &mut state.remap, &mut state.replay_written)?;
                }
                None => {
                    self.apply_recovery_op(op, &mut state.remap, &mut state.replay_written)?;
                }
            }
            state.applied_upto = lsn + 1;
            applied += 1;
        }
        Ok(applied)
    }

    /// Rewrite `op` so any stored image it carries sits at or past
    /// degradation stage `floor` in every degradable column (an image
    /// with nothing left becomes an [`Op::Expunge`]), then verify the
    /// floor actually holds. Ops without an image pass through.
    fn degrade_op_to_stage(&self, op: &Op, floor: u8) -> Result<Op> {
        let (row, at) = match op {
            Op::Insert { row, at, .. } | Op::Update { row, at, .. } => (row, *at),
            Op::Degrade { row, at, .. } => (row, *at),
            // Deletes/expunges/unrecoverables only ever *remove*
            // precision — nothing to degrade.
            Op::Delete { .. } | Op::Expunge { .. } | Op::Unrecoverable { .. } => {
                return Ok(op.clone())
            }
        };
        let table = self.catalog.get_by_id(op.table())?;
        let schema = table.schema();
        let deg_cols = schema.degradable_columns();
        let mut tuple = crate::tuple::decode_stored(row)?;
        for (slot, cid) in deg_cols.iter().enumerate() {
            let Some(mut stage) = tuple.stages.get(slot).copied().flatten() else {
                continue; // already removed — coarser than any floor
            };
            let d = schema.column(*cid).degrader().expect("degradable"); // lint:allow(L001, column from degradable_columns() always has a degrader)
            let stages = d.lcp().stages();
            while stage < floor {
                match stages.get(stage as usize + 1) {
                    Some(next) => {
                        let coarser = d
                            .hierarchy()
                            .generalize(&tuple.row[cid.0 as usize], next.level)?;
                        tuple.row[cid.0 as usize] = coarser;
                        stage += 1;
                        tuple.stages[slot] = Some(stage);
                    }
                    None => {
                        // The LCP ends before the floor: the value is
                        // removed outright (degrading past the last
                        // stage only ever loses information).
                        tuple.stages[slot] = None;
                        tuple.row[cid.0 as usize] = Value::Removed;
                        break;
                    }
                }
            }
        }
        self.check_replica_stage_floor(&table, &tuple, floor)?;
        if tuple.fully_degraded() {
            return Ok(Op::Expunge {
                table: op.table(),
                tid: op.tid(),
                at,
            });
        }
        let bytes = encode_stored_raw(tuple.insert_ts, &tuple.stages, &tuple.row);
        Ok(match op {
            Op::Insert { table, tid, at, .. } => Op::Insert {
                table: *table,
                tid: *tid,
                row: bytes,
                at: *at,
            },
            Op::Update { table, tid, at, .. } => Op::Update {
                table: *table,
                tid: *tid,
                row: bytes,
                at: *at,
            },
            Op::Degrade {
                table,
                tid,
                column,
                to_level,
                at,
                ..
            } => Op::Degrade {
                table: *table,
                tid: *tid,
                column: *column,
                to_level: *to_level,
                row: bytes,
                at: *at,
            },
            _ => unreachable!("image-less ops returned above"),
        })
    }

    /// The degraded-replica invariant: every degradable value of `tuple`
    /// is removed or at degradation stage ≥ `floor`. [`Error::Policy`]
    /// otherwise — the caller must refuse to write the image.
    fn check_replica_stage_floor(
        &self,
        table: &Table,
        tuple: &StoredTuple,
        floor: u8,
    ) -> Result<()> {
        let schema = table.schema();
        for (slot, cid) in schema.degradable_columns().iter().enumerate() {
            if let Some(stage) = tuple.stages.get(slot).copied().flatten() {
                if stage < floor {
                    return Err(Error::Policy(format!(
                        "degraded-replica invariant violated: column '{}' at stage {stage} \
                         is more precise than the declared floor {floor}",
                        schema.column(*cid).name
                    )));
                }
            }
        }
        Ok(())
    }

    fn apply_recovery_op(
        &self,
        op: &Op,
        remap: &mut HashMap<(TableId, TupleId), TupleId>,
        replay_written: &mut HashSet<(TableId, TupleId)>,
    ) -> Result<()> {
        let table = self.catalog.get_by_id(op.table())?;
        let mapped = |remap: &HashMap<(TableId, TupleId), TupleId>, tid: TupleId| {
            remap.get(&(table.id(), tid)).copied().unwrap_or(tid)
        };
        match op {
            Op::Insert { tid, row, at, .. } => {
                // Idempotence: if the logged tid already holds this exact
                // stored image *from the pre-crash heap*, the page
                // write-back beat the crash. Two guards keep distinct
                // commits from collapsing: the comparison covers the whole
                // stored image (with concurrent committers the log order
                // differs from tid-allocation order, so an earlier
                // replayed insert may occupy this tid with a different
                // tuple sharing the timestamp), and a tuple this replay
                // itself wrote is never treated as the flushed copy —
                // otherwise two acknowledged inserts of identical rows at
                // identical timestamps would merge into one.
                if table.exists(*tid) && !replay_written.contains(&(table.id(), *tid)) {
                    if let Ok(existing) = table.get(*tid) {
                        let existing_bytes =
                            encode_stored_raw(existing.insert_ts, &existing.stages, &existing.row);
                        if existing.insert_ts == *at && existing_bytes == *row {
                            return Ok(());
                        }
                    }
                }
                let new_tid = table.insert_raw_stored(row)?;
                replay_written.insert((table.id(), new_tid));
                if new_tid != *tid {
                    remap.insert((table.id(), *tid), new_tid);
                }
            }
            Op::Update { tid, row, .. } | Op::Degrade { tid, row, .. } => {
                let target = mapped(remap, *tid);
                let new = crate::tuple::decode_stored(row)?;
                if table.exists(target) {
                    table.replace_stored(target, &new)?;
                    replay_written.insert((table.id(), target));
                } else {
                    // Insert was lost/unrecoverable; the degraded image
                    // itself recreates the tuple at its coarser state.
                    let new_tid = table.insert_raw_stored(row)?;
                    replay_written.insert((table.id(), new_tid));
                    remap.insert((table.id(), *tid), new_tid);
                }
            }
            Op::Delete { tid, .. } | Op::Expunge { tid, .. } => {
                let target = mapped(remap, *tid);
                if table.exists(target) {
                    table.expunge_physical(target)?;
                }
            }
            Op::Unrecoverable { tid, .. } => {
                // The image is cryptographically erased. If a stale tuple
                // sits at that tid from the checkpoint, degradation had
                // already superseded it — drop it rather than resurrect.
                let target = mapped(remap, *tid);
                if table.exists(target) {
                    table.expunge_physical(target)?;
                }
            }
        }
        Ok(())
    }

    /// Re-arm pending transitions for every live tuple (post-recovery).
    pub fn rearm_all(&self) -> Result<()> {
        self.sched.clear();
        for table in self.catalog.all_tables() {
            for (tid, stored) in table.scan()? {
                self.arm_transitions(&table, tid, &stored);
            }
        }
        Ok(())
    }

    /// Vacuum every table; returns total bytes reclaimed.
    pub fn vacuum(&self) -> Result<usize> {
        let mut total = 0;
        for table in self.catalog.all_tables() {
            total += table.vacuum()?;
        }
        Ok(total)
    }

    /// Raw images of data file + WAL (the forensic attacker's view).
    pub fn forensic_images(&self) -> Result<Vec<(String, Vec<u8>)>> {
        let mut out = Vec::new();
        self.pool.flush_all()?;
        out.push(("heap".to_string(), self.pool.disk().raw_image()?));
        if let Some(wal) = &self.wal {
            out.push(("wal".to_string(), wal.raw_image()?));
        }
        Ok(out)
    }
}

enum Applied {
    Stepped,
    Expunged,
    Skipped,
}

/// A commit handed to the durability path but not yet awaited — the one
/// handle [`Db::enqueue_records`] returns no matter how the engine is
/// configured. Blocking callers redeem it with [`CommitHandle::wait`];
/// the async server path polls [`CommitHandle::try_poll`] between other
/// work and externalizes the commit only once its durability epoch has
/// fsynced. Callers never branch on [`DbConfig::group_commit`].
#[derive(Debug)]
pub struct CommitHandle(HandleState);

#[derive(Debug)]
enum HandleState {
    /// Logging off / nothing to write.
    Off,
    /// Inline path: already appended and fsynced at this LSN.
    Done(Lsn),
    /// Pipeline path: awaiting the covering epoch's fsync.
    Ticket(CommitTicket),
}

impl CommitHandle {
    /// Block until the batch is durable. Returns the LSN of its first
    /// record, or `None` when logging is off / the batch was empty.
    pub fn wait(self) -> Result<Option<Lsn>> {
        match self.0 {
            HandleState::Off => Ok(None),
            HandleState::Done(lsn) => Ok(Some(lsn)),
            HandleState::Ticket(t) => t.wait().map(Some),
        }
    }

    /// Non-blocking durability check: `None` while the covering epoch is
    /// still in flight, `Some(Ok(..))` once durable, `Some(Err(..))` if
    /// the drain failed. Does not consume the handle — poll until
    /// resolved, then discard (or [`CommitHandle::wait`] to finish
    /// blocking).
    pub fn try_poll(&self) -> Option<Result<Option<Lsn>>> {
        match &self.0 {
            HandleState::Off => Some(Ok(None)),
            HandleState::Done(lsn) => Some(Ok(Some(*lsn))),
            HandleState::Ticket(t) => t.try_poll().map(|r| r.map(Some)),
        }
    }
}

fn with_ext(p: &std::path::Path, ext: &str) -> PathBuf {
    let mut s = p.as_os_str().to_os_string();
    s.push(".");
    s.push(ext);
    PathBuf::from(s)
}

fn parse_meta_shredded(meta: &str) -> Vec<instant_wal::keystore::WindowId> {
    for line in meta.lines() {
        if let Some(rest) = line.strip_prefix("shredded ") {
            return rest
                .split(',')
                .filter_map(|s| s.trim().parse::<u64>().ok())
                .map(instant_wal::keystore::WindowId)
                .collect();
        }
    }
    Vec::new()
}

fn parse_meta_tables(meta: &str) -> HashMap<String, (u32, Vec<u32>)> {
    let mut out = HashMap::new();
    for line in meta.lines() {
        let mut parts = line.split_whitespace();
        if parts.next() != Some("table") {
            continue;
        }
        let (Some(name), Some(id), Some(kw), Some(pages)) =
            (parts.next(), parts.next(), parts.next(), parts.next())
        else {
            continue;
        };
        if kw != "pages" {
            continue;
        }
        let Ok(id) = id.parse::<u32>() else { continue };
        let pages: Vec<u32> = pages
            .split(',')
            .filter_map(|s| s.trim().parse::<u32>().ok())
            .collect();
        out.insert(name.to_ascii_lowercase(), (id, pages));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schema::Column;
    use instant_common::{DataType, Duration, LevelId, MockClock};
    use instant_lcp::gtree::location_tree_fig1;
    use instant_lcp::hierarchy::Hierarchy;
    use instant_lcp::AttributeLcp;

    fn schema() -> TableSchema {
        let gt: Arc<dyn Hierarchy> = Arc::new(location_tree_fig1());
        TableSchema::new(
            "person",
            vec![
                Column::stable("id", DataType::Int).with_index(),
                Column::degradable("location", DataType::Str, gt, AttributeLcp::fig2_location())
                    .unwrap()
                    .with_index(),
            ],
        )
        .unwrap()
    }

    fn fresh(clock: &MockClock) -> Db {
        let db = Db::open(DbConfig::default(), clock.shared()).unwrap();
        db.create_table(schema()).unwrap();
        db
    }

    fn row(id: i64, addr: &str) -> Vec<Value> {
        vec![Value::Int(id), Value::Str(addr.into())]
    }

    #[test]
    fn insert_arms_first_transition() {
        let clock = MockClock::new();
        let db = fresh(&clock);
        db.insert("person", &row(1, "4 rue Jussieu")).unwrap();
        assert_eq!(db.scheduler().len(), 1);
        assert_eq!(
            db.scheduler().next_due(),
            Some(Timestamp::ZERO + Duration::hours(1))
        );
        assert_eq!(db.stats().inserts.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn degradation_follows_fig2() {
        let clock = MockClock::new();
        let db = fresh(&clock);
        let table = db.catalog().get("person").unwrap();
        let tid = db.insert("person", &row(1, "4 rue Jussieu")).unwrap();

        clock.advance(Duration::hours(2));
        let r = db.pump_degradation().unwrap();
        assert_eq!(r.fired, 1);
        assert_eq!(table.get(tid).unwrap().row[1], Value::Str("Paris".into()));

        clock.advance(Duration::days(2));
        db.pump_degradation().unwrap();
        assert_eq!(
            table.get(tid).unwrap().row[1],
            Value::Str("Ile-de-France".into())
        );

        clock.advance(Duration::months(1));
        db.pump_degradation().unwrap();
        assert_eq!(table.get(tid).unwrap().row[1], Value::Str("France".into()));

        // Final month: the whole tuple (stable id included) is expunged.
        clock.advance(Duration::months(2));
        let r = db.pump_degradation().unwrap();
        assert_eq!(r.expunged, 1);
        assert!(!table.exists(tid));
        assert_eq!(table.live_count().unwrap(), 0);
        assert!(db.scheduler().is_empty());
    }

    #[test]
    fn pump_without_due_work_is_noop() {
        let clock = MockClock::new();
        let db = fresh(&clock);
        db.insert("person", &row(1, "4 rue Jussieu")).unwrap();
        let r = db.pump_degradation().unwrap();
        assert_eq!(r, PumpReport::default());
    }

    #[test]
    fn reader_defers_degrader() {
        let clock = MockClock::new();
        let db = fresh(&clock);
        let table = db.catalog().get("person").unwrap();
        let tid = db.insert("person", &row(1, "4 rue Jussieu")).unwrap();
        clock.advance(Duration::hours(2));
        // An old reader holds a shared lock on the tuple.
        let reader = db.tx_manager().begin();
        reader
            .lock(Resource::Tuple(table.id(), tid), LockMode::Shared)
            .unwrap();
        let r = db.pump_one_batch().unwrap();
        assert_eq!(r.deferred, 1);
        assert_eq!(r.fired, 0);
        // Value unchanged while the reader is active.
        assert_eq!(
            table.get(tid).unwrap().row[1],
            Value::Str("4 rue Jussieu".into())
        );
        reader.commit().unwrap();
        let r2 = db.pump_degradation().unwrap();
        assert_eq!(r2.fired, 1);
        assert_eq!(db.stats().degrader_lock_retries.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn user_delete_cancels_pending_degradation() {
        let clock = MockClock::new();
        let db = fresh(&clock);
        let table = db.catalog().get("person").unwrap();
        let tid = db.insert("person", &row(1, "4 rue Jussieu")).unwrap();
        db.delete_tuple(&table, tid).unwrap();
        clock.advance(Duration::days(400));
        let r = db.pump_degradation().unwrap();
        assert_eq!(r.fired, 0, "transition on deleted tuple is skipped");
    }

    #[test]
    fn stable_update_allowed_degradable_rejected() {
        let clock = MockClock::new();
        let db = fresh(&clock);
        let table = db.catalog().get("person").unwrap();
        let tid = db.insert("person", &row(1, "4 rue Jussieu")).unwrap();
        db.update_stable(&table, tid, ColumnId(0), Value::Int(99))
            .unwrap();
        assert_eq!(table.get(tid).unwrap().row[0], Value::Int(99));
        let err = db
            .update_stable(&table, tid, ColumnId(1), Value::Str("Paris".into()))
            .unwrap_err();
        assert!(matches!(err, Error::Policy(_)));
    }

    #[test]
    fn wal_records_are_written_and_sealed() {
        let clock = MockClock::new();
        let db = fresh(&clock);
        db.insert("person", &row(1, "4 rue Jussieu")).unwrap();
        let records = db.wal().unwrap().iterate().unwrap();
        assert_eq!(records.len(), 3); // Begin, Insert, Commit
        match &records[1].1 {
            LogRecord::Insert { row, .. } => assert!(row.is_sealed()),
            other => panic!("expected Insert, got {other:?}"),
        }
    }

    #[test]
    fn plain_wal_leaks_sealed_wal_hides() {
        let clock = MockClock::new();
        let mk = |mode| {
            let db = Db::open(
                DbConfig {
                    wal_mode: mode,
                    ..DbConfig::default()
                },
                clock.shared(),
            )
            .unwrap();
            db.create_table(schema()).unwrap();
            db.insert("person", &row(1, "4 rue Jussieu")).unwrap();
            let img = db.wal().unwrap().raw_image().unwrap();
            img.windows(b"4 rue Jussieu".len())
                .any(|w| w == b"4 rue Jussieu")
        };
        assert!(mk(WalMode::Plain), "plain WAL must contain the address");
        assert!(!mk(WalMode::Sealed), "sealed WAL must not");
    }

    #[test]
    fn checkpoint_truncates_and_shreds() {
        let clock = MockClock::new();
        let db = fresh(&clock);
        db.insert("person", &row(1, "4 rue Jussieu")).unwrap();
        clock.advance(Duration::hours(3));
        db.checkpoint().unwrap();
        // Everything before the checkpoint is physically gone; the
        // checkpoint record itself is the new log head.
        let records = db.wal().unwrap().iterate().unwrap();
        assert_eq!(records.len(), 1);
        assert!(matches!(records[0].1, LogRecord::Checkpoint { .. }));
        // Keys for pre-checkpoint windows are gone.
        assert!(db.keystore().shredded_count() >= 1);
        assert_eq!(db.stats().checkpoints.load(Ordering::Relaxed), 1);
    }

    #[test]
    fn exact_level_index_follows_degradation() {
        let clock = MockClock::new();
        let db = fresh(&clock);
        let table = db.catalog().get("person").unwrap();
        for i in 0..10 {
            db.insert("person", &row(i, "4 rue Jussieu")).unwrap();
        }
        assert_eq!(
            table.index_occupancy(ColumnId(1)).unwrap(),
            vec![10, 0, 0, 0]
        );
        clock.advance(Duration::hours(2));
        db.pump_degradation().unwrap();
        assert_eq!(
            table.index_occupancy(ColumnId(1)).unwrap(),
            vec![0, 10, 0, 0]
        );
        assert_eq!(
            table
                .index_probe_deg(ColumnId(1), LevelId(1), &Value::Str("Paris".into()))
                .unwrap()
                .len(),
            10
        );
    }

    #[test]
    fn recovery_restores_committed_state() {
        let dir = std::env::temp_dir().join(format!("instantdb-rec-{}", std::process::id()));
        for f in ["idb", "wal", "meta"] {
            let _ = std::fs::remove_file(with_ext(&dir, f));
            let _ = std::fs::remove_dir_all(with_ext(&dir, f));
        }
        let clock = MockClock::new();
        let cfg = DbConfig {
            path: Some(dir.clone()),
            ..DbConfig::default()
        };
        {
            let db = Db::open(cfg.clone(), clock.shared()).unwrap();
            db.create_table(schema()).unwrap();
            db.insert("person", &row(1, "4 rue Jussieu")).unwrap();
            db.checkpoint().unwrap();
            db.insert("person", &row(2, "Drienerlolaan 5")).unwrap();
            // Crash: drop without checkpoint — dirty pages may be lost.
            drop(db);
        }
        clock.advance(Duration::minutes(1));
        let db = Db::recover_with_schemas(cfg, clock.shared(), vec![schema()]).unwrap();
        let table = db.catalog().get("person").unwrap();
        assert_eq!(
            table.live_count().unwrap(),
            2,
            "both committed inserts live"
        );
        // Scheduler re-armed for both tuples.
        assert_eq!(db.scheduler().len(), 2);
        for f in ["idb", "wal", "meta"] {
            let _ = std::fs::remove_file(with_ext(&dir, f));
            let _ = std::fs::remove_dir_all(with_ext(&dir, f));
        }
    }

    #[test]
    fn recovery_does_not_resurrect_degraded_state() {
        let dir = std::env::temp_dir().join(format!("instantdb-rec2-{}", std::process::id()));
        for f in ["idb", "wal", "meta"] {
            let _ = std::fs::remove_file(with_ext(&dir, f));
            let _ = std::fs::remove_dir_all(with_ext(&dir, f));
        }
        let clock = MockClock::new();
        let cfg = DbConfig {
            path: Some(dir.clone()),
            ..DbConfig::default()
        };
        let tid;
        {
            let db = Db::open(cfg.clone(), clock.shared()).unwrap();
            db.create_table(schema()).unwrap();
            tid = db.insert("person", &row(1, "4 rue Jussieu")).unwrap();
            clock.advance(Duration::hours(2));
            db.pump_degradation().unwrap(); // → Paris
            drop(db); // crash
        }
        let db = Db::recover_with_schemas(cfg, clock.shared(), vec![schema()]).unwrap();
        let table = db.catalog().get("person").unwrap();
        let tuples = table.scan().unwrap();
        assert_eq!(tuples.len(), 1);
        let (new_tid, t) = &tuples[0];
        assert_eq!(
            t.row[1],
            Value::Str("Paris".into()),
            "recovered at the degraded state, never the accurate one"
        );
        assert_eq!(t.stages[0], Some(1));
        let _ = (tid, new_tid);
        for f in ["idb", "wal", "meta"] {
            let _ = std::fs::remove_file(with_ext(&dir, f));
            let _ = std::fs::remove_dir_all(with_ext(&dir, f));
        }
    }

    #[test]
    fn forensic_secure_db_holds_no_preimage_after_degrade_and_checkpoint() {
        let clock = MockClock::new();
        let db = fresh(&clock);
        db.insert("person", &row(1, "Drienerlolaan 5")).unwrap();
        clock.advance(Duration::hours(2));
        db.pump_degradation().unwrap();
        db.checkpoint().unwrap(); // truncates WAL + shreds keys
        let needle = b"Drienerlolaan 5";
        for (name, img) in db.forensic_images().unwrap() {
            assert!(
                !img.windows(needle.len()).any(|w| w == needle),
                "accurate address recoverable from {name} image"
            );
        }
    }

    #[test]
    fn batched_pump_respects_batch_max() {
        let clock = MockClock::new();
        let db = Db::open(
            DbConfig {
                batch_max: 3,
                ..DbConfig::default()
            },
            clock.shared(),
        )
        .unwrap();
        db.create_table(schema()).unwrap();
        for i in 0..10 {
            db.insert("person", &row(i, "4 rue Jussieu")).unwrap();
        }
        clock.advance(Duration::hours(2));
        let r1 = db.pump_one_batch().unwrap();
        assert_eq!(r1.fired, 3);
        let total = db.pump_degradation().unwrap();
        assert_eq!(total.fired, 7);
    }

    #[test]
    fn wal_retention_cap_holds_under_write_burst() {
        let clock = MockClock::new();
        let cap = 3u64;
        let db = Db::open(
            DbConfig {
                // Minimum-size segments rotate constantly; without the
                // retention cap a 400-insert burst accumulates dozens of
                // live segment files (verified by the control run below).
                // One WAL shard: the cap counts segments summed across
                // shards and every shard keeps one active segment, so
                // the `cap + 1` overshoot bound is a single-shard
                // property.
                wal_shards: 1,
                wal_segment_bytes: 1,
                wal_retention_segments: Some(cap),
                ..DbConfig::default()
            },
            clock.shared(),
        )
        .unwrap();
        db.create_table(schema()).unwrap();
        for i in 0..400 {
            db.insert("person", &row(i, "4 rue Jussieu")).unwrap();
            // One insert appends 3 small records and can rotate at most
            // once, so right after enforcement the cap can be overshot by
            // at most the segment the records landed in.
            let segs = db.wal().unwrap().segment_stats().segments;
            assert!(segs <= cap + 1, "live segments {segs} exceed cap {cap}");
        }
        let forced = db.stats().checkpoints.load(Ordering::Relaxed);
        assert!(
            forced >= 2,
            "the cap must have forced early checkpoints, got {forced}"
        );

        // Control: the identical burst without the cap really does grow the
        // segment population past it (i.e. the assertion above has teeth).
        let db2 = Db::open(
            DbConfig {
                wal_shards: 1,
                wal_segment_bytes: 1,
                wal_retention_segments: None,
                ..DbConfig::default()
            },
            clock.shared(),
        )
        .unwrap();
        db2.create_table(schema()).unwrap();
        for i in 0..400 {
            db2.insert("person", &row(i, "4 rue Jussieu")).unwrap();
        }
        assert!(
            db2.wal().unwrap().segment_stats().segments > cap + 1,
            "control run without the cap should exceed it"
        );
        assert_eq!(db2.stats().checkpoints.load(Ordering::Relaxed), 0);
    }

    #[test]
    fn lateness_recorded() {
        let clock = MockClock::new();
        let db = fresh(&clock);
        db.insert("person", &row(1, "4 rue Jussieu")).unwrap();
        // Pump 30 minutes late.
        clock.advance(Duration::hours(1) + Duration::minutes(30));
        db.pump_degradation().unwrap();
        let h = db.scheduler().lateness();
        assert_eq!(h.count(), 1);
        assert!(h.max() >= Duration::minutes(30));
    }
}
