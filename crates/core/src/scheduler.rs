//! The degradation scheduler: *timely* enforcement (paper Section III,
//! "How to enforce timely data degradation?").
//!
//! Every degradable attribute of every live tuple has exactly one pending
//! transition in the due-time priority queue. [`DegradationScheduler::due_batch`]
//! pops the transitions whose time has come; the engine executes them as a
//! system transaction and re-arms the next transition for each attribute.
//! Lateness (actual − due) is recorded in a log₂ histogram — experiment E7
//! reports its p50/p99/max against scheduler tick and batch size.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use parking_lot::Mutex;

use instant_common::{Duration, TableId, Timestamp, TupleId};

/// One scheduled attribute transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingTransition {
    pub due: Timestamp,
    pub table: TableId,
    pub tid: TupleId,
    /// Index into the table's degradable-column list (not the column id).
    pub deg_slot: u8,
    /// The LCP stage being *left* when this fires.
    pub from_stage: u8,
}

impl Ord for PendingTransition {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (
            self.due,
            self.table,
            self.tid,
            self.deg_slot,
            self.from_stage,
        )
            .cmp(&(
                other.due,
                other.table,
                other.tid,
                other.deg_slot,
                other.from_stage,
            ))
    }
}

impl PartialOrd for PendingTransition {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

/// Log₂-bucketed latency histogram (microseconds).
#[derive(Debug, Clone)]
pub struct LatenessHistogram {
    buckets: [u64; 64],
    count: u64,
    sum_micros: u128,
    max_micros: u64,
}

impl Default for LatenessHistogram {
    fn default() -> Self {
        LatenessHistogram {
            buckets: [0; 64],
            count: 0,
            sum_micros: 0,
            max_micros: 0,
        }
    }
}

impl LatenessHistogram {
    pub fn record(&mut self, d: Duration) {
        let us = d.as_micros();
        let bucket = if us == 0 {
            0
        } else {
            64 - us.leading_zeros() as usize
        };
        self.buckets[bucket.min(63)] += 1;
        self.count += 1;
        self.sum_micros += us as u128;
        self.max_micros = self.max_micros.max(us);
    }

    pub fn count(&self) -> u64 {
        self.count
    }

    pub fn max(&self) -> Duration {
        Duration::micros(self.max_micros)
    }

    pub fn mean(&self) -> Duration {
        if self.count == 0 {
            Duration::ZERO
        } else {
            Duration::micros((self.sum_micros / self.count as u128) as u64)
        }
    }

    /// Approximate quantile (upper bound of the containing bucket).
    pub fn quantile(&self, q: f64) -> Duration {
        if self.count == 0 {
            return Duration::ZERO;
        }
        let target = (q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64;
        let mut acc = 0u64;
        for (i, b) in self.buckets.iter().enumerate() {
            acc += b;
            if acc >= target.max(1) {
                // Bucket upper bound, clamped to the observed maximum so a
                // single large bucket never reports beyond reality.
                let upper = if i == 0 { 0 } else { 1u64 << i };
                return Duration::micros(upper.min(self.max_micros));
            }
        }
        self.max()
    }
}

/// The due-time priority queue plus lateness accounting.
#[derive(Debug)]
pub struct DegradationScheduler {
    queue: Mutex<BinaryHeap<Reverse<PendingTransition>>>, // lock-rank: 350
    lateness: Mutex<LatenessHistogram>,                   // lock-rank: 360
    fired: std::sync::atomic::AtomicU64,
}

impl Default for DegradationScheduler {
    fn default() -> DegradationScheduler {
        DegradationScheduler {
            queue: Mutex::ranked(350, BinaryHeap::new()),
            lateness: Mutex::ranked(360, LatenessHistogram::default()),
            fired: std::sync::atomic::AtomicU64::new(0),
        }
    }
}

impl DegradationScheduler {
    pub fn new() -> DegradationScheduler {
        DegradationScheduler::default()
    }

    /// Arm a transition.
    pub fn schedule(&self, pt: PendingTransition) {
        self.queue.lock().push(Reverse(pt));
    }

    /// Pending transitions count.
    pub fn len(&self) -> usize {
        self.queue.lock().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The earliest due time, if any (lets callers sleep precisely).
    pub fn next_due(&self) -> Option<Timestamp> {
        self.queue.lock().peek().map(|Reverse(pt)| pt.due)
    }

    /// Pop every transition due at or before `now`, up to `max` (0 = all).
    pub fn due_batch(&self, now: Timestamp, max: usize) -> Vec<PendingTransition> {
        let mut q = self.queue.lock();
        let mut out = Vec::new();
        while let Some(Reverse(pt)) = q.peek() {
            if pt.due > now {
                break;
            }
            if max != 0 && out.len() >= max {
                break;
            }
            out.push(q.pop().expect("peeked").0); // lint:allow(L001, peek() returned Some in the loop condition)
        }
        out
    }

    /// Record the lateness of an executed transition.
    pub fn record_fired(&self, due: Timestamp, executed_at: Timestamp) {
        self.lateness.lock().record(executed_at.since(due));
        self.fired
            .fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    }

    /// Transitions executed so far.
    pub fn fired(&self) -> u64 {
        self.fired.load(std::sync::atomic::Ordering::Relaxed)
    }

    /// Snapshot of the lateness histogram.
    pub fn lateness(&self) -> LatenessHistogram {
        self.lateness.lock().clone()
    }

    /// Drop every pending transition (recovery rebuilds from the heap).
    pub fn clear(&self) {
        self.queue.lock().clear();
    }

    /// Degradation-timeliness lag: how far past due the *oldest* pending
    /// transition is at `now` (zero when nothing is overdue). The paper's
    /// timeliness guarantee is exactly "this stays near zero".
    pub fn overdue_lag(&self, now: Timestamp) -> Duration {
        match self.next_due() {
            Some(due) if due <= now => now.since(due),
            _ => Duration::ZERO,
        }
    }

    /// Per-stage overdue lag: for each LCP stage with at least one overdue
    /// transition, the worst (oldest) lag at `now`. Walks the whole heap
    /// under the queue lock — stats-path only, never on the commit path.
    pub fn overdue_lag_by_stage(&self, now: Timestamp) -> Vec<(u8, Duration)> {
        let q = self.queue.lock();
        let mut worst: std::collections::BTreeMap<u8, Duration> = std::collections::BTreeMap::new();
        for Reverse(pt) in q.iter() {
            if pt.due <= now {
                let lag = now.since(pt.due);
                let e = worst.entry(pt.from_stage).or_insert(Duration::ZERO);
                if lag > *e {
                    *e = lag;
                }
            }
        }
        worst.into_iter().collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(due_us: u64, slot: u8) -> PendingTransition {
        PendingTransition {
            due: Timestamp::micros(due_us),
            table: TableId(1),
            tid: TupleId::new(1, slot as u16),
            deg_slot: slot,
            from_stage: 0,
        }
    }

    #[test]
    fn pops_in_due_order() {
        let s = DegradationScheduler::new();
        s.schedule(pt(300, 0));
        s.schedule(pt(100, 1));
        s.schedule(pt(200, 2));
        let batch = s.due_batch(Timestamp::micros(1000), 0);
        let dues: Vec<u64> = batch.iter().map(|p| p.due.0).collect();
        assert_eq!(dues, vec![100, 200, 300]);
        assert!(s.is_empty());
    }

    #[test]
    fn respects_now_boundary() {
        let s = DegradationScheduler::new();
        s.schedule(pt(100, 0));
        s.schedule(pt(200, 1));
        let batch = s.due_batch(Timestamp::micros(150), 0);
        assert_eq!(batch.len(), 1);
        assert_eq!(s.len(), 1);
        assert_eq!(s.next_due(), Some(Timestamp::micros(200)));
        // Exactly at the boundary fires.
        let batch2 = s.due_batch(Timestamp::micros(200), 0);
        assert_eq!(batch2.len(), 1);
    }

    #[test]
    fn batch_size_cap() {
        let s = DegradationScheduler::new();
        for i in 0..10 {
            s.schedule(pt(i, i as u8));
        }
        let batch = s.due_batch(Timestamp::micros(1000), 4);
        assert_eq!(batch.len(), 4);
        assert_eq!(s.len(), 6);
    }

    #[test]
    fn lateness_recording_and_quantiles() {
        let s = DegradationScheduler::new();
        for lateness_us in [1u64, 10, 100, 1000, 10_000] {
            s.record_fired(Timestamp::micros(0), Timestamp::micros(lateness_us));
        }
        let h = s.lateness();
        assert_eq!(h.count(), 5);
        assert_eq!(h.max(), Duration::micros(10_000));
        assert!(h.mean() >= Duration::micros(2000));
        assert!(h.quantile(0.5) <= h.quantile(0.99));
        assert!(h.quantile(1.0) >= Duration::micros(8192));
        assert_eq!(s.fired(), 5);
    }

    #[test]
    fn zero_lateness_goes_to_bucket_zero() {
        let mut h = LatenessHistogram::default();
        h.record(Duration::ZERO);
        assert_eq!(h.count(), 1);
        assert_eq!(h.quantile(0.5), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
    }

    #[test]
    fn empty_histogram_quantiles() {
        let h = LatenessHistogram::default();
        assert_eq!(h.quantile(0.99), Duration::ZERO);
        assert_eq!(h.mean(), Duration::ZERO);
        assert_eq!(h.max(), Duration::ZERO);
    }

    #[test]
    fn clear_empties_queue() {
        let s = DegradationScheduler::new();
        s.schedule(pt(1, 0));
        s.clear();
        assert!(s.is_empty());
        assert_eq!(s.next_due(), None);
    }

    #[test]
    fn overdue_lag_overall_and_per_stage() {
        let s = DegradationScheduler::new();
        // Empty queue: nothing is overdue.
        assert_eq!(s.overdue_lag(Timestamp::micros(500)), Duration::ZERO);
        assert!(s.overdue_lag_by_stage(Timestamp::micros(500)).is_empty());

        s.schedule(PendingTransition {
            from_stage: 0,
            ..pt(100, 0)
        });
        s.schedule(PendingTransition {
            from_stage: 1,
            ..pt(300, 1)
        });
        s.schedule(PendingTransition {
            from_stage: 1,
            ..pt(900, 2)
        });

        // Before anything is due, lag is zero.
        assert_eq!(s.overdue_lag(Timestamp::micros(50)), Duration::ZERO);
        // At t=400 both stage-0 (due 100) and stage-1 (due 300) are late;
        // the overall lag is the oldest one.
        assert_eq!(s.overdue_lag(Timestamp::micros(400)), Duration::micros(300));
        let by_stage = s.overdue_lag_by_stage(Timestamp::micros(400));
        assert_eq!(
            by_stage,
            vec![(0, Duration::micros(300)), (1, Duration::micros(100)),]
        );
        // The t=900 transition isn't overdue yet and contributes nothing.
        assert!(by_stage
            .iter()
            .all(|(_, lag)| *lag <= Duration::micros(300)));
    }

    #[test]
    fn ties_break_deterministically() {
        let s = DegradationScheduler::new();
        s.schedule(pt(100, 2));
        s.schedule(pt(100, 1));
        s.schedule(pt(100, 0));
        let batch = s.due_batch(Timestamp::micros(100), 0);
        let slots: Vec<u8> = batch.iter().map(|p| p.deg_slot).collect();
        assert_eq!(slots, vec![0, 1, 2]);
    }
}
