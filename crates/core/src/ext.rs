//! Section IV extensions ("other forms of data degradation make sense and
//! could be the target of future work").
//!
//! The paper names four: event-triggered transitions, predicate-conditioned
//! transitions, user-defined (per-donor) LCPs, and relaxed query semantics.
//! Relaxed semantics live in the executor
//! ([`crate::query::session::QuerySemantics::Relaxed`]); this module
//! provides the other three:
//!
//! * [`force_degrade`] — fire a tuple's next transition *now* (the
//!   database-trigger analogue: e.g. "degrade on account closure").
//! * [`degrade_where`] — predicate-conditioned degradation: advance every
//!   tuple matching a condition on its *stored* state.
//! * [`per_user_tables`] — the per-donor-LCP pattern: "paranoid" users'
//!   data routes to a table with an accelerated LCP. The helper builds the
//!   table family; routing is a lookup.

use std::collections::HashMap;
use std::sync::Arc;

use instant_common::{Result, TupleId, Value};
use instant_lcp::hierarchy::Hierarchy;
use instant_lcp::AttributeLcp;

use crate::catalog::Table;
use crate::db::Db;
use crate::scheduler::PendingTransition;
use crate::schema::TableSchema;
use crate::tuple::StoredTuple;

/// Fire the next pending transition of every degradable attribute of `tid`
/// immediately (event-triggered degradation). Returns the number of
/// attribute transitions executed.
pub fn force_degrade(db: &Db, table: &Arc<Table>, tid: TupleId) -> Result<usize> {
    if !table.exists(tid) {
        return Ok(0);
    }
    let tuple = table.get(tid)?;
    let mut fired = 0;
    for (slot, _cid) in table.schema().degradable_columns().iter().enumerate() {
        if let Some(stage) = tuple.stages.get(slot).copied().flatten() {
            // Re-arm this attribute as due immediately; the pump executes it
            // under the normal system-transaction machinery (locks, WAL,
            // secure rewrite), so event-triggered steps inherit every
            // guarantee of time-triggered ones.
            db.scheduler().schedule(PendingTransition {
                due: db.now(),
                table: table.id(),
                tid,
                deg_slot: slot as u8,
                from_stage: stage,
            });
            fired += 1;
        }
    }
    if fired > 0 {
        db.pump_degradation()?;
    }
    Ok(fired)
}

/// Predicate-conditioned degradation: advance every tuple whose *stored*
/// state matches `condition` by one step on every live attribute. Returns
/// the number of tuples advanced.
pub fn degrade_where(
    db: &Db,
    table: &Arc<Table>,
    condition: impl Fn(&StoredTuple) -> bool,
) -> Result<usize> {
    let mut advanced = 0;
    for (tid, tuple) in table.scan()? {
        if condition(&tuple) && force_degrade(db, table, tid)? > 0 {
            advanced += 1;
        }
    }
    Ok(advanced)
}

/// Privacy classes for per-donor LCPs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PrivacyClass {
    /// Default LCP.
    Standard,
    /// Accelerated LCP (shorter retentions).
    Paranoid,
}

/// Build the per-user-class table family: one table per class, identical
/// shape, different LCPs. Returns `class → table name` for routing.
pub fn per_user_tables(
    db: &Db,
    base_name: &str,
    hierarchy: Arc<dyn Hierarchy>,
    standard: AttributeLcp,
    paranoid: AttributeLcp,
) -> Result<HashMap<PrivacyClass, String>> {
    let mut map = HashMap::new();
    for (class, suffix, lcp) in [
        (PrivacyClass::Standard, "standard", standard),
        (PrivacyClass::Paranoid, "paranoid", paranoid),
    ] {
        let name = format!("{base_name}_{suffix}");
        let schema = TableSchema::new(
            &name,
            vec![
                crate::schema::Column::stable("id", instant_common::DataType::Int).with_index(),
                crate::schema::Column::degradable(
                    "location",
                    instant_common::DataType::Str,
                    hierarchy.clone(),
                    lcp,
                )?
                .with_index(),
            ],
        )?;
        db.create_table(schema)?;
        map.insert(class, name);
    }
    Ok(map)
}

/// Route an insert to the class's table.
pub fn insert_for_class(
    db: &Db,
    routes: &HashMap<PrivacyClass, String>,
    class: PrivacyClass,
    row: &[Value],
) -> Result<TupleId> {
    let table = routes
        .get(&class)
        .ok_or_else(|| instant_common::Error::NotFound(format!("class {class:?}")))?;
    db.insert(table, row)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DbConfig;
    use crate::schema::Column;
    use instant_common::{DataType, Duration, MockClock};
    use instant_lcp::gtree::location_tree_fig1;

    fn setup() -> (MockClock, Db) {
        let clock = MockClock::new();
        let db = Db::open(DbConfig::default(), clock.shared()).unwrap();
        let gt: Arc<dyn Hierarchy> = Arc::new(location_tree_fig1());
        db.create_table(
            TableSchema::new(
                "person",
                vec![
                    Column::stable("id", DataType::Int).with_index(),
                    Column::degradable(
                        "location",
                        DataType::Str,
                        gt,
                        AttributeLcp::fig2_location(),
                    )
                    .unwrap()
                    .with_index(),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        (clock, db)
    }

    #[test]
    fn force_degrade_fires_ahead_of_schedule() {
        let (_clock, db) = setup();
        let table = db.catalog().get("person").unwrap();
        let tid = db
            .insert(
                "person",
                &[Value::Int(1), Value::Str("4 rue Jussieu".into())],
            )
            .unwrap();
        // No time has passed — normally the tuple would stay accurate 1 h.
        let fired = force_degrade(&db, &table, tid).unwrap();
        assert_eq!(fired, 1);
        assert_eq!(table.get(tid).unwrap().row[1], Value::Str("Paris".into()));
        // Two queue entries remain: the re-armed stage-1 transition plus the
        // original (now stale) stage-0 entry, which the pump will skip as a
        // stage mismatch when its time comes.
        assert_eq!(db.scheduler().len(), 2);
    }

    #[test]
    fn force_degrade_missing_tuple_is_zero() {
        let (_clock, db) = setup();
        let table = db.catalog().get("person").unwrap();
        let tid = db
            .insert(
                "person",
                &[Value::Int(1), Value::Str("4 rue Jussieu".into())],
            )
            .unwrap();
        db.delete_tuple(&table, tid).unwrap();
        assert_eq!(force_degrade(&db, &table, tid).unwrap(), 0);
    }

    #[test]
    fn degrade_where_is_predicate_conditioned() {
        let (_clock, db) = setup();
        let table = db.catalog().get("person").unwrap();
        for i in 0..6 {
            db.insert(
                "person",
                &[Value::Int(i), Value::Str("4 rue Jussieu".into())],
            )
            .unwrap();
        }
        // Degrade only even ids.
        let n = degrade_where(
            &db,
            &table,
            |t| matches!(t.row[0], Value::Int(i) if i % 2 == 0),
        )
        .unwrap();
        assert_eq!(n, 3);
        let cities = table
            .scan()
            .unwrap()
            .iter()
            .filter(|(_, t)| t.row[1] == Value::Str("Paris".into()))
            .count();
        assert_eq!(cities, 3);
    }

    #[test]
    fn per_user_lcp_routing() {
        let clock = MockClock::new();
        let db = Db::open(DbConfig::default(), clock.shared()).unwrap();
        let gt: Arc<dyn Hierarchy> = Arc::new(location_tree_fig1());
        let standard = AttributeLcp::fig2_location();
        let paranoid =
            AttributeLcp::from_pairs(&[(0, Duration::minutes(5)), (3, Duration::hours(1))])
                .unwrap();
        let routes = per_user_tables(&db, "events", gt, standard, paranoid).unwrap();
        insert_for_class(
            &db,
            &routes,
            PrivacyClass::Standard,
            &[Value::Int(1), Value::Str("4 rue Jussieu".into())],
        )
        .unwrap();
        insert_for_class(
            &db,
            &routes,
            PrivacyClass::Paranoid,
            &[Value::Int(2), Value::Str("4 rue Jussieu".into())],
        )
        .unwrap();
        // 10 minutes: the paranoid tuple has skipped straight to country;
        // the standard one is still accurate.
        clock.advance(Duration::minutes(10));
        db.pump_degradation().unwrap();
        let std_t = db.catalog().get("events_standard").unwrap();
        let par_t = db.catalog().get("events_paranoid").unwrap();
        assert_eq!(
            std_t.scan().unwrap()[0].1.row[1],
            Value::Str("4 rue Jussieu".into())
        );
        assert_eq!(
            par_t.scan().unwrap()[0].1.row[1],
            Value::Str("France".into())
        );
    }
}
