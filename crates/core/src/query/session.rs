//! Sessions: declared purposes, hierarchy registry, query semantics.
//!
//! "The accuracy level k is chosen such that it reflects the declared
//! purpose for querying the data" (Section II). A [`Session`] owns the
//! purposes declared with `DECLARE PURPOSE … SET ACCURACY LEVEL …`; the
//! most recent declaration is active and supplies the accuracy vector for
//! subsequent queries. Without a declaration, queries run at each
//! attribute's most accurate state — exactly the paper's default reading
//! where only still-accurate subsets are visible.

use std::collections::HashMap;
use std::sync::Arc;

use instant_common::{Error, Result};
use instant_lcp::hierarchy::Hierarchy;

use crate::db::Db;
use crate::query::ast::Statement;
use crate::query::exec::{self, QueryOutput};
use crate::query::parser;

/// Strict vs relaxed σ/π semantics (Section IV future work — see
/// [`crate::ext`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum QuerySemantics {
    /// Paper default: only tuples whose state can *compute* the requested
    /// level participate.
    #[default]
    Strict,
    /// Section IV: predicates may also be evaluated against tuples at
    /// coarser accuracy; projections return the most accurate computable
    /// value.
    Relaxed,
}

/// A declared purpose: column (lower-cased) → level token.
#[derive(Debug, Clone, Default)]
pub struct Purpose {
    pub levels: HashMap<String, String>,
}

/// A shared name → hierarchy map backing `DEGRADE USING <name>`.
///
/// Cloning shares the underlying registry (it is an `Arc` inside), so a
/// server can hand every connection's [`Session`] the same registry: a
/// hierarchy registered once is visible to all of them, and DDL replayed
/// at recovery resolves against the same names — see
/// [`crate::query::exec::schema_for_create`].
#[derive(Clone)]
pub struct HierarchyRegistry {
    inner: Arc<parking_lot::RwLock<HashMap<String, Arc<dyn Hierarchy>>>>, // lock-rank: 370
}

impl Default for HierarchyRegistry {
    fn default() -> HierarchyRegistry {
        HierarchyRegistry {
            inner: Arc::new(parking_lot::RwLock::ranked(370, HashMap::new())),
        }
    }
}

impl std::fmt::Debug for HierarchyRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let mut names: Vec<String> = self.inner.read().keys().cloned().collect();
        names.sort();
        f.debug_tuple("HierarchyRegistry").field(&names).finish()
    }
}

impl HierarchyRegistry {
    pub fn new() -> HierarchyRegistry {
        HierarchyRegistry::default()
    }

    /// Register `h` under `name` (case-insensitive; last one wins).
    pub fn register(&self, name: &str, h: Arc<dyn Hierarchy>) {
        self.inner.write().insert(name.to_ascii_lowercase(), h);
    }

    /// Look up a hierarchy by (case-insensitive) name.
    pub fn get(&self, name: &str) -> Result<Arc<dyn Hierarchy>> {
        self.inner
            .read()
            .get(&name.to_ascii_lowercase())
            .cloned()
            .ok_or_else(|| Error::NotFound(format!("hierarchy '{name}' not registered")))
    }
}

/// An interactive session against a [`Db`].
pub struct Session {
    db: Arc<Db>,
    hierarchies: HierarchyRegistry,
    purposes: HashMap<String, Purpose>,
    active_purpose: Option<String>,
    semantics: QuerySemantics,
    /// Refuse mutating statements with [`Error::ReadOnly`] — the
    /// replication-follower serving mode.
    read_only: bool,
}

impl Session {
    pub fn new(db: Arc<Db>) -> Session {
        Session::with_registry(db, HierarchyRegistry::new())
    }

    /// A session sharing `registry` with other sessions (the served-engine
    /// shape: one registry per server, one session per connection).
    pub fn with_registry(db: Arc<Db>, registry: HierarchyRegistry) -> Session {
        Session {
            db,
            hierarchies: registry,
            purposes: HashMap::new(),
            active_purpose: None,
            semantics: QuerySemantics::Strict,
            read_only: false,
        }
    }

    /// Put the session in (or take it out of) read-only mode: mutating
    /// statements — CREATE TABLE, INSERT, DELETE, CHECKPOINT — fail with
    /// [`Error::ReadOnly`]; SELECT, DECLARE PURPOSE and SHOW STATS still
    /// run. A replication follower serves every connection this way.
    pub fn set_read_only(&mut self, read_only: bool) {
        self.read_only = read_only;
    }

    /// Is the session refusing mutations?
    pub fn is_read_only(&self) -> bool {
        self.read_only
    }

    pub fn db(&self) -> &Arc<Db> {
        &self.db
    }

    /// Register a domain hierarchy so `CREATE TABLE … DEGRADE USING <name>`
    /// can reference it (in this session's registry — shared sessions see
    /// it too).
    pub fn register_hierarchy(&mut self, name: &str, h: Arc<dyn Hierarchy>) {
        self.hierarchies.register(name, h);
    }

    pub fn hierarchy(&self, name: &str) -> Result<Arc<dyn Hierarchy>> {
        self.hierarchies.get(name)
    }

    /// The session's hierarchy registry (shared handle).
    pub fn hierarchies(&self) -> &HierarchyRegistry {
        &self.hierarchies
    }

    /// Switch strict/relaxed semantics (the E13 ablation toggle).
    pub fn set_semantics(&mut self, s: QuerySemantics) {
        self.semantics = s;
    }

    pub fn semantics(&self) -> QuerySemantics {
        self.semantics
    }

    /// Declare (and activate) a purpose programmatically.
    pub fn declare_purpose(&mut self, name: &str, items: &[(String, String)]) {
        let mut p = Purpose::default();
        for (col, level) in items {
            p.levels.insert(col.to_ascii_lowercase(), level.clone());
        }
        self.purposes.insert(name.to_ascii_lowercase(), p);
        self.active_purpose = Some(name.to_ascii_lowercase());
    }

    /// Activate a previously declared purpose.
    pub fn set_purpose(&mut self, name: &str) -> Result<()> {
        let key = name.to_ascii_lowercase();
        if !self.purposes.contains_key(&key) {
            return Err(Error::NotFound(format!("purpose '{name}' not declared")));
        }
        self.active_purpose = Some(key);
        Ok(())
    }

    /// Clear the active purpose: queries run at the most accurate state.
    pub fn clear_purpose(&mut self) {
        self.active_purpose = None;
    }

    /// The active purpose, if any.
    pub fn active_purpose(&self) -> Option<&Purpose> {
        self.active_purpose
            .as_ref()
            .and_then(|n| self.purposes.get(n))
    }

    /// Parse and execute one SQL statement.
    ///
    /// The whole call feeds `query.total`; parse and execution feed their
    /// stage histograms when spans are on. Every attempt (including
    /// failures — they cost latency too) is counted against the active
    /// purpose, and over-threshold statements land in the slow-query log
    /// by *kind*, never by SQL text (literals may be sensitive).
    pub fn execute(&mut self, sql: &str) -> Result<QueryOutput> {
        let obs = self.db.obs().clone();
        let started = std::time::Instant::now();
        let parsed = {
            let _parse = obs.span(instant_obs::Stage::QueryParse);
            parser::parse(sql)
        };
        let stmt = match parsed {
            Ok(stmt) => stmt,
            Err(e) => {
                obs.record_query(
                    "parse_error",
                    self.active_purpose.as_deref(),
                    0,
                    started.elapsed(),
                );
                return Err(e);
            }
        };
        let kind = stmt.kind();
        // Attribute to the purpose in effect when the query *started* — a
        // DECLARE PURPOSE counts against its predecessor, not itself.
        let purpose = self.active_purpose.clone();
        let result = {
            let _exec = obs.span(instant_obs::Stage::QueryExec);
            self.run(stmt)
        };
        let rows = match &result {
            Ok(QueryOutput::Rows(r)) => r.rows.len() as u64,
            Ok(QueryOutput::Inserted(n)) | Ok(QueryOutput::Deleted(n)) => *n as u64,
            _ => 0,
        };
        obs.record_query(kind, purpose.as_deref(), rows, started.elapsed());
        result
    }

    /// Execute a parsed statement.
    pub fn run(&mut self, stmt: Statement) -> Result<QueryOutput> {
        if self.read_only
            && matches!(
                stmt,
                Statement::CreateTable { .. }
                    | Statement::Insert { .. }
                    | Statement::Delete { .. }
                    | Statement::Checkpoint
            )
        {
            return Err(Error::ReadOnly(format!(
                "{} refused: this endpoint is a replication follower; \
                 send writes to the leader",
                stmt.kind()
            )));
        }
        match stmt {
            Statement::DeclarePurpose { name, items } => {
                let pairs: Vec<(String, String)> =
                    items.into_iter().map(|i| (i.column, i.level)).collect();
                self.declare_purpose(&name, &pairs);
                Ok(QueryOutput::PurposeDeclared(name))
            }
            other => exec::run(self, other),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DbConfig;
    use instant_common::MockClock;
    use instant_lcp::gtree::location_tree_fig1;

    fn session() -> Session {
        let clock = MockClock::new();
        let db = Arc::new(Db::open(DbConfig::default(), clock.shared()).unwrap());
        Session::new(db)
    }

    #[test]
    fn purpose_declaration_and_activation() {
        let mut s = session();
        s.declare_purpose("stat", &[("LOCATION".to_string(), "COUNTRY".to_string())]);
        assert!(s.active_purpose().is_some());
        assert_eq!(
            s.active_purpose().unwrap().levels.get("location").unwrap(),
            "COUNTRY"
        );
        s.clear_purpose();
        assert!(s.active_purpose().is_none());
        s.set_purpose("STAT").unwrap();
        assert!(s.active_purpose().is_some());
        assert!(s.set_purpose("nope").is_err());
    }

    #[test]
    fn hierarchy_registry() {
        let mut s = session();
        s.register_hierarchy("location_gt", Arc::new(location_tree_fig1()));
        assert!(s.hierarchy("LOCATION_GT").is_ok());
        assert!(s.hierarchy("other").is_err());
    }

    #[test]
    fn declare_purpose_via_sql() {
        let mut s = session();
        let out = s
            .execute("DECLARE PURPOSE STAT SET ACCURACY LEVEL COUNTRY FOR P.LOCATION")
            .unwrap();
        assert!(matches!(out, QueryOutput::PurposeDeclared(n) if n == "STAT"));
        assert_eq!(
            s.active_purpose().unwrap().levels.get("location").unwrap(),
            "COUNTRY"
        );
    }

    #[test]
    fn show_stats_surfaces_purpose_counts_and_engine_counters() {
        let mut s = session();
        s.execute("DECLARE PURPOSE STAT SET ACCURACY LEVEL COUNTRY FOR P.LOCATION")
            .unwrap();
        // Counted against the active purpose even though it errors.
        assert!(s.execute("SELECT * FROM missing").is_err());
        let out = s.execute("SHOW STATS").unwrap();
        let QueryOutput::Stats(snap) = out else {
            panic!("expected stats output");
        };
        let stat = snap
            .purposes
            .iter()
            .find(|(p, _)| p == "stat")
            .map(|(_, c)| *c)
            .expect("purpose 'stat' counted");
        assert!(stat.queries >= 1);
        // The declare ran before any purpose was active.
        assert!(snap.purposes.iter().any(|(p, _)| p == "(none)"));
        assert!(snap.hist("query.total").map(|h| h.count).unwrap_or(0) >= 2);
        assert_eq!(snap.counter("db.inserts"), Some(0));
        assert!(snap.gauge("degradation.overdue_lag_us").is_some());
    }

    #[test]
    fn slow_query_log_records_kind_not_sql_text() {
        let mut s = session();
        s.db()
            .obs()
            .set_slow_query_threshold(Some(std::time::Duration::from_nanos(1)));
        // Plenty of attempts so at least one crosses the 1 µs floor.
        for _ in 0..50 {
            let _ = s.execute("SELECT * FROM missing WHERE secret = 'sensitive-literal'");
        }
        let out = s.execute("SHOW STATS").unwrap();
        let QueryOutput::Stats(snap) = out else {
            panic!("expected stats output");
        };
        let slow = snap
            .slow_queries
            .iter()
            .find(|q| q.kind == "select")
            .expect("over-threshold select in the slow log");
        assert!(slow.elapsed_micros >= 1);
        // The log stores statement kinds, never SQL text or literals.
        assert!(snap
            .slow_queries
            .iter()
            .all(|q| !q.kind.contains("sensitive")));
    }

    #[test]
    fn read_only_session_refuses_mutations_serves_reads() {
        let mut s = session();
        s.execute("CREATE TABLE t (id INT, name TEXT)").unwrap();
        s.execute("INSERT INTO t VALUES (1, 'a')").unwrap();
        s.set_read_only(true);
        assert!(s.is_read_only());
        for sql in [
            "INSERT INTO t VALUES (2, 'b')",
            "DELETE FROM t WHERE id = 1",
            "CREATE TABLE u (id INT)",
            "CHECKPOINT",
        ] {
            let err = s.execute(sql).unwrap_err();
            assert_eq!(err.class(), "read_only", "{sql}: {err:?}");
            assert!(!err.is_retryable(), "{sql}");
        }
        // Reads and purpose declarations still work.
        let out = s.execute("SELECT * FROM t").unwrap();
        assert!(matches!(out, QueryOutput::Rows(r) if r.rows.len() == 1));
        s.execute("DECLARE PURPOSE STAT SET ACCURACY LEVEL COUNTRY FOR P.LOCATION")
            .unwrap();
        assert!(matches!(
            s.execute("SHOW STATS").unwrap(),
            QueryOutput::Stats(_)
        ));
        // And the mode is reversible (embedded callers flip it for tests).
        s.set_read_only(false);
        s.execute("INSERT INTO t VALUES (2, 'b')").unwrap();
    }

    #[test]
    fn semantics_toggle() {
        let mut s = session();
        assert_eq!(s.semantics(), QuerySemantics::Strict);
        s.set_semantics(QuerySemantics::Relaxed);
        assert_eq!(s.semantics(), QuerySemantics::Relaxed);
    }
}
