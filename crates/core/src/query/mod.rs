//! SQL front end.
//!
//! The paper keeps SQL syntax unchanged and adds a purpose preamble:
//!
//! ```sql
//! DECLARE PURPOSE STAT SET ACCURACY LEVEL COUNTRY FOR P.LOCATION,
//!                                     RANGE1000 FOR P.SALARY;
//! SELECT * FROM PERSON WHERE LOCATION LIKE '%FRANCE%'
//!                        AND SALARY = '2000-3000';
//! ```
//!
//! Pipeline: [`lexer`] → [`parser`] → [`exec`] (bind + plan + evaluate with
//! the σ_P,k / π_*,k semantics), driven by a [`session::Session`] that holds
//! the declared purposes and the registered domain hierarchies.

pub mod ast;
pub mod exec;
pub mod lexer;
pub mod parser;
pub mod session;

pub use ast::{ComparisonOp, Predicate, Statement};
pub use exec::{schema_for_create, QueryOutput, QueryResult};
pub use session::HierarchyRegistry;
