//! Abstract syntax for the supported SQL subset.

use instant_common::Value;

/// Comparison operators in predicates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ComparisonOp {
    Eq,
    Ne,
    Lt,
    Le,
    Gt,
    Ge,
}

/// A (conjunctive) predicate. The reproduced subset is conjunctions of
/// simple column-vs-literal terms — what the paper's examples use.
#[derive(Debug, Clone, PartialEq)]
pub enum Predicate {
    /// `col <op> literal`
    Cmp {
        column: String,
        op: ComparisonOp,
        literal: Value,
    },
    /// `col LIKE 'pattern'` (`%` wildcards)
    Like { column: String, pattern: String },
    /// `col BETWEEN lo AND hi` (inclusive bounds)
    Between {
        column: String,
        lo: Value,
        hi: Value,
    },
    /// Conjunction.
    And(Vec<Predicate>),
}

impl Predicate {
    /// Flatten into a list of conjunctive terms.
    pub fn conjuncts(&self) -> Vec<&Predicate> {
        match self {
            Predicate::And(ps) => ps.iter().flat_map(|p| p.conjuncts()).collect(),
            leaf => vec![leaf],
        }
    }

    /// Column names referenced.
    pub fn columns(&self) -> Vec<&str> {
        match self {
            Predicate::Cmp { column, .. }
            | Predicate::Like { column, .. }
            | Predicate::Between { column, .. } => vec![column.as_str()],
            Predicate::And(ps) => ps.iter().flat_map(|p| p.columns()).collect(),
        }
    }
}

/// A column definition in `CREATE TABLE`.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnDef {
    pub name: String,
    pub type_name: String,
    /// `DEGRADE USING <hierarchy> LCP '<spec>'`
    pub degrade: Option<DegradeClause>,
    /// `INDEXED`
    pub indexed: bool,
}

#[derive(Debug, Clone, PartialEq)]
pub struct DegradeClause {
    pub hierarchy: String,
    pub lcp_spec: String,
}

/// One `<level> FOR <column>` item of a purpose declaration.
#[derive(Debug, Clone, PartialEq)]
pub struct AccuracyItem {
    /// Level token: `COUNTRY`, `RANGE1000`, `d2`, …; resolved against the
    /// column's hierarchy at execution time.
    pub level: String,
    /// Column name (qualification like `P.` is stripped by the parser).
    pub column: String,
}

/// A parsed statement.
#[derive(Debug, Clone, PartialEq)]
pub enum Statement {
    CreateTable {
        name: String,
        columns: Vec<ColumnDef>,
    },
    Insert {
        table: String,
        rows: Vec<Vec<Value>>,
    },
    Select {
        table: String,
        /// Empty = `*`.
        projection: Vec<String>,
        predicate: Option<Predicate>,
    },
    Delete {
        table: String,
        predicate: Option<Predicate>,
    },
    /// `DECLARE PURPOSE <name> SET ACCURACY LEVEL <item>, <item> …`
    /// Declares *and activates* the purpose for the session.
    DeclarePurpose {
        name: String,
        items: Vec<AccuracyItem>,
    },
    /// `CHECKPOINT` — flush, log a checkpoint record, shred old key
    /// windows and truncate the dead WAL prefix. Added for served
    /// deployments, where no caller can reach
    /// [`Db::checkpoint`](crate::db::Db::checkpoint) directly.
    Checkpoint,
    /// `SHOW STATS` — the full observability snapshot: stage latency
    /// histograms, engine counters, degradation-timeliness gauges,
    /// per-purpose query counts and the slow-query log.
    ShowStats,
}

impl Statement {
    /// A short, fixed label for this statement's kind — what the
    /// slow-query log records instead of SQL text (which may embed
    /// sensitive literals).
    pub fn kind(&self) -> &'static str {
        match self {
            Statement::CreateTable { .. } => "create_table",
            Statement::Insert { .. } => "insert",
            Statement::Select { .. } => "select",
            Statement::Delete { .. } => "delete",
            Statement::DeclarePurpose { .. } => "declare_purpose",
            Statement::Checkpoint => "checkpoint",
            Statement::ShowStats => "show_stats",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conjunct_flattening() {
        let p = Predicate::And(vec![
            Predicate::Cmp {
                column: "a".into(),
                op: ComparisonOp::Eq,
                literal: Value::Int(1),
            },
            Predicate::And(vec![
                Predicate::Like {
                    column: "b".into(),
                    pattern: "%x%".into(),
                },
                Predicate::Between {
                    column: "c".into(),
                    lo: Value::Int(0),
                    hi: Value::Int(9),
                },
            ]),
        ]);
        assert_eq!(p.conjuncts().len(), 3);
        assert_eq!(p.columns(), vec!["a", "b", "c"]);
    }
}
