//! Recursive-descent parser for the supported SQL subset.
//!
//! Grammar (keywords case-insensitive):
//!
//! ```text
//! stmt        := create | insert | select | delete | declare | checkpoint | show
//! show        := SHOW STATS
//! create      := CREATE TABLE name '(' coldef (',' coldef)* ')'
//! coldef      := name type [DEGRADE USING ident LCP string] [INDEXED]
//! insert      := INSERT INTO name VALUES tuple (',' tuple)*
//! tuple       := '(' literal (',' literal)* ')'
//! select      := SELECT ('*' | cols) FROM name [WHERE conj]
//! delete      := DELETE FROM name [WHERE conj]
//! conj        := term (AND term)*
//! term        := col op literal | col LIKE string | col BETWEEN lit AND lit
//! declare     := DECLARE PURPOSE name SET ACCURACY LEVEL item (',' item)*
//! item        := leveltoken FOR [ident '.'] col
//! checkpoint  := CHECKPOINT
//! ```

use instant_common::{Error, Result, Value};

use super::ast::*;
use super::lexer::{lex, Token};

pub struct Parser {
    toks: Vec<Token>,
    pos: usize,
}

/// Parse one statement (a trailing `;` is tolerated).
pub fn parse(sql: &str) -> Result<Statement> {
    let mut p = Parser {
        toks: lex(sql)?,
        pos: 0,
    };
    let stmt = p.statement()?;
    p.eat_symbol(';');
    if !p.at_end() {
        return Err(Error::Parse(format!(
            "trailing tokens after statement: {:?}",
            p.peek()
        )));
    }
    Ok(stmt)
}

impl Parser {
    fn at_end(&self) -> bool {
        self.pos >= self.toks.len()
    }

    fn peek(&self) -> Option<&Token> {
        self.toks.get(self.pos)
    }

    fn next(&mut self) -> Result<Token> {
        let t = self
            .toks
            .get(self.pos)
            .cloned()
            .ok_or_else(|| Error::Parse("unexpected end of statement".into()))?;
        self.pos += 1;
        Ok(t)
    }

    fn expect_kw(&mut self, kw: &str) -> Result<()> {
        let t = self.next()?;
        if t.is_kw(kw) {
            Ok(())
        } else {
            Err(Error::Parse(format!("expected {kw}, got {t:?}")))
        }
    }

    fn eat_kw(&mut self, kw: &str) -> bool {
        if self.peek().is_some_and(|t| t.is_kw(kw)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn eat_symbol(&mut self, c: char) -> bool {
        if self.peek() == Some(&Token::Symbol(c)) {
            self.pos += 1;
            true
        } else {
            false
        }
    }

    fn expect_symbol(&mut self, c: char) -> Result<()> {
        let t = self.next()?;
        if t == Token::Symbol(c) {
            Ok(())
        } else {
            Err(Error::Parse(format!("expected '{c}', got {t:?}")))
        }
    }

    fn ident(&mut self) -> Result<String> {
        match self.next()? {
            Token::Ident(s) => Ok(s),
            other => Err(Error::Parse(format!("expected identifier, got {other:?}"))),
        }
    }

    fn literal(&mut self) -> Result<Value> {
        match self.next()? {
            Token::Int(i) => Ok(Value::Int(i)),
            Token::Float(f) => Ok(Value::Float(f)),
            Token::Str(s) => Ok(Value::Str(s)),
            Token::Ident(s) if s.eq_ignore_ascii_case("null") => Ok(Value::Null),
            Token::Ident(s) if s.eq_ignore_ascii_case("true") => Ok(Value::Bool(true)),
            Token::Ident(s) if s.eq_ignore_ascii_case("false") => Ok(Value::Bool(false)),
            other => Err(Error::Parse(format!("expected literal, got {other:?}"))),
        }
    }

    fn statement(&mut self) -> Result<Statement> {
        let t = self
            .peek()
            .ok_or_else(|| Error::Parse("empty statement".into()))?
            .clone();
        if t.is_kw("create") {
            self.create_table()
        } else if t.is_kw("insert") {
            self.insert()
        } else if t.is_kw("select") {
            self.select()
        } else if t.is_kw("delete") {
            self.delete()
        } else if t.is_kw("declare") {
            self.declare_purpose()
        } else if t.is_kw("checkpoint") {
            self.pos += 1;
            Ok(Statement::Checkpoint)
        } else if t.is_kw("show") {
            self.pos += 1;
            self.expect_kw("stats")?;
            Ok(Statement::ShowStats)
        } else {
            Err(Error::Parse(format!("unsupported statement start: {t:?}")))
        }
    }

    fn create_table(&mut self) -> Result<Statement> {
        self.expect_kw("create")?;
        self.expect_kw("table")?;
        let name = self.ident()?;
        self.expect_symbol('(')?;
        let mut columns = Vec::new();
        loop {
            let col_name = self.ident()?;
            let type_name = self.ident()?;
            let mut degrade = None;
            let mut indexed = false;
            loop {
                if self.eat_kw("degrade") {
                    self.expect_kw("using")?;
                    let hierarchy = self.ident()?;
                    self.expect_kw("lcp")?;
                    let spec = match self.next()? {
                        Token::Str(s) => s,
                        other => {
                            return Err(Error::Parse(format!(
                                "LCP spec must be a quoted string, got {other:?}"
                            )))
                        }
                    };
                    degrade = Some(DegradeClause {
                        hierarchy,
                        lcp_spec: spec,
                    });
                } else if self.eat_kw("indexed") {
                    indexed = true;
                } else {
                    break;
                }
            }
            columns.push(ColumnDef {
                name: col_name,
                type_name,
                degrade,
                indexed,
            });
            if self.eat_symbol(',') {
                continue;
            }
            self.expect_symbol(')')?;
            break;
        }
        Ok(Statement::CreateTable { name, columns })
    }

    fn insert(&mut self) -> Result<Statement> {
        self.expect_kw("insert")?;
        self.expect_kw("into")?;
        let table = self.ident()?;
        self.expect_kw("values")?;
        let mut rows = Vec::new();
        loop {
            self.expect_symbol('(')?;
            let mut row = Vec::new();
            loop {
                row.push(self.literal()?);
                if self.eat_symbol(',') {
                    continue;
                }
                self.expect_symbol(')')?;
                break;
            }
            rows.push(row);
            if !self.eat_symbol(',') {
                break;
            }
        }
        Ok(Statement::Insert { table, rows })
    }

    fn select(&mut self) -> Result<Statement> {
        self.expect_kw("select")?;
        let mut projection = Vec::new();
        if !self.eat_symbol('*') {
            loop {
                projection.push(self.column_ref()?);
                if !self.eat_symbol(',') {
                    break;
                }
            }
        }
        self.expect_kw("from")?;
        let table = self.ident()?;
        let predicate = if self.eat_kw("where") {
            Some(self.conjunction()?)
        } else {
            None
        };
        Ok(Statement::Select {
            table,
            projection,
            predicate,
        })
    }

    fn delete(&mut self) -> Result<Statement> {
        self.expect_kw("delete")?;
        self.expect_kw("from")?;
        let table = self.ident()?;
        let predicate = if self.eat_kw("where") {
            Some(self.conjunction()?)
        } else {
            None
        };
        Ok(Statement::Delete { table, predicate })
    }

    /// Column reference, stripping a table qualifier (`P.LOCATION` → `LOCATION`).
    fn column_ref(&mut self) -> Result<String> {
        let first = self.ident()?;
        if self.eat_symbol('.') {
            self.ident()
        } else {
            Ok(first)
        }
    }

    fn conjunction(&mut self) -> Result<Predicate> {
        let mut terms = vec![self.term()?];
        while self.eat_kw("and") {
            terms.push(self.term()?);
        }
        Ok(if terms.len() == 1 {
            terms.pop().expect("one") // lint:allow(L001, len() == 1 checked in this branch)
        } else {
            Predicate::And(terms)
        })
    }

    fn term(&mut self) -> Result<Predicate> {
        let column = self.column_ref()?;
        if self.eat_kw("like") {
            let pattern = match self.next()? {
                Token::Str(s) => s,
                other => {
                    return Err(Error::Parse(format!(
                        "LIKE pattern must be a string, got {other:?}"
                    )))
                }
            };
            return Ok(Predicate::Like { column, pattern });
        }
        if self.eat_kw("between") {
            let lo = self.literal()?;
            self.expect_kw("and")?;
            let hi = self.literal()?;
            return Ok(Predicate::Between { column, lo, hi });
        }
        let op = match self.next()? {
            Token::Eq => ComparisonOp::Eq,
            Token::Ne => ComparisonOp::Ne,
            Token::Lt => ComparisonOp::Lt,
            Token::Le => ComparisonOp::Le,
            Token::Gt => ComparisonOp::Gt,
            Token::Ge => ComparisonOp::Ge,
            other => return Err(Error::Parse(format!("expected operator, got {other:?}"))),
        };
        let literal = self.literal()?;
        Ok(Predicate::Cmp {
            column,
            op,
            literal,
        })
    }

    fn declare_purpose(&mut self) -> Result<Statement> {
        self.expect_kw("declare")?;
        self.expect_kw("purpose")?;
        let name = self.ident()?;
        self.expect_kw("set")?;
        self.expect_kw("accuracy")?;
        self.expect_kw("level")?;
        let mut items = Vec::new();
        loop {
            let level = self.ident()?;
            self.expect_kw("for")?;
            let column = self.column_ref()?;
            items.push(AccuracyItem { level, column });
            if !self.eat_symbol(',') {
                break;
            }
        }
        Ok(Statement::DeclarePurpose { name, items })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_paper_select() {
        let s =
            parse("SELECT * FROM PERSON WHERE LOCATION LIKE '%FRANCE%' AND SALARY = '2000-3000'")
                .unwrap();
        match s {
            Statement::Select {
                table,
                projection,
                predicate,
            } => {
                assert_eq!(table, "PERSON");
                assert!(projection.is_empty());
                let p = predicate.unwrap();
                assert_eq!(p.conjuncts().len(), 2);
                assert!(matches!(
                    p.conjuncts()[0],
                    Predicate::Like { pattern, .. } if pattern == "%FRANCE%"
                ));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_paper_declare_purpose() {
        let s = parse(
            "DECLARE PURPOSE STAT SET ACCURACY LEVEL COUNTRY FOR P.LOCATION, RANGE1000 FOR P.SALARY",
        )
        .unwrap();
        match s {
            Statement::DeclarePurpose { name, items } => {
                assert_eq!(name, "STAT");
                assert_eq!(items.len(), 2);
                assert_eq!(items[0].level, "COUNTRY");
                assert_eq!(items[0].column, "LOCATION"); // qualifier stripped
                assert_eq!(items[1].level, "RANGE1000");
                assert_eq!(items[1].column, "SALARY");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_create_table_with_degrade() {
        let s = parse(
            "CREATE TABLE person (id INT INDEXED, name TEXT, \
             location TEXT DEGRADE USING location_gt LCP 'd0:1h -> d1:1d' INDEXED, \
             salary INT DEGRADE USING salary LCP 'd0:10min -> d2:30d')",
        )
        .unwrap();
        match s {
            Statement::CreateTable { name, columns } => {
                assert_eq!(name, "person");
                assert_eq!(columns.len(), 4);
                assert!(columns[0].indexed && columns[0].degrade.is_none());
                let loc = &columns[2];
                assert!(loc.indexed);
                let d = loc.degrade.as_ref().unwrap();
                assert_eq!(d.hierarchy, "location_gt");
                assert_eq!(d.lcp_spec, "d0:1h -> d1:1d");
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_insert_multi_row() {
        let s = parse("INSERT INTO t VALUES (1, 'a'), (2, 'b')").unwrap();
        match s {
            Statement::Insert { table, rows } => {
                assert_eq!(table, "t");
                assert_eq!(rows.len(), 2);
                assert_eq!(rows[1], vec![Value::Int(2), Value::Str("b".into())]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn parses_delete_and_between() {
        let s = parse("DELETE FROM t WHERE salary BETWEEN 100 AND 200 AND id > 5;").unwrap();
        match s {
            Statement::Delete { predicate, .. } => {
                let p = predicate.unwrap();
                assert_eq!(p.conjuncts().len(), 2);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn projection_with_qualifiers() {
        let s = parse("SELECT p.id, p.location FROM person").unwrap();
        match s {
            Statement::Select { projection, .. } => {
                assert_eq!(projection, vec!["id".to_string(), "location".to_string()]);
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn errors() {
        assert!(parse("").is_err());
        assert!(parse("DROP TABLE t").is_err());
        assert!(parse("SELECT FROM t").is_err()); // missing projection
        assert!(parse("SELECT * FROM t WHERE").is_err());
        assert!(parse("SELECT * FROM t WHERE a LIKE 5").is_err());
        assert!(parse("INSERT INTO t VALUES 1,2").is_err());
        assert!(parse("SELECT * FROM t extra").is_err());
        assert!(parse("CREATE TABLE t (x BLOBBY DEGRADE)").is_err());
    }

    #[test]
    fn parses_show_stats() {
        assert_eq!(parse("SHOW STATS").unwrap(), Statement::ShowStats);
        assert_eq!(parse("show stats;").unwrap(), Statement::ShowStats);
        assert!(parse("SHOW").is_err());
        assert!(parse("SHOW TABLES").is_err());
    }

    #[test]
    fn null_bool_literals() {
        let s = parse("INSERT INTO t VALUES (NULL, TRUE, false)").unwrap();
        match s {
            Statement::Insert { rows, .. } => {
                assert_eq!(
                    rows[0],
                    vec![Value::Null, Value::Bool(true), Value::Bool(false)]
                );
            }
            other => panic!("{other:?}"),
        }
    }
}
