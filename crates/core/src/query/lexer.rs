//! Hand-rolled SQL lexer.
//!
//! Case-insensitive keywords, `'single'` / `"double"` quoted strings,
//! integers/floats, identifiers with optional qualification (`P.LOCATION`
//! lexes as ident, dot, ident), and the operator set the paper's examples
//! need.

use instant_common::{Error, Result};

#[derive(Debug, Clone, PartialEq)]
pub enum Token {
    Ident(String),
    Int(i64),
    Float(f64),
    Str(String),
    Symbol(char), // ( ) , . ; *
    Eq,
    Lt,
    Gt,
    Le,
    Ge,
    Ne,
}

impl Token {
    /// Keyword test (idents only, case-insensitive).
    pub fn is_kw(&self, kw: &str) -> bool {
        matches!(self, Token::Ident(s) if s.eq_ignore_ascii_case(kw))
    }
}

/// Tokenize `input`.
pub fn lex(input: &str) -> Result<Vec<Token>> {
    let mut out = Vec::new();
    let bytes: Vec<char> = input.chars().collect();
    let mut i = 0usize;
    while i < bytes.len() {
        let c = bytes[i];
        match c {
            c if c.is_whitespace() => i += 1,
            '(' | ')' | ',' | '.' | ';' | '*' => {
                out.push(Token::Symbol(c));
                i += 1;
            }
            '=' => {
                out.push(Token::Eq);
                i += 1;
            }
            '<' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::Le);
                    i += 2;
                } else if bytes.get(i + 1) == Some(&'>') {
                    out.push(Token::Ne);
                    i += 2;
                } else {
                    out.push(Token::Lt);
                    i += 1;
                }
            }
            '>' => {
                if bytes.get(i + 1) == Some(&'=') {
                    out.push(Token::Ge);
                    i += 2;
                } else {
                    out.push(Token::Gt);
                    i += 1;
                }
            }
            '!' if bytes.get(i + 1) == Some(&'=') => {
                out.push(Token::Ne);
                i += 2;
            }
            '\'' | '"' => {
                let quote = c;
                let start = i + 1;
                let mut j = start;
                while j < bytes.len() && bytes[j] != quote {
                    j += 1;
                }
                if j >= bytes.len() {
                    return Err(Error::Parse(format!(
                        "unterminated string starting at offset {i}"
                    )));
                }
                out.push(Token::Str(bytes[start..j].iter().collect()));
                i = j + 1;
            }
            '-' | '0'..='9' => {
                let start = i;
                let mut j = i;
                if bytes[j] == '-' {
                    j += 1;
                    if j >= bytes.len() || !bytes[j].is_ascii_digit() {
                        return Err(Error::Parse(format!("stray '-' at offset {i}")));
                    }
                }
                let mut is_float = false;
                while j < bytes.len()
                    && (bytes[j].is_ascii_digit()
                        || (bytes[j] == '.'
                            && bytes.get(j + 1).is_some_and(|c| c.is_ascii_digit())
                            && !is_float))
                {
                    if bytes[j] == '.' {
                        is_float = true;
                    }
                    j += 1;
                }
                let text: String = bytes[start..j].iter().collect();
                if is_float {
                    out.push(Token::Float(text.parse().map_err(|_| {
                        Error::Parse(format!("bad float literal '{text}'"))
                    })?));
                } else {
                    out.push(Token::Int(text.parse().map_err(|_| {
                        Error::Parse(format!("bad int literal '{text}'"))
                    })?));
                }
                i = j;
            }
            c if c.is_alphabetic() || c == '_' => {
                let start = i;
                let mut j = i;
                while j < bytes.len() && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
                    j += 1;
                }
                out.push(Token::Ident(bytes[start..j].iter().collect()));
                i = j;
            }
            other => {
                return Err(Error::Parse(format!(
                    "unexpected character '{other}' at offset {i}"
                )))
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn lexes_paper_query() {
        let toks =
            lex("SELECT * FROM PERSON WHERE LOCATION LIKE\"%FRANCE%\" AND SALARY = '2000-3000'")
                .unwrap();
        assert!(toks[0].is_kw("select"));
        assert_eq!(toks[1], Token::Symbol('*'));
        assert!(toks.contains(&Token::Str("%FRANCE%".into())));
        assert!(toks.contains(&Token::Str("2000-3000".into())));
        assert!(toks.contains(&Token::Eq));
    }

    #[test]
    fn lexes_declare_purpose() {
        let toks = lex(
            "DECLARE PURPOSE STAT SET ACCURACY LEVEL COUNTRY FOR P.LOCATION, RANGE1000 FOR P.SALARY",
        )
        .unwrap();
        assert!(toks.iter().any(|t| t.is_kw("purpose")));
        assert!(toks.contains(&Token::Symbol('.')));
        assert!(toks.contains(&Token::Symbol(',')));
    }

    #[test]
    fn numbers_and_operators() {
        let toks = lex("a >= -12 AND b < 3.5 OR c <> 7 AND d != 8").unwrap();
        assert!(toks.contains(&Token::Ge));
        assert!(toks.contains(&Token::Int(-12)));
        assert!(toks.contains(&Token::Float(3.5)));
        assert_eq!(toks.iter().filter(|t| **t == Token::Ne).count(), 2);
    }

    #[test]
    fn unterminated_string_rejected() {
        assert!(lex("SELECT 'oops").is_err());
    }

    #[test]
    fn stray_minus_rejected() {
        assert!(lex("a = - b").is_err());
    }

    #[test]
    fn empty_input_ok() {
        assert!(lex("").unwrap().is_empty());
        assert!(lex("   \n\t ").unwrap().is_empty());
    }
}
