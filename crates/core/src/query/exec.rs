//! Binder, planner and executor — the paper's `σ_P,k` and `π_*,k`.
//!
//! Section II defines, for a dataset partitioned by tuple state into
//! subsets `ST_j`:
//!
//! ```text
//! σ_P,k(DS) = σ_P( f_k( ∪_{j : k computable in j} ST_j ) )
//! π_*,k(DS) = π_*( f_k( ∪_{j : k computable in j} ST_j ) )
//! ```
//!
//! i.e. only tuples whose current accuracy can still *compute* level `k`
//! participate; their degradable values are degraded to exactly `k` with
//! `f_k` before predicate evaluation and projection, so every result row is
//! coherent at one accuracy level. The relaxed variant (Section IV, toggled
//! by [`QuerySemantics::Relaxed`]) additionally evaluates predicates
//! against coarser tuples and projects the most accurate computable value.
//!
//! Planning: one indexable conjunct is chosen as the access path — a
//! stable-column B+-tree probe, or a degradable-column probe against the
//! multi-level index at the requested level `k` (supplemented by the
//! finer-level member lists, since finer tuples also compute `k`); the
//! remaining conjuncts run as filters.

use std::cmp::Ordering as CmpOrdering;
use std::sync::Arc;

use instant_common::{ColumnId, Error, LevelId, Result, TupleId, Value};
use instant_tx::{LockMode, Resource};

use crate::catalog::Table;
use crate::query::ast::{ColumnDef, ComparisonOp, Predicate, Statement};
use crate::query::session::{QuerySemantics, Session};
use crate::schema::{Column, TableSchema};
use crate::tuple::StoredTuple;

/// Result rows of a SELECT.
#[derive(Debug, Clone, PartialEq)]
pub struct QueryResult {
    pub columns: Vec<String>,
    pub rows: Vec<Vec<Value>>,
    /// One-line plan description (for tests and EXPLAIN-style output).
    pub plan: String,
}

/// Output of one statement.
#[derive(Debug, Clone, PartialEq)]
pub enum QueryOutput {
    TableCreated(String),
    Inserted(usize),
    Rows(QueryResult),
    Deleted(usize),
    PurposeDeclared(String),
    /// A `CHECKPOINT` completed (flush → log → shred → truncate).
    Checkpointed,
    /// `SHOW STATS`: the full observability snapshot (boxed — it is two
    /// orders of magnitude bigger than every other variant).
    Stats(Box<instant_obs::StatsSnapshot>),
}

impl QueryOutput {
    /// Unwrap SELECT rows (test convenience).
    pub fn rows(self) -> QueryResult {
        match self {
            QueryOutput::Rows(r) => r,
            other => panic!("expected rows, got {other:?}"), // lint:allow(L001, test-convenience accessor, not on the query path)
        }
    }
}

/// Execute a bound statement against the session's database.
pub fn run(session: &mut Session, stmt: Statement) -> Result<QueryOutput> {
    match stmt {
        Statement::CreateTable { name, columns } => {
            let schema = build_schema(session, &name, &columns)?;
            session.db().create_table(schema)?;
            Ok(QueryOutput::TableCreated(name))
        }
        Statement::Insert { table, rows } => {
            let mut n = 0;
            for row in rows {
                session.db().insert(&table, &row)?;
                n += 1;
            }
            Ok(QueryOutput::Inserted(n))
        }
        Statement::Select {
            table,
            projection,
            predicate,
        } => {
            let table = session.db().catalog().get(&table)?;
            let result = select(session, &table, &projection, predicate.as_ref())?;
            Ok(QueryOutput::Rows(result))
        }
        Statement::Delete { table, predicate } => {
            let table = session.db().catalog().get(&table)?;
            let n = delete(session, &table, predicate.as_ref())?;
            Ok(QueryOutput::Deleted(n))
        }
        Statement::Checkpoint => {
            session.db().checkpoint()?;
            Ok(QueryOutput::Checkpointed)
        }
        Statement::ShowStats => Ok(QueryOutput::Stats(Box::new(
            crate::metrics::stats_snapshot(session.db()),
        ))),
        Statement::DeclarePurpose { .. } => unreachable!("handled by Session::run"),
    }
}

fn build_schema(session: &Session, name: &str, defs: &[ColumnDef]) -> Result<TableSchema> {
    build_schema_with(session.hierarchies(), name, defs)
}

fn build_schema_with(
    hierarchies: &crate::query::session::HierarchyRegistry,
    name: &str,
    defs: &[ColumnDef],
) -> Result<TableSchema> {
    let mut columns = Vec::with_capacity(defs.len());
    for def in defs {
        let ty = instant_common::DataType::parse(&def.type_name)?;
        let mut col = match &def.degrade {
            None => Column::stable(&def.name, ty),
            Some(clause) => {
                let h = hierarchies.get(&clause.hierarchy)?;
                let lcp = instant_lcp::policy::parse_lcp(&clause.lcp_spec, Some(h.as_ref()))?;
                Column::degradable(&def.name, ty, h, lcp)?
            }
        };
        if def.indexed {
            col = col.with_index();
        }
        columns.push(col);
    }
    TableSchema::new(name, columns)
}

/// Build the [`TableSchema`] a `CREATE TABLE` statement describes without
/// executing it — hierarchies resolve against `hierarchies`. This is the
/// DDL-replay entry point: a server that persisted its `CREATE TABLE`
/// statements rebuilds the schemas for
/// [`Db::recover_with_schemas`](crate::db::Db::recover_with_schemas) from
/// here, before any session exists.
pub fn schema_for_create(
    hierarchies: &crate::query::session::HierarchyRegistry,
    sql: &str,
) -> Result<TableSchema> {
    match crate::query::parser::parse(sql)? {
        Statement::CreateTable { name, columns } => build_schema_with(hierarchies, &name, &columns),
        other => Err(Error::Parse(format!(
            "expected CREATE TABLE, got {other:?}"
        ))),
    }
}

/// The per-degradable-column requested accuracy for this query.
#[derive(Debug, Clone)]
struct AccuracyVector {
    /// `(column, requested level)` for every degradable column.
    levels: Vec<(ColumnId, LevelId)>,
}

impl AccuracyVector {
    fn level_of(&self, cid: ColumnId) -> Option<LevelId> {
        self.levels.iter().find(|(c, _)| *c == cid).map(|(_, l)| *l)
    }
}

/// Resolve the accuracy vector from the active purpose (default: each
/// attribute's initial stage level, i.e. the most accurate stored state).
fn resolve_accuracy(session: &Session, table: &Table) -> Result<AccuracyVector> {
    let schema = table.schema();
    let mut levels = Vec::new();
    for cid in schema.degradable_columns() {
        let col = schema.column(cid);
        let d = col.degrader().expect("degradable"); // lint:allow(L001, column from degradable_columns() always has a degrader)
        let default_level = d.lcp().stages()[0].level;
        let requested = session
            .active_purpose()
            .and_then(|p| p.levels.get(&col.name.to_ascii_lowercase()))
            .cloned();
        let level = match requested {
            None => default_level,
            Some(token) => resolve_level_token(&token, d.hierarchy().as_ref())?,
        };
        d.hierarchy().check_level(level)?;
        levels.push((cid, level));
    }
    Ok(AccuracyVector { levels })
}

fn resolve_level_token(token: &str, h: &dyn instant_lcp::hierarchy::Hierarchy) -> Result<LevelId> {
    if let Some(rest) = token.strip_prefix(['d', 'D']) {
        if let Ok(n) = rest.parse::<u8>() {
            return Ok(LevelId(n));
        }
    }
    for k in 0..h.levels() {
        if h.level_name(LevelId(k)).eq_ignore_ascii_case(token) {
            return Ok(LevelId(k));
        }
    }
    Err(Error::Accuracy(format!(
        "unknown accuracy level '{token}' (levels: {})",
        (0..h.levels())
            .map(|k| h.level_name(LevelId(k)))
            .collect::<Vec<_>>()
            .join(", ")
    )))
}

/// Candidate acquisition strategy.
enum AccessPath {
    SeqScan,
    StableEq(ColumnId, Value),
    StableRange(ColumnId, Option<Value>, Option<Value>),
    /// Probe the multi-level index at the requested level with the key,
    /// plus all members of finer levels (they also compute `k`).
    DegEq(ColumnId, LevelId, Value),
    DegRange(ColumnId, LevelId, Option<Value>, Option<Value>),
}

impl AccessPath {
    fn describe(&self, schema: &TableSchema) -> String {
        match self {
            AccessPath::SeqScan => "SeqScan".to_string(),
            AccessPath::StableEq(c, v) => {
                format!("IndexEq({}={v})", schema.column(*c).name)
            }
            AccessPath::StableRange(c, _, _) => {
                format!("IndexRange({})", schema.column(*c).name)
            }
            AccessPath::DegEq(c, l, v) => {
                format!("DegIndexEq({}@d{}={v})", schema.column(*c).name, l.0)
            }
            AccessPath::DegRange(c, l, _, _) => {
                format!("DegIndexRange({}@d{})", schema.column(*c).name, l.0)
            }
        }
    }
}

/// Bind a literal against a column: the paper's `'2000-3000'` interval
/// literal binds to a [`Value::Range`] on integer columns.
fn bind_literal(col: &Column, lit: &Value) -> Value {
    if col.ty == instant_common::DataType::Int {
        if let Value::Str(s) = lit {
            if let Some((lo, hi)) = s.split_once('-') {
                if let (Ok(lo), Ok(hi)) = (lo.trim().parse::<i64>(), hi.trim().parse::<i64>()) {
                    return Value::Range { lo, hi };
                }
            }
        }
    }
    lit.clone()
}

/// Validate that every column a predicate references exists — statements
/// must fail on bad names even when no tuple would ever be evaluated.
fn bind_predicate(schema: &TableSchema, predicate: Option<&Predicate>) -> Result<()> {
    if let Some(p) = predicate {
        for col in p.columns() {
            schema.column_id(col)?;
        }
    }
    Ok(())
}

/// Pick the access path: first indexable equality conjunct, else first
/// indexable range conjunct, else scan.
fn plan(table: &Table, predicate: Option<&Predicate>, acc: &AccuracyVector) -> AccessPath {
    let schema = table.schema();
    let Some(pred) = predicate else {
        return AccessPath::SeqScan;
    };
    let conjuncts = pred.conjuncts();
    // Pass 1: equality probes.
    for c in &conjuncts {
        if let Predicate::Cmp {
            column,
            op: ComparisonOp::Eq,
            literal,
        } = c
        {
            let Ok(cid) = schema.column_id(column) else {
                continue;
            };
            let col = schema.column(cid);
            if !col.indexed {
                continue;
            }
            let key = bind_literal(col, literal);
            match col.degrader() {
                None => return AccessPath::StableEq(cid, key),
                Some(_) => {
                    if let Some(level) = acc.level_of(cid) {
                        return AccessPath::DegEq(cid, level, key);
                    }
                }
            }
        }
    }
    // Pass 2: range probes.
    for c in &conjuncts {
        let (column, lo, hi) = match c {
            Predicate::Between { column, lo, hi } => (column, Some(lo.clone()), Some(hi.clone())),
            Predicate::Cmp {
                column,
                op: ComparisonOp::Lt | ComparisonOp::Le,
                literal,
            } => (column, None, Some(literal.clone())),
            Predicate::Cmp {
                column,
                op: ComparisonOp::Gt | ComparisonOp::Ge,
                literal,
            } => (column, Some(literal.clone()), None),
            _ => continue,
        };
        let Ok(cid) = schema.column_id(column) else {
            continue;
        };
        let col = schema.column(cid);
        if !col.indexed {
            continue;
        }
        let lo = lo.map(|v| bind_literal(col, &v));
        // Upper bounds are widened by one step since index ranges are
        // exclusive; the residual filter enforces exact semantics.
        let hi = hi.map(|v| widen_upper(bind_literal(col, &v)));
        match col.degrader() {
            None => return AccessPath::StableRange(cid, lo, hi),
            Some(_) => {
                if let Some(level) = acc.level_of(cid) {
                    return AccessPath::DegRange(cid, level, lo, hi);
                }
            }
        }
    }
    AccessPath::SeqScan
}

/// Bump an upper bound so `<=`/BETWEEN semantics survive the index's
/// exclusive upper bound; the exact filter runs afterwards anyway.
fn widen_upper(v: Value) -> Value {
    match v {
        Value::Int(i) => Value::Int(i.saturating_add(1)),
        Value::Range { lo, hi } => Value::Range {
            lo: lo.saturating_add(1),
            hi: hi.saturating_add(1),
        },
        Value::Str(s) => {
            let mut s = s;
            s.push('\u{10FFFF}');
            Value::Str(s)
        }
        other => other,
    }
}

/// Gather candidate tuple ids for the path.
fn candidates(
    table: &Table,
    path: &AccessPath,
    acc: &AccuracyVector,
) -> Result<Option<Vec<TupleId>>> {
    match path {
        AccessPath::SeqScan => Ok(None),
        AccessPath::StableEq(cid, key) => Ok(table.index_probe_stable(*cid, key)),
        AccessPath::StableRange(cid, lo, hi) => {
            Ok(table.index_range_stable(*cid, lo.as_ref(), hi.as_ref()))
        }
        AccessPath::DegEq(cid, level, key) => {
            let mut out = match table.index_probe_deg(*cid, *level, key) {
                Some(v) => v,
                None => return Ok(None),
            };
            // Tuples at finer levels also compute level k; their keys live
            // in a finer keyspace, so take the whole finer membership and
            // let the filter decide.
            for finer in 0..level.0 {
                if let Some(members) = table.index_level_members(*cid, LevelId(finer)) {
                    out.extend(members);
                }
            }
            let _ = acc;
            Ok(Some(out))
        }
        AccessPath::DegRange(cid, level, lo, hi) => {
            let mut out = match table.index_range_deg(*cid, *level, lo.as_ref(), hi.as_ref()) {
                Some(v) => v,
                None => return Ok(None),
            };
            for finer in 0..level.0 {
                if let Some(members) = table.index_level_members(*cid, LevelId(finer)) {
                    out.extend(members);
                }
            }
            Ok(Some(out))
        }
    }
}

/// The degraded view of one tuple at the accuracy vector, or `None` when
/// the tuple does not participate under the session semantics.
fn degraded_view(
    table: &Table,
    tuple: &StoredTuple,
    acc: &AccuracyVector,
    semantics: QuerySemantics,
) -> Option<Vec<Value>> {
    let schema = table.schema();
    let deg_cols = schema.degradable_columns();
    let mut row = tuple.row.clone();
    for (slot, cid) in deg_cols.iter().enumerate() {
        let requested = acc.level_of(*cid).expect("accuracy vector covers all"); // lint:allow(L001, accuracy vector is built over every degradable column)
        let d = schema.column(*cid).degrader().expect("degradable"); // lint:allow(L001, column from degradable_columns() always has a degrader)
        let stage = tuple.stages.get(slot).copied().flatten();
        let current_level = stage.map(|s| d.lcp().stages()[s as usize].level);
        match current_level {
            Some(cur) if cur <= requested => {
                // Computable: degrade to exactly k.
                match d.degrade_to(&row[cid.0 as usize], requested) {
                    Ok(v) => row[cid.0 as usize] = v,
                    Err(_) => return None,
                }
            }
            Some(_) | None => match semantics {
                // Strict: level k is not computable → the tuple is not in
                // any qualifying ST_j subset.
                QuerySemantics::Strict => return None,
                // Relaxed: keep the most accurate computable value (the
                // stored one; `Removed` stays removed).
                QuerySemantics::Relaxed => {}
            },
        }
    }
    Some(row)
}

/// Evaluate a predicate against a degraded row.
fn eval_predicate(schema: &TableSchema, pred: &Predicate, row: &[Value]) -> Result<bool> {
    match pred {
        Predicate::And(ps) => {
            for p in ps {
                if !eval_predicate(schema, p, row)? {
                    return Ok(false);
                }
            }
            Ok(true)
        }
        Predicate::Cmp {
            column,
            op,
            literal,
        } => {
            let cid = schema.column_id(column)?;
            let col = schema.column(cid);
            let value = &row[cid.0 as usize];
            if value.is_removed() || value.is_null() {
                return Ok(false);
            }
            let lit = bind_literal(col, literal);
            let ord = value.compare(&lit);
            Ok(match op {
                ComparisonOp::Eq => ord == CmpOrdering::Equal,
                ComparisonOp::Ne => ord != CmpOrdering::Equal,
                ComparisonOp::Lt => ord == CmpOrdering::Less,
                ComparisonOp::Le => ord != CmpOrdering::Greater,
                ComparisonOp::Gt => ord == CmpOrdering::Greater,
                ComparisonOp::Ge => ord != CmpOrdering::Less,
            })
        }
        Predicate::Like { column, pattern } => {
            let cid = schema.column_id(column)?;
            Ok(row[cid.0 as usize].like(pattern))
        }
        Predicate::Between { column, lo, hi } => {
            let cid = schema.column_id(column)?;
            let col = schema.column(cid);
            let value = &row[cid.0 as usize];
            if value.is_removed() || value.is_null() {
                return Ok(false);
            }
            let lo = bind_literal(col, lo);
            let hi = bind_literal(col, hi);
            Ok(value.compare(&lo) != CmpOrdering::Less
                && value.compare(&hi) != CmpOrdering::Greater)
        }
    }
}

/// Run a SELECT with `σ_P,k` / `π_*,k` semantics.
fn select(
    session: &Session,
    table: &Arc<Table>,
    projection: &[String],
    predicate: Option<&Predicate>,
) -> Result<QueryResult> {
    let db = session.db();
    let schema = table.schema();
    bind_predicate(schema, predicate)?;
    let acc = resolve_accuracy(session, table)?;
    let path = plan(table, predicate, &acc);
    let plan_desc = path.describe(schema);

    // Column selection.
    let proj_ids: Vec<ColumnId> = if projection.is_empty() {
        (0..schema.arity()).map(|i| ColumnId(i as u16)).collect()
    } else {
        projection
            .iter()
            .map(|name| schema.column_id(name))
            .collect::<Result<_>>()?
    };

    let tx = db.tx_manager().begin();
    tx.lock(Resource::Table(table.id()), LockMode::IntentionShared)?;

    let candidate_ids = candidates(table, &path, &acc)?;
    let mut rows = Vec::new();
    let mut visit = |tid: TupleId, tuple: &StoredTuple| -> Result<()> {
        if let Some(view) = degraded_view(table, tuple, &acc, session.semantics()) {
            let keep = match predicate {
                Some(p) => eval_predicate(schema, p, &view)?,
                None => true,
            };
            if keep {
                rows.push(
                    proj_ids
                        .iter()
                        .map(|c| view[c.0 as usize].clone())
                        .collect(),
                );
            }
        }
        let _ = tid;
        Ok(())
    };
    match candidate_ids {
        Some(ids) => {
            let mut seen = std::collections::HashSet::new();
            for tid in ids {
                if !seen.insert(tid) {
                    continue;
                }
                tx.lock(Resource::Tuple(table.id(), tid), LockMode::Shared)?;
                if let Ok(tuple) = table.get(tid) {
                    visit(tid, &tuple)?;
                }
            }
        }
        None => {
            // Sequential scan under a table shared lock.
            tx.lock(Resource::Table(table.id()), LockMode::Shared)?;
            for (tid, tuple) in table.scan()? {
                visit(tid, &tuple)?;
            }
        }
    }
    tx.commit()?;
    Ok(QueryResult {
        columns: proj_ids
            .iter()
            .map(|c| schema.column(*c).name.clone())
            .collect(),
        rows,
        plan: plan_desc,
    })
}

/// DELETE with view-style semantics: the predicate is evaluated exactly as
/// in SELECT (same accuracy degradation and computability rules); every
/// qualifying tuple is then physically removed, stable attributes included.
fn delete(session: &Session, table: &Arc<Table>, predicate: Option<&Predicate>) -> Result<usize> {
    let db = session.db();
    let schema = table.schema();
    bind_predicate(schema, predicate)?;
    let acc = resolve_accuracy(session, table)?;
    let path = plan(table, predicate, &acc);
    let candidate_ids = candidates(table, &path, &acc)?;
    let ids: Vec<TupleId> = match candidate_ids {
        Some(ids) => ids,
        None => table.scan()?.into_iter().map(|(t, _)| t).collect(),
    };
    let mut victims = Vec::new();
    {
        let tx = db.tx_manager().begin();
        tx.lock(Resource::Table(table.id()), LockMode::IntentionShared)?;
        let mut seen = std::collections::HashSet::new();
        for tid in ids {
            if !seen.insert(tid) {
                continue;
            }
            tx.lock(Resource::Tuple(table.id(), tid), LockMode::Shared)?;
            let Ok(tuple) = table.get(tid) else { continue };
            if let Some(view) = degraded_view(table, &tuple, &acc, session.semantics()) {
                let keep = match predicate {
                    Some(p) => eval_predicate(schema, p, &view)?,
                    None => true,
                };
                if keep {
                    victims.push(tid);
                }
            }
        }
        tx.commit()?;
    }
    let mut deleted = 0;
    for tid in victims {
        if db.delete_tuple(table, tid).is_ok() {
            deleted += 1;
        }
    }
    Ok(deleted)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::{Db, DbConfig};
    use instant_common::{Duration, MockClock};
    use instant_lcp::gtree::location_tree_fig1;
    use instant_lcp::RangeHierarchy;

    fn setup() -> (MockClock, Session) {
        let clock = MockClock::new();
        let db = Arc::new(Db::open(DbConfig::default(), clock.shared()).unwrap());
        let mut s = Session::new(db);
        s.register_hierarchy("location_gt", Arc::new(location_tree_fig1()));
        s.register_hierarchy("salary_ranges", Arc::new(RangeHierarchy::salary()));
        s.execute(
            "CREATE TABLE person (\
               id INT INDEXED, \
               name TEXT, \
               location TEXT DEGRADE USING location_gt LCP 'd0:1h -> d1:1d -> d2:1mo -> d3:1mo' INDEXED, \
               salary INT DEGRADE USING salary_ranges LCP 'd0:1h -> d2:1mo -> d3:1mo')",
        )
        .unwrap();
        (clock, s)
    }

    fn seed(s: &mut Session) {
        for (id, name, loc, sal) in [
            (1, "alice", "4 rue Jussieu", 2340),
            (2, "bob", "Domaine de Voluceau", 2890),
            (3, "carol", "Drienerlolaan 5", 3500),
            (4, "dave", "Rue de la Paix", 1200),
        ] {
            s.execute(&format!(
                "INSERT INTO person VALUES ({id}, '{name}', '{loc}', {sal})"
            ))
            .unwrap();
        }
    }

    #[test]
    fn default_accuracy_sees_accurate_values() {
        let (_clock, mut s) = setup();
        seed(&mut s);
        let r = s.execute("SELECT * FROM person").unwrap().rows();
        assert_eq!(r.rows.len(), 4);
        assert_eq!(r.rows[0][2], Value::Str("4 rue Jussieu".into()));
    }

    #[test]
    fn paper_query_at_country_and_range1000() {
        let (_clock, mut s) = setup();
        seed(&mut s);
        s.execute(
            "DECLARE PURPOSE STAT SET ACCURACY LEVEL COUNTRY FOR P.LOCATION, RANGE1000 FOR P.SALARY",
        )
        .unwrap();
        let r = s
            .execute("SELECT * FROM PERSON WHERE LOCATION LIKE '%FRANCE%' AND SALARY = '2000-3000'")
            .unwrap()
            .rows();
        // alice (France, 2340) and bob (France, 2890) qualify;
        // carol is in the Netherlands; dave's salary band is 1000-2000.
        assert_eq!(r.rows.len(), 2);
        for row in &r.rows {
            assert_eq!(row[2], Value::Str("France".into()));
            assert_eq!(row[3], Value::Range { lo: 2000, hi: 3000 });
        }
    }

    #[test]
    fn strict_semantics_excludes_coarser_tuples() {
        let (clock, mut s) = setup();
        seed(&mut s);
        // Age everything past 1 h: locations are now cities (d1).
        clock.advance(Duration::hours(2));
        s.db().pump_degradation().unwrap();
        // Default purpose = most accurate (d0) → nothing is computable.
        let r = s.execute("SELECT * FROM person").unwrap().rows();
        assert!(r.rows.is_empty(), "σ at d0 over degraded data is empty");
        // At city level every tuple is back.
        s.execute("DECLARE PURPOSE CITYQ SET ACCURACY LEVEL CITY FOR LOCATION, d2 FOR SALARY")
            .unwrap();
        let r = s.execute("SELECT * FROM person").unwrap().rows();
        assert_eq!(r.rows.len(), 4);
        assert!(r
            .rows
            .iter()
            .any(|row| row[2] == Value::Str("Paris".into())));
    }

    #[test]
    fn mixed_age_population_under_coarse_purpose() {
        let (clock, mut s) = setup();
        seed(&mut s);
        clock.advance(Duration::hours(2));
        s.db().pump_degradation().unwrap(); // old 4 at d1/city
        s.execute("INSERT INTO person VALUES (5, 'eve', 'Science Park 123', 2500)")
            .unwrap(); // fresh at d0
        s.execute("DECLARE PURPOSE Q SET ACCURACY LEVEL COUNTRY FOR LOCATION, d3 FOR SALARY")
            .unwrap();
        let r = s.execute("SELECT id, location FROM person").unwrap().rows();
        // All 5 compute country: 4 from city, 1 from address.
        assert_eq!(r.rows.len(), 5);
        let eve = r.rows.iter().find(|row| row[0] == Value::Int(5)).unwrap();
        assert_eq!(eve[1], Value::Str("Netherlands".into()));
    }

    #[test]
    fn projection_subset_and_order() {
        let (_clock, mut s) = setup();
        seed(&mut s);
        let r = s
            .execute("SELECT name, id FROM person WHERE id = 2")
            .unwrap()
            .rows();
        assert_eq!(r.columns, vec!["name".to_string(), "id".to_string()]);
        assert_eq!(r.rows, vec![vec![Value::Str("bob".into()), Value::Int(2)]]);
    }

    #[test]
    fn stable_index_plan_chosen() {
        let (_clock, mut s) = setup();
        seed(&mut s);
        let r = s
            .execute("SELECT * FROM person WHERE id = 3")
            .unwrap()
            .rows();
        assert!(r.plan.starts_with("IndexEq(id"), "plan was {}", r.plan);
        assert_eq!(r.rows.len(), 1);
    }

    #[test]
    fn degradable_index_plan_at_level() {
        let (clock, mut s) = setup();
        seed(&mut s);
        clock.advance(Duration::hours(2));
        s.db().pump_degradation().unwrap();
        s.execute("DECLARE PURPOSE Q SET ACCURACY LEVEL CITY FOR LOCATION, d2 FOR SALARY")
            .unwrap();
        let r = s
            .execute("SELECT id FROM person WHERE location = 'Paris'")
            .unwrap()
            .rows();
        assert!(r.plan.starts_with("DegIndexEq"), "plan was {}", r.plan);
        assert_eq!(r.rows, vec![vec![Value::Int(1)]]);
    }

    #[test]
    fn range_predicates_on_salary() {
        let (_clock, mut s) = setup();
        seed(&mut s);
        let r = s
            .execute("SELECT id FROM person WHERE salary BETWEEN 2000 AND 3000")
            .unwrap()
            .rows();
        let ids: Vec<&Value> = r.rows.iter().map(|row| &row[0]).collect();
        assert_eq!(ids.len(), 2); // 2340, 2890
        let r2 = s
            .execute("SELECT id FROM person WHERE salary > 3000")
            .unwrap()
            .rows();
        assert_eq!(r2.rows, vec![vec![Value::Int(3)]]);
    }

    #[test]
    fn delete_with_view_semantics() {
        let (clock, mut s) = setup();
        seed(&mut s);
        clock.advance(Duration::hours(2));
        s.db().pump_degradation().unwrap();
        s.execute("DECLARE PURPOSE Q SET ACCURACY LEVEL COUNTRY FOR LOCATION, d3 FOR SALARY")
            .unwrap();
        let out = s
            .execute("DELETE FROM person WHERE location = 'Netherlands'")
            .unwrap();
        assert_eq!(out, QueryOutput::Deleted(1)); // carol
        let r = s.execute("SELECT id FROM person").unwrap().rows();
        assert_eq!(r.rows.len(), 3);
    }

    #[test]
    fn relaxed_semantics_includes_coarser_tuples() {
        let (clock, mut s) = setup();
        seed(&mut s);
        clock.advance(Duration::hours(2));
        s.db().pump_degradation().unwrap(); // locations at city
                                            // Ask at d0 (default): strict sees nothing, relaxed sees the
                                            // stored (city) values.
        let strict = s.execute("SELECT * FROM person").unwrap().rows();
        assert!(strict.rows.is_empty());
        s.set_semantics(QuerySemantics::Relaxed);
        let relaxed = s.execute("SELECT * FROM person").unwrap().rows();
        assert_eq!(relaxed.rows.len(), 4);
        assert!(relaxed
            .rows
            .iter()
            .any(|row| row[2] == Value::Str("Paris".into())));
    }

    #[test]
    fn insert_through_sql_validates_policy() {
        let (_clock, mut s) = setup();
        // A city-level (degraded) location is not insertable.
        let err = s
            .execute("INSERT INTO person VALUES (9, 'mallory', 'Paris', 1000)")
            .unwrap_err();
        assert!(matches!(err, Error::Policy(_)));
    }

    #[test]
    fn unknown_column_and_table_errors() {
        let (_clock, mut s) = setup();
        assert!(s.execute("SELECT nope FROM person").is_err());
        assert!(s.execute("SELECT * FROM ghosts").is_err());
        assert!(s
            .execute("DECLARE PURPOSE P SET ACCURACY LEVEL BOGUS FOR LOCATION")
            .is_ok()); // declared lazily…
        assert!(s.execute("SELECT * FROM person").is_err()); // …fails at use
    }

    #[test]
    fn ne_and_like_filters() {
        let (_clock, mut s) = setup();
        seed(&mut s);
        let r = s
            .execute("SELECT id FROM person WHERE name <> 'alice' AND name LIKE '%O%'")
            .unwrap()
            .rows();
        // bob and carol contain 'o'.
        assert_eq!(r.rows.len(), 2);
    }
}
