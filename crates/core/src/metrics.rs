//! Exposure metrics — the measurement instrument behind the paper's
//! claim 1 ("the amount of accurate personal information exposed to
//! disclosure … is always less than with a traditional data retention
//! principle").
//!
//! The exposure of one degradable value stored at accuracy level `l` is its
//! *residual information* in `[0,1]` (see
//! [`instant_lcp::hierarchy::Hierarchy::residual_info`]); a snapshot's
//! exposure is the sum over every live degradable value. An attacker who
//! steals the store at time `t` obtains exactly this much information, so
//! exposure-over-time curves (experiment E4) compare protection schemes
//! directly.
//!
//! The module also surfaces the durability-pipeline counters
//! ([`wal_stats`]): WAL appends and fsyncs, group-commit batching,
//! checkpoints and physically truncated log bytes.

use instant_common::{Result, Value};
use instant_obs::{HistogramSnapshot, StatsSnapshot};

use crate::catalog::Table;
use crate::db::Db;

/// Snapshot exposure of one table.
#[derive(Debug, Clone, PartialEq)]
pub struct ExposureReport {
    pub table: String,
    /// Live tuples.
    pub tuples: usize,
    /// Σ residual information over all degradable values.
    pub total_exposure: f64,
    /// Number of degradable values at full accuracy (level of stage 0).
    pub accurate_values: usize,
    /// Number of degradable values in intermediate (degraded) states.
    pub degraded_values: usize,
    /// Number of removed degradable values still inside live tuples.
    pub removed_values: usize,
    /// Histogram: count of degradable values per LCP stage index
    /// (last bucket = removed).
    pub stage_histogram: Vec<usize>,
}

impl ExposureReport {
    /// Mean exposure per live degradable value (0 when empty).
    pub fn mean_exposure(&self) -> f64 {
        let n = self.accurate_values + self.degraded_values + self.removed_values;
        if n == 0 {
            0.0
        } else {
            self.total_exposure / n as f64
        }
    }
}

/// Compute the exposure snapshot of `table` at its current contents.
pub fn exposure_of_table(table: &Table) -> Result<ExposureReport> {
    let schema = table.schema();
    let deg_cols = schema.degradable_columns();
    let max_stages = deg_cols
        .iter()
        .map(|c| {
            schema
                .column(*c)
                .degrader()
                .expect("degradable") // lint:allow(L001, column from degradable_columns() always has a degrader)
                .lcp()
                .num_stages()
        })
        .max()
        .unwrap_or(0);
    let mut report = ExposureReport {
        table: schema.name.clone(),
        tuples: 0,
        total_exposure: 0.0,
        accurate_values: 0,
        degraded_values: 0,
        removed_values: 0,
        stage_histogram: vec![0; max_stages + 1],
    };
    for (_tid, tuple) in table.scan()? {
        report.tuples += 1;
        for (slot, cid) in deg_cols.iter().enumerate() {
            let d = schema.column(*cid).degrader().expect("degradable"); // lint:allow(L001, column from degradable_columns() always has a degrader)
            match tuple.stages.get(slot).copied().flatten() {
                Some(stage) => {
                    let level = d.lcp().stages()[stage as usize].level;
                    let v: &Value = &tuple.row[cid.0 as usize];
                    report.total_exposure += d.hierarchy().residual_info(v, level);
                    // "Accurate" means domain level 0 — a static-anon store
                    // whose single stage sits at a coarse level holds zero
                    // accurate values even though all tuples are in stage 0.
                    if level == instant_common::LevelId(0) {
                        report.accurate_values += 1;
                    } else {
                        report.degraded_values += 1;
                    }
                    report.stage_histogram[stage as usize] += 1;
                }
                None => {
                    report.removed_values += 1;
                    if let Some(last) = report.stage_histogram.last_mut() {
                        *last += 1;
                    }
                }
            }
        }
    }
    Ok(report)
}

/// Exposure across every table of a database.
pub fn exposure_of_db(db: &Db) -> Result<Vec<ExposureReport>> {
    db.catalog()
        .all_tables()
        .iter()
        .map(|t| exposure_of_table(t))
        .collect()
}

/// Total exposure scalar for a database (Σ over tables).
pub fn total_exposure(db: &Db) -> Result<f64> {
    Ok(exposure_of_db(db)?.iter().map(|r| r.total_exposure).sum())
}

/// Durability-pipeline counters: WAL appends/fsyncs, group-commit
/// batching, checkpoints, segment lifecycle and physical truncation, in
/// one snapshot.
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct WalStats {
    /// Records appended to the log since open (any path).
    pub appended: u64,
    /// fsync calls issued at durability points since open (rotation
    /// seals are accounted under `segment_rotations`, not here).
    pub fsyncs: u64,
    /// Bytes physically destroyed by post-checkpoint truncation — the
    /// summed sizes of deleted segment files. (The old counter measured
    /// the shrinkage of a retained-suffix rewrite; with segment-delete
    /// truncation the deleted files *are* the destroyed bytes.)
    pub truncated_bytes: u64,
    /// Segment files currently on disk (sealed + active).
    pub segments: u64,
    /// Segment rotations since open (capacity-triggered or the
    /// checkpoint's pre-record rotate).
    pub segment_rotations: u64,
    /// Whole segments deleted by truncation since open.
    pub segments_deleted: u64,
    /// Commits acknowledged through the group-commit pipeline.
    pub group_commits: u64,
    /// Pipeline drains — one fsync each.
    pub group_batches: u64,
    /// Largest number of committers folded into one drain.
    pub group_max_batch: u64,
    /// Drains failed with an error broadcast to every ticket.
    pub group_failed_batches: u64,
    /// Checkpoints executed (caller-driven or `Checkpointer`).
    pub checkpoints: u64,
    /// Latency of whole pipeline drains (collect → append → fsync →
    /// complete), microseconds. Empty when the pipeline is off.
    pub drain_latency: HistogramSnapshot,
    /// Commit acknowledgement latency: submit (or inline append start)
    /// to durable ack, microseconds.
    pub ack_latency: HistogramSnapshot,
}

impl WalStats {
    /// fsyncs the pipeline avoided versus per-commit-fsync discipline.
    pub fn fsyncs_saved(&self) -> u64 {
        self.group_commits.saturating_sub(self.group_batches)
    }
}

/// Snapshot the WAL/durability counters of `db`. Zeros when logging is
/// off; the `group_*` fields stay zero when the pipeline is disabled.
pub fn wal_stats(db: &Db) -> WalStats {
    let (appended, fsyncs) = db.wal().map(|w| w.counters()).unwrap_or((0, 0));
    let seg = db.wal().map(|w| w.segment_stats()).unwrap_or_default();
    let group = db.group_commit_stats().unwrap_or_default();
    WalStats {
        appended,
        fsyncs,
        truncated_bytes: seg.deleted_bytes,
        segments: seg.segments,
        segment_rotations: seg.rotations,
        segments_deleted: seg.segments_deleted,
        group_commits: group.commits,
        group_batches: group.batches,
        group_max_batch: group.max_batch,
        group_failed_batches: group.failed_batches,
        checkpoints: db
            .stats()
            .checkpoints
            .load(std::sync::atomic::Ordering::Relaxed),
        drain_latency: db.obs().wal_drain.snapshot(),
        ack_latency: db.obs().commit_ack.snapshot(),
    }
}

/// The full observability snapshot served by `SHOW STATS` and the wire
/// `Stats` frame: every stage histogram plus the engine counters
/// (durability pipeline, tuple life cycle, degradation scheduler) and
/// the paper-specific timeliness gauges.
pub fn stats_snapshot(db: &Db) -> StatsSnapshot {
    use std::sync::atomic::Ordering::Relaxed;

    let mut snap = db.obs().snapshot();

    let d = db.stats();
    for (name, v) in [
        ("db.inserts", d.inserts.load(Relaxed)),
        ("db.updates", d.updates.load(Relaxed)),
        ("db.user_deletes", d.user_deletes.load(Relaxed)),
        ("db.degrade_steps", d.degrade_steps.load(Relaxed)),
        ("db.expunges", d.expunges.load(Relaxed)),
        ("db.checkpoints", d.checkpoints.load(Relaxed)),
        (
            "db.degrader_lock_retries",
            d.degrader_lock_retries.load(Relaxed),
        ),
        (
            "db.forced_checkpoint_failures",
            d.forced_checkpoint_failures.load(Relaxed),
        ),
    ] {
        snap.counters.push((name.to_string(), v));
    }

    let w = wal_stats(db);
    for (name, v) in [
        ("wal.appended", w.appended),
        ("wal.fsyncs", w.fsyncs),
        ("wal.truncated_bytes", w.truncated_bytes),
        ("wal.segments", w.segments),
        ("wal.segment_rotations", w.segment_rotations),
        ("wal.segments_deleted", w.segments_deleted),
        ("wal.group_commits", w.group_commits),
        ("wal.group_batches", w.group_batches),
        ("wal.group_max_batch", w.group_max_batch),
        ("wal.group_failed_batches", w.group_failed_batches),
        ("wal.fsyncs_saved", w.fsyncs_saved()),
    ] {
        snap.counters.push((name.to_string(), v));
    }

    // Per-shard segment lanes: the aggregated `wal.segments_deleted`
    // hides *which* shard a retention hold pinned, so surface each
    // shard's lifecycle counters alongside the sums. A hold that parks
    // truncation on one shard shows up as that shard's
    // `segments_deleted` lane flat-lining while others advance.
    if let Some(w) = db.wal() {
        for (k, s) in w.segment_stats_per_shard().iter().enumerate() {
            snap.counters
                .push((format!("wal.shard{k}.segments"), s.segments));
            snap.counters
                .push((format!("wal.shard{k}.segments_deleted"), s.segments_deleted));
        }
    }

    let sched = db.scheduler();
    snap.counters
        .push(("sched.fired".to_string(), sched.fired()));
    snap.counters
        .push(("sched.pending".to_string(), sched.len() as u64));

    // Degradation-timeliness lag (the paper's guarantee made visible):
    // now minus the oldest overdue transition deadline, overall and per
    // LCP stage. Zero means every due transition has been executed.
    let now = db.now();
    snap.gauges.push((
        "degradation.overdue_lag_us".to_string(),
        sched.overdue_lag(now).as_micros() as i64,
    ));
    for (stage, lag) in sched.overdue_lag_by_stage(now) {
        snap.gauges.push((
            format!("degradation.overdue_lag_us.stage{stage}"),
            lag.as_micros() as i64,
        ));
    }

    snap
}

/// On-disk footprint: `(heap bytes, wal bytes)`.
pub fn storage_footprint(db: &Db) -> Result<(u64, u64)> {
    db.buffer_pool().flush_all()?;
    let heap = db.buffer_pool().disk().raw_image()?.len() as u64;
    let wal = match db.wal() {
        Some(w) => w.raw_image()?.len() as u64,
        None => 0,
    };
    Ok((heap, wal))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::db::DbConfig;
    use crate::schema::{Column, TableSchema};
    use instant_common::{DataType, Duration, MockClock};
    use instant_lcp::gtree::location_tree_fig1;
    use instant_lcp::hierarchy::Hierarchy;
    use instant_lcp::AttributeLcp;
    use std::sync::Arc;

    fn setup() -> (MockClock, Db) {
        let clock = MockClock::new();
        let db = Db::open(DbConfig::default(), clock.shared()).unwrap();
        let gt: Arc<dyn Hierarchy> = Arc::new(location_tree_fig1());
        db.create_table(
            TableSchema::new(
                "person",
                vec![
                    Column::stable("id", DataType::Int),
                    Column::degradable(
                        "location",
                        DataType::Str,
                        gt,
                        AttributeLcp::fig2_location(),
                    )
                    .unwrap(),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        (clock, db)
    }

    #[test]
    fn fresh_data_is_fully_exposed() {
        let (_clock, db) = setup();
        for i in 0..5 {
            db.insert(
                "person",
                &[Value::Int(i), Value::Str("4 rue Jussieu".into())],
            )
            .unwrap();
        }
        let r = exposure_of_table(&db.catalog().get("person").unwrap()).unwrap();
        assert_eq!(r.tuples, 5);
        assert_eq!(r.accurate_values, 5);
        assert_eq!(r.degraded_values + r.removed_values, 0);
        assert!((r.total_exposure - 5.0).abs() < 1e-9);
        assert!((r.mean_exposure() - 1.0).abs() < 1e-9);
        assert_eq!(r.stage_histogram[0], 5);
    }

    #[test]
    fn exposure_drops_as_data_degrades() {
        let (clock, db) = setup();
        for i in 0..4 {
            db.insert(
                "person",
                &[Value::Int(i), Value::Str("Drienerlolaan 5".into())],
            )
            .unwrap();
        }
        let before = total_exposure(&db).unwrap();
        clock.advance(Duration::hours(2));
        db.pump_degradation().unwrap();
        let after_city = total_exposure(&db).unwrap();
        // In the small Fig-1 tree "Enschede" has a single address below it,
        // so the city pins down the address exactly: residual information
        // is unchanged at the city step (the metric is honest about that).
        assert!(after_city <= before);
        clock.advance(Duration::days(2));
        db.pump_degradation().unwrap();
        let after_region = total_exposure(&db).unwrap();
        assert!(
            after_region < after_city,
            "region (2 leaves below) must expose strictly less"
        );
        // After the full life cycle everything is gone.
        clock.advance(Duration::days(70));
        db.pump_degradation().unwrap();
        assert_eq!(total_exposure(&db).unwrap(), 0.0);
        let r = exposure_of_table(&db.catalog().get("person").unwrap()).unwrap();
        assert_eq!(r.tuples, 0);
    }

    #[test]
    fn stage_histogram_tracks_population() {
        let (clock, db) = setup();
        db.insert(
            "person",
            &[Value::Int(1), Value::Str("4 rue Jussieu".into())],
        )
        .unwrap();
        clock.advance(Duration::hours(2));
        db.pump_degradation().unwrap();
        db.insert(
            "person",
            &[Value::Int(2), Value::Str("Rue de la Paix".into())],
        )
        .unwrap();
        let r = exposure_of_table(&db.catalog().get("person").unwrap()).unwrap();
        assert_eq!(r.stage_histogram[0], 1); // fresh tuple
        assert_eq!(r.stage_histogram[1], 1); // degraded to city
        assert_eq!(r.accurate_values, 1);
        assert_eq!(r.degraded_values, 1);
    }

    #[test]
    fn wal_stats_reflect_group_commit_pipeline() {
        let clock = MockClock::new();
        // This test asserts pipeline-specific counters (and a final
        // single-segment log), so it pins the pipeline on and the shard
        // count to one explicitly instead of relying on the (env-profile
        // overridable) defaults.
        let db = Db::open(
            DbConfig {
                group_commit: Some(Default::default()),
                wal_shards: 1,
                ..DbConfig::default()
            },
            clock.shared(),
        )
        .unwrap();
        let gt: Arc<dyn Hierarchy> = Arc::new(location_tree_fig1());
        db.create_table(
            TableSchema::new(
                "person",
                vec![
                    Column::stable("id", DataType::Int),
                    Column::degradable(
                        "location",
                        DataType::Str,
                        gt,
                        AttributeLcp::fig2_location(),
                    )
                    .unwrap(),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        for i in 0..5 {
            db.insert(
                "person",
                &[Value::Int(i), Value::Str("4 rue Jussieu".into())],
            )
            .unwrap();
        }
        db.checkpoint().unwrap();
        let s = wal_stats(&db);
        assert_eq!(s.checkpoints, 1);
        assert_eq!(s.appended, 16, "5 × (Begin, Insert, Commit) + Checkpoint");
        assert_eq!(s.group_commits, 6, "5 inserts + 1 checkpoint ticket");
        assert!(s.group_batches <= s.group_commits);
        assert_eq!(
            s.fsyncs, s.group_batches,
            "with the pipeline on, every log fsync belongs to a drain"
        );
        assert!(
            s.truncated_bytes > 0,
            "checkpoint deleted the dead segments"
        );
        assert!(s.segments_deleted >= 1, "{s:?}");
        assert!(
            s.segment_rotations >= 1,
            "checkpoint rotates before its record: {s:?}"
        );
        assert_eq!(s.segments, 1, "only the checkpoint's segment remains");
        assert_eq!(s.group_failed_batches, 0);
    }

    #[test]
    fn stats_snapshot_exposes_per_shard_segment_lanes() {
        let clock = MockClock::new();
        let db = Db::open(
            DbConfig {
                wal_shards: 2,
                ..DbConfig::default()
            },
            clock.shared(),
        )
        .unwrap();
        let gt: Arc<dyn Hierarchy> = Arc::new(location_tree_fig1());
        db.create_table(
            TableSchema::new(
                "person",
                vec![
                    Column::stable("id", DataType::Int),
                    Column::degradable(
                        "location",
                        DataType::Str,
                        gt,
                        AttributeLcp::fig2_location(),
                    )
                    .unwrap(),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        for i in 0..6 {
            db.insert(
                "person",
                &[Value::Int(i), Value::Str("4 rue Jussieu".into())],
            )
            .unwrap();
        }
        db.checkpoint().unwrap();
        let snap = stats_snapshot(&db);
        // The aggregate still sums the shards…
        let agg = snap.counter("wal.segments_deleted").unwrap();
        let per_shard: u64 = (0..2)
            .map(|k| {
                snap.counter(&format!("wal.shard{k}.segments_deleted"))
                    .unwrap_or_else(|| panic!("missing shard {k} lane"))
            })
            .sum();
        assert_eq!(agg, per_shard, "aggregate equals the per-shard sum");
        // …and each shard reports its live segment count.
        for k in 0..2 {
            assert!(snap.counter(&format!("wal.shard{k}.segments")).unwrap() >= 1);
        }
    }

    #[test]
    fn storage_footprint_grows_with_data() {
        let (_clock, db) = setup();
        let (h0, w0) = storage_footprint(&db).unwrap();
        for i in 0..50 {
            db.insert(
                "person",
                &[Value::Int(i), Value::Str("Science Park 123".into())],
            )
            .unwrap();
        }
        let (h1, w1) = storage_footprint(&db).unwrap();
        assert!(h1 >= h0);
        assert!(w1 > w0, "WAL must grow with inserts");
    }
}
