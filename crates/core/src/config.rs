//! Engine configuration: [`DbConfig`], its validating [`DbConfigBuilder`],
//! and the single documented environment overlay behind CI's
//! degraded-config matrix ([`DbConfig::from_env_overlay`]).
//!
//! Three ways to obtain a config, in decreasing order of ceremony:
//!
//! * [`DbConfig::builder`] — the front door for programs. Fields are set
//!   through named methods and **validated at build time** (zero WAL
//!   shards, zero segment bytes and their friends are rejected before a
//!   `Db` ever opens half-configured).
//! * [`DbConfig::from_env_overlay`] — production defaults with the
//!   `INSTANTDB_TEST_*` knobs applied (debug builds only). This is the
//!   one place in the workspace that reads those variables.
//! * [`DbConfig::default`] — delegates to `from_env_overlay`, so every
//!   test constructed from defaults participates in the CI matrix.

use std::path::PathBuf;

use instant_common::{Duration, Error, Result};
use instant_storage::SecurePolicy;
use instant_wal::group::GroupCommitConfig;

/// How row images are logged.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalMode {
    /// No logging (volatile store; fastest, used as a bench baseline).
    Off,
    /// Classical plaintext WAL — the forensic-leaky baseline of E8.
    Plain,
    /// Degradation-aware WAL: images sealed under time-windowed keys.
    Sealed,
}

/// Engine configuration.
///
/// Prefer [`DbConfig::builder`] over struct literals: the builder
/// validates cross-field constraints at build time. The fields stay
/// public so tests can pin exactly one knob with
/// `DbConfig { field, ..DbConfig::default() }`.
#[derive(Debug, Clone)]
pub struct DbConfig {
    /// Buffer pool frames.
    pub buffer_frames: usize,
    /// Buffer pool shards (rounded up to a power of two; 0 = automatic).
    /// More shards reduce contention between degradation batches and
    /// concurrent queries touching different pages.
    pub pool_shards: usize,
    /// Heap deletion policy (secure overwrite vs classical naive).
    pub secure: SecurePolicy,
    pub wal_mode: WalMode,
    /// WAL shard count: independent per-shard segment directories, each
    /// with its own group-commit drain pipeline, behind one global LSN
    /// allocator (see `instant_wal::WalSet`). `0` = automatic (derived
    /// from available parallelism, clamped to [1, 4]); `1` reproduces
    /// the classical single-directory log byte-for-byte. Reopening a
    /// directory that already holds more shards than requested uses the
    /// on-disk count.
    pub wal_shards: usize,
    /// Key-shredding window length (Sealed mode).
    pub key_window: Duration,
    /// Max transitions per degradation batch (0 = unbounded).
    pub batch_max: usize,
    /// Group-commit pipeline: `Some` routes every commit through
    /// per-shard log-writer/fsync thread pairs that batch concurrent
    /// committers behind one fsync per durability epoch; `None` makes
    /// each commit pay its own append + fsync inline (the classical
    /// baseline).
    pub group_commit: Option<GroupCommitConfig>,
    /// Background checkpoint interval for
    /// [`Checkpointer::spawn_from_config`](crate::daemon::Checkpointer);
    /// `None` leaves checkpointing caller-driven.
    pub checkpoint_every: Option<std::time::Duration>,
    /// WAL segment capacity in bytes (clamped to the segment module's
    /// minimum). Smaller segments mean finer-grained truncation; the
    /// checkpointer frees whole dead segments, never rewriting retained
    /// data.
    pub wal_segment_bytes: u64,
    /// Cap on live WAL segments, **summed across shards**: when a commit
    /// observes more than this many segment files on disk it forces an
    /// early checkpoint (which truncates every wholly-dead segment), so
    /// the log's footprint stays bounded even if the periodic
    /// [`Checkpointer`](crate::daemon::Checkpointer) is off or slow.
    /// Each shard always keeps one active segment, so with K shards the
    /// reachable floor is K — size the cap accordingly. Enforced *after*
    /// the commit is acknowledged — admission never stalls behind the
    /// checkpoint of a competing committer (the check is skipped while
    /// another checkpoint is already running). `None` (default) leaves
    /// retention to explicit/background checkpoints.
    pub wal_retention_segments: Option<u64>,
    /// Data directory prefix; `None` = ephemeral temp files.
    pub path: Option<PathBuf>,
    /// Key-derivation seed.
    pub key_seed: u64,
    /// Slow-query threshold: statements slower than this land in the
    /// observability plane's bounded slow-query ring (statement kind,
    /// declared purpose, elapsed — never the SQL text). `None` disables
    /// the ring; the served front-end arms its own default when the
    /// engine config leaves this unset (see `ServerConfig`).
    pub slow_query: Option<std::time::Duration>,
    /// Degraded-replica mode: when `Some(s)`, externally replayed
    /// operations (`Db::replay_external_ops`, the replication follower's
    /// apply path) eagerly degrade every degradable column through at
    /// least `s` transitions before the tuple reaches the heap, and the
    /// engine enforces the invariant that nothing more precise than
    /// stage `s` is ever stored. Leaders and plain followers leave this
    /// `None`.
    pub replica_degrade_to: Option<u8>,
}

impl DbConfig {
    /// Pure production defaults — no environment read, deterministic in
    /// every build. [`DbConfig::default`] layers the test overlay on top.
    pub fn base() -> DbConfig {
        DbConfig {
            buffer_frames: 1024,
            pool_shards: 0,
            secure: SecurePolicy::Overwrite,
            wal_mode: WalMode::Sealed,
            wal_shards: 0,
            key_window: Duration::hours(1),
            batch_max: 1024,
            group_commit: Some(GroupCommitConfig::default()),
            checkpoint_every: None,
            wal_segment_bytes: instant_wal::segment::DEFAULT_SEGMENT_BYTES,
            wal_retention_segments: None,
            path: None,
            key_seed: 0x1DB0_CAFE,
            slow_query: None,
            replica_degrade_to: None,
        }
    }

    /// [`DbConfig::base`] with the `INSTANTDB_TEST_*` environment knobs
    /// applied — the test-harness overlay behind CI's degraded-config
    /// matrix:
    ///
    /// * `INSTANTDB_TEST_GROUP_COMMIT=off|0|false` — inline per-commit
    ///   fsync instead of the pipeline;
    /// * `INSTANTDB_TEST_WAL_SHARDS=<n>` — pin the WAL shard count
    ///   (`1` = classical single-directory log);
    /// * `INSTANTDB_TEST_POOL_SHARDS=<n>` — pin the buffer-pool shard
    ///   count;
    /// * `INSTANTDB_TEST_CHECKPOINT_EVERY_MS=<n>` — arm background
    ///   checkpointing wherever a config is spawned from defaults;
    /// * `INSTANTDB_TEST_WAL_SEGMENT_BYTES=<n>` — WAL segment capacity.
    ///
    /// The knobs are honored **only in debug builds**
    /// (`debug_assertions`): a release binary's defaults stay pure and
    /// deterministic, so a stray environment variable can never silently
    /// weaken production durability configuration. CI's matrix lane runs
    /// the debug test suite. This function is the single place the
    /// workspace reads those variables; everything else goes through it
    /// (usually via [`DbConfig::default`]).
    pub fn from_env_overlay() -> DbConfig {
        let mut cfg = DbConfig::base();
        let profile = test_profile();
        if profile.group_commit_off {
            cfg.group_commit = None;
        }
        if let Some(n) = profile.wal_shards {
            cfg.wal_shards = n;
        }
        if let Some(n) = profile.pool_shards {
            cfg.pool_shards = n;
        }
        cfg.checkpoint_every = profile
            .checkpoint_every_ms
            .map(std::time::Duration::from_millis);
        if let Some(n) = profile.wal_segment_bytes {
            cfg.wal_segment_bytes = n;
        }
        cfg
    }

    /// Start a validating builder from [`DbConfig::default`] (production
    /// defaults + test overlay, like every other construction path).
    pub fn builder() -> DbConfigBuilder {
        DbConfigBuilder {
            cfg: DbConfig::default(),
            wal_shards_explicit: false,
        }
    }

    /// The WAL shard count [`Db::open`](crate::db::Db::open) will
    /// actually use: an explicit `wal_shards`, or (when 0) the machine's
    /// available parallelism clamped to `[1, 4]`. The on-disk layout can
    /// still widen this on reopen (`WalSet` never drops existing shard
    /// directories).
    pub fn effective_wal_shards(&self) -> usize {
        if self.wal_shards != 0 {
            return self.wal_shards;
        }
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
            .clamp(1, 4)
    }
}

impl Default for DbConfig {
    /// The production defaults, overridable per-process by the
    /// `INSTANTDB_TEST_*` environment knobs (see
    /// [`DbConfig::from_env_overlay`]). CI's config-matrix lane uses
    /// those knobs to run the whole suite under degraded configurations
    /// (inline commits, a single WAL shard, one pool shard, an
    /// aggressive checkpointer, tiny WAL segments) so non-default paths
    /// stay exercised. Tests that *assert* a specific configuration set
    /// the field explicitly instead of relying on this default.
    fn default() -> Self {
        DbConfig::from_env_overlay()
    }
}

/// Validating builder for [`DbConfig`]. Obtained from
/// [`DbConfig::builder`]; finished with [`DbConfigBuilder::build`],
/// which rejects configurations the engine would misbehave under
/// (zero WAL shards, zero-byte segments, a zero-length key window,
/// a zero retention cap) instead of letting them reach `Db::open`.
#[derive(Debug, Clone)]
pub struct DbConfigBuilder {
    cfg: DbConfig,
    /// Whether [`wal_shards`](DbConfigBuilder::wal_shards) was called:
    /// an *explicit* `0` is a caller bug and rejected at build time,
    /// while the inherited default `0` still means auto-selection.
    wal_shards_explicit: bool,
}

impl DbConfigBuilder {
    /// WAL shard count. `n == 0` is rejected at [`build`]
    /// (auto-selection is the *default*, expressed by not calling this).
    pub fn wal_shards(mut self, n: usize) -> Self {
        self.cfg.wal_shards = n;
        self.wal_shards_explicit = true;
        self
    }

    /// Enable the group-commit pipeline with `cfg`.
    pub fn group_commit(mut self, cfg: GroupCommitConfig) -> Self {
        self.cfg.group_commit = Some(cfg);
        self
    }

    /// Disable the group-commit pipeline (inline per-commit fsync).
    pub fn no_group_commit(mut self) -> Self {
        self.cfg.group_commit = None;
        self
    }

    /// Slow-query ring threshold.
    pub fn slow_query(mut self, threshold: std::time::Duration) -> Self {
        self.cfg.slow_query = Some(threshold);
        self
    }

    pub fn wal_mode(mut self, mode: WalMode) -> Self {
        self.cfg.wal_mode = mode;
        self
    }

    /// WAL segment capacity in bytes. `0` is rejected at [`build`].
    pub fn wal_segment_bytes(mut self, bytes: u64) -> Self {
        self.cfg.wal_segment_bytes = bytes;
        self
    }

    /// Live-segment cap (summed across shards). `Some(0)` is rejected
    /// at [`build`].
    pub fn wal_retention_segments(mut self, cap: u64) -> Self {
        self.cfg.wal_retention_segments = Some(cap);
        self
    }

    pub fn checkpoint_every(mut self, every: std::time::Duration) -> Self {
        self.cfg.checkpoint_every = Some(every);
        self
    }

    pub fn buffer_frames(mut self, frames: usize) -> Self {
        self.cfg.buffer_frames = frames;
        self
    }

    pub fn pool_shards(mut self, shards: usize) -> Self {
        self.cfg.pool_shards = shards;
        self
    }

    pub fn secure(mut self, policy: SecurePolicy) -> Self {
        self.cfg.secure = policy;
        self
    }

    pub fn key_window(mut self, window: Duration) -> Self {
        self.cfg.key_window = window;
        self
    }

    pub fn batch_max(mut self, max: usize) -> Self {
        self.cfg.batch_max = max;
        self
    }

    pub fn key_seed(mut self, seed: u64) -> Self {
        self.cfg.key_seed = seed;
        self
    }

    pub fn path(mut self, p: impl Into<PathBuf>) -> Self {
        self.cfg.path = Some(p.into());
        self
    }

    /// Degraded-replica mode: every externally replayed tuple is
    /// eagerly degraded through at least `stage` transitions (see
    /// [`DbConfig::replica_degrade_to`]).
    pub fn replica_degrade_to(mut self, stage: u8) -> Self {
        self.cfg.replica_degrade_to = Some(stage);
        self
    }

    /// Validate and produce the config.
    ///
    /// [`build`]: DbConfigBuilder::build
    pub fn build(self) -> Result<DbConfig> {
        let cfg = self.cfg;
        if self.wal_shards_explicit && cfg.wal_shards == 0 {
            return Err(Error::Config(
                "wal_shards(0) is invalid: omit the call for auto-selection, \
                 or pass 1 for the classical single-directory log"
                    .into(),
            ));
        }
        if cfg.wal_segment_bytes == 0 {
            return Err(Error::Config(
                "wal_segment_bytes(0) is invalid: segments need capacity for \
                 at least one record (the segment layer clamps small values \
                 to its minimum, but zero is always a bug)"
                    .into(),
            ));
        }
        if cfg.wal_retention_segments == Some(0) {
            return Err(Error::Config(
                "wal_retention_segments(0) is invalid: each WAL shard always \
                 keeps one live segment"
                    .into(),
            ));
        }
        if cfg.key_window.as_micros() == 0 && cfg.wal_mode == WalMode::Sealed {
            return Err(Error::Config(
                "key_window must be non-zero in Sealed mode: a zero-length \
                 shredding window would retire every sealing key immediately"
                    .into(),
            ));
        }
        Ok(cfg)
    }
}

/// Parsed `INSTANTDB_TEST_*` knobs (debug builds only; all-defaults in
/// release). Produced by [`test_profile`], consumed by
/// [`DbConfig::from_env_overlay`] — nothing else should read those
/// variables.
#[derive(Debug, Default, Clone, Copy)]
pub struct TestProfile {
    pub group_commit_off: bool,
    pub wal_shards: Option<usize>,
    pub pool_shards: Option<usize>,
    pub checkpoint_every_ms: Option<u64>,
    pub wal_segment_bytes: Option<u64>,
}

/// Read the `INSTANTDB_TEST_*` knobs from the environment (debug builds
/// only; all-defaults in release). See [`DbConfig::from_env_overlay`]
/// for the variable list and semantics.
pub fn test_profile() -> TestProfile {
    if !cfg!(debug_assertions) {
        return TestProfile::default();
    }
    fn parse<T: std::str::FromStr>(name: &str) -> Option<T> {
        std::env::var(name).ok()?.trim().parse().ok()
    }
    let group_commit_off = std::env::var("INSTANTDB_TEST_GROUP_COMMIT")
        .map(|v| matches!(v.trim(), "off" | "0" | "false" | "none"))
        .unwrap_or(false);
    TestProfile {
        group_commit_off,
        wal_shards: parse("INSTANTDB_TEST_WAL_SHARDS"),
        pool_shards: parse("INSTANTDB_TEST_POOL_SHARDS"),
        checkpoint_every_ms: parse("INSTANTDB_TEST_CHECKPOINT_EVERY_MS"),
        wal_segment_bytes: parse("INSTANTDB_TEST_WAL_SEGMENT_BYTES"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_applies_fields_and_validates() {
        let cfg = DbConfig::builder()
            .wal_shards(4)
            .group_commit(GroupCommitConfig::default())
            .slow_query(std::time::Duration::from_millis(5))
            .wal_segment_bytes(1 << 16)
            .wal_retention_segments(8)
            .build()
            .unwrap();
        assert_eq!(cfg.wal_shards, 4);
        assert_eq!(cfg.effective_wal_shards(), 4);
        assert!(cfg.group_commit.is_some());
        assert_eq!(cfg.slow_query, Some(std::time::Duration::from_millis(5)));
        assert_eq!(cfg.wal_segment_bytes, 1 << 16);
        assert_eq!(cfg.wal_retention_segments, Some(8));
    }

    #[test]
    fn builder_sets_replica_degrade_stage() {
        let cfg = DbConfig::builder().replica_degrade_to(2).build().unwrap();
        assert_eq!(cfg.replica_degrade_to, Some(2));
        assert_eq!(DbConfig::base().replica_degrade_to, None);
    }

    #[test]
    fn builder_without_explicit_shards_keeps_auto_selection() {
        let cfg = DbConfig::builder().build().unwrap();
        assert_eq!(cfg.wal_shards, DbConfig::default().wal_shards);
        assert!(cfg.effective_wal_shards() >= 1);
    }

    #[test]
    fn builder_rejects_zero_shards_and_zero_segment_bytes() {
        let err = DbConfig::builder().wal_shards(0).build().unwrap_err();
        assert!(matches!(err, Error::Config(_)), "{err:?}");
        let err = DbConfig::builder()
            .wal_segment_bytes(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::Config(_)), "{err:?}");
        let err = DbConfig::builder()
            .wal_retention_segments(0)
            .build()
            .unwrap_err();
        assert!(matches!(err, Error::Config(_)), "{err:?}");
    }

    #[test]
    fn auto_shards_resolve_to_a_positive_bounded_count() {
        let cfg = DbConfig::base();
        assert_eq!(cfg.wal_shards, 0, "base leaves selection automatic");
        let n = cfg.effective_wal_shards();
        assert!((1..=4).contains(&n), "auto clamps to [1,4], got {n}");
    }

    #[test]
    fn base_reads_no_environment() {
        // `base()` must be deterministic even in debug builds where the
        // overlay knobs are live.
        let cfg = DbConfig::base();
        assert!(cfg.group_commit.is_some());
        assert_eq!(cfg.pool_shards, 0);
        assert_eq!(cfg.checkpoint_every, None);
        assert_eq!(
            cfg.wal_segment_bytes,
            instant_wal::segment::DEFAULT_SEGMENT_BYTES
        );
    }
}
