//! Concurrency and unwind-safety guarantees of the observability plane:
//! snapshots taken mid-storm never overcount, percentiles stay monotone,
//! and span nesting survives panics (guard-based exit).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use instant_obs::{span_depth, LatencyHistogram, Obs, Stage};

/// N writer threads hammer one histogram while a snapshot thread reads
/// it: every snapshot's bucket total must be ≤ the number of samples
/// already recorded (counted *before* each record call), and its
/// percentiles must be monotone — no torn read may manufacture samples.
#[test]
fn snapshots_under_concurrent_writers_never_overcount() {
    const WRITERS: usize = 4;
    const PER_WRITER: u64 = 20_000;
    let hist = Arc::new(LatencyHistogram::new());
    // Incremented BEFORE the matching record(): at every instant the
    // true recorded count is ≤ this, so any snapshot count must be too.
    let recorded = Arc::new(AtomicU64::new(0));
    let done = Arc::new(AtomicBool::new(false));

    std::thread::scope(|s| {
        for w in 0..WRITERS {
            let hist = hist.clone();
            let recorded = recorded.clone();
            s.spawn(move || {
                for i in 0..PER_WRITER {
                    recorded.fetch_add(1, Ordering::SeqCst);
                    // Spread across buckets so quantiles exercise the
                    // full accumulation walk.
                    hist.record((w as u64 + 1) * (i % 1024));
                }
            });
        }
        let hist2 = hist.clone();
        let recorded2 = recorded.clone();
        let done2 = done.clone();
        let snapshotter = s.spawn(move || {
            let mut snapshots = 0u64;
            loop {
                // Check-after-snapshot (not before): on a loaded host the
                // writers can finish before this thread is first
                // scheduled, and the test still wants ≥ 1 mid/post-storm
                // snapshot validated.
                let stop = done2.load(Ordering::SeqCst);
                let snap = hist2.snapshot();
                // The bucket walk itself bounds the count: a snapshot can
                // never exceed what was recorded before it finished. The
                // bound must be read *after* the walk — writers keep
                // landing samples while it runs, so a pre-walk load plus
                // any fixed slack is not an upper bound.
                let after = recorded2.load(Ordering::SeqCst);
                assert!(
                    snap.count <= after,
                    "snapshot count {} exceeds recorded {}",
                    snap.count,
                    after
                );
                let (p50, p95, p99) = (snap.p50(), snap.p95(), snap.p99());
                assert!(p50 <= p95, "p50 {p50} > p95 {p95}");
                assert!(p95 <= p99, "p95 {p95} > p99 {p99}");
                assert!(p99 <= snap.max_micros.max(p99), "p99 above max");
                snapshots += 1;
                if stop {
                    break;
                }
            }
            snapshots
        });
        // Let writers finish, then stop the snapshotter.
        // (Scope join order: spawned threads join at scope end; we flag
        // done once the writers' handles would be joined — simplest is a
        // short sleep loop watching the recorded count.)
        while recorded.load(Ordering::SeqCst) < (WRITERS as u64) * PER_WRITER {
            std::thread::yield_now();
        }
        done.store(true, Ordering::SeqCst);
        let snapshots = snapshotter.join().expect("snapshotter panicked");
        assert!(snapshots > 0, "snapshotter never ran");
    });

    // Quiesced: the final snapshot sees exactly every sample.
    let final_snap = hist.snapshot();
    assert_eq!(final_snap.count, (WRITERS as u64) * PER_WRITER);
}

/// Span exit is guard-based: a panic inside a nested span unwinds
/// through the guards and leaves the thread-local stack balanced, so a
/// worker thread that catches a panic keeps tracing correctly.
#[test]
fn span_nesting_survives_panics() {
    let obs = Obs::new();
    obs.set_spans_enabled(true);

    assert_eq!(span_depth(), 0);
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        let _outer = obs.span(Stage::QueryExec);
        let _inner = obs.span(Stage::QueryParse);
        assert_eq!(span_depth(), 2);
        panic!("mid-span failure");
    }));
    assert!(result.is_err(), "the panic must propagate");
    assert_eq!(span_depth(), 0, "unwind must pop every span");

    // Both spans recorded their (truncated) elapsed time on unwind…
    assert_eq!(obs.query_exec.snapshot().count, 1);
    assert_eq!(obs.query_parse.snapshot().count, 1);

    // …and the thread keeps tracing normally afterwards.
    {
        let _g = obs.span(Stage::QueryExec);
        assert_eq!(span_depth(), 1);
    }
    assert_eq!(span_depth(), 0);
    assert_eq!(obs.query_exec.snapshot().count, 2);
}

/// Purpose counters and the slow-query ring stay consistent under
/// concurrent recorders (the ring never exceeds its bound).
#[test]
fn record_query_is_thread_safe() {
    let obs = Arc::new(Obs::new());
    obs.set_slow_query_threshold(Some(Duration::from_micros(1)));
    std::thread::scope(|s| {
        for t in 0..4 {
            let obs = obs.clone();
            s.spawn(move || {
                let purpose = if t % 2 == 0 { "audit" } else { "billing" };
                for _ in 0..500 {
                    obs.record_query("select", Some(purpose), 1, Duration::from_micros(10));
                }
            });
        }
    });
    let snap = obs.snapshot();
    let total: u64 = snap.purposes.iter().map(|(_, c)| c.queries).sum();
    assert_eq!(total, 2000);
    assert!(snap.slow_queries.len() <= instant_obs::registry::SLOW_LOG_CAP);
    assert_eq!(snap.hist("query.total").map(|h| h.count), Some(2000));
}
