//! The observability plane: lock-free latency histograms, lightweight
//! tracing spans, and one named point-in-time stats snapshot.
//!
//! The paper's core promise is *timely* degradation — a tuple that is
//! due to degrade and has not yet is a privacy violation in flight — so
//! the engine must be able to report not just counters after the fact
//! but *how late* its background machinery runs and *where* commit
//! latency goes. This crate is the substrate: every layer (WAL pipeline,
//! query path, checkpoint, recovery, the served front-end) records into
//! one [`Obs`] registry, and `SHOW STATS` / the `Stats` wire frame
//! expose the resulting [`StatsSnapshot`].
//!
//! Design constraints, in order:
//!
//! * **Lock-free on the hot path.** [`LatencyHistogram`] is an array of
//!   atomic log-spaced buckets; recording a sample is a handful of
//!   relaxed atomic adds, safe under any engine lock. The only mutexes
//!   in this crate guard cold-path state (purpose counters, the
//!   slow-query ring, snapshot providers) and are ranked in their own
//!   600-band, above every engine lock — they are leaves, acquired only
//!   after engine work completes (see INVARIANTS.md).
//! * **Zero cost when disabled.** Tracing spans ([`Obs::span`]) are
//!   gated by one atomic flag; when it is off the returned guard holds
//!   nothing — no clock read, no thread-local touch. The always-on
//!   histograms (commit ack, WAL drain/fsync, query total) cost a
//!   `Instant` pair and a few atomics per *drain* or *query*, which is
//!   noise next to an fsync.
//! * **Dependency-free.** Only `std` and the workspace `parking_lot`
//!   shim (so the debug lock-rank checker sees every lock here too).

pub mod hist;
pub mod registry;
pub mod span;

pub use hist::{HistogramSnapshot, LatencyHistogram};
pub use registry::{Obs, PurposeCounters, SlowQuery, StatsSnapshot, WalShardLane};
pub use span::{span_depth, span_stack, SpanGuard, Stage};
