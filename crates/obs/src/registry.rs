//! The typed metrics registry and its point-in-time snapshot.
//!
//! One [`Obs`] instance lives on the engine (`Db::obs`) and is shared by
//! every layer: the WAL group-commit pipeline records drain/fsync/ack
//! latencies, the query path records per-statement timings and
//! per-purpose counts, checkpoints and recovery record whole-pass spans,
//! and the served front-end registers a *provider* that contributes its
//! connection/admission counters. [`Obs::snapshot`] folds everything
//! into one [`StatsSnapshot`] — the value behind `SHOW STATS`, the
//! `Stats` wire frame, and the CI bench artifact's NDJSON lines.
//!
//! Lock discipline: the three mutexes here (purpose counters 600,
//! slow-query ring 610, providers 620) form the observability band of
//! the global rank order — *above* every engine lock, because they are
//! leaves: recorded into after engine work completes, never held across
//! a call back into the engine. Provider closures must be lock-free
//! (atomic loads only); they run under the providers mutex.

use std::collections::{BTreeMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::time::Duration;

use parking_lot::Mutex;

use crate::hist::{HistogramSnapshot, LatencyHistogram};
use crate::span::{SpanGuard, Stage};

/// Bounded capacity of the slow-query ring: old entries fall off the
/// front. Sized so a snapshot stays a frame, not a log shipment.
pub const SLOW_LOG_CAP: usize = 128;

/// Per-purpose usage counters — the purpose hierarchy made observable,
/// not just enforceable.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PurposeCounters {
    /// Statements executed while this purpose was declared.
    pub queries: u64,
    /// Rows returned or affected by those statements.
    pub rows: u64,
}

/// One over-threshold statement in the slow-query ring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SlowQuery {
    /// Statement kind (`select`, `insert`, …) — never the SQL text, so
    /// the ring cannot leak literals that degradation already shredded.
    pub kind: String,
    /// The session's declared purpose (`(none)` when undeclared).
    pub purpose: String,
    /// Wall-clock execution time, microseconds.
    pub elapsed_micros: u64,
}

type ProviderFn = Box<dyn Fn() -> Vec<(String, u64)> + Send + Sync>;

/// Per-shard lane of the sharded WAL pipeline: the same drain/fsync
/// latency pair the global `wal.drain`/`wal.fsync` histograms record,
/// but scoped to one shard so a slow disk or a hot shard shows up as
/// *which* pipeline is behind, not just a fatter global tail. Lanes are
/// created on demand by [`Obs::wal_shard_lane`] and recorded into
/// lock-free; snapshots surface them as `wal.drain.shard<k>` /
/// `wal.fsync.shard<k>`.
pub struct WalShardLane {
    /// One whole drain epoch on this shard (append → fsync → ack).
    pub drain: LatencyHistogram,
    /// The fsyncs issued by this shard's fsyncer thread.
    pub fsync: LatencyHistogram,
}

impl WalShardLane {
    fn new() -> WalShardLane {
        WalShardLane {
            drain: LatencyHistogram::new(),
            fsync: LatencyHistogram::new(),
        }
    }
}

/// The engine-wide observability registry. Cheap to record into from
/// any thread; see the crate docs for the cost model.
pub struct Obs {
    /// Gates the tracing spans ([`Obs::span`]); histograms named in the
    /// commit/WAL/query hot paths record unconditionally.
    spans_enabled: AtomicBool,
    /// Slow-query threshold, microseconds; 0 disables the ring.
    slow_query_micros: AtomicU64,
    /// Commit pipeline: submit → durable-acknowledged, per commit
    /// (pipeline ticket wait or the inline append+fsync).
    pub commit_ack: LatencyHistogram,
    /// Commit pipeline: enqueue cost alone (span-gated).
    pub commit_submit: LatencyHistogram,
    /// WAL writer: one whole drain (append batch + fsync + complete).
    pub wal_drain: LatencyHistogram,
    /// WAL writer: the fsync alone.
    pub wal_fsync: LatencyHistogram,
    /// Query path: whole statement, parse through result.
    pub query_total: LatencyHistogram,
    /// Query path: SQL → AST (span-gated).
    pub query_parse: LatencyHistogram,
    /// Query path: AST → output (span-gated).
    pub query_exec: LatencyHistogram,
    /// Served front-end: result frame onto the wire (span-gated).
    pub query_reply: LatencyHistogram,
    /// One whole checkpoint (always recorded — see [`Obs::timed`]).
    pub checkpoint: LatencyHistogram,
    /// One whole recovery (always recorded — see [`Obs::timed`]).
    pub recovery: LatencyHistogram,
    /// Replication lag: sealed-segment age at the moment a follower's
    /// ack covers it (leader-side, recorded by the segment shipper).
    pub repl_lag: LatencyHistogram,
    /// Purpose name → usage counters. BTreeMap for stable snapshot
    /// order.
    purposes: Mutex<BTreeMap<String, PurposeCounters>>, // lock-rank: 600
    /// The bounded slow-query ring.
    slow: Mutex<VecDeque<SlowQuery>>, // lock-rank: 610
    /// Named counter providers (the server registers one); replaced by
    /// name on re-registration so a restarted front-end over the same
    /// engine never double-reports.
    providers: Mutex<Vec<(String, ProviderFn)>>, // lock-rank: 620
    /// Per-shard WAL pipeline lanes, indexed by shard. The mutex guards
    /// only lane *creation* (at pipeline spawn) and snapshot iteration;
    /// recording goes through the `Arc` each pipeline holds, lock-free.
    wal_shard_lanes: Mutex<Vec<std::sync::Arc<WalShardLane>>>, // lock-rank: 630
}

impl Default for Obs {
    fn default() -> Self {
        Self::new()
    }
}

impl Obs {
    pub fn new() -> Obs {
        Obs {
            spans_enabled: AtomicBool::new(false),
            slow_query_micros: AtomicU64::new(0),
            commit_ack: LatencyHistogram::new(),
            commit_submit: LatencyHistogram::new(),
            wal_drain: LatencyHistogram::new(),
            wal_fsync: LatencyHistogram::new(),
            query_total: LatencyHistogram::new(),
            query_parse: LatencyHistogram::new(),
            query_exec: LatencyHistogram::new(),
            query_reply: LatencyHistogram::new(),
            checkpoint: LatencyHistogram::new(),
            recovery: LatencyHistogram::new(),
            repl_lag: LatencyHistogram::new(),
            purposes: Mutex::ranked(600, BTreeMap::new()),
            slow: Mutex::ranked(610, VecDeque::new()),
            providers: Mutex::ranked(620, Vec::new()),
            wal_shard_lanes: Mutex::ranked(630, Vec::new()),
        }
    }

    /// The drain/fsync lane for WAL shard `shard`, created on first use.
    /// Pipelines call this once at spawn and keep the `Arc`; every
    /// record afterwards is lock-free.
    pub fn wal_shard_lane(&self, shard: usize) -> std::sync::Arc<WalShardLane> {
        let mut lanes = self.wal_shard_lanes.lock();
        while lanes.len() <= shard {
            lanes.push(std::sync::Arc::new(WalShardLane::new()));
        }
        lanes[shard].clone()
    }

    /// Are tracing spans recording?
    pub fn spans_enabled(&self) -> bool {
        self.spans_enabled.load(Ordering::Relaxed)
    }

    /// Enable/disable tracing spans (the served engine enables them).
    pub fn set_spans_enabled(&self, on: bool) {
        self.spans_enabled.store(on, Ordering::Relaxed);
    }

    /// The histogram behind a stage.
    pub fn stage_hist(&self, stage: Stage) -> &LatencyHistogram {
        match stage {
            Stage::CommitSubmit => &self.commit_submit,
            Stage::QueryParse => &self.query_parse,
            Stage::QueryExec => &self.query_exec,
            Stage::QueryReply => &self.query_reply,
            Stage::Checkpoint => &self.checkpoint,
            Stage::Recovery => &self.recovery,
        }
    }

    /// Enter a tracing span for `stage`. When spans are disabled this
    /// returns an inert guard: no clock read, no thread-local push.
    pub fn span(&self, stage: Stage) -> SpanGuard<'_> {
        if self.spans_enabled() {
            SpanGuard::enter(stage.name(), self.stage_hist(stage))
        } else {
            SpanGuard::disabled()
        }
    }

    /// Enter a span that *always* records into `stage`'s histogram —
    /// for cold stages (checkpoint, recovery) whose duration matters
    /// even in embedded engines that never enable spans. The
    /// thread-local name stack is maintained only while spans are on.
    pub fn timed(&self, stage: Stage) -> SpanGuard<'_> {
        if self.spans_enabled() {
            SpanGuard::enter(stage.name(), self.stage_hist(stage))
        } else {
            SpanGuard::enter_untracked(self.stage_hist(stage))
        }
    }

    /// Slow-query threshold in microseconds (0 = ring disabled).
    pub fn slow_query_micros(&self) -> u64 {
        self.slow_query_micros.load(Ordering::Relaxed)
    }

    /// Set the slow-query threshold (`None` disables the ring).
    pub fn set_slow_query_threshold(&self, threshold: Option<Duration>) {
        let micros = threshold
            .map(|d| u64::try_from(d.as_micros()).unwrap_or(u64::MAX).max(1))
            .unwrap_or(0);
        self.slow_query_micros.store(micros, Ordering::Relaxed);
    }

    /// Record one finished statement: always feeds `query_total` and the
    /// per-purpose counters; lands in the slow-query ring when the
    /// threshold is set and exceeded. Call with no engine lock held —
    /// the purpose map (rank 600) and ring (610) are above the engine
    /// bands, so this is safe even from a worker holding its session
    /// lock, but must never run under catalog/WAL locks going the other
    /// way.
    pub fn record_query(
        &self,
        kind: &'static str,
        purpose: Option<&str>,
        rows: u64,
        elapsed: Duration,
    ) {
        let micros = u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX);
        self.query_total.record(micros);
        let purpose = purpose.unwrap_or("(none)");
        {
            let mut purposes = self.purposes.lock();
            let c = purposes.entry(purpose.to_string()).or_default();
            c.queries += 1;
            c.rows += rows;
        }
        let threshold = self.slow_query_micros();
        if threshold != 0 && micros >= threshold {
            let mut slow = self.slow.lock();
            if slow.len() == SLOW_LOG_CAP {
                slow.pop_front();
            }
            slow.push_back(SlowQuery {
                kind: kind.to_string(),
                purpose: purpose.to_string(),
                elapsed_micros: micros,
            });
        }
    }

    /// Register (or replace, by name) a counter provider. Providers run
    /// at snapshot time under the providers mutex (rank 620) and must be
    /// lock-free — atomic loads only.
    pub fn register_provider<F>(&self, name: &str, f: F)
    where
        F: Fn() -> Vec<(String, u64)> + Send + Sync + 'static,
    {
        let mut providers = self.providers.lock();
        providers.retain(|(n, _)| n != name);
        providers.push((name.to_string(), Box::new(f)));
    }

    /// Snapshot this registry's own state: the named histograms, the
    /// per-purpose counters, the slow-query ring, and every provider's
    /// counters. Engine-side counters and gauges (WAL/db/scheduler) are
    /// appended by the engine's snapshot builder on top of this.
    pub fn snapshot(&self) -> StatsSnapshot {
        let mut hists = vec![
            ("commit.ack".to_string(), self.commit_ack.snapshot()),
            ("commit.submit".to_string(), self.commit_submit.snapshot()),
            ("wal.drain".to_string(), self.wal_drain.snapshot()),
            ("wal.fsync".to_string(), self.wal_fsync.snapshot()),
            ("query.total".to_string(), self.query_total.snapshot()),
            ("query.parse".to_string(), self.query_parse.snapshot()),
            ("query.exec".to_string(), self.query_exec.snapshot()),
            ("query.reply".to_string(), self.query_reply.snapshot()),
            ("checkpoint".to_string(), self.checkpoint.snapshot()),
            ("recovery".to_string(), self.recovery.snapshot()),
            ("repl.lag".to_string(), self.repl_lag.snapshot()),
        ];
        for (k, lane) in self.wal_shard_lanes.lock().iter().enumerate() {
            hists.push((format!("wal.drain.shard{k}"), lane.drain.snapshot()));
            hists.push((format!("wal.fsync.shard{k}"), lane.fsync.snapshot()));
        }
        let purposes: Vec<(String, PurposeCounters)> = self
            .purposes
            .lock()
            .iter()
            .map(|(name, c)| (name.clone(), *c))
            .collect();
        let slow_queries: Vec<SlowQuery> = self.slow.lock().iter().cloned().collect();
        let mut counters = Vec::new();
        for (name, provider) in self.providers.lock().iter() {
            for (key, value) in provider() {
                counters.push((format!("{name}.{key}"), value));
            }
        }
        StatsSnapshot {
            counters,
            gauges: Vec::new(),
            hists,
            purposes,
            slow_queries,
        }
    }
}

impl std::fmt::Debug for Obs {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Obs")
            .field("spans_enabled", &self.spans_enabled())
            .field("slow_query_micros", &self.slow_query_micros())
            .field("commit_ack", &self.commit_ack.snapshot())
            .finish_non_exhaustive()
    }
}

/// One named, point-in-time view of everything the engine knows about
/// itself: monotonic counters, instantaneous gauges, latency histograms,
/// per-purpose usage, and the slow-query ring. This is the payload of
/// `SHOW STATS` and the `Stats` wire frame.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct StatsSnapshot {
    /// Monotonic counters, `(name, value)`.
    pub counters: Vec<(String, u64)>,
    /// Instantaneous gauges, `(name, value)` — e.g. the per-stage
    /// degradation-timeliness lag.
    pub gauges: Vec<(String, i64)>,
    /// Named latency histograms.
    pub hists: Vec<(String, HistogramSnapshot)>,
    /// Per-purpose query/row counters, sorted by purpose name.
    pub purposes: Vec<(String, PurposeCounters)>,
    /// The slow-query ring, oldest first.
    pub slow_queries: Vec<SlowQuery>,
}

impl StatsSnapshot {
    /// Look up a counter by name.
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| *v)
    }

    /// Look up a gauge by name.
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.gauges.iter().find(|(n, _)| n == name).map(|(_, v)| *v)
    }

    /// Look up a histogram by name.
    pub fn hist(&self, name: &str) -> Option<&HistogramSnapshot> {
        self.hists.iter().find(|(n, _)| n == name).map(|(_, h)| h)
    }

    /// Render every non-empty histogram as one NDJSON line with an
    /// `id` of `"<prefix>/<hist name>"` plus integer-microsecond
    /// percentile fields — the format the CI bench lane appends to
    /// `BENCH_*.json` next to the criterion shim's own lines.
    pub fn ndjson_lines(&self, prefix: &str) -> Vec<String> {
        self.hists
            .iter()
            .filter(|(_, h)| !h.is_empty())
            .map(|(name, h)| {
                format!(
                    "{{\"id\":\"{}/{}\",\"count\":{},\"p50_us\":{},\"p95_us\":{},\"p99_us\":{},\"max_us\":{},\"mean_us\":{}}}",
                    escape_json(prefix),
                    escape_json(name),
                    h.count,
                    h.p50(),
                    h.p95(),
                    h.p99(),
                    h.max_micros,
                    h.mean_micros(),
                )
            })
            .collect()
    }
}

/// Conservative JSON string escape for snapshot/bench identifiers.
fn escape_json(s: &str) -> String {
    s.chars()
        .flat_map(|c| match c {
            '"' | '\\' => vec!['\\', c],
            c if c.is_control() => vec![' '],
            c => vec![c],
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_query_feeds_purposes_and_ring() {
        let obs = Obs::new();
        obs.set_slow_query_threshold(Some(Duration::from_micros(100)));
        obs.record_query("select", Some("billing"), 3, Duration::from_micros(50));
        obs.record_query("select", Some("billing"), 2, Duration::from_micros(500));
        obs.record_query("insert", None, 1, Duration::from_micros(1));
        let s = obs.snapshot();
        assert_eq!(s.hist("query.total").map(|h| h.count), Some(3));
        let billing = s
            .purposes
            .iter()
            .find(|(n, _)| n == "billing")
            .map(|(_, c)| *c)
            .expect("billing counters");
        assert_eq!(billing.queries, 2);
        assert_eq!(billing.rows, 5);
        assert_eq!(s.slow_queries.len(), 1);
        assert_eq!(s.slow_queries[0].kind, "select");
        assert_eq!(s.slow_queries[0].purpose, "billing");
        assert!(s.slow_queries[0].elapsed_micros >= 100);
    }

    #[test]
    fn slow_ring_is_bounded() {
        let obs = Obs::new();
        obs.set_slow_query_threshold(Some(Duration::from_micros(1)));
        for _ in 0..(SLOW_LOG_CAP + 10) {
            obs.record_query("select", None, 0, Duration::from_micros(10));
        }
        assert_eq!(obs.snapshot().slow_queries.len(), SLOW_LOG_CAP);
    }

    #[test]
    fn providers_replace_by_name() {
        let obs = Obs::new();
        obs.register_provider("server", || vec![("queries".into(), 1)]);
        obs.register_provider("server", || vec![("queries".into(), 7)]);
        let s = obs.snapshot();
        assert_eq!(s.counter("server.queries"), Some(7));
        assert_eq!(
            s.counters.len(),
            1,
            "re-registration replaced, not appended"
        );
    }

    #[test]
    fn ndjson_lines_skip_empty_hists() {
        let obs = Obs::new();
        obs.commit_ack.record(1000);
        let lines = obs.snapshot().ndjson_lines("bench/clients/1");
        assert_eq!(lines.len(), 1);
        assert!(lines[0].starts_with("{\"id\":\"bench/clients/1/commit.ack\","));
        assert!(lines[0].contains("\"p99_us\":"));
    }

    #[test]
    fn wal_shard_lanes_surface_in_snapshots_by_shard_index() {
        let obs = Obs::new();
        assert!(obs.snapshot().hist("wal.drain.shard0").is_none());
        let lane0 = obs.wal_shard_lane(0);
        let lane2 = obs.wal_shard_lane(2);
        assert!(
            std::sync::Arc::ptr_eq(&lane0, &obs.wal_shard_lane(0)),
            "re-acquiring a lane returns the same histograms"
        );
        lane0.drain.record(100);
        lane2.fsync.record(50);
        let s = obs.snapshot();
        assert_eq!(s.hist("wal.drain.shard0").map(|h| h.count), Some(1));
        assert_eq!(s.hist("wal.fsync.shard0").map(|h| h.count), Some(0));
        assert_eq!(
            s.hist("wal.drain.shard1").map(|h| h.count),
            Some(0),
            "asking for shard 2 materialized the lanes below it"
        );
        assert_eq!(s.hist("wal.fsync.shard2").map(|h| h.count), Some(1));
        let lines = s.ndjson_lines("x");
        assert!(lines.iter().any(|l| l.contains("\"x/wal.fsync.shard2\"")));
    }

    #[test]
    fn spans_disabled_by_default_and_record_when_enabled() {
        let obs = Obs::new();
        {
            let g = obs.span(Stage::Checkpoint);
            assert!(!g.is_recording());
        }
        assert!(obs.checkpoint.snapshot().is_empty());
        obs.set_spans_enabled(true);
        {
            let _g = obs.span(Stage::Checkpoint);
        }
        assert_eq!(obs.checkpoint.snapshot().count, 1);
    }
}
