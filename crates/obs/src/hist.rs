//! Lock-free log-bucketed latency histograms.
//!
//! Sixty-four power-of-two buckets over microseconds: bucket 0 holds
//! `0 µs`, bucket *i* holds `[2^(i-1), 2^i)` — the same bucketing the
//! degradation scheduler's lateness histogram uses, so percentiles from
//! the two are comparable. Recording is wait-free (relaxed atomic adds);
//! snapshots are taken bucket by bucket without stopping writers, so a
//! snapshot is a *consistent underestimate*: its bucket total can lag
//! concurrent recordings but can never exceed the number of samples
//! actually recorded before the snapshot began returning.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

const BUCKETS: usize = 64;

/// A concurrent latency histogram. Record from any thread, under any
/// lock; snapshot whenever.
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    sum_micros: AtomicU64,
    max_micros: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        Self::new()
    }
}

impl LatencyHistogram {
    pub const fn new() -> LatencyHistogram {
        // Named const purely to seed the array (inline const blocks need
        // a newer rustc than the workspace MSRV); every slot gets a
        // fresh atomic, the const itself is never read through.
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        LatencyHistogram {
            buckets: [ZERO; BUCKETS],
            sum_micros: AtomicU64::new(0),
            max_micros: AtomicU64::new(0),
        }
    }

    /// Index of the bucket covering `micros` (log2, clamped).
    fn bucket(micros: u64) -> usize {
        if micros == 0 {
            0
        } else {
            (64 - micros.leading_zeros() as usize).min(BUCKETS - 1)
        }
    }

    /// Record one sample, in microseconds. Wait-free.
    pub fn record(&self, micros: u64) {
        self.buckets[Self::bucket(micros)].fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
        self.max_micros.fetch_max(micros, Ordering::Relaxed);
    }

    /// Record one sample from an elapsed [`Duration`].
    pub fn record_duration(&self, elapsed: Duration) {
        self.record(u64::try_from(elapsed.as_micros()).unwrap_or(u64::MAX));
    }

    /// Point-in-time copy. The count is derived from the bucket loads
    /// themselves (not a separate counter), so percentiles are always
    /// internally consistent and the total never exceeds the number of
    /// samples recorded so far. `sum`/`max` are loaded independently and
    /// may include a sample whose bucket increment the snapshot missed.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; BUCKETS];
        let mut count = 0u64;
        for (slot, bucket) in buckets.iter_mut().zip(self.buckets.iter()) {
            *slot = bucket.load(Ordering::Relaxed);
            count += *slot;
        }
        HistogramSnapshot {
            buckets,
            count,
            sum_micros: self.sum_micros.load(Ordering::Relaxed),
            max_micros: self.max_micros.load(Ordering::Relaxed),
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        self.snapshot().fmt(f)
    }
}

/// An immutable, mergeable copy of a [`LatencyHistogram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket sample counts (see the module docs for the bucketing).
    pub buckets: [u64; BUCKETS],
    /// Total samples across the buckets at snapshot time.
    pub count: u64,
    /// Sum of all recorded sample values, microseconds.
    pub sum_micros: u64,
    /// Largest recorded sample, microseconds.
    pub max_micros: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; BUCKETS],
            count: 0,
            sum_micros: 0,
            max_micros: 0,
        }
    }
}

impl HistogramSnapshot {
    pub fn is_empty(&self) -> bool {
        self.count == 0
    }

    /// Mean sample value, microseconds (0 when empty).
    pub fn mean_micros(&self) -> u64 {
        self.sum_micros.checked_div(self.count).unwrap_or(0)
    }

    /// The value at quantile `q` in `[0, 1]`: the upper bound of the
    /// bucket containing the `ceil(q·count)`-th sample, clamped to the
    /// observed maximum (so `quantile(1.0) == max`). Empty → 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0) * self.count as f64).ceil() as u64).max(1);
        let mut seen = 0u64;
        for (i, &c) in self.buckets.iter().enumerate() {
            seen += c;
            if seen >= target {
                let upper = if i == 0 { 0 } else { 1u64 << i.min(62) };
                return upper.min(self.max_micros);
            }
        }
        self.max_micros
    }

    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Fold another snapshot into this one (bucket-wise add); the result
    /// behaves as if both histograms' samples were recorded into one.
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(other.buckets.iter()) {
            *a += b;
        }
        self.count += other.count;
        self.sum_micros += other.sum_micros;
        self.max_micros = self.max_micros.max(other.max_micros);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        assert_eq!(LatencyHistogram::bucket(0), 0);
        assert_eq!(LatencyHistogram::bucket(1), 1);
        assert_eq!(LatencyHistogram::bucket(2), 2);
        assert_eq!(LatencyHistogram::bucket(3), 2);
        assert_eq!(LatencyHistogram::bucket(4), 3);
        assert_eq!(LatencyHistogram::bucket(u64::MAX), 63);
    }

    #[test]
    fn quantiles_clamp_to_max_and_stay_monotone() {
        let h = LatencyHistogram::new();
        for us in [10u64, 20, 30, 1000, 5000] {
            h.record(us);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum_micros, 6060);
        assert_eq!(s.max_micros, 5000);
        assert!(s.p50() <= s.p95());
        assert!(s.p95() <= s.p99());
        assert!(s.p99() <= s.max_micros);
        assert_eq!(s.quantile(1.0), 5000, "top quantile clamps to max");
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = LatencyHistogram::new().snapshot();
        assert!(s.is_empty());
        assert_eq!(s.p99(), 0);
        assert_eq!(s.mean_micros(), 0);
    }

    #[test]
    fn merge_adds_samples() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(100);
        b.record(200);
        b.record(300);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.sum_micros, 600);
        assert_eq!(m.max_micros, 300);
    }
}
