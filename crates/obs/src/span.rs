//! Lightweight tracing spans.
//!
//! A span is a guard: entering pushes the stage name onto a thread-local
//! stack and stamps the clock; dropping the guard records the elapsed
//! time into the stage's histogram and pops the stack. Because exit
//! lives in `Drop`, nesting survives early returns, `?`, and panics —
//! an unwinding thread leaves the stack exactly as it found it.
//!
//! Spans are gated by [`Obs`](crate::Obs)'s atomic flag. When disabled,
//! [`SpanGuard::disabled`] holds nothing: no clock read, no thread-local
//! access, nothing to drop — the entire mechanism costs one relaxed
//! atomic load at the call site.

use std::cell::RefCell;
use std::time::Instant;

use crate::hist::LatencyHistogram;

/// The instrumented pipeline stages. Each owns one histogram on
/// [`Obs`](crate::Obs); the wire names are in [`Stage::name`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Stage {
    /// Commit pipeline: enqueue onto the group-commit queue (or the
    /// whole inline append+fsync when the pipeline is off).
    CommitSubmit,
    /// Query path: SQL text → AST.
    QueryParse,
    /// Query path: AST → result rows (including the commit wait).
    QueryExec,
    /// Query path: result frame onto the wire.
    QueryReply,
    /// One whole checkpoint (flush + rotate + shred + meta).
    Checkpoint,
    /// One whole recovery (meta + WAL replay + index rebuild).
    Recovery,
}

impl Stage {
    /// The snapshot/wire name of this stage's histogram.
    pub fn name(self) -> &'static str {
        match self {
            Stage::CommitSubmit => "commit.submit",
            Stage::QueryParse => "query.parse",
            Stage::QueryExec => "query.exec",
            Stage::QueryReply => "query.reply",
            Stage::Checkpoint => "checkpoint",
            Stage::Recovery => "recovery",
        }
    }
}

thread_local! {
    /// The active span names on this thread, innermost last.
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// Current span nesting depth on this thread (0 outside any span).
pub fn span_depth() -> usize {
    SPAN_STACK.with(|s| s.borrow().len())
}

/// The active span names on this thread, outermost first.
pub fn span_stack() -> Vec<&'static str> {
    SPAN_STACK.with(|s| s.borrow().clone())
}

/// An entered span; records its elapsed time on drop. Obtain via
/// [`Obs::span`](crate::Obs::span) (gated) or
/// [`Obs::timed`](crate::Obs::timed) (always recording).
#[must_use = "a span measures nothing unless it is held to the end of the stage"]
pub struct SpanGuard<'a> {
    active: Option<(Instant, &'a LatencyHistogram)>,
    /// Whether this guard pushed onto the thread-local name stack (a
    /// `timed` guard records without stack upkeep when spans are off).
    pushed: bool,
}

impl<'a> SpanGuard<'a> {
    pub(crate) fn enter(name: &'static str, hist: &'a LatencyHistogram) -> SpanGuard<'a> {
        SPAN_STACK.with(|s| s.borrow_mut().push(name));
        SpanGuard {
            active: Some((Instant::now(), hist)),
            pushed: true,
        }
    }

    /// Time into `hist` without touching the span stack — the always-on
    /// variant for cold stages (checkpoint, recovery).
    pub(crate) fn enter_untracked(hist: &'a LatencyHistogram) -> SpanGuard<'a> {
        SpanGuard {
            active: Some((Instant::now(), hist)),
            pushed: false,
        }
    }

    /// The no-op guard handed out while spans are disabled.
    pub(crate) const fn disabled() -> SpanGuard<'a> {
        SpanGuard {
            active: None,
            pushed: false,
        }
    }

    /// Whether this guard is actually timing (spans were enabled).
    pub fn is_recording(&self) -> bool {
        self.active.is_some()
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        if let Some((start, hist)) = self.active.take() {
            hist.record_duration(start.elapsed());
            if self.pushed {
                SPAN_STACK.with(|s| {
                    s.borrow_mut().pop();
                });
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_guard_touches_nothing() {
        let g = SpanGuard::disabled();
        assert!(!g.is_recording());
        assert_eq!(span_depth(), 0);
        drop(g);
        assert_eq!(span_depth(), 0);
    }

    #[test]
    fn nesting_tracks_enter_and_exit() {
        let h = LatencyHistogram::new();
        assert_eq!(span_depth(), 0);
        {
            let _outer = SpanGuard::enter("outer", &h);
            assert_eq!(span_stack(), vec!["outer"]);
            {
                let _inner = SpanGuard::enter("inner", &h);
                assert_eq!(span_stack(), vec!["outer", "inner"]);
            }
            assert_eq!(span_stack(), vec!["outer"]);
        }
        assert_eq!(span_depth(), 0);
        assert_eq!(h.snapshot().count, 2);
    }
}
