//! Multi-threaded buffer-pool stress: concurrent readers and writers
//! across shards under eviction pressure. Verifies the sharded pool's
//! invariants end to end — no lost writes, no torn reads, stable counters,
//! capacity respected — while frames are continuously evicted and faulted
//! back in.
//!
//! Run with `--release` for meaningful stress (the CI release lane does).

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use instant_common::PageId;
use instant_storage::{BufferPool, DiskManager, PAGE_SIZE};

const _: () = assert!(PAGE_SIZE >= 64, "payload layout below assumes room");

/// Payload layout: the counter at bytes [0,8) duplicated at [8,16).
/// A torn read (write latch not exclusive) would show a mismatch.
fn write_counter(payload: &mut [u8], v: u64) {
    payload[0..8].copy_from_slice(&v.to_le_bytes());
    payload[8..16].copy_from_slice(&v.to_le_bytes());
}

fn read_counter(payload: &[u8]) -> (u64, u64) {
    (
        u64::from_le_bytes(payload[0..8].try_into().unwrap()),
        u64::from_le_bytes(payload[8..16].try_into().unwrap()),
    )
}

#[test]
fn concurrent_readers_writers_under_eviction_pressure() {
    const PAGES: usize = 96;
    const FRAMES: usize = 24; // 4x over-subscribed: constant eviction
    const WRITERS: usize = 4;
    const READERS: usize = 4;
    const ROUNDS: u64 = if cfg!(debug_assertions) { 60 } else { 400 };

    let disk = Arc::new(DiskManager::temp("buf-stress").unwrap());
    let bp = Arc::new(BufferPool::with_shards(disk, FRAMES, 8));
    let pages: Vec<PageId> = (0..PAGES).map(|_| bp.allocate_page().unwrap()).collect();
    for &id in &pages {
        bp.with_page_mut(id, |p| write_counter(p.payload_mut(), 0))
            .unwrap();
    }

    let stop = Arc::new(AtomicBool::new(false));
    let mut handles = Vec::new();

    // Writers: disjoint page ranges, each page incremented ROUNDS times.
    let per_writer = PAGES / WRITERS;
    for w in 0..WRITERS {
        let bp = bp.clone();
        let mine: Vec<PageId> = pages[w * per_writer..(w + 1) * per_writer].to_vec();
        handles.push(std::thread::spawn(move || {
            for round in 1..=ROUNDS {
                for &id in &mine {
                    bp.with_page_mut(id, |p| {
                        let (a, b) = read_counter(p.payload());
                        assert_eq!(a, b, "torn frame under write latch");
                        assert_eq!(a, round - 1, "lost write on {id}");
                        write_counter(p.payload_mut(), round);
                    })
                    .unwrap();
                }
            }
        }));
    }

    // Readers: hammer random pages, checking coherence only (the counter
    // value races the writers, but the two copies must always agree).
    let mut reader_handles = Vec::new();
    for r in 0..READERS {
        let bp = bp.clone();
        let pages = pages.clone();
        let stop = stop.clone();
        reader_handles.push(std::thread::spawn(move || {
            let mut x = 0x9E37_79B9u64 + r as u64; // per-thread LCG
            let mut reads = 0usize;
            while !stop.load(Ordering::Relaxed) {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                let id = pages[(x >> 33) as usize % pages.len()];
                let (a, b) = bp.with_page(id, |p| read_counter(p.payload())).unwrap();
                assert_eq!(a, b, "torn read on {id}");
                assert!(a <= ROUNDS, "counter beyond writer progress on {id}");
                reads += 1;
            }
            reads
        }));
    }

    // A flusher thread exercises checkpoint paths concurrently.
    let flusher = {
        let bp = bp.clone();
        let stop = stop.clone();
        std::thread::spawn(move || {
            while !stop.load(Ordering::Relaxed) {
                bp.flush_all().unwrap();
                std::thread::yield_now();
            }
        })
    };

    for h in handles {
        h.join().unwrap();
    }
    stop.store(true, Ordering::Relaxed);
    let total_reads: usize = reader_handles.into_iter().map(|h| h.join().unwrap()).sum();
    flusher.join().unwrap();

    assert!(total_reads > 0, "readers made progress");
    // No lost writes: every page holds its writer's final count, even
    // after the frame cycled through eviction many times.
    for &id in &pages {
        let (a, b) = bp.with_page(id, |p| read_counter(p.payload())).unwrap();
        assert_eq!((a, b), (ROUNDS, ROUNDS), "final count on {id}");
    }
    assert!(bp.resident() <= FRAMES, "capacity bound violated");
    let (hits, misses, evictions) = bp.stats();
    assert!(evictions > 0, "over-subscription must evict");
    // Every access is exactly one hit or one miss; at minimum the setup
    // and verification touches are accounted for.
    assert!(hits + misses >= (PAGES as u64) * 2 + total_reads as u64);
}

#[test]
fn concurrent_allocations_yield_unique_resident_pages() {
    const THREADS: usize = 8;
    const PER_THREAD: usize = 50;

    let disk = Arc::new(DiskManager::temp("buf-alloc-race").unwrap());
    let bp = Arc::new(BufferPool::with_shards(disk, 64, 8));
    let mut handles = Vec::new();
    for t in 0..THREADS {
        let bp = bp.clone();
        handles.push(std::thread::spawn(move || {
            let mut ids = Vec::with_capacity(PER_THREAD);
            for i in 0..PER_THREAD {
                let id = bp.allocate_page().unwrap();
                bp.with_page_mut(id, |p| {
                    write_counter(p.payload_mut(), (t * PER_THREAD + i) as u64)
                })
                .unwrap();
                ids.push(id);
            }
            ids
        }));
    }
    let mut all: Vec<PageId> = handles
        .into_iter()
        .flat_map(|h| h.join().unwrap())
        .collect();
    all.sort();
    all.dedup();
    assert_eq!(all.len(), THREADS * PER_THREAD, "duplicate page ids");
    assert!(bp.resident() <= 64);
    // Everything written survives the eviction churn of the race.
    for (i, &id) in all.iter().enumerate() {
        let (a, b) = bp.with_page(id, |p| read_counter(p.payload())).unwrap();
        assert_eq!(a, b, "torn page {i}");
    }
}

#[test]
fn pinned_frames_block_eviction_but_not_other_shards() {
    // A long-running reader pins one page; writers on other pages keep
    // making progress (their shards and frames are independent).
    let disk = Arc::new(DiskManager::temp("buf-pin-progress").unwrap());
    let bp = Arc::new(BufferPool::with_shards(disk, 8, 4));
    let pinned_page = bp.allocate_page().unwrap();
    bp.with_page_mut(pinned_page, |p| write_counter(p.payload_mut(), 7))
        .unwrap();

    let entered = Arc::new(AtomicBool::new(false));
    let release = Arc::new(AtomicBool::new(false));
    let holder = {
        let bp = bp.clone();
        let entered = entered.clone();
        let release = release.clone();
        std::thread::spawn(move || {
            bp.with_page(pinned_page, |p| {
                entered.store(true, Ordering::Release);
                while !release.load(Ordering::Acquire) {
                    std::thread::yield_now();
                }
                read_counter(p.payload())
            })
            .unwrap()
        })
    };
    while !entered.load(Ordering::Acquire) {
        std::thread::yield_now();
    }
    // With the pin held, churn far more pages than the pool has frames.
    for i in 0..32u64 {
        let id = bp.allocate_page().unwrap();
        bp.with_page_mut(id, |p| write_counter(p.payload_mut(), i))
            .unwrap();
    }
    release.store(true, Ordering::Release);
    assert_eq!(holder.join().unwrap(), (7, 7));
    assert_eq!(
        bp.with_page(pinned_page, |p| read_counter(p.payload()))
            .unwrap(),
        (7, 7),
        "pinned page never evicted out from under its reader"
    );
}
