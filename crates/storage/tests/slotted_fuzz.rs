//! Property tests: slotted-page operations never corrupt live records, and
//! secure mode never leaks deleted bytes.

use instant_common::SlotId;
use instant_storage::page::PAGE_PAYLOAD;
use instant_storage::secure::SecurePolicy;
use instant_storage::slotted::SlottedPage;
use proptest::prelude::*;
use std::collections::HashMap;

#[derive(Debug, Clone)]
enum Op {
    Insert {
        len: usize,
        cap_extra: usize,
        fill: u8,
    },
    Update {
        pick: usize,
        len: usize,
        fill: u8,
    },
    Delete {
        pick: usize,
    },
    Compact,
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (1usize..200, 0usize..64, any::<u8>())
            .prop_map(|(len, cap_extra, fill)| Op::Insert { len, cap_extra, fill }),
        3 => (any::<prop::sample::Index>(), 1usize..200, any::<u8>())
            .prop_map(|(p, len, fill)| Op::Update { pick: p.index(1000), len, fill }),
        2 => any::<prop::sample::Index>().prop_map(|p| Op::Delete { pick: p.index(1000) }),
        1 => Just(Op::Compact),
    ]
}

fn run_fuzz(ops: Vec<Op>, policy: SecurePolicy) -> Result<(), TestCaseError> {
    let mut buf = vec![0u8; PAGE_PAYLOAD];
    let mut page = SlottedPage::init(&mut buf);
    // Model: slot -> (cap, bytes)
    let mut model: HashMap<SlotId, (usize, Vec<u8>)> = HashMap::new();
    for op in ops {
        match op {
            Op::Insert {
                len,
                cap_extra,
                fill,
            } => {
                let data = vec![fill; len];
                let cap = len + cap_extra;
                match page.insert(&data, cap) {
                    Ok(slot) => {
                        model.insert(slot, (cap, data));
                    }
                    Err(_) => {
                        // Page full is legal; nothing changed.
                    }
                }
            }
            Op::Update { pick, len, fill } => {
                let slots: Vec<SlotId> = model.keys().copied().collect();
                if slots.is_empty() {
                    continue;
                }
                let slot = slots[pick % slots.len()];
                let (cap, _) = model[&slot];
                let data = vec![fill; len];
                match page.update(slot, &data, policy) {
                    Ok(()) => {
                        prop_assert!(len <= cap, "update beyond cap must fail");
                        model.get_mut(&slot).unwrap().1 = data;
                    }
                    Err(_) => prop_assert!(len > cap, "in-cap update must succeed"),
                }
            }
            Op::Delete { pick } => {
                let slots: Vec<SlotId> = model.keys().copied().collect();
                if slots.is_empty() {
                    continue;
                }
                let slot = slots[pick % slots.len()];
                page.delete(slot, policy).unwrap();
                model.remove(&slot);
            }
            Op::Compact => {
                page.compact();
            }
        }
        // Every live record reads back exactly.
        for (slot, (_, data)) in &model {
            prop_assert_eq!(page.read(*slot).unwrap(), data.as_slice());
        }
        prop_assert_eq!(page.live_slots().len(), model.len());
    }
    Ok(())
}

proptest! {
    #[test]
    fn fuzz_secure(ops in proptest::collection::vec(arb_op(), 1..250)) {
        run_fuzz(ops, SecurePolicy::Overwrite)?;
    }

    #[test]
    fn fuzz_naive(ops in proptest::collection::vec(arb_op(), 1..250)) {
        run_fuzz(ops, SecurePolicy::Naive)?;
    }

    /// Secure delete + compact leaves zero trace of a sentinel pattern.
    #[test]
    fn secure_delete_never_leaks(payload in proptest::collection::vec(1u8..255, 8..64)) {
        let mut buf = vec![0u8; PAGE_PAYLOAD];
        {
            let mut page = SlottedPage::init(&mut buf);
            let slot = page.insert(&payload, payload.len() + 16).unwrap();
            page.insert(b"survivor", 16).unwrap();
            page.delete(slot, SecurePolicy::Overwrite).unwrap();
        }
        // The deleted payload must not appear anywhere in the raw buffer.
        if payload.len() >= 8 {
            let found = buf.windows(payload.len()).any(|w| w == payload.as_slice());
            prop_assert!(!found, "secure-deleted bytes survived in the page");
        }
    }
}
