//! Secure-deletion policy and the forensic scanner.
//!
//! The paper (citing Stahlberg, Miklau & Levine, SIGMOD'07) observes that
//! "traditional DBMSs cannot even guarantee the non-recoverability of
//! deleted data due to different forms of unintended retention in the data
//! space, the indexes and the logs". [`SecurePolicy`] selects between the
//! classical behaviour ([`SecurePolicy::Naive`] — pointer drop only, bytes
//! linger) and degradation-grade physical erasure
//! ([`SecurePolicy::Overwrite`]). The [`ForensicScanner`] plays the
//! attacker: it greps raw storage images for byte patterns that should have
//! been destroyed, and is the measurement instrument of experiment E8.

/// How record bytes are treated on delete / in-place update.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SecurePolicy {
    /// Classical engine: only metadata changes; old bytes stay on the page
    /// (and in the log) until overwritten by chance. Recoverable by
    /// forensics — the behaviour the paper deems unacceptable.
    Naive,
    /// Degradation-grade: previous bytes are zeroed before release, in the
    /// page image itself. Combined with WAL cryptographic erasure this
    /// closes the forensic channel.
    #[default]
    Overwrite,
}

impl SecurePolicy {
    pub fn overwrites(self) -> bool {
        matches!(self, SecurePolicy::Overwrite)
    }
}

/// A forensic "attacker" scanning raw byte images for recoverable values.
#[derive(Debug, Default)]
pub struct ForensicScanner {
    needles: Vec<Vec<u8>>,
}

/// Result of a forensic scan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ForensicReport {
    /// Needles found somewhere in the scanned images.
    pub recovered: Vec<Vec<u8>>,
    /// Total occurrences across all images.
    pub occurrences: usize,
    /// Bytes scanned.
    pub bytes_scanned: usize,
}

impl ForensicScanner {
    pub fn new() -> Self {
        Self::default()
    }

    /// Register a sensitive byte pattern the attacker is hunting for
    /// (typically the encoding of an accurate attribute value).
    pub fn hunt(&mut self, needle: impl Into<Vec<u8>>) {
        let n = needle.into();
        if !n.is_empty() {
            self.needles.push(n);
        }
    }

    /// Number of registered patterns.
    pub fn needle_count(&self) -> usize {
        self.needles.len()
    }

    /// Scan one or more raw images (heap file bytes, WAL bytes, index pages).
    pub fn scan<'a>(&self, images: impl IntoIterator<Item = &'a [u8]>) -> ForensicReport {
        let mut recovered: Vec<Vec<u8>> = Vec::new();
        let mut occurrences = 0usize;
        let mut bytes_scanned = 0usize;
        let images: Vec<&[u8]> = images.into_iter().collect();
        for needle in &self.needles {
            let mut found = false;
            for img in &images {
                let c = count_occurrences(img, needle);
                occurrences += c;
                found |= c > 0;
            }
            if found {
                recovered.push(needle.clone());
            }
        }
        for img in &images {
            bytes_scanned += img.len();
        }
        ForensicReport {
            recovered,
            occurrences,
            bytes_scanned,
        }
    }
}

impl ForensicReport {
    /// Fraction of hunted patterns that were recovered, in `[0, 1]`.
    pub fn recovery_rate(&self, total_needles: usize) -> f64 {
        if total_needles == 0 {
            0.0
        } else {
            self.recovered.len() as f64 / total_needles as f64
        }
    }

    pub fn clean(&self) -> bool {
        self.recovered.is_empty()
    }
}

fn count_occurrences(hay: &[u8], needle: &[u8]) -> usize {
    if needle.is_empty() || hay.len() < needle.len() {
        return 0;
    }
    hay.windows(needle.len()).filter(|w| *w == needle).count()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scanner_finds_plaintext() {
        let mut s = ForensicScanner::new();
        s.hunt(b"SECRET".to_vec());
        s.hunt(b"ADDRESS".to_vec());
        let img1 = b"xxxSECRETyyy".to_vec();
        let img2 = b"nothing here".to_vec();
        let r = s.scan([img1.as_slice(), img2.as_slice()]);
        assert_eq!(r.recovered, vec![b"SECRET".to_vec()]);
        assert_eq!(r.occurrences, 1);
        assert_eq!(r.bytes_scanned, img1.len() + img2.len());
        assert!((r.recovery_rate(2) - 0.5).abs() < 1e-12);
        assert!(!r.clean());
    }

    #[test]
    fn clean_report_when_nothing_recovered() {
        let mut s = ForensicScanner::new();
        s.hunt(b"GONE".to_vec());
        let img = vec![0u8; 128];
        let r = s.scan([img.as_slice()]);
        assert!(r.clean());
        assert_eq!(r.recovery_rate(1), 0.0);
    }

    #[test]
    fn counts_multiple_occurrences() {
        let mut s = ForensicScanner::new();
        s.hunt(b"ab".to_vec());
        let img = b"ababab".to_vec();
        let r = s.scan([img.as_slice()]);
        // Overlapping windows: positions 0,2,4 — plus 1,3 ("ba") don't match.
        assert_eq!(r.occurrences, 3);
    }

    #[test]
    fn empty_needles_ignored() {
        let mut s = ForensicScanner::new();
        s.hunt(Vec::<u8>::new());
        assert_eq!(s.needle_count(), 0);
    }

    #[test]
    fn policy_flags() {
        assert!(SecurePolicy::Overwrite.overwrites());
        assert!(!SecurePolicy::Naive.overwrites());
        assert_eq!(SecurePolicy::default(), SecurePolicy::Overwrite);
    }
}
