//! Buffer pool: a fixed number of in-memory frames over a [`DiskManager`],
//! with LRU eviction and write-back — **sharded** for concurrent access.
//!
//! # Concurrency model
//!
//! The pool is split into `shards` (a power of two); a page lives in the
//! shard selected by hashing its [`PageId`]. Each shard owns a mutex-guarded
//! frame map, and each resident frame (a `Slot`) carries its own `RwLock`
//! latch plus an atomic pin count. `with_page` / `with_page_mut` take the
//! shard lock only long enough to *pin* the frame; the caller's closure then
//! runs under the frame's read (resp. write) latch with the shard lock
//! released, so readers of different pages — and even of the same page —
//! proceed in parallel, and a degradation batch never serializes against
//! foreground queries on an unrelated page.
//!
//! Invariants:
//!
//! * **Pins gate eviction.** A pin is taken under the shard lock and
//!   released (via a drop guard, so panics cannot leak it) only after the
//!   frame latch is dropped. Eviction inspects pin counts under the same
//!   shard lock, so `pins == 0` guarantees no latch holder exists and none
//!   can appear while the victim is being detached.
//! * **Global capacity.** Frame residency is bounded by `capacity` across
//!   all shards (an atomic reservation counter); the eviction victim is the
//!   globally least-recently-used unpinned frame, so LRU quality matches
//!   the old single-mutex pool.
//! * **No lost writes across eviction.** A dirty victim is written back
//!   *before* it leaves its shard map (the shard lock is held across the
//!   write-back), and a miss maps a write-latched placeholder *before*
//!   reading the disk — so at most one fault-in per page is in flight and
//!   a stale pre-eviction image can never re-enter the pool over newer
//!   bytes. Flushers pin frames like any other accessor, so they can never
//!   write back a detached, superseded frame either.
//! * **Counters.** `hits` = accesses served from a resident frame;
//!   `misses` = accesses that had to fault a frame in — including
//!   `allocate_page`, which materializes a fresh frame and therefore counts
//!   as a miss. Every successful page touch increments exactly one of the
//!   two (a failed fault-in may additionally count the waiters it strands).
//!
//! Closures may re-enter the pool for *other* pages (e.g. allocate while a
//! page is latched); re-latching the *same* page from its own closure, or
//! latching pages from two closures in opposite orders, deadlocks — same
//! discipline as any latch hierarchy, and the heap/index layers always
//! latch one page at a time.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU32, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use parking_lot::{Mutex, RwLock};

use instant_common::{Error, PageId, Result};

use crate::disk::DiskManager;
use crate::page::Page;

/// Default shard count for [`BufferPool::new`] (clamped to the capacity).
pub const DEFAULT_SHARDS: usize = 16;

/// Frame contents guarded by the per-frame latch.
struct Frame {
    page: Page,
    dirty: bool,
    /// Set (under the write latch) when a fault-in failed after other
    /// threads already pinned this placeholder: they must retry.
    broken: bool,
}

/// One resident frame: latch-guarded contents plus lock-free metadata.
struct Slot {
    // lock-rank: unranked(page latches are ordered by PageId discipline, not rank: with_page
    // closures may fault sibling pages back through the pool, re-entering shard maps)
    latch: RwLock<Frame>,
    /// Active accessors; a frame with `pins > 0` is never evicted.
    pins: AtomicU32,
    /// LRU clock: larger = more recently used.
    last_used: AtomicU64,
}

struct Shard {
    // lock-rank: unranked(shard maps sit below every ranked lock but are re-entered when a
    // page closure faults another page in; held only for map lookups, never across I/O)
    frames: Mutex<HashMap<PageId, Arc<Slot>>>,
}

/// Decrements the pin count when dropped, so a panicking closure cannot
/// leave a frame pinned forever.
struct Pinned {
    slot: Arc<Slot>,
}

impl Drop for Pinned {
    fn drop(&mut self) {
        self.slot.pins.fetch_sub(1, Ordering::Release);
    }
}

/// Shared, sharded buffer pool.
pub struct BufferPool {
    disk: Arc<DiskManager>,
    capacity: usize,
    shards: Box<[Shard]>,
    shard_mask: usize,
    /// Frames resident (or reserved for an in-flight fault-in).
    resident: AtomicUsize,
    tick: AtomicU64,
    hits: AtomicU64,
    misses: AtomicU64,
    evictions: AtomicU64,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl BufferPool {
    /// A pool of `capacity` frames over `disk`, with the default shard
    /// count (clamped so a tiny pool is not spread thinner than one frame
    /// per shard).
    pub fn new(disk: Arc<DiskManager>, capacity: usize) -> BufferPool {
        // Largest power of two ≤ min(DEFAULT_SHARDS, capacity), so shards
        // never outnumber frames.
        let bounded = DEFAULT_SHARDS.min(capacity).max(1);
        let shards = 1 << (usize::BITS - 1 - bounded.leading_zeros());
        Self::with_shards(disk, capacity, shards)
    }

    /// A pool with an explicit shard count (rounded up to a power of two).
    pub fn with_shards(disk: Arc<DiskManager>, capacity: usize, shards: usize) -> BufferPool {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        let n = shards.max(1).next_power_of_two();
        let shards = (0..n)
            .map(|_| Shard {
                frames: Mutex::new(HashMap::new()),
            })
            .collect::<Vec<_>>()
            .into_boxed_slice();
        BufferPool {
            disk,
            capacity,
            shards,
            shard_mask: n - 1,
            resident: AtomicUsize::new(0),
            tick: AtomicU64::new(0),
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            evictions: AtomicU64::new(0),
        }
    }

    pub fn disk(&self) -> &Arc<DiskManager> {
        &self.disk
    }

    /// Number of shards (always a power of two).
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    fn shard_of(&self, id: PageId) -> &Shard {
        // Fibonacci hashing spreads the sequential page ids the disk
        // manager hands out across shards.
        let h = (id.0 as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 32;
        &self.shards[h as usize & self.shard_mask]
    }

    fn next_tick(&self) -> u64 {
        self.tick.fetch_add(1, Ordering::Relaxed) + 1
    }

    /// Allocate a fresh page (resident, dirty and latched into its shard).
    ///
    /// The frame is reserved *before* the disk hands out an id, so a
    /// `Capacity` failure (every frame pinned) cannot leak a page id.
    pub fn allocate_page(&self) -> Result<PageId> {
        self.reserve_frame()?;
        let id = self.disk.allocate();
        self.misses.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(Slot {
            latch: RwLock::new(Frame {
                page: Page::new(id),
                dirty: true,
                broken: false,
            }),
            pins: AtomicU32::new(0),
            last_used: AtomicU64::new(self.next_tick()),
        });
        let prev = self.shard_of(id).frames.lock().insert(id, slot);
        debug_assert!(prev.is_none(), "fresh page id already resident");
        Ok(id)
    }

    /// Run `f` with read access to page `id`. The frame is pinned for the
    /// duration of the closure; other readers of the same page run
    /// concurrently under the shared latch.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> Result<R> {
        loop {
            let pinned = self.pin(id)?;
            let frame = pinned.slot.latch.read();
            if frame.broken {
                continue; // the fault-in we piggybacked on failed; retry
            }
            return Ok(f(&frame.page));
        }
    }

    /// Run `f` with exclusive write access to page `id`; marks the frame
    /// dirty.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> Result<R> {
        loop {
            let pinned = self.pin(id)?;
            let mut frame = pinned.slot.latch.write();
            if frame.broken {
                continue; // the fault-in we piggybacked on failed; retry
            }
            frame.dirty = true;
            return Ok(f(&mut frame.page));
        }
    }

    /// Pin page `id`, faulting it in from disk on a miss.
    ///
    /// A miss maps a *write-latched placeholder* under the shard lock and
    /// only then reads the disk: concurrent accessors of the same page pin
    /// the placeholder and wait on its latch instead of issuing their own
    /// reads, so a pre-eviction image can never re-enter the pool over
    /// newer bytes (at most one fault-in per page is in flight).
    fn pin(&self, id: PageId) -> Result<Pinned> {
        let shard = self.shard_of(id);
        if let Some(p) = self.try_pin_resident(shard, id, true) {
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(p);
        }
        self.reserve_frame()?;
        let mut frames = shard.frames.lock();
        // Re-check under the lock: another fault-in may have won between
        // the optimistic probe and here — then this access is served
        // resident after all and counts as a hit.
        if let Some(existing) = frames.get(&id) {
            let p = self.pin_slot(existing, true);
            drop(frames);
            self.resident.fetch_sub(1, Ordering::Release); // surplus reservation
            self.hits.fetch_add(1, Ordering::Relaxed);
            return Ok(p);
        }
        // Committed to faulting the page in: this is the one miss.
        self.misses.fetch_add(1, Ordering::Relaxed);
        let slot = Arc::new(Slot {
            latch: RwLock::new(Frame {
                page: Page::new(id),
                dirty: false,
                broken: false,
            }),
            pins: AtomicU32::new(1),
            last_used: AtomicU64::new(self.next_tick()),
        });
        frames.insert(id, slot.clone());
        let pinned = Pinned { slot };
        // Taking the write latch cannot block: the slot was created just
        // above and the shard lock is still held.
        let mut frame = pinned.slot.latch.write();
        drop(frames);
        match self.disk.read_page(id) {
            Ok(page) => {
                frame.page = page;
                drop(frame);
                Ok(pinned)
            }
            Err(e) => {
                // Waiters already pinned the placeholder; poison it so they
                // retry, then unmap it and give the reservation back.
                frame.broken = true;
                drop(frame);
                shard.frames.lock().remove(&id);
                self.resident.fetch_sub(1, Ordering::Release);
                Err(e)
            }
        }
    }

    /// Pin `id` if it is already resident in `shard`. `touch` stamps the
    /// LRU clock — true for real accesses; false for flush paths, which
    /// must not promote cold pages to most-recently-used.
    fn try_pin_resident(&self, shard: &Shard, id: PageId, touch: bool) -> Option<Pinned> {
        let frames = shard.frames.lock();
        frames.get(&id).map(|slot| self.pin_slot(slot, touch))
    }

    /// Pin a slot found in a (still locked) shard map. Callers must hold
    /// the owning shard's lock.
    fn pin_slot(&self, slot: &Arc<Slot>, touch: bool) -> Pinned {
        slot.pins.fetch_add(1, Ordering::Acquire);
        if touch {
            slot.last_used.store(self.next_tick(), Ordering::Relaxed);
        }
        Pinned { slot: slot.clone() }
    }

    /// Reserve one frame of global capacity, evicting if the pool is full.
    ///
    /// When every frame is pinned the reservation yields and retries for a
    /// bounded time before failing: pins held by *other* threads are
    /// transient — closures run for microseconds and the old whole-pool
    /// mutex simply queued such accessors — while a caller whose own
    /// closures pin everything can never be satisfied and must get the
    /// `Capacity` error rather than deadlock.
    fn reserve_frame(&self) -> Result<()> {
        let mut all_pinned_since: Option<std::time::Instant> = None;
        loop {
            let cur = self.resident.load(Ordering::Acquire);
            if cur < self.capacity {
                if self
                    .resident
                    .compare_exchange(cur, cur + 1, Ordering::AcqRel, Ordering::Relaxed)
                    .is_ok()
                {
                    return Ok(());
                }
                continue; // raced another reservation; retry
            }
            match self.evict_one() {
                Ok(()) => all_pinned_since = None, // progress: reset the clock
                Err(Error::Capacity(_))
                    if all_pinned_since
                        .get_or_insert_with(std::time::Instant::now)
                        .elapsed()
                        < std::time::Duration::from_millis(20) =>
                {
                    std::thread::yield_now();
                }
                Err(e) => return Err(e),
            }
        }
    }

    /// Evict the globally least-recently-used unpinned frame.
    fn evict_one(&self) -> Result<()> {
        loop {
            // Pass 1: find the global LRU candidate, one shard lock at a
            // time (never nested, so shard order cannot deadlock).
            let mut victim: Option<(usize, PageId)> = None;
            let mut best = u64::MAX;
            for (si, shard) in self.shards.iter().enumerate() {
                let frames = shard.frames.lock();
                for (pid, slot) in frames.iter() {
                    if slot.pins.load(Ordering::Acquire) != 0 {
                        continue;
                    }
                    let lu = slot.last_used.load(Ordering::Relaxed);
                    if victim.is_none() || lu < best {
                        best = lu;
                        victim = Some((si, *pid));
                    }
                }
            }
            let Some((si, pid)) = victim else {
                return Err(Error::Capacity("all buffer frames pinned".into()));
            };
            // Pass 2: detach it, re-validating under the shard lock. The
            // dirty write-back happens while the lock is held so a
            // concurrent miss on `pid` cannot read a stale disk image.
            let mut frames = self.shards[si].frames.lock();
            let Some(slot) = frames.get(&pid) else {
                continue; // evicted by someone else; rescan
            };
            if slot.pins.load(Ordering::Acquire) != 0 {
                continue; // re-pinned meanwhile; rescan
            }
            let slot = slot.clone();
            {
                // pins == 0 under the shard lock ⇒ the latch is free. Write
                // back *before* unmapping: if the disk write fails, the
                // frame stays resident and its bytes are not lost.
                let frame = slot.latch.read();
                if frame.dirty {
                    self.disk.write_page(&frame.page)?;
                }
            }
            frames.remove(&pid).expect("checked resident"); // lint:allow(L001, residency checked above under the same shard lock)
            self.resident.fetch_sub(1, Ordering::Release);
            self.evictions.fetch_add(1, Ordering::Relaxed);
            return Ok(());
        }
    }

    /// Write back every dirty frame and sync (checkpoint support).
    ///
    /// Each frame is *pinned* for its write-back (re-looked-up by id, not
    /// through a stale slot handle): a pinned frame cannot be evicted, so
    /// the flusher can never overwrite newer on-disk bytes with the image
    /// of a frame that was detached and superseded mid-flush.
    pub fn flush_all(&self) -> Result<()> {
        for id in self.resident_ids() {
            self.flush_one(id)?;
        }
        self.disk.sync()?;
        Ok(())
    }

    /// Write back one page if resident and dirty.
    pub fn flush_page(&self, id: PageId) -> Result<()> {
        self.flush_one(id)
    }

    fn flush_one(&self, id: PageId) -> Result<()> {
        let Some(pinned) = self.try_pin_resident(self.shard_of(id), id, false) else {
            return Ok(()); // evicted meanwhile — eviction wrote it back
        };
        // Probe under the shared latch first so flushing a clean page never
        // blocks its readers; only a dirty page pays for the write latch.
        if !pinned.slot.latch.read().dirty {
            return Ok(());
        }
        let mut frame = pinned.slot.latch.write();
        if frame.dirty {
            self.disk.write_page(&frame.page)?;
            frame.dirty = false;
        }
        Ok(())
    }

    /// Write back dirty frames and drop every *unpinned* frame — used by
    /// tests to force re-reads from disk. Frames pinned by an in-flight
    /// closure are flushed but stay resident (dropping them would orphan
    /// live writes).
    pub fn clear(&self) -> Result<()> {
        for shard in self.shards.iter() {
            // Detach + write back under the shard lock, exactly like
            // eviction, so concurrent faults cannot read a stale image.
            let mut frames = shard.frames.lock();
            let ids: Vec<PageId> = frames.keys().copied().collect();
            for id in ids {
                let slot = &frames[&id];
                if slot.pins.load(Ordering::Acquire) != 0 {
                    continue;
                }
                {
                    // pins == 0 under the shard lock ⇒ the latch is free.
                    let frame = slot.latch.read();
                    if frame.dirty {
                        self.disk.write_page(&frame.page)?;
                    }
                }
                frames.remove(&id);
                self.resident.fetch_sub(1, Ordering::Release);
            }
        }
        self.flush_all()
    }

    /// `(hits, misses, evictions)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        (
            self.hits.load(Ordering::Relaxed),
            self.misses.load(Ordering::Relaxed),
            self.evictions.load(Ordering::Relaxed),
        )
    }

    /// Resident frame count across all shards.
    pub fn resident(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.frames.lock().len())
            .sum::<usize>()
    }

    /// Snapshot the resident page ids (for flush paths) without holding
    /// any shard lock while frame latches are taken — a closure that holds
    /// a latch may itself be waiting on a shard lock.
    fn resident_ids(&self) -> Vec<PageId> {
        let mut out = Vec::new();
        for shard in self.shards.iter() {
            let frames = shard.frames.lock();
            out.extend(frames.keys().copied());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(frames: usize) -> BufferPool {
        let disk = Arc::new(DiskManager::temp("buf").unwrap());
        BufferPool::new(disk, frames)
    }

    #[test]
    fn allocate_and_access() {
        let bp = pool(4);
        let id = bp.allocate_page().unwrap();
        bp.with_page_mut(id, |p| p.payload_mut()[0] = 0xAA).unwrap();
        let v = bp.with_page(id, |p| p.payload()[0]).unwrap();
        assert_eq!(v, 0xAA);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let bp = pool(2);
        let ids: Vec<PageId> = (0..5).map(|_| bp.allocate_page().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            bp.with_page_mut(*id, |p| p.payload_mut()[0] = i as u8)
                .unwrap();
        }
        // Only 2 frames; earlier pages must have been evicted + written.
        assert!(bp.resident() <= 2);
        for (i, id) in ids.iter().enumerate() {
            let v = bp.with_page(*id, |p| p.payload()[0]).unwrap();
            assert_eq!(v, i as u8, "page {id} must survive eviction");
        }
        let (_, _, evictions) = bp.stats();
        assert!(evictions >= 3);
    }

    #[test]
    fn lru_prefers_oldest() {
        let bp = pool(2);
        let a = bp.allocate_page().unwrap();
        let b = bp.allocate_page().unwrap();
        // Touch a so b is the LRU victim.
        bp.with_page(a, |_| ()).unwrap();
        let c = bp.allocate_page().unwrap();
        // a stays resident; b evicted.
        assert!(bp.resident() <= 2);
        let (h0, _, _) = bp.stats();
        bp.with_page(a, |_| ()).unwrap();
        let (h1, _, _) = bp.stats();
        assert_eq!(h1, h0 + 1, "a should still be a hit");
        let _ = (b, c);
    }

    #[test]
    fn flush_all_persists() {
        let disk = Arc::new(DiskManager::temp("buf-flush").unwrap());
        let bp = BufferPool::new(disk.clone(), 8);
        let id = bp.allocate_page().unwrap();
        bp.with_page_mut(id, |p| p.payload_mut()[..4].copy_from_slice(b"save"))
            .unwrap();
        bp.flush_all().unwrap();
        // Read through a second, independent pool.
        let bp2 = BufferPool::new(disk, 8);
        let bytes = bp2.with_page(id, |p| p.payload()[..4].to_vec()).unwrap();
        assert_eq!(&bytes, b"save");
    }

    #[test]
    fn clear_then_reread_from_disk() {
        let bp = pool(4);
        let id = bp.allocate_page().unwrap();
        bp.with_page_mut(id, |p| p.payload_mut()[0] = 7).unwrap();
        bp.clear().unwrap();
        assert_eq!(bp.resident(), 0);
        assert_eq!(bp.with_page(id, |p| p.payload()[0]).unwrap(), 7);
    }

    #[test]
    fn hit_miss_counters() {
        let bp = pool(4);
        // An allocation faults a fresh frame in: that is a miss, so the
        // counters account for every page touch (exp_storage relies on
        // hits + misses covering allocation traffic too).
        let id = bp.allocate_page().unwrap();
        assert_eq!(bp.stats(), (0, 1, 0));
        bp.clear().unwrap();
        bp.with_page(id, |_| ()).unwrap(); // miss
        bp.with_page(id, |_| ()).unwrap(); // hit
        let (hits, misses, _) = bp.stats();
        assert_eq!(hits, 1);
        assert_eq!(misses, 2);
    }

    #[test]
    fn missing_page_propagates_not_found() {
        let bp = pool(2);
        assert!(bp.with_page(PageId(99), |_| ()).is_err());
    }

    #[test]
    fn pinned_frame_survives_eviction_pressure() {
        let bp = pool(2);
        let a = bp.allocate_page().unwrap();
        bp.with_page_mut(a, |p| p.payload_mut()[0] = 0x5A).unwrap();
        // While `a` is pinned by this closure, churn enough fresh pages
        // through the second frame to evict everything unpinned many times
        // over. `a` must never be the victim.
        let churned = bp
            .with_page(a, |pa| {
                for i in 0..8u8 {
                    let id = bp.allocate_page().unwrap();
                    bp.with_page_mut(id, |p| p.payload_mut()[0] = i).unwrap();
                }
                pa.payload()[0]
            })
            .unwrap();
        assert_eq!(churned, 0x5A, "pinned frame bytes stable under churn");
        // The pin is released now; `a` was never written back as a victim
        // with stale contents.
        assert_eq!(bp.with_page(a, |p| p.payload()[0]).unwrap(), 0x5A);
        let (_, _, evictions) = bp.stats();
        assert!(evictions >= 7, "churn forced evictions around the pin");
    }

    #[test]
    fn allocate_page_does_not_leak_ids_when_pool_is_full_of_pins() {
        let bp = pool(1);
        let a = bp.allocate_page().unwrap();
        let before = bp.disk().page_count();
        // The only frame is pinned by the closure, so the inner allocation
        // must fail with Capacity — and must NOT have consumed a page id.
        let inner = bp.with_page(a, |_| bp.allocate_page()).unwrap();
        assert!(matches!(inner, Err(Error::Capacity(_))), "{inner:?}");
        assert_eq!(
            bp.disk().page_count(),
            before,
            "failed allocation must not leak a page id"
        );
        // Once the pin is gone the same allocation succeeds.
        let b = bp.allocate_page().unwrap();
        assert_eq!(b.0, before);
    }

    #[test]
    fn concurrent_readers_share_a_frame() {
        // Two simultaneous readers of one page: under the old global
        // mutex the second would block behind the first's closure; under
        // shared latches both hold the frame at the same time.
        let bp = Arc::new(pool(4));
        let id = bp.allocate_page().unwrap();
        bp.with_page_mut(id, |p| p.payload_mut()[0] = 9).unwrap();
        let v = bp
            .with_page(id, |outer| {
                // Reads the same page from another thread while this
                // closure still holds the read latch. The bounded wait
                // turns a latch-exclusivity regression (inner reader
                // blocking forever) into a diagnosable failure instead of
                // a test-runner hang.
                let bp2 = bp.clone();
                let (tx, rx) = std::sync::mpsc::channel();
                std::thread::spawn(move || {
                    let _ = tx.send(bp2.with_page(id, |p| p.payload()[0]).unwrap());
                });
                let inner = rx
                    .recv_timeout(std::time::Duration::from_secs(10))
                    .expect("inner reader blocked: read latch not shared");
                (outer.payload()[0], inner)
            })
            .unwrap();
        assert_eq!(v, (9, 9));
    }

    #[test]
    fn shard_count_is_power_of_two_and_bounded_by_capacity() {
        let bp = pool(2);
        assert_eq!(bp.shard_count(), 2);
        // Auto shard count never exceeds the frame count.
        let disk = Arc::new(DiskManager::temp("buf-shards-5").unwrap());
        assert_eq!(BufferPool::new(disk, 5).shard_count(), 4);
        // An explicit count is taken as-is (rounded up to a power of two).
        let disk = Arc::new(DiskManager::temp("buf-shards").unwrap());
        let bp = BufferPool::with_shards(disk, 1024, 5);
        assert_eq!(bp.shard_count(), 8);
    }
}
