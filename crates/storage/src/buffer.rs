//! Buffer pool: a fixed number of in-memory frames over a [`DiskManager`],
//! with LRU eviction and write-back.
//!
//! Access is closure-based (`with_page` / `with_page_mut`) — the closure
//! runs with the frame latched, which keeps the API misuse-proof (no frame
//! guard can outlive eviction). Degradation workloads are update-heavy, so
//! dirty tracking matters: a page is only written back when evicted dirty or
//! on `flush_all` (checkpoint).

use std::collections::HashMap;
use std::sync::Arc;

use parking_lot::Mutex;

use instant_common::{Error, PageId, Result};

use crate::disk::DiskManager;
use crate::page::Page;

struct Frame {
    page: Page,
    dirty: bool,
    /// LRU clock: larger = more recently used.
    last_used: u64,
    pinned: u32,
}

struct PoolInner {
    frames: HashMap<PageId, Frame>,
    tick: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Shared buffer pool.
pub struct BufferPool {
    disk: Arc<DiskManager>,
    capacity: usize,
    inner: Mutex<PoolInner>,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("capacity", &self.capacity)
            .finish()
    }
}

impl BufferPool {
    /// A pool of `capacity` frames over `disk`.
    pub fn new(disk: Arc<DiskManager>, capacity: usize) -> BufferPool {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            disk,
            capacity,
            inner: Mutex::new(PoolInner {
                frames: HashMap::new(),
                tick: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    pub fn disk(&self) -> &Arc<DiskManager> {
        &self.disk
    }

    /// Allocate a fresh page (resident and dirty).
    pub fn allocate_page(&self) -> Result<PageId> {
        let id = self.disk.allocate();
        let mut inner = self.inner.lock();
        self.make_room(&mut inner)?;
        let tick = Self::bump(&mut inner);
        inner.frames.insert(
            id,
            Frame {
                page: Page::new(id),
                dirty: true,
                last_used: tick,
                pinned: 0,
            },
        );
        Ok(id)
    }

    /// Run `f` with read access to page `id`.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        self.ensure_resident(&mut inner, id)?;
        let tick = Self::bump(&mut inner);
        let frame = inner.frames.get_mut(&id).expect("resident");
        frame.last_used = tick;
        Ok(f(&frame.page))
    }

    /// Run `f` with write access to page `id`; marks the frame dirty.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        self.ensure_resident(&mut inner, id)?;
        let tick = Self::bump(&mut inner);
        let frame = inner.frames.get_mut(&id).expect("resident");
        frame.last_used = tick;
        frame.dirty = true;
        Ok(f(&mut frame.page))
    }

    /// Write back every dirty frame and sync (checkpoint support).
    pub fn flush_all(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        for frame in inner.frames.values_mut() {
            if frame.dirty {
                self.disk.write_page(&frame.page)?;
                frame.dirty = false;
            }
        }
        self.disk.sync()?;
        Ok(())
    }

    /// Write back one page if resident and dirty.
    pub fn flush_page(&self, id: PageId) -> Result<()> {
        let mut inner = self.inner.lock();
        if let Some(frame) = inner.frames.get_mut(&id) {
            if frame.dirty {
                self.disk.write_page(&frame.page)?;
                frame.dirty = false;
            }
        }
        Ok(())
    }

    /// Drop every clean frame and write back dirty ones — used by tests to
    /// force re-reads from disk.
    pub fn clear(&self) -> Result<()> {
        self.flush_all()?;
        self.inner.lock().frames.clear();
        Ok(())
    }

    /// `(hits, misses, evictions)` counters.
    pub fn stats(&self) -> (u64, u64, u64) {
        let inner = self.inner.lock();
        (inner.hits, inner.misses, inner.evictions)
    }

    pub fn resident(&self) -> usize {
        self.inner.lock().frames.len()
    }

    fn bump(inner: &mut PoolInner) -> u64 {
        inner.tick += 1;
        inner.tick
    }

    fn ensure_resident(&self, inner: &mut PoolInner, id: PageId) -> Result<()> {
        if inner.frames.contains_key(&id) {
            inner.hits += 1;
            return Ok(());
        }
        inner.misses += 1;
        let page = self.disk.read_page(id)?;
        self.make_room(inner)?;
        let tick = Self::bump(inner);
        inner.frames.insert(
            id,
            Frame {
                page,
                dirty: false,
                last_used: tick,
                pinned: 0,
            },
        );
        Ok(())
    }

    fn make_room(&self, inner: &mut PoolInner) -> Result<()> {
        while inner.frames.len() >= self.capacity {
            let victim = inner
                .frames
                .iter()
                .filter(|(_, f)| f.pinned == 0)
                .min_by_key(|(_, f)| f.last_used)
                .map(|(id, _)| *id)
                .ok_or_else(|| Error::Capacity("all buffer frames pinned".into()))?;
            let frame = inner.frames.remove(&victim).expect("victim resident");
            if frame.dirty {
                self.disk.write_page(&frame.page)?;
            }
            inner.evictions += 1;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(frames: usize) -> BufferPool {
        let disk = Arc::new(DiskManager::temp("buf").unwrap());
        BufferPool::new(disk, frames)
    }

    #[test]
    fn allocate_and_access() {
        let bp = pool(4);
        let id = bp.allocate_page().unwrap();
        bp.with_page_mut(id, |p| p.payload_mut()[0] = 0xAA).unwrap();
        let v = bp.with_page(id, |p| p.payload()[0]).unwrap();
        assert_eq!(v, 0xAA);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let bp = pool(2);
        let ids: Vec<PageId> = (0..5).map(|_| bp.allocate_page().unwrap()).collect();
        for (i, id) in ids.iter().enumerate() {
            bp.with_page_mut(*id, |p| p.payload_mut()[0] = i as u8)
                .unwrap();
        }
        // Only 2 frames; earlier pages must have been evicted + written.
        assert!(bp.resident() <= 2);
        for (i, id) in ids.iter().enumerate() {
            let v = bp.with_page(*id, |p| p.payload()[0]).unwrap();
            assert_eq!(v, i as u8, "page {id} must survive eviction");
        }
        let (_, _, evictions) = bp.stats();
        assert!(evictions >= 3);
    }

    #[test]
    fn lru_prefers_oldest() {
        let bp = pool(2);
        let a = bp.allocate_page().unwrap();
        let b = bp.allocate_page().unwrap();
        // Touch a so b is the LRU victim.
        bp.with_page(a, |_| ()).unwrap();
        let c = bp.allocate_page().unwrap();
        // a stays resident; b evicted.
        assert!(bp.resident() <= 2);
        let (h0, _, _) = bp.stats();
        bp.with_page(a, |_| ()).unwrap();
        let (h1, _, _) = bp.stats();
        assert_eq!(h1, h0 + 1, "a should still be a hit");
        let _ = (b, c);
    }

    #[test]
    fn flush_all_persists() {
        let disk = Arc::new(DiskManager::temp("buf-flush").unwrap());
        let bp = BufferPool::new(disk.clone(), 8);
        let id = bp.allocate_page().unwrap();
        bp.with_page_mut(id, |p| p.payload_mut()[..4].copy_from_slice(b"save"))
            .unwrap();
        bp.flush_all().unwrap();
        // Read through a second, independent pool.
        let bp2 = BufferPool::new(disk, 8);
        let bytes = bp2.with_page(id, |p| p.payload()[..4].to_vec()).unwrap();
        assert_eq!(&bytes, b"save");
    }

    #[test]
    fn clear_then_reread_from_disk() {
        let bp = pool(4);
        let id = bp.allocate_page().unwrap();
        bp.with_page_mut(id, |p| p.payload_mut()[0] = 7).unwrap();
        bp.clear().unwrap();
        assert_eq!(bp.resident(), 0);
        assert_eq!(bp.with_page(id, |p| p.payload()[0]).unwrap(), 7);
    }

    #[test]
    fn hit_miss_counters() {
        let bp = pool(4);
        let id = bp.allocate_page().unwrap();
        bp.clear().unwrap();
        bp.with_page(id, |_| ()).unwrap(); // miss
        bp.with_page(id, |_| ()).unwrap(); // hit
        let (hits, misses, _) = bp.stats();
        assert_eq!(hits, 1);
        assert_eq!(misses, 1);
    }

    #[test]
    fn missing_page_propagates_not_found() {
        let bp = pool(2);
        assert!(bp.with_page(PageId(99), |_| ()).is_err());
    }
}
