//! Slotted-page record layout with **capacity-reserving slots**.
//!
//! Classical slotted pages store `(offset, length)` per slot. Degradation
//! rewrites a tuple every time a transition fires, and a degraded value can
//! be *longer* than its predecessor ("Ile-de-France" vs "Paris"), so a
//! classical layout would have to relocate tuples mid-life — invalidating
//! tuple ids held by indexes and the degradation scheduler. Instead each
//! slot records `(offset, capacity, length)`: the heap layer reserves at
//! insert time the maximum encoded size the tuple reaches over its entire
//! life cycle (computable from the generalization trees), and every
//! degradation step then rewrites in place.
//!
//! Layout inside a page payload (see `page` for the page header):
//!
//! ```text
//! [ hdr: nslots u16 | free_start u16 | free_end u16 ]
//! [ record space: grows upward from byte 6            ]
//! [ …free…                                            ]
//! [ slot directory: grows downward from payload end   ]   each slot 6 bytes
//! ```
//!
//! Deleting a slot leaves a tombstone (`cap == 0`); `compact` (vacuum)
//! squeezes out dead space. In [`SecurePolicy::Overwrite`] mode the record
//! bytes are zeroed *before* the slot is released, so no pre-image survives
//! in the page — the forensic guarantee of experiment E8.

use instant_common::{Error, Result, SlotId};

use crate::page::PAGE_PAYLOAD;
use crate::secure::SecurePolicy;

const HDR: usize = 6;
const SLOT_BYTES: usize = 6;

/// A view over a page payload implementing the slotted layout.
///
/// The view borrows the payload mutably; it is cheap to construct on demand.
pub struct SlottedPage<'a> {
    buf: &'a mut [u8],
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Slot {
    offset: u16,
    cap: u16,
    len: u16,
}

impl<'a> SlottedPage<'a> {
    /// Interpret `buf` (a page payload) as a slotted page. Call
    /// [`SlottedPage::init`] first on fresh pages.
    pub fn new(buf: &'a mut [u8]) -> SlottedPage<'a> {
        debug_assert!(buf.len() <= PAGE_PAYLOAD);
        SlottedPage { buf }
    }

    /// Format an empty slotted page.
    pub fn init(buf: &'a mut [u8]) -> SlottedPage<'a> {
        let len = buf.len();
        let mut p = SlottedPage { buf };
        p.set_nslots(0);
        p.set_free_start(HDR as u16);
        p.set_free_end(len as u16);
        p
    }

    fn nslots(&self) -> u16 {
        u16::from_le_bytes(self.buf[0..2].try_into().unwrap()) // lint:allow(L001, fixed-width header slice)
    }
    fn set_nslots(&mut self, v: u16) {
        self.buf[0..2].copy_from_slice(&v.to_le_bytes());
    }
    fn free_start(&self) -> u16 {
        u16::from_le_bytes(self.buf[2..4].try_into().unwrap()) // lint:allow(L001, fixed-width header slice)
    }
    fn set_free_start(&mut self, v: u16) {
        self.buf[2..4].copy_from_slice(&v.to_le_bytes());
    }
    fn free_end(&self) -> u16 {
        u16::from_le_bytes(self.buf[4..6].try_into().unwrap()) // lint:allow(L001, fixed-width header slice)
    }
    fn set_free_end(&mut self, v: u16) {
        self.buf[4..6].copy_from_slice(&v.to_le_bytes());
    }

    fn slot_pos(&self, slot: SlotId) -> usize {
        self.buf.len() - (slot.0 as usize + 1) * SLOT_BYTES
    }

    fn read_slot(&self, slot: SlotId) -> Result<Slot> {
        if slot.0 >= self.nslots() {
            return Err(Error::NotFound(format!("slot {slot} out of range")));
        }
        let p = self.slot_pos(slot);
        Ok(Slot {
            offset: u16::from_le_bytes(self.buf[p..p + 2].try_into().unwrap()), // lint:allow(L001, fixed-width directory slice)
            cap: u16::from_le_bytes(self.buf[p + 2..p + 4].try_into().unwrap()), // lint:allow(L001, fixed-width directory slice)
            len: u16::from_le_bytes(self.buf[p + 4..p + 6].try_into().unwrap()), // lint:allow(L001, fixed-width directory slice)
        })
    }

    fn write_slot(&mut self, slot: SlotId, s: Slot) {
        let p = self.slot_pos(slot);
        self.buf[p..p + 2].copy_from_slice(&s.offset.to_le_bytes());
        self.buf[p + 2..p + 4].copy_from_slice(&s.cap.to_le_bytes());
        self.buf[p + 4..p + 6].copy_from_slice(&s.len.to_le_bytes());
    }

    /// Contiguous free bytes between record space and slot directory.
    pub fn contiguous_free(&self) -> usize {
        (self.free_end() as usize).saturating_sub(self.free_start() as usize)
    }

    /// Can a record with capacity `cap` be inserted (counting a possibly new
    /// slot directory entry)?
    pub fn can_insert(&self, cap: usize) -> bool {
        // A tombstone slot may be reusable without directory growth, but we
        // answer conservatively for the common case (new slot entry).
        self.contiguous_free() >= cap + SLOT_BYTES
    }

    /// Insert `data`, reserving `cap >= data.len()` bytes. Returns the slot.
    /// Reuses tombstoned slot ids when their reserved space fits.
    pub fn insert(&mut self, data: &[u8], cap: usize) -> Result<SlotId> {
        if data.len() > cap {
            return Err(Error::Capacity(format!(
                "record {}B exceeds reserved capacity {cap}B",
                data.len()
            )));
        }
        if cap > u16::MAX as usize {
            return Err(Error::Capacity(format!(
                "capacity {cap}B exceeds page limit"
            )));
        }
        // Reuse a tombstone id (fresh space is still carved from the free
        // region; tombstone space is reclaimed by compact()).
        let mut reuse: Option<SlotId> = None;
        for i in 0..self.nslots() {
            let s = self.read_slot(SlotId(i))?;
            if s.cap == 0 {
                reuse = Some(SlotId(i));
                break;
            }
        }
        let need_dir = if reuse.is_some() { 0 } else { SLOT_BYTES };
        if self.contiguous_free() < cap + need_dir {
            return Err(Error::Capacity(format!(
                "page full: need {}B, have {}B",
                cap + need_dir,
                self.contiguous_free()
            )));
        }
        let offset = self.free_start();
        self.set_free_start(offset + cap as u16);
        let slot = match reuse {
            Some(s) => s,
            None => {
                let s = SlotId(self.nslots());
                self.set_nslots(s.0 + 1);
                self.set_free_end(self.free_end() - SLOT_BYTES as u16);
                s
            }
        };
        self.write_slot(
            slot,
            Slot {
                offset,
                cap: cap as u16,
                len: data.len() as u16,
            },
        );
        let off = offset as usize;
        self.buf[off..off + data.len()].copy_from_slice(data);
        // Zero the reserved tail so stale bytes never linger in the reserve.
        self.buf[off + data.len()..off + cap].fill(0);
        Ok(slot)
    }

    /// Read the live record in `slot`.
    pub fn read(&self, slot: SlotId) -> Result<&[u8]> {
        let s = self.read_slot(slot)?;
        if s.cap == 0 {
            return Err(Error::NotFound(format!("slot {slot} is deleted")));
        }
        let off = s.offset as usize;
        Ok(&self.buf[off..off + s.len as usize])
    }

    /// Rewrite the record in place. Fails with [`Error::Capacity`] if `data`
    /// exceeds the slot's reserved capacity (the heap layer sizes capacity
    /// so this cannot happen for degradation rewrites). Under
    /// `SecurePolicy::Overwrite` the previous bytes are zeroed first.
    pub fn update(&mut self, slot: SlotId, data: &[u8], policy: SecurePolicy) -> Result<()> {
        let s = self.read_slot(slot)?;
        if s.cap == 0 {
            return Err(Error::NotFound(format!("slot {slot} is deleted")));
        }
        if data.len() > s.cap as usize {
            return Err(Error::Capacity(format!(
                "update {}B exceeds reserved capacity {}B",
                data.len(),
                s.cap
            )));
        }
        let off = s.offset as usize;
        if policy.overwrites() {
            self.buf[off..off + s.cap as usize].fill(0);
        }
        self.buf[off..off + data.len()].copy_from_slice(data);
        if !policy.overwrites() {
            // Naive mode mimics a classical engine: the tail beyond the new
            // length keeps its stale bytes — exactly the forensic leak the
            // paper warns about. (Deliberate, for experiment E8.)
        } else {
            self.buf[off + data.len()..off + s.cap as usize].fill(0);
        }
        self.write_slot(
            slot,
            Slot {
                len: data.len() as u16,
                ..s
            },
        );
        Ok(())
    }

    /// Delete the record. Under `SecurePolicy::Overwrite` the record bytes
    /// are zeroed; naive mode only drops the slot pointer (classical
    /// behaviour — recoverable by forensics until vacuum).
    pub fn delete(&mut self, slot: SlotId, policy: SecurePolicy) -> Result<()> {
        let s = self.read_slot(slot)?;
        if s.cap == 0 {
            return Err(Error::NotFound(format!("slot {slot} already deleted")));
        }
        if policy.overwrites() {
            let off = s.offset as usize;
            self.buf[off..off + s.cap as usize].fill(0);
        }
        self.write_slot(
            slot,
            Slot {
                offset: 0,
                cap: 0,
                len: 0,
            },
        );
        Ok(())
    }

    /// Is `slot` live?
    pub fn is_live(&self, slot: SlotId) -> bool {
        matches!(self.read_slot(slot), Ok(s) if s.cap > 0)
    }

    /// Number of directory entries (live + tombstoned).
    pub fn slot_count(&self) -> u16 {
        self.nslots()
    }

    /// Live slot ids.
    pub fn live_slots(&self) -> Vec<SlotId> {
        (0..self.nslots())
            .map(SlotId)
            .filter(|s| self.is_live(*s))
            .collect()
    }

    /// Bytes consumed by live record capacities.
    pub fn live_bytes(&self) -> usize {
        (0..self.nslots())
            .filter_map(|i| self.read_slot(SlotId(i)).ok())
            .map(|s| s.cap as usize)
            .sum()
    }

    /// Vacuum: rewrite all live records contiguously, reclaiming tombstone
    /// space. Slot ids are preserved (directory entries stay; only offsets
    /// move). Returns bytes reclaimed.
    pub fn compact(&mut self) -> usize {
        let before = self.contiguous_free();
        let n = self.nslots();
        // Collect live records (id, cap, bytes).
        let mut live: Vec<(SlotId, Slot, Vec<u8>)> = Vec::new();
        for i in 0..n {
            let s = self.read_slot(SlotId(i)).expect("in range"); // lint:allow(L001, i < nslots() by the loop bound)
            if s.cap > 0 {
                let off = s.offset as usize;
                // Copy only the live length: any stale tail bytes inside the
                // reserved capacity (naive-update residue) are scrubbed by
                // the vacuum rather than carried along.
                live.push((SlotId(i), s, self.buf[off..off + s.len as usize].to_vec()));
            }
        }
        // Order by current offset to rewrite front-to-back safely.
        live.sort_by_key(|(_, s, _)| s.offset);
        // Zero the whole record region first (no stale residue after vacuum).
        let end = self.free_start() as usize;
        self.buf[HDR..end].fill(0);
        let mut cursor = HDR as u16;
        for (id, s, bytes) in live {
            let off = cursor as usize;
            self.buf[off..off + bytes.len()].copy_from_slice(&bytes);
            self.write_slot(
                id,
                Slot {
                    offset: cursor,
                    ..s
                },
            );
            cursor += s.cap;
        }
        self.set_free_start(cursor);
        self.contiguous_free() - before
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn page_buf() -> Vec<u8> {
        vec![0u8; PAGE_PAYLOAD]
    }

    #[test]
    fn insert_read_round_trip() {
        let mut buf = page_buf();
        let mut p = SlottedPage::init(&mut buf);
        let a = p.insert(b"alpha", 16).unwrap();
        let b = p.insert(b"beta", 4).unwrap();
        assert_eq!(p.read(a).unwrap(), b"alpha");
        assert_eq!(p.read(b).unwrap(), b"beta");
        assert_ne!(a, b);
        assert_eq!(p.slot_count(), 2);
    }

    #[test]
    fn capacity_reservation_allows_growth() {
        let mut buf = page_buf();
        let mut p = SlottedPage::init(&mut buf);
        let s = p.insert(b"Paris", 32).unwrap();
        // Degradation can grow the value; it fits within the reservation.
        p.update(s, b"Ile-de-France", SecurePolicy::Overwrite)
            .unwrap();
        assert_eq!(p.read(s).unwrap(), b"Ile-de-France");
        // But not beyond it.
        let too_big = vec![b'x'; 33];
        assert!(matches!(
            p.update(s, &too_big, SecurePolicy::Overwrite),
            Err(Error::Capacity(_))
        ));
    }

    #[test]
    fn insert_larger_than_cap_rejected() {
        let mut buf = page_buf();
        let mut p = SlottedPage::init(&mut buf);
        assert!(p.insert(b"hello", 3).is_err());
    }

    #[test]
    fn secure_update_zeroes_previous_bytes() {
        let mut buf = page_buf();
        {
            let mut p = SlottedPage::init(&mut buf);
            let s = p.insert(b"SENSITIVE-ADDRESS", 32).unwrap();
            p.update(s, b"city", SecurePolicy::Overwrite).unwrap();
            assert_eq!(p.read(s).unwrap(), b"city");
        }
        assert!(
            !contains(&buf, b"SENSITIVE-ADDRESS"),
            "pre-image must be gone after secure update"
        );
        assert!(!contains(&buf, b"ADDRESS"), "no partial residue either");
    }

    #[test]
    fn naive_update_leaks_tail_bytes() {
        let mut buf = page_buf();
        {
            let mut p = SlottedPage::init(&mut buf);
            let s = p.insert(b"SENSITIVE-ADDRESS", 32).unwrap();
            p.update(s, b"city", SecurePolicy::Naive).unwrap();
        }
        // The classical engine leaks the tail beyond the new record — this
        // is the Stahlberg et al. attack the paper cites.
        assert!(contains(&buf, b"TIVE-ADDRESS"));
    }

    #[test]
    fn secure_delete_zeroes_naive_leaks() {
        let mut buf = page_buf();
        {
            let mut p = SlottedPage::init(&mut buf);
            let s = p.insert(b"TOPSECRET", 16).unwrap();
            p.delete(s, SecurePolicy::Overwrite).unwrap();
            assert!(!p.is_live(s));
            assert!(p.read(s).is_err());
        }
        assert!(!contains(&buf, b"TOPSECRET"));

        let mut buf2 = page_buf();
        {
            let mut p = SlottedPage::init(&mut buf2);
            let s = p.insert(b"TOPSECRET", 16).unwrap();
            p.delete(s, SecurePolicy::Naive).unwrap();
        }
        assert!(contains(&buf2, b"TOPSECRET"), "naive delete leaves bytes");
    }

    #[test]
    fn tombstone_slot_id_reused() {
        let mut buf = page_buf();
        let mut p = SlottedPage::init(&mut buf);
        let a = p.insert(b"one", 8).unwrap();
        let _b = p.insert(b"two", 8).unwrap();
        p.delete(a, SecurePolicy::Overwrite).unwrap();
        let c = p.insert(b"three", 8).unwrap();
        assert_eq!(c, a, "tombstoned id is recycled");
        assert_eq!(p.slot_count(), 2);
        assert_eq!(p.read(c).unwrap(), b"three");
    }

    #[test]
    fn fills_up_then_rejects() {
        let mut buf = page_buf();
        let mut p = SlottedPage::init(&mut buf);
        let mut count = 0usize;
        loop {
            if p.insert(&[0xAB; 64], 64).is_err() {
                break;
            }
            count += 1;
        }
        // 8168 payload-ish / 70 per record ≈ 116.
        assert!(count > 100, "expected >100 64B records, got {count}");
        assert!(!p.can_insert(64));
        assert!(p.can_insert(0) || p.contiguous_free() < SLOT_BYTES);
    }

    #[test]
    fn compact_reclaims_tombstone_space() {
        let mut buf = page_buf();
        let mut p = SlottedPage::init(&mut buf);
        let mut ids = Vec::new();
        for i in 0..50 {
            ids.push(p.insert(format!("record-{i:03}").as_bytes(), 32).unwrap());
        }
        for (i, id) in ids.iter().enumerate() {
            if i % 2 == 0 {
                p.delete(*id, SecurePolicy::Overwrite).unwrap();
            }
        }
        let free_before = p.contiguous_free();
        let reclaimed = p.compact();
        assert_eq!(reclaimed, 25 * 32);
        assert_eq!(p.contiguous_free(), free_before + 25 * 32);
        // Survivors intact, ids stable.
        for (i, id) in ids.iter().enumerate() {
            if i % 2 == 1 {
                assert_eq!(p.read(*id).unwrap(), format!("record-{i:03}").as_bytes());
            } else {
                assert!(!p.is_live(*id));
            }
        }
    }

    #[test]
    fn compact_leaves_no_residue() {
        let mut buf = page_buf();
        {
            let mut p = SlottedPage::init(&mut buf);
            let a = p.insert(b"GHOST-DATA", 16).unwrap();
            p.insert(b"keep", 8).unwrap();
            // Naive delete leaves bytes…
            p.delete(a, SecurePolicy::Naive).unwrap();
        }
        assert!(contains(&buf, b"GHOST-DATA"));
        {
            let mut p = SlottedPage::new(&mut buf);
            // …until vacuum scrubs the record region.
            p.compact();
        }
        assert!(!contains(&buf, b"GHOST-DATA"), "vacuum must scrub residue");
        let p = SlottedPage::new(&mut buf);
        assert_eq!(p.live_slots().len(), 1);
        let keep = p.live_slots()[0];
        assert_eq!(p.read(keep).unwrap(), b"keep");
    }

    #[test]
    fn read_of_bad_slot_errors() {
        let mut buf = page_buf();
        let p = SlottedPage::init(&mut buf);
        assert!(p.read(SlotId(0)).is_err());
        assert!(p.read(SlotId(99)).is_err());
    }

    #[test]
    fn live_bytes_tracks_capacity() {
        let mut buf = page_buf();
        let mut p = SlottedPage::init(&mut buf);
        p.insert(b"a", 10).unwrap();
        p.insert(b"b", 20).unwrap();
        assert_eq!(p.live_bytes(), 30);
    }

    fn contains(hay: &[u8], needle: &[u8]) -> bool {
        hay.windows(needle.len()).any(|w| w == needle)
    }
}
