//! # instant-storage
//!
//! The page-based storage engine beneath InstantDB — Section III of the
//! paper: "the storage of degradable attributes ... has to be revisited in
//! this light". Two properties distinguish it from a classical heap store:
//!
//! 1. **Secure physical rewrite.** Degradation steps and final removal must
//!    leave *no recoverable trace* of the finer state (the paper cites
//!    Stahlberg et al.'s forensic attacks). Every delete/update can run in
//!    [`secure::SecurePolicy::Overwrite`] mode, which zeroes the previous
//!    bytes inside the page before releasing them; the forensic scanner in
//!    [`secure`] verifies absence of pre-images (experiment E8).
//! 2. **Capacity-reserving slots.** A degradable tuple's slot is allocated
//!    with the *maximum* encoded size the tuple will reach across its whole
//!    life cycle (computable at insert time from the generalization tree),
//!    so every degradation step rewrites in place and tuple ids stay stable.
//!
//! Layering: [`disk::DiskManager`] (page file I/O, checksums) →
//! [`buffer::BufferPool`] (sharded fixed-capacity LRU cache with per-frame
//! latches and pin-gated eviction, write-back) → [`heap::HeapFile`]
//! (slotted-page record store with a free-space map and vacuum).

pub mod buffer;
pub mod disk;
pub mod heap;
pub mod page;
pub mod secure;
pub mod slotted;

pub use buffer::BufferPool;
pub use disk::DiskManager;
pub use heap::HeapFile;
pub use page::{Page, PAGE_SIZE};
pub use secure::SecurePolicy;
