//! Heap file: the record store for one table.
//!
//! A heap file is a set of slotted pages reached through the buffer pool,
//! plus an in-memory free-space map (rebuilt on open). Its API is shaped by
//! degradation:
//!
//! * `insert(bytes, reserve_cap)` reserves the life-cycle-maximum capacity so
//!   later `update`s (degradation rewrites) never relocate the tuple;
//! * `update` / `delete` take a [`SecurePolicy`] so degradation steps can
//!   guarantee physical erasure of the finer state;
//! * `vacuum` compacts pages and scrubs residue left by naive deletes;
//! * `raw_image` hands the forensic scanner the attacker's view.

use std::sync::Arc;

use parking_lot::Mutex;

use instant_common::{PageId, Result, TupleId};

use crate::buffer::BufferPool;
use crate::page::PAGE_PAYLOAD;
use crate::secure::SecurePolicy;
use crate::slotted::SlottedPage;

/// A record store over slotted pages.
pub struct HeapFile {
    pool: Arc<BufferPool>,
    /// Pages owned by this heap, in allocation order.
    pages: Mutex<Vec<PageId>>, // lock-rank: 340
    policy: SecurePolicy,
}

impl std::fmt::Debug for HeapFile {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HeapFile")
            .field("pages", &self.pages.lock().len())
            .field("policy", &self.policy)
            .finish()
    }
}

impl HeapFile {
    /// Create an empty heap over `pool` with the given deletion policy.
    pub fn create(pool: Arc<BufferPool>, policy: SecurePolicy) -> HeapFile {
        HeapFile {
            pool,
            pages: Mutex::ranked(340, Vec::new()),
            policy,
        }
    }

    /// Reattach a heap whose pages are already on disk (after restart).
    pub fn attach(pool: Arc<BufferPool>, pages: Vec<PageId>, policy: SecurePolicy) -> HeapFile {
        HeapFile {
            pool,
            pages: Mutex::ranked(340, pages),
            policy,
        }
    }

    pub fn policy(&self) -> SecurePolicy {
        self.policy
    }

    /// The page ids owned by this heap (for catalog persistence).
    pub fn page_ids(&self) -> Vec<PageId> {
        self.pages.lock().clone()
    }

    /// Largest record capacity a single page can hold.
    pub fn max_record_cap() -> usize {
        // payload minus slotted header (6) and one slot entry (6)
        PAGE_PAYLOAD - 12
    }

    /// Insert `bytes`, reserving `cap` bytes (`cap >= bytes.len()`).
    pub fn insert(&self, bytes: &[u8], cap: usize) -> Result<TupleId> {
        assert!(cap >= bytes.len());
        if cap > Self::max_record_cap() {
            return Err(instant_common::Error::Capacity(format!(
                "record capacity {cap}B exceeds page maximum {}B",
                Self::max_record_cap()
            )));
        }
        let mut pages = self.pages.lock();
        // First-fit over existing pages, newest first (most likely space).
        for &pid in pages.iter().rev() {
            // lint:allow(L102, first-fit holds the page-table lock across the pool call; a fault may evict and write back one dirty page — bounded by design)
            let inserted = self.pool.with_page_mut(pid, |page| {
                let mut sp = SlottedPage::new(page.payload_mut());
                if sp.can_insert(cap) {
                    sp.insert(bytes, cap).ok()
                } else {
                    None
                }
            })?;
            if let Some(slot) = inserted {
                return Ok(TupleId { page: pid, slot });
            }
        }
        // Allocate a new page.
        // lint:allow(L102, allocation under the page-table lock may evict and write back one dirty page — bounded by design)
        let pid = self.pool.allocate_page()?;
        pages.push(pid);
        // lint:allow(L102, the fresh page is initialized under the page-table lock so no scan sees it half-formatted; a fault may write back one dirty page)
        let slot = self.pool.with_page_mut(pid, |page| {
            let mut sp = SlottedPage::init(page.payload_mut());
            sp.insert(bytes, cap)
        })??;
        Ok(TupleId { page: pid, slot })
    }

    /// Read a record.
    pub fn read(&self, tid: TupleId) -> Result<Vec<u8>> {
        self.pool.with_page(tid.page, |page| {
            // SlottedPage::new requires &mut; build a read view via clone of
            // the payload — avoided by a tiny unsafe-free trick: copy out.
            let payload = page.payload();
            read_slot_bytes(payload, tid)
        })?
    }

    /// Rewrite a record in place (degradation step). Capacity must hold.
    pub fn update(&self, tid: TupleId, bytes: &[u8]) -> Result<()> {
        let policy = self.policy;
        self.pool.with_page_mut(tid.page, |page| {
            let mut sp = SlottedPage::new(page.payload_mut());
            sp.update(tid.slot, bytes, policy)
        })?
    }

    /// Delete a record under the heap's policy.
    pub fn delete(&self, tid: TupleId) -> Result<()> {
        let policy = self.policy;
        self.pool.with_page_mut(tid.page, |page| {
            let mut sp = SlottedPage::new(page.payload_mut());
            sp.delete(tid.slot, policy)
        })?
    }

    /// Is the tuple live?
    pub fn exists(&self, tid: TupleId) -> bool {
        self.pool
            .with_page(tid.page, |page| {
                let payload = page.payload();
                read_slot_bytes(payload, tid).is_ok()
            })
            .unwrap_or(false)
    }

    /// All live tuple ids, in page order.
    pub fn scan_ids(&self) -> Result<Vec<TupleId>> {
        let pages = self.pages.lock().clone();
        let mut out = Vec::new();
        for pid in pages {
            let slots = self.pool.with_page_mut(pid, |page| {
                let sp = SlottedPage::new(page.payload_mut());
                sp.live_slots()
            })?;
            out.extend(slots.into_iter().map(|slot| TupleId { page: pid, slot }));
        }
        Ok(out)
    }

    /// Full scan: `(tuple id, record bytes)` pairs.
    pub fn scan(&self) -> Result<Vec<(TupleId, Vec<u8>)>> {
        let ids = self.scan_ids()?;
        let mut out = Vec::with_capacity(ids.len());
        for tid in ids {
            out.push((tid, self.read(tid)?));
        }
        Ok(out)
    }

    /// Vacuum every page: compact slots and scrub residue. Returns total
    /// bytes reclaimed (experiment E12).
    pub fn vacuum(&self) -> Result<usize> {
        let pages = self.pages.lock().clone();
        let mut reclaimed = 0usize;
        for pid in pages {
            reclaimed += self.pool.with_page_mut(pid, |page| {
                let mut sp = SlottedPage::new(page.payload_mut());
                sp.compact()
            })?;
        }
        Ok(reclaimed)
    }

    /// Number of live tuples.
    pub fn live_count(&self) -> Result<usize> {
        Ok(self.scan_ids()?.len())
    }

    /// Flush all pages and return the raw on-disk image (forensic view).
    pub fn raw_image(&self) -> Result<Vec<u8>> {
        self.pool.flush_all()?;
        self.pool.disk().raw_image()
    }

    /// Total pages owned.
    pub fn page_count(&self) -> usize {
        self.pages.lock().len()
    }
}

/// Decode the slotted directory from an immutable payload to read one slot.
fn read_slot_bytes(payload: &[u8], tid: TupleId) -> Result<Vec<u8>> {
    // Mirror of SlottedPage::read for the immutable path.
    let nslots = u16::from_le_bytes(payload[0..2].try_into().unwrap()); // lint:allow(L001, fixed-width slice of a checked-length payload)
    if tid.slot.0 >= nslots {
        return Err(instant_common::Error::NotFound(format!(
            "slot {} out of range",
            tid.slot
        )));
    }
    let p = payload.len() - (tid.slot.0 as usize + 1) * 6;
    let offset = u16::from_le_bytes(payload[p..p + 2].try_into().unwrap()) as usize; // lint:allow(L001, fixed-width slice of a checked-length payload)
    let cap = u16::from_le_bytes(payload[p + 2..p + 4].try_into().unwrap()) as usize; // lint:allow(L001, fixed-width slice of a checked-length payload)
    let len = u16::from_le_bytes(payload[p + 4..p + 6].try_into().unwrap()) as usize; // lint:allow(L001, fixed-width slice of a checked-length payload)
    if cap == 0 {
        return Err(instant_common::Error::NotFound(format!(
            "tuple {tid} deleted"
        )));
    }
    Ok(payload[offset..offset + len].to_vec())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::disk::DiskManager;

    fn heap(policy: SecurePolicy) -> HeapFile {
        let disk = Arc::new(DiskManager::temp("heap").unwrap());
        let pool = Arc::new(BufferPool::new(disk, 16));
        HeapFile::create(pool, policy)
    }

    #[test]
    fn insert_read_update_delete() {
        let h = heap(SecurePolicy::Overwrite);
        let tid = h.insert(b"hello", 32).unwrap();
        assert_eq!(h.read(tid).unwrap(), b"hello");
        h.update(tid, b"hello, world").unwrap();
        assert_eq!(h.read(tid).unwrap(), b"hello, world");
        assert!(h.exists(tid));
        h.delete(tid).unwrap();
        assert!(!h.exists(tid));
        assert!(h.read(tid).is_err());
    }

    #[test]
    fn spills_to_multiple_pages() {
        let h = heap(SecurePolicy::Overwrite);
        let rec = vec![0xCD; 1000];
        let mut ids = Vec::new();
        for _ in 0..40 {
            ids.push(h.insert(&rec, 1000).unwrap());
        }
        assert!(h.page_count() >= 5, "40 KB must span pages");
        for tid in &ids {
            assert_eq!(h.read(*tid).unwrap(), rec);
        }
        assert_eq!(h.live_count().unwrap(), 40);
    }

    #[test]
    fn scan_returns_all_live() {
        let h = heap(SecurePolicy::Overwrite);
        let a = h.insert(b"a", 8).unwrap();
        let b = h.insert(b"b", 8).unwrap();
        let c = h.insert(b"c", 8).unwrap();
        h.delete(b).unwrap();
        let scanned = h.scan().unwrap();
        let ids: Vec<TupleId> = scanned.iter().map(|(t, _)| *t).collect();
        assert!(ids.contains(&a) && ids.contains(&c) && !ids.contains(&b));
        assert_eq!(scanned.len(), 2);
    }

    #[test]
    fn oversized_record_rejected() {
        let h = heap(SecurePolicy::Overwrite);
        let big = vec![0u8; HeapFile::max_record_cap() + 1];
        assert!(h.insert(&big, big.len()).is_err());
        // At exactly the max it works.
        let ok = vec![0u8; HeapFile::max_record_cap()];
        assert!(h.insert(&ok, ok.len()).is_ok());
    }

    #[test]
    fn secure_heap_has_no_residue_after_delete() {
        let h = heap(SecurePolicy::Overwrite);
        let tid = h.insert(b"FORENSIC-NEEDLE", 32).unwrap();
        h.delete(tid).unwrap();
        let img = h.raw_image().unwrap();
        assert!(
            !img.windows(15).any(|w| w == b"FORENSIC-NEEDLE"),
            "secure delete must scrub the page image"
        );
    }

    #[test]
    fn naive_heap_leaks_until_vacuum() {
        let h = heap(SecurePolicy::Naive);
        let tid = h.insert(b"FORENSIC-NEEDLE", 32).unwrap();
        h.delete(tid).unwrap();
        let img = h.raw_image().unwrap();
        assert!(
            img.windows(15).any(|w| w == b"FORENSIC-NEEDLE"),
            "naive delete leaves the bytes (classical DBMS behaviour)"
        );
        let reclaimed = h.vacuum().unwrap();
        assert!(reclaimed >= 32);
        let img2 = h.raw_image().unwrap();
        assert!(
            !img2.windows(15).any(|w| w == b"FORENSIC-NEEDLE"),
            "vacuum must scrub residue"
        );
    }

    #[test]
    fn update_in_place_preserves_tid_across_growth() {
        let h = heap(SecurePolicy::Overwrite);
        let tid = h.insert(b"Paris", 40).unwrap();
        h.update(tid, b"Ile-de-France").unwrap();
        h.update(tid, b"France").unwrap();
        assert_eq!(h.read(tid).unwrap(), b"France");
        assert_eq!(h.live_count().unwrap(), 1);
    }

    #[test]
    fn vacuum_keeps_survivors_readable() {
        let h = heap(SecurePolicy::Overwrite);
        let mut ids = Vec::new();
        for i in 0..100 {
            ids.push(h.insert(format!("rec{i}").as_bytes(), 24).unwrap());
        }
        for (i, id) in ids.iter().enumerate() {
            if i % 3 != 0 {
                h.delete(*id).unwrap();
            }
        }
        h.vacuum().unwrap();
        for (i, id) in ids.iter().enumerate() {
            if i % 3 == 0 {
                assert_eq!(h.read(*id).unwrap(), format!("rec{i}").as_bytes());
            }
        }
    }

    #[test]
    fn attach_recovers_pages() {
        let disk = Arc::new(DiskManager::temp("heap-attach").unwrap());
        let pool = Arc::new(BufferPool::new(disk.clone(), 16));
        let h = HeapFile::create(pool.clone(), SecurePolicy::Overwrite);
        let tid = h.insert(b"persisted", 16).unwrap();
        let pages = h.page_ids();
        pool.flush_all().unwrap();
        drop(h);
        let h2 = HeapFile::attach(pool, pages, SecurePolicy::Overwrite);
        assert_eq!(h2.read(tid).unwrap(), b"persisted");
    }
}
