//! Raw page representation.
//!
//! A page is a fixed 8 KiB byte array with a small header:
//!
//! ```text
//! offset  size  field
//! 0       4     magic "IDBP"
//! 4       4     page id
//! 8       8     page LSN (last WAL record that touched the page)
//! 16      8     checksum (FNV-1a over bytes [24, PAGE_SIZE))
//! 24      …     payload (slotted layout, see `slotted`)
//! ```
//!
//! The checksum is recomputed by the disk manager on write and verified on
//! read, so torn writes and bit rot surface as [`Error::Corrupt`] instead of
//! silent garbage — important here because a corrupted page could otherwise
//! resurrect bytes that degradation was supposed to have destroyed.

use instant_common::codec::fnv1a;
use instant_common::{Error, PageId, Result};

/// Page size in bytes. 8 KiB, a conventional DBMS default.
pub const PAGE_SIZE: usize = 8192;
/// First byte of the payload region.
pub const PAGE_HEADER_SIZE: usize = 24;
/// Usable payload bytes per page.
pub const PAGE_PAYLOAD: usize = PAGE_SIZE - PAGE_HEADER_SIZE;

const MAGIC: [u8; 4] = *b"IDBP";

/// An in-memory page image.
#[derive(Clone)]
pub struct Page {
    bytes: Box<[u8; PAGE_SIZE]>,
}

impl std::fmt::Debug for Page {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Page")
            .field("id", &self.id())
            .field("lsn", &self.lsn())
            .finish()
    }
}

impl Page {
    /// A zeroed page initialized with header for `id`.
    pub fn new(id: PageId) -> Page {
        let mut p = Page {
            bytes: vec![0u8; PAGE_SIZE].into_boxed_slice().try_into().unwrap(), // lint:allow(L001, vec is allocated with exactly PAGE_SIZE bytes)
        };
        p.bytes[0..4].copy_from_slice(&MAGIC);
        p.bytes[4..8].copy_from_slice(&id.0.to_le_bytes());
        p
    }

    /// Wrap raw bytes read from disk, verifying magic, id and checksum.
    pub fn from_bytes(expect_id: PageId, bytes: Box<[u8; PAGE_SIZE]>) -> Result<Page> {
        let p = Page { bytes };
        if p.bytes[0..4] != MAGIC {
            return Err(Error::Corrupt(format!("page {expect_id}: bad magic")));
        }
        if p.id() != expect_id {
            return Err(Error::Corrupt(format!(
                "page {expect_id}: header claims {}",
                p.id()
            )));
        }
        let stored = u64::from_le_bytes(p.bytes[16..24].try_into().unwrap()); // lint:allow(L001, fixed-width header slice)
        let actual = fnv1a(&p.bytes[PAGE_HEADER_SIZE..]);
        if stored != actual {
            return Err(Error::Corrupt(format!(
                "page {expect_id}: checksum mismatch (stored {stored:#x}, computed {actual:#x})"
            )));
        }
        Ok(p)
    }

    /// Seal the checksum and return the raw bytes for writing to disk.
    pub fn to_bytes(&self) -> Box<[u8; PAGE_SIZE]> {
        let mut out = self.bytes.clone();
        let sum = fnv1a(&out[PAGE_HEADER_SIZE..]);
        out[16..24].copy_from_slice(&sum.to_le_bytes());
        out
    }

    pub fn id(&self) -> PageId {
        PageId(u32::from_le_bytes(self.bytes[4..8].try_into().unwrap())) // lint:allow(L001, fixed-width header slice)
    }

    pub fn lsn(&self) -> u64 {
        u64::from_le_bytes(self.bytes[8..16].try_into().unwrap()) // lint:allow(L001, fixed-width header slice)
    }

    pub fn set_lsn(&mut self, lsn: u64) {
        self.bytes[8..16].copy_from_slice(&lsn.to_le_bytes());
    }

    /// Immutable payload view (the slotted region).
    pub fn payload(&self) -> &[u8] {
        &self.bytes[PAGE_HEADER_SIZE..]
    }

    /// Mutable payload view.
    pub fn payload_mut(&mut self) -> &mut [u8] {
        &mut self.bytes[PAGE_HEADER_SIZE..]
    }

    /// Full raw image including header — used only by the forensic scanner,
    /// which inspects exactly what an attacker stealing the file would see.
    pub fn raw(&self) -> &[u8; PAGE_SIZE] {
        &self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_page_has_header() {
        let p = Page::new(PageId(7));
        assert_eq!(p.id(), PageId(7));
        assert_eq!(p.lsn(), 0);
        assert!(p.payload().iter().all(|&b| b == 0));
        assert_eq!(p.payload().len(), PAGE_PAYLOAD);
    }

    #[test]
    fn round_trip_with_checksum() {
        let mut p = Page::new(PageId(3));
        p.set_lsn(42);
        p.payload_mut()[0..5].copy_from_slice(b"hello");
        let bytes = p.to_bytes();
        let back = Page::from_bytes(PageId(3), bytes).unwrap();
        assert_eq!(back.lsn(), 42);
        assert_eq!(&back.payload()[0..5], b"hello");
    }

    #[test]
    fn checksum_detects_corruption() {
        let p = Page::new(PageId(1));
        let mut bytes = p.to_bytes();
        bytes[100] ^= 0xFF; // flip a payload bit
        assert!(matches!(
            Page::from_bytes(PageId(1), bytes),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn wrong_id_detected() {
        let p = Page::new(PageId(1));
        assert!(matches!(
            Page::from_bytes(PageId(2), p.to_bytes()),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn bad_magic_detected() {
        let p = Page::new(PageId(1));
        let mut bytes = p.to_bytes();
        bytes[0] = b'X';
        assert!(matches!(
            Page::from_bytes(PageId(1), bytes),
            Err(Error::Corrupt(_))
        ));
    }

    #[test]
    fn lsn_not_covered_by_payload_mutation() {
        // LSN lives in the header; setting it then sealing must still verify.
        let mut p = Page::new(PageId(9));
        p.set_lsn(u64::MAX);
        let back = Page::from_bytes(PageId(9), p.to_bytes()).unwrap();
        assert_eq!(back.lsn(), u64::MAX);
    }
}
