//! Page-file I/O.
//!
//! A [`DiskManager`] owns one file of fixed-size pages. Page 0 is reserved
//! for the file header (page count); data pages start at 1. Reads verify
//! the per-page checksum; writes seal it. `raw_image()` exposes the raw
//! on-disk bytes for the forensic experiments — exactly what an attacker
//! copying the database file would obtain.

use std::fs::{File, OpenOptions};
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU32, AtomicU64, Ordering};

use parking_lot::Mutex;

use instant_common::{Error, PageId, Result};

use crate::page::{Page, PAGE_SIZE};

/// File-backed page store.
#[derive(Debug)]
pub struct DiskManager {
    file: Mutex<File>, // lock-rank: 800
    path: PathBuf,
    next_page: AtomicU32,
    reads: AtomicU64,
    writes: AtomicU64,
    /// Delete the file on drop (temp stores used by tests/benches).
    ephemeral: bool,
}

impl DiskManager {
    /// Open (or create) the page file at `path`.
    pub fn open(path: impl AsRef<Path>) -> Result<DiskManager> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let len = file.metadata()?.len();
        let next_page = if len == 0 {
            // Fresh file: write header page.
            let mut hdr = [0u8; PAGE_SIZE];
            hdr[0..4].copy_from_slice(b"IDBF");
            hdr[4..8].copy_from_slice(&1u32.to_le_bytes());
            file.write_all(&hdr)?;
            file.sync_all()?;
            1
        } else {
            if len % PAGE_SIZE as u64 != 0 {
                return Err(Error::Corrupt(format!(
                    "file length {len} not a multiple of page size"
                )));
            }
            let mut hdr = [0u8; 8];
            file.seek(SeekFrom::Start(0))?;
            file.read_exact(&mut hdr)?;
            if &hdr[0..4] != b"IDBF" {
                return Err(Error::Corrupt("bad file magic".into()));
            }
            (len / PAGE_SIZE as u64) as u32
        };
        Ok(DiskManager {
            file: Mutex::ranked(800, file),
            path,
            next_page: AtomicU32::new(next_page),
            reads: AtomicU64::new(0),
            writes: AtomicU64::new(0),
            ephemeral: false,
        })
    }

    /// A throwaway store in the system temp directory, removed on drop.
    pub fn temp(tag: &str) -> Result<DiskManager> {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap() // lint:allow(L001, a system clock before the Unix epoch is unsupported)
            .as_nanos();
        let pid = std::process::id();
        let path = std::env::temp_dir().join(format!("instantdb-{tag}-{pid}-{nanos}.idb"));
        let mut dm = Self::open(path)?;
        dm.ephemeral = true;
        Ok(dm)
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Allocate a fresh page id (the page is materialized on first write).
    pub fn allocate(&self) -> PageId {
        PageId(self.next_page.fetch_add(1, Ordering::SeqCst))
    }

    /// Number of pages (including the header page).
    pub fn page_count(&self) -> u32 {
        self.next_page.load(Ordering::SeqCst)
    }

    /// Read and verify a page. Reading an allocated-but-never-written page
    /// yields a fresh zeroed page image.
    pub fn read_page(&self, id: PageId) -> Result<Page> {
        if id.0 == 0 || id.0 >= self.page_count() {
            return Err(Error::NotFound(format!("page {id} not allocated")));
        }
        self.reads.fetch_add(1, Ordering::Relaxed);
        let mut file = self.file.lock();
        let offset = id.0 as u64 * PAGE_SIZE as u64;
        let len = file.metadata()?.len();
        if offset >= len {
            return Ok(Page::new(id));
        }
        file.seek(SeekFrom::Start(offset))?;
        let mut buf = vec![0u8; PAGE_SIZE].into_boxed_slice();
        file.read_exact(&mut buf)?;
        let arr: Box<[u8; PAGE_SIZE]> = buf.try_into().expect("exact size"); // lint:allow(L001, boxed slice has exactly PAGE_SIZE bytes)
                                                                             // An all-zero region means the page was allocated but never flushed.
        if arr.iter().all(|&b| b == 0) {
            return Ok(Page::new(id));
        }
        Page::from_bytes(id, arr)
    }

    /// Seal and write a page.
    pub fn write_page(&self, page: &Page) -> Result<()> {
        let id = page.id();
        if id.0 == 0 || id.0 >= self.page_count() {
            return Err(Error::NotFound(format!("page {id} not allocated")));
        }
        self.writes.fetch_add(1, Ordering::Relaxed);
        let bytes = page.to_bytes();
        let mut file = self.file.lock();
        let offset = id.0 as u64 * PAGE_SIZE as u64;
        // Extend with zero pages if there is a gap (allocated, unwritten).
        let len = file.metadata()?.len();
        if offset > len {
            file.set_len(offset)?;
        }
        file.seek(SeekFrom::Start(offset))?;
        // lint:allow(L102, the file mutex is rank 800 — the bottom of the order — and exists precisely to serialize this write)
        file.write_all(&bytes[..])?;
        Ok(())
    }

    /// Durably sync the file.
    pub fn sync(&self) -> Result<()> {
        // lint:allow(L102, the file mutex is rank 800 — the bottom of the order — and exists precisely to serialize this fsync)
        self.file.lock().sync_all()?;
        Ok(())
    }

    /// The complete raw on-disk image (forensic attacker's view).
    pub fn raw_image(&self) -> Result<Vec<u8>> {
        let mut file = self.file.lock();
        file.seek(SeekFrom::Start(0))?;
        let mut out = Vec::new();
        file.read_to_end(&mut out)?;
        Ok(out)
    }

    /// I/O counters `(reads, writes)` since open.
    pub fn io_counters(&self) -> (u64, u64) {
        (
            self.reads.load(Ordering::Relaxed),
            self.writes.load(Ordering::Relaxed),
        )
    }
}

impl Drop for DiskManager {
    fn drop(&mut self) {
        if self.ephemeral {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_write_read() {
        let dm = DiskManager::temp("dm1").unwrap();
        let id = dm.allocate();
        let mut p = Page::new(id);
        p.payload_mut()[0..4].copy_from_slice(b"data");
        dm.write_page(&p).unwrap();
        let back = dm.read_page(id).unwrap();
        assert_eq!(&back.payload()[0..4], b"data");
    }

    #[test]
    fn unwritten_allocated_page_reads_fresh() {
        let dm = DiskManager::temp("dm2").unwrap();
        let id = dm.allocate();
        let p = dm.read_page(id).unwrap();
        assert!(p.payload().iter().all(|&b| b == 0));
    }

    #[test]
    fn unallocated_page_rejected() {
        let dm = DiskManager::temp("dm3").unwrap();
        assert!(dm.read_page(PageId(0)).is_err());
        assert!(dm.read_page(PageId(5)).is_err());
        assert!(dm.write_page(&Page::new(PageId(5))).is_err());
    }

    #[test]
    fn persists_across_reopen() {
        let path = std::env::temp_dir().join(format!(
            "instantdb-reopen-{}-{:?}.idb",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_file(&path);
        let id;
        {
            let dm = DiskManager::open(&path).unwrap();
            id = dm.allocate();
            let mut p = Page::new(id);
            p.payload_mut()[..7].copy_from_slice(b"persist");
            dm.write_page(&p).unwrap();
            dm.sync().unwrap();
        }
        {
            let dm = DiskManager::open(&path).unwrap();
            assert_eq!(dm.page_count(), 2);
            let p = dm.read_page(id).unwrap();
            assert_eq!(&p.payload()[..7], b"persist");
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn raw_image_contains_written_bytes() {
        let dm = DiskManager::temp("dm4").unwrap();
        let id = dm.allocate();
        let mut p = Page::new(id);
        p.payload_mut()[..6].copy_from_slice(b"NEEDLE");
        dm.write_page(&p).unwrap();
        let img = dm.raw_image().unwrap();
        assert!(img.windows(6).any(|w| w == b"NEEDLE"));
    }

    #[test]
    fn io_counters_advance() {
        let dm = DiskManager::temp("dm5").unwrap();
        let id = dm.allocate();
        dm.write_page(&Page::new(id)).unwrap();
        dm.read_page(id).unwrap();
        let (r, w) = dm.io_counters();
        assert_eq!((r, w), (1, 1));
    }

    #[test]
    fn temp_file_removed_on_drop() {
        let path;
        {
            let dm = DiskManager::temp("dm6").unwrap();
            path = dm.path().to_path_buf();
            assert!(path.exists());
        }
        assert!(!path.exists());
    }

    #[test]
    fn out_of_order_page_writes_fill_gaps() {
        let dm = DiskManager::temp("dm7").unwrap();
        let a = dm.allocate();
        let b = dm.allocate();
        let c = dm.allocate();
        // Write the last page first — the file must zero-fill the gap.
        dm.write_page(&Page::new(c)).unwrap();
        dm.write_page(&Page::new(a)).unwrap();
        assert!(dm.read_page(b).is_ok());
    }
}
