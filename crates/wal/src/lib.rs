//! # instant-wal
//!
//! Write-ahead logging "revisited" for data degradation (paper Section III):
//! a classical WAL durably retains *every* before/after image, so the log
//! itself becomes the forensic channel that resurrects degraded states —
//! the paper (citing Stahlberg et al.) calls out "unintended retention in …
//! the logs". This crate closes that channel with **cryptographic erasure**:
//!
//! * Row payloads in log records are sealed with a stream cipher under a
//!   **time-windowed key** ([`keystore::KeyStore`]). Once every tuple whose
//!   images fall in a window has degraded past those images, the window key
//!   is **shredded** — the ciphertext remains on disk but is information-
//!   theoretically useless, making the degradation irreversible *in the log*
//!   without rewriting it.
//! * Degradation steps log **redo-only after-images**
//!   ([`record::LogRecord::Degrade`]); the finer pre-image is never written
//!   to the log in any form.
//! * The log is **segmented** ([`segment`]): a directory of fixed-capacity
//!   `wal.<seqno>.seg` files, rotated on capacity and right before each
//!   checkpoint. Periodic checkpoints flush the store and physically
//!   truncate the old log by **deleting whole dead segments**
//!   ([`writer::Wal::truncate_before`]) — O(segments freed), never a
//!   rewrite of retained data.
//! * Commits can ride a **group-commit pipeline** ([`group::GroupCommit`]):
//!   a dedicated log-writer thread drains every waiting commit batch and
//!   issues one fsync per drain, preserving the acknowledged-implies-
//!   durable contract while N committers share a single fsync.
//! * The log can be **sharded** ([`walset::WalSet`]): N per-shard segment
//!   directories behind one global LSN allocator, each with its own
//!   group-commit pipeline, so independent committers append and fsync in
//!   parallel; recovery k-way merges the shards back into one LSN-ordered
//!   stream.
//!
//! Recovery ([`recovery`]) is logical redo: committed operations after the
//! last checkpoint are replayed; records whose window key has been shredded
//! are surfaced as [`recovery::Op::Unrecoverable`] — by construction these
//! can only concern states the degradation process had already retired.
//!
//! The cipher ([`cipher`]) is a from-scratch ChaCha20 core. **It exists to
//! model keyed erasure in a dependency-free build, not as audited
//! production cryptography** (see DESIGN.md, substitution table).

pub mod cipher;
pub mod group;
pub mod keystore;
pub mod record;
pub mod recovery;
pub mod segment;
pub mod walset;
pub mod writer;

pub use group::{CommitTicket, GroupCommit, GroupCommitConfig, GroupCommitSet, GroupCommitStats};
pub use keystore::KeyStore;
pub use record::{LogRecord, Lsn, Payload};
pub use segment::{SegmentConfig, SegmentStats};
pub use walset::WalSet;
pub use writer::Wal;
