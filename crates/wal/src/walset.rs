//! The sharded log: N per-shard [`Wal`] directories behind one global
//! LSN space.
//!
//! A [`WalSet`] owns a directory of per-shard segment directories
//! (`<path>/shard-<k>/wal.<seqno>.seg`). Commits are routed to a shard by
//! transaction id, so independent committers append — and, with one
//! group-commit pipeline per shard, *fsync* — in parallel instead of
//! funnelling through a single drain thread. What keeps the shards one
//! log is the **global LSN allocator**: a shared atomic that every shard
//! draws batch ranges from *under its own shard lock*
//! ([`Wal::append_batch_alloc`]), so each shard's byte stream is
//! LSN-monotone while the union of all shards is a dense global order.
//! Gaps a shard sees (LSNs other shards took) are encoded in its stream
//! as [`LogRecord::LsnJump`] markers; a single-shard set never jumps,
//! which keeps the N=1 layout byte-identical to a plain [`Wal`]
//! directory.
//!
//! Recovery reads every shard independently (each trims its own torn
//! tail) and **k-way merges by LSN** into one globally ordered stream —
//! [`crate::recovery::replay`] consumes it unchanged. An epoch torn on
//! one shard but durable on another is handled for free: the torn
//! shard's unacknowledged suffix simply leaves holes in the merged LSN
//! sequence, and commit analysis never sees a Commit record for a torn
//! transaction.
//!
//! Migration is one-time, on open: a single-file pre-segment log is
//! first converted by [`Wal::open`]'s own legacy machinery, then a
//! flat single-directory segment layout (segments directly under
//! `<path>`) is renamed file-by-file into `shard-000/`. Renames are
//! atomic and idempotent, so every crash window either retries the move
//! or finds the finished layout.

use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use instant_common::{Result, TxId};
use parking_lot::Mutex;

use crate::record::{LogRecord, Lsn};
use crate::segment::{self, SegmentConfig, SegmentStats};
use crate::writer::{log_size, Wal};

/// Directory name of shard `k` (zero-padded for stable listings).
fn shard_dir_name(k: usize) -> String {
    format!("shard-{k:03}")
}

/// Parse a `shard-<k>` directory name; `None` for anything else.
fn parse_shard_dir(name: &str) -> Option<usize> {
    let digits = name.strip_prefix("shard-")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// A set of per-shard logs sharing one global LSN space.
pub struct WalSet {
    dir: PathBuf,
    shards: Vec<Arc<Wal>>,
    /// The global LSN allocator. Shards draw batch ranges from it under
    /// their own shard lock, which is the whole ordering story: unique
    /// LSNs globally, monotone LSNs per shard byte stream.
    alloc: Arc<AtomicU64>,
    /// Replication retention holds: `hold id → lowest LSN the holder
    /// still needs`. [`WalSet::truncate_before`] never deletes below the
    /// minimum of these, so a checkpoint cannot destroy a sealed segment
    /// a connected follower has not acknowledged yet. Rank 515 sits
    /// between the group-commit locks (500/505/510) and the shard locks
    /// (520): the floor is read *before* any shard lock is taken, and
    /// never held across file I/O.
    holds: Mutex<HashMap<u64, Lsn>>, // lock-rank: 515
    next_hold_id: AtomicU64,
    ephemeral: bool,
}

impl std::fmt::Debug for WalSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalSet")
            .field("dir", &self.dir)
            .field("shards", &self.shards.len())
            .finish()
    }
}

impl WalSet {
    /// Open (or create) a sharded log at `path` with `shards` shards and
    /// default segment tuning. The effective shard count is
    /// `max(shards, 1, shards found on disk)` — an existing log never
    /// loses a shard to a config shrink, because acknowledged records on
    /// a stranded shard would silently vanish from recovery.
    pub fn open(path: impl AsRef<Path>, shards: usize) -> Result<WalSet> {
        Self::open_with(path, shards, SegmentConfig::default())
    }

    /// [`WalSet::open`] with explicit segment tuning.
    pub fn open_with(path: impl AsRef<Path>, shards: usize, cfg: SegmentConfig) -> Result<WalSet> {
        let dir = path.as_ref().to_path_buf();
        // A pre-segment single-file log (or its interrupted-migration
        // marker): let Wal's own crash-safe machinery convert it into a
        // flat segment directory first, then shard that.
        if dir.is_file() || legacy_marker_exists(&dir) {
            drop(Wal::open_with(&dir, cfg.clone())?);
        }
        std::fs::create_dir_all(&dir)?;
        migrate_flat_layout(&dir)?;

        let mut max_on_disk = 0usize;
        for entry in std::fs::read_dir(&dir)? {
            let entry = entry?;
            if let Some(k) = entry.file_name().to_str().and_then(parse_shard_dir) {
                max_on_disk = max_on_disk.max(k + 1);
            }
        }
        let count = shards.max(1).max(max_on_disk);

        let mut shard_logs = Vec::with_capacity(count);
        let mut next_lsn = 0u64;
        for k in 0..count {
            let shard = Wal::open_with(dir.join(shard_dir_name(k)), cfg.clone())?;
            next_lsn = next_lsn.max(shard.next_lsn());
            shard_logs.push(Arc::new(shard));
        }
        Ok(WalSet {
            dir,
            shards: shard_logs,
            alloc: Arc::new(AtomicU64::new(next_lsn)),
            holds: Mutex::ranked(515, HashMap::new()),
            next_hold_id: AtomicU64::new(1),
            ephemeral: false,
        })
    }

    /// Throwaway sharded log in the temp directory, removed on drop.
    pub fn temp_with(tag: &str, shards: usize, cfg: SegmentConfig) -> Result<WalSet> {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap() // lint:allow(L001, a system clock before the Unix epoch is unsupported)
            .as_nanos();
        let path = std::env::temp_dir().join(format!(
            "instantdb-walset-{tag}-{}-{nanos}.log",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        let mut set = Self::open_with(path, shards, cfg)?;
        set.ephemeral = true;
        Ok(set)
    }

    /// The set's root directory.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Number of shards.
    pub fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Shard `k`'s underlying log (k-targeted test hooks, pipelines).
    pub fn shard(&self, k: usize) -> &Arc<Wal> {
        &self.shards[k]
    }

    /// A clone of the global LSN allocator, for per-shard pipelines.
    pub fn alloc_handle(&self) -> Arc<AtomicU64> {
        Arc::clone(&self.alloc)
    }

    /// The shard a transaction's records are routed to. Records without
    /// a transaction (`Checkpoint`) go to shard 0.
    pub fn shard_for(&self, tx: Option<TxId>) -> usize {
        match tx {
            Some(tx) => (tx.0 % self.shards.len() as u64) as usize,
            None => 0,
        }
    }

    /// The shard a record batch is routed to (by its first record's
    /// transaction id — a commit's records all carry one transaction).
    pub fn shard_for_batch(&self, records: &[LogRecord]) -> usize {
        self.shard_for(records.first().and_then(|r| r.tx()))
    }

    /// Append a batch to shard `k` with globally allocated LSNs; returns
    /// the batch's first LSN. Buffered — call [`WalSet::sync`] on the
    /// same shard for durability.
    pub fn append_batch(&self, k: usize, records: &[LogRecord]) -> Result<Lsn> {
        self.shards[k].append_batch_alloc(&self.alloc, records)
    }

    /// Append one record, routed by its transaction id.
    pub fn append(&self, rec: &LogRecord) -> Result<Lsn> {
        let k = self.shard_for(rec.tx());
        self.append_batch(k, std::slice::from_ref(rec))
    }

    /// Fsync shard `k` — the durability point for batches appended to it.
    pub fn sync(&self, k: usize) -> Result<()> {
        self.shards[k].sync()
    }

    /// Fsync every shard.
    pub fn sync_all(&self) -> Result<()> {
        for shard in &self.shards {
            shard.sync()?;
        }
        Ok(())
    }

    /// Seal every shard's active segment (checkpoint prologue): after
    /// this, everything the checkpoint covers lives in sealed segments
    /// that [`WalSet::truncate_before`] can delete whole. Empty actives
    /// no-op per shard.
    pub fn rotate_all(&self) -> Result<()> {
        for shard in &self.shards {
            shard.rotate()?;
        }
        Ok(())
    }

    /// Physically drop records below `keep_from` on every shard; returns
    /// the total frames dropped. The cut is clamped to the replication
    /// [retention floor](WalSet::retention_floor): a sealed segment no
    /// connected follower has acknowledged yet survives the checkpoint
    /// and is deleted by a later one, once acks catch up. The floor is
    /// snapshotted before the per-shard truncations (rank 515 is never
    /// held across the shard locks or the unlink I/O); a hold registered
    /// concurrently with the cut may or may not constrain it, which is
    /// why followers register their hold *before* reading any segment.
    pub fn truncate_before(&self, keep_from: Lsn) -> Result<u64> {
        let cut = match self.retention_floor() {
            Some(floor) => keep_from.min(floor),
            None => keep_from,
        };
        let mut dropped = 0u64;
        for shard in &self.shards {
            dropped += shard.truncate_before(cut)?;
        }
        Ok(dropped)
    }

    /// Register a replication retention hold: records at or above
    /// `keep_from` will survive [`WalSet::truncate_before`] until the
    /// hold is advanced past them or released. Returns the hold's id.
    pub fn register_retention_hold(&self, keep_from: Lsn) -> u64 {
        let id = self.next_hold_id.fetch_add(1, Ordering::Relaxed);
        self.holds.lock().insert(id, keep_from);
        id
    }

    /// Advance (or rewind) hold `id` to `keep_from`. Unknown ids no-op —
    /// a raced release wins.
    pub fn update_retention_hold(&self, id: u64, keep_from: Lsn) {
        if let Some(slot) = self.holds.lock().get_mut(&id) {
            *slot = keep_from;
        }
    }

    /// Release hold `id` (follower disconnected); truncation is again
    /// bounded only by the remaining holds.
    pub fn release_retention_hold(&self, id: u64) {
        self.holds.lock().remove(&id);
    }

    /// The lowest LSN any registered hold still needs, or `None` when no
    /// holds exist.
    pub fn retention_floor(&self) -> Option<Lsn> {
        self.holds.lock().values().min().copied()
    }

    /// Shard `k`'s sealed, immutable segments as `(seqno, first_lsn,
    /// len_bytes)` — the shipping manifest a replication sender works
    /// from (see [`Wal::sealed_segments`]).
    pub fn sealed_segments(&self, k: usize) -> Vec<(u64, Lsn, u64)> {
        self.shards[k].sealed_segments()
    }

    /// First LSN of shard `k`'s active (unsealed) segment: everything
    /// below it on this shard lives in sealed segments.
    pub fn sealed_end_lsn(&self, k: usize) -> Lsn {
        self.shards[k].sealed_end_lsn()
    }

    /// Every intact record across all shards, **k-way merged by LSN**
    /// into one globally ordered stream (each shard's own scan is
    /// already LSN-sorted and torn-tail-trimmed). This is the recovery
    /// read path: [`crate::recovery::replay`] consumes it unchanged.
    pub fn iterate(&self) -> Result<Vec<(Lsn, LogRecord)>> {
        let mut streams = Vec::with_capacity(self.shards.len());
        for shard in &self.shards {
            streams.push(shard.iterate()?);
        }
        let total = streams.iter().map(Vec::len).sum();
        let mut heads = vec![0usize; streams.len()];
        let mut out = Vec::with_capacity(total);
        loop {
            let mut min: Option<(Lsn, usize)> = None;
            for (s, stream) in streams.iter().enumerate() {
                if let Some((lsn, _)) = stream.get(heads[s]) {
                    if min.map_or(true, |(m, _)| *lsn < m) {
                        min = Some((*lsn, s));
                    }
                }
            }
            let Some((_, s)) = min else { break };
            out.push(streams[s][heads[s]].clone());
            heads[s] += 1;
        }
        Ok(out)
    }

    /// Next LSN the global allocator will hand out.
    pub fn next_lsn(&self) -> Lsn {
        self.alloc.load(Ordering::Relaxed)
    }

    /// Smallest first-LSN over shards that still retain records; the
    /// allocator's next LSN when the whole set is empty (shards whose
    /// log is empty — freshly created or fully truncated — don't drag
    /// the base down to their stale local watermark).
    pub fn base_lsn(&self) -> Lsn {
        let mut base: Option<Lsn> = None;
        for shard in &self.shards {
            let b = shard.base_lsn();
            if b == shard.next_lsn() {
                continue; // shard retains nothing
            }
            base = Some(base.map_or(b, |x: Lsn| x.min(b)));
        }
        base.unwrap_or_else(|| self.next_lsn())
    }

    /// `(appended records, durability fsyncs)` summed over shards.
    pub fn counters(&self) -> (u64, u64) {
        let mut appended = 0u64;
        let mut syncs = 0u64;
        for shard in &self.shards {
            let (a, s) = shard.counters();
            appended += a;
            syncs += s;
        }
        (appended, syncs)
    }

    /// Bytes physically destroyed by truncation, summed over shards.
    pub fn truncated_bytes(&self) -> u64 {
        self.shards.iter().map(|s| s.truncated_bytes()).sum()
    }

    /// Segment lifecycle counters, summed over shards.
    pub fn segment_stats(&self) -> SegmentStats {
        let mut out = SegmentStats::default();
        for shard in &self.shards {
            let s = shard.segment_stats();
            out.segments += s.segments;
            out.rotations += s.rotations;
            out.segments_deleted += s.segments_deleted;
            out.deleted_bytes += s.deleted_bytes;
        }
        out
    }

    /// Per-shard segment lifecycle counters (observability).
    pub fn segment_stats_per_shard(&self) -> Vec<SegmentStats> {
        self.shards.iter().map(|s| s.segment_stats()).collect()
    }

    /// Raw on-disk bytes of every shard, concatenated in shard order
    /// (forensic attacker's view).
    pub fn raw_image(&self) -> Result<Vec<u8>> {
        let mut out = Vec::new();
        for shard in &self.shards {
            out.extend(shard.raw_image()?);
        }
        Ok(out)
    }

    /// Crash simulation: lose the last `n` bytes of **every** shard's
    /// active segment (`n = 0` flushes buffers without fsync on every
    /// shard). For a tear on one specific shard, go through
    /// [`WalSet::shard`].
    pub fn torn_tail(&self, n: u64) -> Result<()> {
        for shard in &self.shards {
            shard.torn_tail(n)?;
        }
        Ok(())
    }

    /// Total on-disk size of the whole set in bytes.
    pub fn log_size(&self) -> Result<u64> {
        let mut total = 0u64;
        for shard in &self.shards {
            total += log_size(shard)?;
        }
        Ok(total)
    }
}

impl Drop for WalSet {
    fn drop(&mut self) {
        if self.ephemeral {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

/// Does `<path>.legacy` (the single-file migration marker) exist?
fn legacy_marker_exists(path: &Path) -> bool {
    let mut s = path.as_os_str().to_os_string();
    s.push(".legacy");
    PathBuf::from(s).is_file()
}

/// One-time migration of a flat single-directory segment layout
/// (`<path>/wal.<seqno>.seg`, the pre-shard format) into `shard-000/`.
/// Pure atomic renames in ascending seqno order, then both directory
/// entries are fsynced; a crash mid-way leaves a partial split that the
/// next open finishes (names are unique across the two directories, so
/// re-running is idempotent).
fn migrate_flat_layout(dir: &Path) -> Result<()> {
    let flat = segment::list_segments(dir)?;
    if flat.is_empty() {
        return Ok(());
    }
    let shard0 = dir.join(shard_dir_name(0));
    std::fs::create_dir_all(&shard0)?;
    for (seqno, path) in flat {
        std::fs::rename(path, shard0.join(segment::file_name(seqno)))?;
    }
    segment::sync_dir(&shard0)?;
    segment::sync_dir(dir)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Payload;
    use instant_common::{TableId, Timestamp, TupleId};

    fn rec(tx: u64, i: u64) -> LogRecord {
        LogRecord::Insert {
            tx: TxId(tx),
            table: TableId(1),
            tid: TupleId::new(1, i as u16),
            row: Payload::Plain(format!("row-{tx}-{i}").into_bytes()),
            at: Timestamp::micros(i),
        }
    }

    fn scratch(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "instantdb-walset-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn shard_names_round_trip() {
        assert_eq!(parse_shard_dir(&shard_dir_name(0)), Some(0));
        assert_eq!(parse_shard_dir(&shard_dir_name(17)), Some(17));
        assert_eq!(parse_shard_dir("shard-"), None);
        assert_eq!(parse_shard_dir("shard-x"), None);
        assert_eq!(parse_shard_dir("wal.000000000000.seg"), None);
    }

    #[test]
    fn routed_appends_merge_back_in_global_lsn_order() {
        let set = WalSet::temp_with("merge", 4, SegmentConfig::default()).unwrap();
        let mut appended = Vec::new();
        for tx in 0..40u64 {
            let batch = vec![rec(tx, 0), rec(tx, 1)];
            let k = set.shard_for_batch(&batch);
            assert_eq!(k, (tx % 4) as usize);
            let first = set.append_batch(k, &batch).unwrap();
            appended.push((first, batch));
        }
        set.sync_all().unwrap();
        let merged = set.iterate().unwrap();
        assert_eq!(merged.len(), 80);
        // Strictly ascending, dense global LSNs.
        for (i, (lsn, _)) in merged.iter().enumerate() {
            assert_eq!(*lsn, i as u64);
        }
        // Every batch is contiguous at its allocated base.
        for (first, batch) in appended {
            for (j, want) in batch.iter().enumerate() {
                assert_eq!(&merged[first as usize + j].1, want);
            }
        }
        assert_eq!(set.next_lsn(), 80);
    }

    #[test]
    fn reopen_resumes_global_lsn_at_max_over_shards() {
        let path = scratch("reopen");
        {
            let set = WalSet::open(&path, 3).unwrap();
            for tx in 0..10u64 {
                let k = set.shard_for(Some(TxId(tx)));
                set.append_batch(k, &[rec(tx, 0)]).unwrap();
            }
            set.sync_all().unwrap();
            assert_eq!(set.next_lsn(), 10);
        }
        {
            let set = WalSet::open(&path, 3).unwrap();
            assert_eq!(set.next_lsn(), 10, "allocator resumes past all shards");
            assert_eq!(set.iterate().unwrap().len(), 10);
            let lsn = set.append_batch(0, &[rec(30, 0)]).unwrap();
            assert_eq!(lsn, 10);
        }
        std::fs::remove_dir_all(&path).unwrap();
    }

    #[test]
    fn config_shrink_never_strands_a_shard() {
        let path = scratch("shrink");
        {
            let set = WalSet::open(&path, 4).unwrap();
            for tx in 0..8u64 {
                let k = set.shard_for(Some(TxId(tx)));
                set.append_batch(k, &[rec(tx, 0)]).unwrap();
            }
            set.sync_all().unwrap();
        }
        {
            let set = WalSet::open(&path, 1).unwrap();
            assert_eq!(set.shard_count(), 4, "on-disk shards win over config");
            assert_eq!(set.iterate().unwrap().len(), 8, "no shard stranded");
        }
        std::fs::remove_dir_all(&path).unwrap();
    }

    #[test]
    fn flat_pr4_layout_migrates_into_shard_zero() {
        let path = scratch("flat");
        // Write a flat single-directory log with the plain Wal.
        {
            let wal = Wal::open(&path).unwrap();
            for i in 0..6u64 {
                wal.append(&rec(i, i)).unwrap();
            }
            wal.sync().unwrap();
        }
        let set = WalSet::open(&path, 2).unwrap();
        assert!(
            segment::list_segments(&path).unwrap().is_empty(),
            "no flat segments left behind"
        );
        assert!(path.join(shard_dir_name(0)).is_dir());
        assert_eq!(set.next_lsn(), 6);
        let merged = set.iterate().unwrap();
        assert_eq!(merged.len(), 6);
        for (i, (lsn, r)) in merged.iter().enumerate() {
            assert_eq!(*lsn, i as u64);
            assert_eq!(r, &rec(i as u64, i as u64));
        }
        // The migrated set keeps working across both shards.
        set.append_batch(1, &[rec(7, 7)]).unwrap();
        set.sync(1).unwrap();
        assert_eq!(set.iterate().unwrap().len(), 7);
        drop(set);
        std::fs::remove_dir_all(&path).unwrap();
    }

    #[test]
    fn single_file_legacy_log_migrates_through_both_formats() {
        use instant_common::codec::fnv1a;
        use std::io::Write as _;
        let path = scratch("legacy");
        {
            let mut f = std::fs::File::create(&path).unwrap();
            for i in 0..4u64 {
                let body = rec(i, i).encode();
                f.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
                f.write_all(&fnv1a(&body).to_le_bytes()).unwrap();
                f.write_all(&body).unwrap();
            }
            f.sync_all().unwrap();
        }
        let set = WalSet::open(&path, 2).unwrap();
        assert_eq!(set.next_lsn(), 4, "single-file → flat → sharded");
        assert_eq!(set.iterate().unwrap().len(), 4);
        drop(set);
        std::fs::remove_dir_all(&path).unwrap();
    }

    #[test]
    fn torn_shard_loses_only_its_own_tail_in_the_merge() {
        let path = scratch("torn");
        {
            let set = WalSet::open(&path, 2).unwrap();
            // Shard 0: txs 0,2; shard 1: txs 1,3.
            for tx in 0..4u64 {
                let k = set.shard_for(Some(TxId(tx)));
                set.append_batch(k, &[rec(tx, 0)]).unwrap();
            }
            // Shard 1 is durable; shard 0's last append tears.
            set.shard(1).sync().unwrap();
            set.shard(0).torn_tail(3).unwrap();
        }
        let set = WalSet::open(&path, 2).unwrap();
        let merged = set.iterate().unwrap();
        let lsns: Vec<Lsn> = merged.iter().map(|(l, _)| *l).collect();
        // Shard 0 lost tx 2 (LSN 2); shard 1's records survive around
        // the hole.
        assert_eq!(lsns, vec![0, 1, 3], "hole where the torn record was");
        drop(set);
        std::fs::remove_dir_all(&path).unwrap();
    }

    #[test]
    fn single_shard_set_is_byte_identical_to_a_plain_wal() {
        let plain = Wal::temp("plain-twin").unwrap();
        let set = WalSet::temp_with("set-twin", 1, SegmentConfig::default()).unwrap();
        for tx in 0..12u64 {
            let batch = vec![rec(tx, 0), rec(tx, 1)];
            plain.append_batch(&batch).unwrap();
            set.append_batch(0, &batch).unwrap();
        }
        plain.sync().unwrap();
        set.sync_all().unwrap();
        assert_eq!(
            plain.raw_image().unwrap(),
            set.raw_image().unwrap(),
            "N=1 never writes a jump marker"
        );
    }

    #[test]
    fn retention_hold_gates_truncation_until_released() {
        let set = WalSet::temp_with("holds", 2, SegmentConfig::default()).unwrap();
        for tx in 0..10u64 {
            let k = set.shard_for(Some(TxId(tx)));
            set.append_batch(k, &[rec(tx, 0)]).unwrap();
        }
        set.sync_all().unwrap();
        set.rotate_all().unwrap();

        // A follower still needs everything from LSN 0.
        let hold = set.register_retention_hold(0);
        assert_eq!(set.retention_floor(), Some(0));
        set.truncate_before(10).unwrap();
        assert_eq!(
            set.iterate().unwrap().len(),
            10,
            "hold at 0 pins every record through a full truncation"
        );

        // The follower acks through LSN 4: the cut may now advance, but
        // only that far.
        set.update_retention_hold(hold, 4);
        set.truncate_before(10).unwrap();
        let lsns: Vec<Lsn> = set.iterate().unwrap().iter().map(|(l, _)| *l).collect();
        assert!(
            (4..10).all(|l| lsns.contains(&l)),
            "nothing at or above the floor was dropped: {lsns:?}"
        );

        // Released: the next truncation honors the caller's cut.
        set.release_retention_hold(hold);
        assert_eq!(set.retention_floor(), None);
        set.truncate_before(10).unwrap();
        assert!(set.iterate().unwrap().is_empty());
    }

    #[test]
    fn retention_floor_is_min_across_holds() {
        let set = WalSet::temp_with("holds-min", 1, SegmentConfig::default()).unwrap();
        let a = set.register_retention_hold(7);
        let b = set.register_retention_hold(3);
        assert_eq!(set.retention_floor(), Some(3));
        set.update_retention_hold(b, 9);
        assert_eq!(set.retention_floor(), Some(7));
        set.release_retention_hold(a);
        assert_eq!(set.retention_floor(), Some(9));
        // Updating a released hold must not resurrect it.
        set.release_retention_hold(b);
        set.update_retention_hold(b, 1);
        assert_eq!(set.retention_floor(), None);
    }

    #[test]
    fn sealed_segments_delegate_per_shard() {
        let cfg = SegmentConfig { segment_bytes: 1 }; // clamps to the 4 KiB floor
        let set = WalSet::temp_with("sealed-per-shard", 2, cfg).unwrap();
        for tx in 0..4u64 {
            let k = set.shard_for(Some(TxId(tx)));
            set.append_batch(k, &[rec(tx, 0)]).unwrap();
        }
        set.sync_all().unwrap();
        assert!(set.sealed_segments(0).is_empty());
        set.rotate_all().unwrap();
        for k in 0..2 {
            let sealed = set.sealed_segments(k);
            assert_eq!(sealed.len(), 1, "shard {k}");
            assert_eq!(sealed[0].0, 0, "first segment seqno");
            assert!(set.sealed_end_lsn(k) >= sealed[0].1);
        }
    }

    #[test]
    fn truncate_and_base_lsn_span_shards() {
        let set = WalSet::temp_with("trunc", 2, SegmentConfig::default()).unwrap();
        for tx in 0..10u64 {
            let k = set.shard_for(Some(TxId(tx)));
            set.append_batch(k, &[rec(tx, 0)]).unwrap();
        }
        set.sync_all().unwrap();
        assert_eq!(set.base_lsn(), 0);
        set.rotate_all().unwrap();
        // A checkpoint-style record lands on shard 0 after the rotation.
        let ckpt = set
            .append(&LogRecord::Checkpoint {
                at: Timestamp::ZERO,
            })
            .unwrap();
        set.sync(0).unwrap();
        set.truncate_before(ckpt).unwrap();
        let merged = set.iterate().unwrap();
        assert_eq!(merged.len(), 1, "only the checkpoint record survives");
        assert_eq!(merged[0].0, ckpt);
        assert_eq!(set.base_lsn(), ckpt, "empty shards don't drag the base");
        assert!(set.segment_stats().segments_deleted >= 2);
    }
}
