//! The log file: append, iterate, truncate, forensic view.
//!
//! Framing per record: `len: u32 | fnv1a(bytes): u64 | bytes`. Appends are
//! buffered; `sync()` flushes and fsyncs (called at commit — group commit
//! simply batches appends between syncs). Iteration stops at the first
//! frame whose checksum fails or whose length overruns the file: a torn
//! tail from a crash mid-write loses at most the unsynced suffix, which by
//! WAL discipline contains no committed work.
//!
//! `truncate_before(lsn)` physically drops records below an LSN (after a
//! checkpoint) by rewriting the retained suffix — this is the *physical*
//! counterpart to key shredding: shredding makes old images unreadable
//! immediately; truncation eventually reclaims and destroys the bytes too.

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use instant_common::codec::fnv1a;
use instant_common::{Error, Result};

use crate::record::{LogRecord, Lsn};

struct WalInner {
    writer: BufWriter<File>,
    next_lsn: Lsn,
    /// LSN of the first record still physically present.
    base_lsn: Lsn,
    syncs: u64,
    appended: u64,
}

/// An append-only write-ahead log.
pub struct Wal {
    path: PathBuf,
    inner: Mutex<WalInner>,
    ephemeral: bool,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal").field("path", &self.path).finish()
    }
}

impl Wal {
    /// Open (or create) the log at `path`, scanning to find the next LSN.
    pub fn open(path: impl AsRef<Path>) -> Result<Wal> {
        let path = path.as_ref().to_path_buf();
        let (records, base_lsn) = Self::read_all(&path)?;
        let next_lsn = base_lsn + records.len() as u64;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)?;
        Ok(Wal {
            path,
            inner: Mutex::new(WalInner {
                writer: BufWriter::new(file),
                next_lsn,
                base_lsn,
                syncs: 0,
                appended: 0,
            }),
            ephemeral: false,
        })
    }

    /// Throwaway log in the temp directory, removed on drop.
    pub fn temp(tag: &str) -> Result<Wal> {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let path = std::env::temp_dir().join(format!(
            "instantdb-wal-{tag}-{}-{nanos}.log",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let mut wal = Self::open(path)?;
        wal.ephemeral = true;
        Ok(wal)
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append a record, returning its LSN. Buffered — call [`Wal::sync`]
    /// at commit points.
    pub fn append(&self, rec: &LogRecord) -> Result<Lsn> {
        let bytes = rec.encode();
        let mut inner = self.inner.lock();
        let lsn = inner.next_lsn;
        inner.next_lsn += 1;
        inner.appended += 1;
        let frame_len = bytes.len() as u32;
        inner.writer.write_all(&frame_len.to_le_bytes())?;
        inner.writer.write_all(&fnv1a(&bytes).to_le_bytes())?;
        inner.writer.write_all(&bytes)?;
        Ok(lsn)
    }

    /// Flush buffers and fsync — the durability point.
    pub fn sync(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.writer.flush()?;
        inner.writer.get_ref().sync_all()?;
        inner.syncs += 1;
        Ok(())
    }

    /// `(appended records, fsync calls)` since open.
    pub fn counters(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.appended, inner.syncs)
    }

    /// Next LSN to be assigned.
    pub fn next_lsn(&self) -> Lsn {
        self.inner.lock().next_lsn
    }

    /// LSN of the first physically retained record.
    pub fn base_lsn(&self) -> Lsn {
        self.inner.lock().base_lsn
    }

    /// Read every intact record: `(lsn, record)` pairs. Stops at the first
    /// torn/corrupt frame.
    pub fn iterate(&self) -> Result<Vec<(Lsn, LogRecord)>> {
        {
            let mut inner = self.inner.lock();
            inner.writer.flush()?;
        }
        let (raw, base) = Self::read_all(&self.path)?;
        Ok(raw
            .into_iter()
            .enumerate()
            .map(|(i, r)| (base + i as u64, r))
            .collect())
    }

    /// Physically drop all records with `lsn < keep_from` (post-checkpoint
    /// truncation). Rewrites the retained suffix to a fresh file.
    pub fn truncate_before(&self, keep_from: Lsn) -> Result<u64> {
        let mut inner = self.inner.lock();
        inner.writer.flush()?;
        let (records, base) = Self::read_all(&self.path)?;
        let keep_idx = keep_from.saturating_sub(base).min(records.len() as u64) as usize;
        let dropped = keep_idx as u64;
        let tmp = self.path.with_extension("log.tmp");
        {
            let mut f = BufWriter::new(File::create(&tmp)?);
            // New header: base LSN marker frame.
            f.write_all(b"WALB")?;
            f.write_all(&(base + dropped).to_le_bytes())?;
            for rec in &records[keep_idx..] {
                let bytes = rec.encode();
                f.write_all(&(bytes.len() as u32).to_le_bytes())?;
                f.write_all(&fnv1a(&bytes).to_le_bytes())?;
                f.write_all(&bytes)?;
            }
            f.flush()?;
            f.get_ref().sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        let file = OpenOptions::new()
            .append(true)
            .read(true)
            .open(&self.path)?;
        inner.writer = BufWriter::new(file);
        inner.base_lsn = base + dropped;
        Ok(dropped)
    }

    /// Raw on-disk log bytes (forensic attacker's view).
    pub fn raw_image(&self) -> Result<Vec<u8>> {
        {
            let mut inner = self.inner.lock();
            inner.writer.flush()?;
        }
        let mut f = File::open(&self.path)?;
        let mut out = Vec::new();
        f.read_to_end(&mut out)?;
        Ok(out)
    }

    /// Parse a log file: returns `(records, base_lsn)`. Tolerates a torn
    /// tail (stops), rejects nothing else.
    fn read_all(path: &Path) -> Result<(Vec<LogRecord>, Lsn)> {
        let mut file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok((Vec::new(), 0)),
            Err(e) => return Err(e.into()),
        };
        let mut buf = Vec::new();
        file.seek(SeekFrom::Start(0))?;
        file.read_to_end(&mut buf)?;
        let mut pos = 0usize;
        let mut base_lsn: Lsn = 0;
        // Optional base marker written by truncation.
        if buf.len() >= 12 && &buf[0..4] == b"WALB" {
            base_lsn = u64::from_le_bytes(buf[4..12].try_into().unwrap());
            pos = 12;
        }
        let mut records = Vec::new();
        while pos + 12 <= buf.len() {
            let len = u32::from_le_bytes(buf[pos..pos + 4].try_into().unwrap()) as usize;
            let sum = u64::from_le_bytes(buf[pos + 4..pos + 12].try_into().unwrap());
            let start = pos + 12;
            let end = start + len;
            if end > buf.len() {
                break; // torn tail
            }
            let body = &buf[start..end];
            if fnv1a(body) != sum {
                break; // corrupt frame — stop here
            }
            match LogRecord::decode(body) {
                Ok(rec) => records.push(rec),
                Err(_) => break,
            }
            pos = end;
        }
        Ok((records, base_lsn))
    }

    /// Simulate a crash that loses the last `n` *bytes* of the file (torn
    /// write). Test/experiment hook.
    pub fn torn_tail(&self, n: u64) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.writer.flush()?;
        let f = OpenOptions::new().write(true).open(&self.path)?;
        let len = f.metadata()?.len();
        f.set_len(len.saturating_sub(n))?;
        drop(f);
        let file = OpenOptions::new()
            .append(true)
            .read(true)
            .open(&self.path)?;
        inner.writer = BufWriter::new(file);
        Ok(())
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        if self.ephemeral {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// Helper for benches: total on-disk size of the log in bytes.
pub fn log_size(wal: &Wal) -> Result<u64> {
    std::fs::metadata(wal.path())
        .map(|m| m.len())
        .map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Payload;
    use instant_common::{TableId, Timestamp, TupleId, TxId};

    fn rec(i: u64) -> LogRecord {
        LogRecord::Insert {
            tx: TxId(i),
            table: TableId(1),
            tid: TupleId::new(1, i as u16),
            row: Payload::Plain(format!("row-{i}").into_bytes()),
            at: Timestamp::micros(i),
        }
    }

    #[test]
    fn append_iterate_round_trip() {
        let wal = Wal::temp("w1").unwrap();
        for i in 0..10 {
            let lsn = wal.append(&rec(i)).unwrap();
            assert_eq!(lsn, i);
        }
        wal.sync().unwrap();
        let records = wal.iterate().unwrap();
        assert_eq!(records.len(), 10);
        for (i, (lsn, r)) in records.iter().enumerate() {
            assert_eq!(*lsn, i as u64);
            assert_eq!(r, &rec(i as u64));
        }
    }

    #[test]
    fn reopen_continues_lsns() {
        let path =
            std::env::temp_dir().join(format!("instantdb-wal-reopen-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let wal = Wal::open(&path).unwrap();
            wal.append(&rec(0)).unwrap();
            wal.append(&rec(1)).unwrap();
            wal.sync().unwrap();
        }
        {
            let wal = Wal::open(&path).unwrap();
            assert_eq!(wal.next_lsn(), 2);
            let lsn = wal.append(&rec(2)).unwrap();
            assert_eq!(lsn, 2);
            wal.sync().unwrap();
            assert_eq!(wal.iterate().unwrap().len(), 3);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_detected_and_dropped() {
        let wal = Wal::temp("w2").unwrap();
        for i in 0..5 {
            wal.append(&rec(i)).unwrap();
        }
        wal.sync().unwrap();
        // Chop 3 bytes off the last frame.
        wal.torn_tail(3).unwrap();
        let records = wal.iterate().unwrap();
        assert_eq!(records.len(), 4, "torn final record must be dropped");
    }

    #[test]
    fn corrupt_middle_frame_stops_iteration() {
        let wal = Wal::temp("w3").unwrap();
        for i in 0..5 {
            wal.append(&rec(i)).unwrap();
        }
        wal.sync().unwrap();
        // Flip a byte near the middle of the file.
        let img = wal.raw_image().unwrap();
        let mid = img.len() / 2;
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = OpenOptions::new().write(true).open(wal.path()).unwrap();
            f.seek(SeekFrom::Start(mid as u64)).unwrap();
            f.write_all(&[0xFF]).unwrap();
        }
        let records = wal.iterate().unwrap();
        assert!(records.len() < 5, "corruption must truncate the usable log");
    }

    #[test]
    fn truncate_before_drops_prefix() {
        let wal = Wal::temp("w4").unwrap();
        for i in 0..10 {
            wal.append(&rec(i)).unwrap();
        }
        wal.sync().unwrap();
        let dropped = wal.truncate_before(6).unwrap();
        assert_eq!(dropped, 6);
        assert_eq!(wal.base_lsn(), 6);
        let records = wal.iterate().unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(records[0].0, 6);
        assert_eq!(records[0].1, rec(6));
        // Appends continue with correct LSNs.
        let lsn = wal.append(&rec(10)).unwrap();
        assert_eq!(lsn, 10);
        wal.sync().unwrap();
        assert_eq!(wal.iterate().unwrap().len(), 5);
    }

    #[test]
    fn truncation_physically_destroys_bytes() {
        let wal = Wal::temp("w5").unwrap();
        wal.append(&LogRecord::Insert {
            tx: TxId(1),
            table: TableId(1),
            tid: TupleId::new(1, 1),
            row: Payload::Plain(b"DESTROY-ME".to_vec()),
            at: Timestamp::ZERO,
        })
        .unwrap();
        wal.append(&rec(99)).unwrap();
        wal.sync().unwrap();
        assert!(wal
            .raw_image()
            .unwrap()
            .windows(10)
            .any(|w| w == b"DESTROY-ME"));
        wal.truncate_before(1).unwrap();
        assert!(
            !wal.raw_image()
                .unwrap()
                .windows(10)
                .any(|w| w == b"DESTROY-ME"),
            "truncated bytes must be physically gone"
        );
    }

    #[test]
    fn counters_track_appends_and_syncs() {
        let wal = Wal::temp("w6").unwrap();
        wal.append(&rec(0)).unwrap();
        wal.append(&rec(1)).unwrap();
        wal.sync().unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.counters(), (2, 2));
    }

    #[test]
    fn empty_log_iterates_empty() {
        let wal = Wal::temp("w7").unwrap();
        assert!(wal.iterate().unwrap().is_empty());
        assert_eq!(wal.next_lsn(), 0);
    }
}
