//! The segmented log: append, rotate, iterate, truncate, forensic view.
//!
//! A [`Wal`] is a **directory** of fixed-capacity segment files
//! (`wal.<seqno>.seg`, see [`crate::segment`]). Appends go to the single
//! *active* (highest-numbered) segment, buffered; `sync()` flushes and
//! fsyncs it (called at commit — group commit simply batches appends
//! between syncs). When the active segment reaches capacity the writer
//! **rotates**: the outgoing segment is flushed + fsynced (sealing it —
//! a sealed segment never changes again), a fresh segment starting at the
//! next LSN is created, and the directory entry is fsynced before any
//! commit relies on the new file.
//!
//! `truncate_before(lsn)` physically drops records below an LSN (after a
//! checkpoint) by **deleting whole dead segments** — segments whose every
//! record is below the cut. No retained byte is rewritten and the Wal
//! lock is held only to splice the in-memory segment list, so the cost is
//! O(segments freed) unlinks and commit acknowledgments never stall
//! behind a log-sized copy. This is the *physical* counterpart to key
//! shredding: shredding makes old images unreadable immediately;
//! segment deletion reclaims and destroys the bytes themselves. The
//! engine rotates right before logging a `Checkpoint` record, so the
//! record starts a fresh segment and everything before it is deletable.
//!
//! Recovery streams frames across segments in LSN order; a torn or
//! corrupt tail is trimmed off the **last** segment at open (sealed
//! segments were fsynced at rotation, so only the active one can tear).
//! A log written by the old single-file format is migrated into segments
//! once, on open — see [`Wal::open`].

use std::fs::{File, OpenOptions};
use std::io::{BufWriter, Read, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use instant_common::{Error, Result};

use crate::record::{LogRecord, Lsn};
use crate::segment::{
    self, FrameScanner, SegmentConfig, SegmentHeader, SegmentStats, SEGMENT_HEADER_LEN,
};

/// The segment currently receiving appends.
struct ActiveSegment {
    seqno: u64,
    first_lsn: Lsn,
    records: u64,
    /// Bytes the file will hold once buffers flush (header + frames).
    written: u64,
    path: PathBuf,
    writer: BufWriter<File>,
}

/// A rotated segment: immutable on disk until truncation deletes it.
struct SealedSegment {
    seqno: u64,
    first_lsn: Lsn,
    records: u64,
    bytes: u64,
    path: PathBuf,
}

struct WalInner {
    dir: PathBuf,
    capacity: u64,
    sealed: Vec<SealedSegment>,
    active: ActiveSegment,
    next_lsn: Lsn,
    syncs: u64,
    appended: u64,
    /// Bytes physically destroyed by segment deletion since open.
    truncated_bytes: u64,
    rotations: u64,
    segments_deleted: u64,
}

impl WalInner {
    fn append_one(&mut self, rec: &LogRecord) -> Result<Lsn> {
        if self.active.written >= self.capacity && self.active.records > 0 {
            self.rotate()?;
        }
        let bytes = rec.encode();
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        self.appended += 1;
        let frame = segment::write_frame(&mut self.active.writer, &bytes)?;
        self.active.records += 1;
        self.active.written += frame;
        Ok(lsn)
    }

    /// Write an [`LogRecord::LsnJump`] frame re-basing this shard's
    /// running LSN to `next`. Consumes no LSN and does not count as an
    /// appended record — it is byte-stream plumbing for sharded logs
    /// whose global allocator handed the intervening LSNs to other
    /// shards.
    fn write_jump(&mut self, next: Lsn) -> Result<()> {
        if self.active.written >= self.capacity && self.active.records > 0 {
            self.rotate()?;
        }
        let bytes = LogRecord::LsnJump { next }.encode();
        let frame = segment::write_frame(&mut self.active.writer, &bytes)?;
        if self.active.records == 0 {
            // The segment holds nothing but this jump: its first *real*
            // record will carry `next`, so advance the in-memory base.
            // The on-disk header keeps the rotation-time watermark —
            // scans start there and the jump re-bases them — but
            // `base_lsn` must not report an LSN this shard never
            // retained. (Sound as a truncation end bound for the
            // previous segment too: a jump from the segment's start
            // means no record in the gap exists on this shard.)
            self.active.first_lsn = next;
        }
        self.active.records += 1;
        self.active.written += frame;
        self.next_lsn = next;
        Ok(())
    }

    /// Append `records` contiguously starting at the explicit global LSN
    /// `base`, emitting a jump marker first when `base` is ahead of this
    /// shard's local stream. `base` must never regress (the caller
    /// allocates it under this same lock).
    fn append_batch_at(&mut self, base: Lsn, records: &[LogRecord]) -> Result<()> {
        debug_assert!(
            base >= self.next_lsn,
            "global LSN allocation regressed: base {base} < next {}",
            self.next_lsn
        );
        if base != self.next_lsn {
            self.write_jump(base)?;
        }
        for rec in records {
            self.append_one(rec)?;
        }
        Ok(())
    }

    /// Seal the active segment and start a fresh one at the next LSN.
    /// No-op while the active segment is empty (so back-to-back rotations
    /// never litter the directory with zero-record files).
    ///
    /// Ordering is load-bearing: the outgoing file is flushed + fsynced
    /// *before* the switch (sealed segments are therefore always
    /// complete on disk — only the active segment can tear), and the
    /// directory entry of the new file is fsynced before any commit's
    /// `sync()` can acknowledge records inside it.
    fn rotate(&mut self) -> Result<()> {
        if self.active.records == 0 {
            return Ok(());
        }
        self.active.writer.flush()?;
        self.active.writer.get_ref().sync_all()?;
        let next = create_active(&self.dir, self.active.seqno + 1, self.next_lsn)?;
        segment::sync_dir(&self.dir)?;
        let old = std::mem::replace(&mut self.active, next);
        self.sealed.push(SealedSegment {
            seqno: old.seqno,
            first_lsn: old.first_lsn,
            records: old.records,
            bytes: old.written,
            path: old.path,
        });
        self.rotations += 1;
        Ok(())
    }

    fn flush_and_sync_active(&mut self) -> Result<()> {
        self.active.writer.flush()?;
        self.active.writer.get_ref().sync_all()?;
        Ok(())
    }

    /// `(path, first_lsn)` of every live segment in log order.
    fn segment_paths(&self) -> Vec<(PathBuf, Lsn)> {
        self.sealed
            .iter()
            .map(|s| (s.path.clone(), s.first_lsn))
            .chain(std::iter::once((
                self.active.path.clone(),
                self.active.first_lsn,
            )))
            .collect()
    }
}

/// Create segment `seqno` starting at `first_lsn` and buffer its header.
/// The caller fsyncs the directory when the new name must be durable.
fn create_active(dir: &Path, seqno: u64, first_lsn: Lsn) -> Result<ActiveSegment> {
    let path = dir.join(segment::file_name(seqno));
    let file = OpenOptions::new()
        .create(true)
        .truncate(true)
        .write(true)
        .read(true)
        .open(&path)?;
    let mut writer = BufWriter::new(file);
    let header = SegmentHeader { seqno, first_lsn };
    writer.write_all(&header.encode())?;
    Ok(ActiveSegment {
        seqno,
        first_lsn,
        records: 0,
        written: SEGMENT_HEADER_LEN,
        path,
        writer,
    })
}

/// Reopen an existing segment for appending (its valid length and record
/// count were established by the open-time scan).
fn reopen_active(
    path: PathBuf,
    seqno: u64,
    first_lsn: Lsn,
    records: u64,
    written: u64,
) -> Result<ActiveSegment> {
    let file = OpenOptions::new().append(true).read(true).open(&path)?;
    Ok(ActiveSegment {
        seqno,
        first_lsn,
        records,
        written,
        path,
        writer: BufWriter::new(file),
    })
}

/// An append-only, segmented write-ahead log.
pub struct Wal {
    dir: PathBuf,
    inner: Mutex<WalInner>, // lock-rank: 520
    ephemeral: bool,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal").field("dir", &self.dir).finish()
    }
}

impl Wal {
    /// Open (or create) the log directory at `path` with the default
    /// segment capacity. Scans stream frame by frame — the log is never
    /// materialized in memory. A torn/corrupt tail is **trimmed off the
    /// last segment** before the log reopens for appending: without the
    /// trim, post-recovery commits would land after the garbage bytes
    /// and be unreachable by every future scan.
    ///
    /// If `path` holds a log written by the old single-file format, it is
    /// migrated into segments once, here: the file is atomically renamed
    /// to `<path>.legacy`, its frames are streamed into capacity-sized
    /// segments inside a fresh directory at `path`, and the marker is
    /// removed only after the converted log is durable — a crash at any
    /// point either retries from the marker or was never destructive.
    pub fn open(path: impl AsRef<Path>) -> Result<Wal> {
        Self::open_with(path, SegmentConfig::default())
    }

    /// [`Wal::open`] with explicit segment tuning.
    pub fn open_with(path: impl AsRef<Path>, cfg: SegmentConfig) -> Result<Wal> {
        let dir = path.as_ref().to_path_buf();
        migrate_legacy(&dir, &cfg)?;
        std::fs::create_dir_all(&dir)?;
        let capacity = cfg.capacity();

        let on_disk = segment::list_segments(&dir)?;
        let mut metas: Vec<SealedSegment> = Vec::new();
        let mut last_seqno = 0u64;
        let mut expect_lsn: Option<Lsn> = None;
        let mut last_next_lsn: Lsn = 0;
        for (i, (seqno, seg_path)) in on_disk.iter().enumerate() {
            let scanned = segment::scan_segment(seg_path)?;
            let valid = scanned.as_ref().is_some_and(|s| {
                s.header.seqno == *seqno && expect_lsn.map_or(true, |e| s.header.first_lsn == e)
            });
            if !valid {
                // Headerless/corrupt-header segment, or an LSN gap: this
                // file and everything after it is unreachable garbage
                // (e.g. a crash before a freshly rotated file's header
                // was durable). Delete so future appends are reachable.
                for (_, p) in &on_disk[i..] {
                    std::fs::remove_file(p)?;
                }
                segment::sync_dir(&dir)?;
                break;
            }
            let s = scanned.expect("valid implies scanned"); // lint:allow(L001, a valid prefix implies the segment scanned)
            let torn = s.valid_len < s.file_len;
            if torn {
                // Trim the torn/corrupt tail so post-recovery appends are
                // reachable, and drop any later segments (only the last
                // segment of a clean shutdown can tear; later files after
                // a mid-log tear are beyond the usable log).
                let f = OpenOptions::new().write(true).open(seg_path)?;
                f.set_len(s.valid_len)?;
                f.sync_all()?;
                for (_, p) in &on_disk[i + 1..] {
                    std::fs::remove_file(p)?;
                }
                if i + 1 < on_disk.len() {
                    segment::sync_dir(&dir)?;
                }
            }
            last_seqno = *seqno;
            // The scan tracks the running LSN frame by frame (jump
            // markers re-base it), so sharded logs with discontinuous
            // per-shard LSNs chain-validate exactly like dense ones.
            expect_lsn = Some(s.next_lsn);
            last_next_lsn = s.next_lsn;
            metas.push(SealedSegment {
                seqno: *seqno,
                first_lsn: s.header.first_lsn,
                records: s.records,
                bytes: s.valid_len,
                path: seg_path.clone(),
            });
            if torn {
                break;
            }
        }

        let (active, next_lsn) = match metas.pop() {
            Some(last) => {
                let next_lsn = last_next_lsn;
                let active = reopen_active(
                    last.path,
                    last_seqno,
                    last.first_lsn,
                    last.records,
                    last.bytes,
                )?;
                (active, next_lsn)
            }
            None => {
                // Fresh (or fully corrupt) log: start at segment 0, LSN 0.
                let active = create_active(&dir, 0, 0)?;
                segment::sync_dir(&dir)?;
                (active, 0)
            }
        };

        Ok(Wal {
            dir: dir.clone(),
            inner: Mutex::ranked(
                520,
                WalInner {
                    dir,
                    capacity,
                    sealed: metas,
                    active,
                    next_lsn,
                    syncs: 0,
                    appended: 0,
                    truncated_bytes: 0,
                    rotations: 0,
                    segments_deleted: 0,
                },
            ),
            ephemeral: false,
        })
    }

    /// Throwaway log in the temp directory, removed on drop.
    pub fn temp(tag: &str) -> Result<Wal> {
        Self::temp_with(tag, SegmentConfig::default())
    }

    /// [`Wal::temp`] with explicit segment tuning.
    pub fn temp_with(tag: &str, cfg: SegmentConfig) -> Result<Wal> {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap() // lint:allow(L001, a system clock before the Unix epoch is unsupported)
            .as_nanos();
        let path = std::env::temp_dir().join(format!(
            "instantdb-wal-{tag}-{}-{nanos}.log",
            std::process::id()
        ));
        let _ = std::fs::remove_dir_all(&path);
        let mut wal = Self::open_with(path, cfg)?;
        wal.ephemeral = true;
        Ok(wal)
    }

    /// The log directory.
    pub fn path(&self) -> &Path {
        &self.dir
    }

    /// Append a record, returning its LSN. Buffered — call [`Wal::sync`]
    /// at commit points.
    pub fn append(&self, rec: &LogRecord) -> Result<Lsn> {
        // lint:allow(L102, deliberate append-under-Wal-lock: the inner mutex is the log's serialization point and rotation may fsync the outgoing segment)
        self.inner.lock().append_one(rec)
    }

    /// Append a batch of records contiguously under one lock acquisition,
    /// returning the LSN of the first (or the next LSN for an empty
    /// batch). Buffered — call [`Wal::sync`] for durability. Both the
    /// inline commit path and the group-commit writer thread go through
    /// this, so the framing/ordering logic exists once. A batch may
    /// straddle a rotation; that is safe because rotation fsyncs the
    /// outgoing segment, so the following [`Wal::sync`] still makes the
    /// whole batch durable.
    pub fn append_batch(&self, records: &[LogRecord]) -> Result<Lsn> {
        let mut inner = self.inner.lock();
        let first = inner.next_lsn;
        for rec in records {
            // lint:allow(L102, deliberate append-under-Wal-lock: the inner mutex is the log's serialization point and rotation may fsync the outgoing segment)
            inner.append_one(rec)?;
        }
        Ok(first)
    }

    /// [`Wal::append_batch`] for one shard of a sharded log: the batch's
    /// first LSN comes from the shared global allocator instead of this
    /// shard's local stream. The allocation happens *under this shard's
    /// lock*, which is what guarantees per-shard LSN monotonicity (two
    /// committers racing into the same shard allocate in the order they
    /// enter the log, so the byte stream and the LSN order agree). When
    /// the allocated base is ahead of the local stream — other shards
    /// took the LSNs in between — an [`LogRecord::LsnJump`] marker
    /// re-bases the stream first; a single-shard set never jumps, so its
    /// layout stays byte-identical to a plain [`Wal`].
    pub fn append_batch_alloc(
        &self,
        alloc: &std::sync::atomic::AtomicU64,
        records: &[LogRecord],
    ) -> Result<Lsn> {
        let mut inner = self.inner.lock();
        let base = alloc.fetch_add(records.len() as u64, std::sync::atomic::Ordering::Relaxed);
        if !records.is_empty() {
            // lint:allow(L102, deliberate append-under-Wal-lock: the inner mutex is the log's serialization point and rotation may fsync the outgoing segment)
            inner.append_batch_at(base, records)?;
        }
        Ok(base)
    }

    /// Flush buffers and fsync the active segment — the durability point.
    /// (Sealed segments were already fsynced when they rotated out.)
    pub fn sync(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        // lint:allow(L102, the durability point: fsync must cover exactly the bytes appended under this same lock)
        inner.flush_and_sync_active()?;
        inner.syncs += 1;
        Ok(())
    }

    /// Seal the active segment and start a fresh one; no-op when the
    /// active segment is empty. The engine calls this right before
    /// logging a `Checkpoint` record so the record starts its own
    /// segment — every prior record then lives in a wholly-dead segment
    /// that [`Wal::truncate_before`] can delete.
    pub fn rotate(&self) -> Result<()> {
        self.inner.lock().rotate()
    }

    /// `(appended records, fsync calls)` since open. Rotation fsyncs (the
    /// seal of an outgoing segment) are *not* counted: the counter tracks
    /// durability-point syncs, so "one fsync per drain" invariants stay
    /// exact under any segment capacity.
    pub fn counters(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.appended, inner.syncs)
    }

    /// Bytes physically destroyed by [`Wal::truncate_before`] since open.
    pub fn truncated_bytes(&self) -> u64 {
        self.inner.lock().truncated_bytes
    }

    /// Segment lifecycle counters.
    pub fn segment_stats(&self) -> SegmentStats {
        let inner = self.inner.lock();
        SegmentStats {
            segments: inner.sealed.len() as u64 + 1,
            rotations: inner.rotations,
            segments_deleted: inner.segments_deleted,
            deleted_bytes: inner.truncated_bytes,
        }
    }

    /// Enumerate the sealed (rotated, immutable, fsynced) segments in log
    /// order as `(seqno, first_lsn, len)` — the shipping manifest a
    /// replication sender works from, without scraping the directory. A
    /// sealed segment's on-disk file (`wal.<seqno>.seg`) never changes
    /// again until truncation deletes it, so a reader holding one of
    /// these entries may stream the file without any lock.
    pub fn sealed_segments(&self) -> Vec<(u64, Lsn, u64)> {
        self.inner
            .lock()
            .sealed
            .iter()
            .map(|s| (s.seqno, s.first_lsn, s.bytes))
            .collect()
    }

    /// The LSN boundary up to which sealed segments cover the log: the
    /// first LSN of the *active* segment. Every record with a smaller
    /// LSN on this shard lives in a sealed segment; records at or above
    /// it are still mutable (the active segment can tear).
    pub fn sealed_end_lsn(&self) -> Lsn {
        self.inner.lock().active.first_lsn
    }

    /// Next LSN to be assigned.
    pub fn next_lsn(&self) -> Lsn {
        self.inner.lock().next_lsn
    }

    /// LSN of the first physically retained record.
    pub fn base_lsn(&self) -> Lsn {
        let inner = self.inner.lock();
        inner
            .sealed
            .first()
            .map_or(inner.active.first_lsn, |s| s.first_lsn)
    }

    /// Read every intact record: `(lsn, record)` pairs, streaming across
    /// segments in order. Stops at the first torn/corrupt frame. A
    /// snapshotted segment whose file has vanished was unlinked by a
    /// concurrent [`Wal::truncate_before`] — its records are below the
    /// new base, so it is skipped, not treated as end-of-log.
    pub fn iterate(&self) -> Result<Vec<(Lsn, LogRecord)>> {
        let paths = {
            let mut inner = self.inner.lock();
            // lint:allow(L102, the flush must land buffered bytes before the snapshot of segment paths is taken under the same lock)
            inner.active.writer.flush()?;
            inner.segment_paths()
        };
        let mut out = Vec::new();
        for (path, first_lsn) in paths {
            let (records, clean) = match scan_records(&path, first_lsn)? {
                Some(s) => s,
                None if !path.exists() => {
                    out.clear(); // racing truncation deleted the prefix
                    continue;
                }
                None => break, // unreadable header — end of usable log
            };
            out.extend(records);
            if !clean {
                break; // torn/corrupt frame — nothing after it is reachable
            }
        }
        Ok(out)
    }

    /// Physically drop all records with `lsn < keep_from` (post-checkpoint
    /// truncation) by deleting every sealed segment whose records are all
    /// below the cut. Never rewrites a retained byte; the Wal lock is held
    /// only to splice the in-memory segment list, and the unlinks happen
    /// outside it, so concurrent appends/fsyncs (commit acknowledgments)
    /// never wait on truncation I/O. Returns the number of records
    /// dropped — at most `keep_from - base_lsn`, less when the cut lands
    /// mid-segment (the remainder dies with the *next* truncation, after
    /// the following checkpoint rotates).
    pub fn truncate_before(&self, keep_from: Lsn) -> Result<u64> {
        let (dead, dir) = {
            let mut inner = self.inner.lock();
            // Sealed segment i covers [first_lsn_i, end_i) where end_i is
            // the next segment's (or the active segment's) first LSN; it
            // is dead iff end_i <= keep_from. Find the split point, then
            // splice once — O(sealed), not O(dead × sealed).
            let mut k = 0;
            while k < inner.sealed.len() {
                let end = inner
                    .sealed
                    .get(k + 1)
                    .map_or(inner.active.first_lsn, |next| next.first_lsn);
                if end > keep_from {
                    break;
                }
                k += 1;
            }
            let dead: Vec<SealedSegment> = inner.sealed.drain(..k).collect();
            for seg in &dead {
                inner.truncated_bytes += seg.bytes;
            }
            inner.segments_deleted += k as u64;
            (dead, inner.dir.clone())
        };
        let mut dropped = 0u64;
        // Ascending order: a crash mid-way leaves the surviving segments
        // contiguous from some new base.
        for seg in &dead {
            dropped += seg.records;
            std::fs::remove_file(&seg.path)?;
        }
        if !dead.is_empty() {
            segment::sync_dir(&dir)?;
        }
        Ok(dropped)
    }

    /// Raw on-disk log bytes (forensic attacker's view): every segment's
    /// bytes, concatenated in log order. A snapshotted segment whose file
    /// has vanished was unlinked by a concurrent truncation — exactly
    /// what the attacker would (not) find on disk — so it contributes
    /// nothing rather than failing the dump.
    pub fn raw_image(&self) -> Result<Vec<u8>> {
        let paths = {
            let mut inner = self.inner.lock();
            // lint:allow(L102, the flush must land buffered bytes before the snapshot of segment paths is taken under the same lock)
            inner.active.writer.flush()?;
            inner.segment_paths()
        };
        let mut out = Vec::new();
        for (path, _) in paths {
            match File::open(&path) {
                Ok(mut f) => {
                    f.read_to_end(&mut out)?;
                }
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
                Err(e) => return Err(e.into()),
            }
        }
        Ok(out)
    }

    /// Simulate a crash that loses the last `n` *bytes* of the log (torn
    /// write on the active segment; a real crash cannot reach sealed
    /// segments, which were fsynced at rotation). `torn_tail(0)` flushes
    /// buffers to the OS without fsync — the file state a crash point
    /// mid-drain would leave. Test/experiment hook: the in-memory record
    /// count is deliberately not rescanned (real usage reopens the log).
    pub fn torn_tail(&self, n: u64) -> Result<()> {
        let mut inner = self.inner.lock();
        // lint:allow(L102, crash-simulation hook: the truncation must see every buffered byte, so the flush runs under the log lock)
        inner.active.writer.flush()?;
        let f = OpenOptions::new().write(true).open(&inner.active.path)?;
        let len = f.metadata()?.len();
        let new_len = len.saturating_sub(n).max(SEGMENT_HEADER_LEN);
        f.set_len(new_len)?;
        drop(f);
        let file = OpenOptions::new()
            .append(true)
            .read(true)
            .open(&inner.active.path)?;
        inner.active.writer = BufWriter::new(file);
        inner.active.written = new_len;
        Ok(())
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        if self.ephemeral {
            let _ = std::fs::remove_dir_all(&self.dir);
        }
    }
}

/// One segment's records tagged with their LSNs; the bool is `true`
/// when the scan consumed the file cleanly (no torn or corrupt tail).
type SegmentScan = (Vec<(Lsn, LogRecord)>, bool);

/// Scan one segment's records with their LSNs, starting the running LSN
/// at `first_lsn`; jump markers re-base it and are stripped from the
/// output. `Ok(None)` when the header is unreadable.
fn scan_records(path: &Path, first_lsn: Lsn) -> Result<Option<SegmentScan>> {
    let file = match File::open(path) {
        Ok(f) => f,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
        Err(e) => return Err(e.into()),
    };
    let len = file.metadata()?.len();
    if len < SEGMENT_HEADER_LEN {
        return Ok(None);
    }
    let mut scan = FrameScanner::new(file, SEGMENT_HEADER_LEN)?;
    let mut records = Vec::new();
    let mut lsn = first_lsn;
    while let Some(rec) = scan.next_record()? {
        match rec {
            LogRecord::LsnJump { next } => lsn = next,
            rec => {
                records.push((lsn, rec));
                lsn += 1;
            }
        }
    }
    let clean = scan.pos() == scan.file_len();
    Ok(Some((records, clean)))
}

/// The `<path>.legacy` marker used while migrating a single-file log.
fn legacy_marker(path: &Path) -> PathBuf {
    let mut s = path.as_os_str().to_os_string();
    s.push(".legacy");
    PathBuf::from(s)
}

/// One-shot migration of the old single-file format (optional `WALB`
/// base-LSN header + frames) into a segment directory. The marker rename
/// is atomic; the marker is deleted only after the converted segments
/// are durable, so every crash window either finds the original file,
/// or the marker (and retries the conversion), or the finished
/// directory.
fn migrate_legacy(path: &Path, cfg: &SegmentConfig) -> Result<()> {
    let marker = legacy_marker(path);
    if path.is_file() {
        // A stale marker next to a live file would be from an attempt
        // that never got to rename; the file at `path` is authoritative.
        let _ = std::fs::remove_file(&marker);
        std::fs::rename(path, &marker)?;
    } else if !marker.is_file() {
        return Ok(()); // nothing to migrate
    }
    // (Re)build the directory from the marker. A partial directory from
    // an interrupted previous attempt is discarded wholesale.
    if path.exists() {
        std::fs::remove_dir_all(path)?;
    }
    std::fs::create_dir_all(path)?;
    convert_legacy(&marker, path, cfg)?;
    std::fs::remove_file(&marker)?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            // This fsync makes the marker's removal durable. It must not
            // be swallowed: if the unlink were lost to a crash, the next
            // open would find the marker, discard the (by then live,
            // acknowledged) segment directory and rebuild from the stale
            // legacy file.
            segment::sync_dir(parent)?;
        }
    }
    Ok(())
}

/// Stream the legacy file's valid frames into capacity-sized segments
/// under `dir`. A torn/corrupt legacy tail is simply not copied — the
/// same trim `Wal::open` used to apply.
fn convert_legacy(legacy: &Path, dir: &Path, cfg: &SegmentConfig) -> Result<()> {
    let file = File::open(legacy)?;
    let file_len = file.metadata()?.len();
    let mut reader = file;
    let mut base_lsn: Lsn = 0;
    let mut start = 0u64;
    if file_len >= 12 {
        let mut head = [0u8; 12];
        reader.read_exact(&mut head)?;
        if &head[0..4] == b"WALB" {
            base_lsn = u64::from_le_bytes(head[4..12].try_into().unwrap()); // lint:allow(L001, fixed-width header slice behind the length check)
            start = 12;
        }
    }
    use std::io::Seek;
    reader.seek(std::io::SeekFrom::Start(0))?;
    let mut scan = FrameScanner::new(reader, start)?;
    let capacity = cfg.capacity();
    let mut seqno = 0u64;
    let mut lsn = base_lsn;
    let mut active = create_active(dir, seqno, lsn)?;
    while scan.next_record()?.is_some() {
        if active.written >= capacity && active.records > 0 {
            active.writer.flush()?;
            active.writer.get_ref().sync_all()?;
            seqno += 1;
            active = create_active(dir, seqno, lsn)?;
        }
        let frame = segment::write_frame(&mut active.writer, scan.frame_body())?;
        active.records += 1;
        active.written += frame;
        lsn += 1;
    }
    active.writer.flush()?;
    active.writer.get_ref().sync_all()?;
    segment::sync_dir(dir)?;
    Ok(())
}

/// Helper for benches/tests: total on-disk size of the log in bytes
/// (every segment file summed).
pub fn log_size(wal: &Wal) -> Result<u64> {
    let mut total = 0u64;
    for (_, path) in segment::list_segments(wal.path())? {
        total += std::fs::metadata(&path)
            .map(|m| m.len())
            .map_err(Error::from)?;
    }
    Ok(total)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Payload;
    use instant_common::{TableId, Timestamp, TupleId, TxId};

    fn rec(i: u64) -> LogRecord {
        LogRecord::Insert {
            tx: TxId(i),
            table: TableId(1),
            tid: TupleId::new(1, i as u16),
            row: Payload::Plain(format!("row-{i}").into_bytes()),
            at: Timestamp::micros(i),
        }
    }

    fn tiny_cfg() -> SegmentConfig {
        SegmentConfig {
            segment_bytes: 1, // clamps to MIN_SEGMENT_BYTES
        }
    }

    /// Unique non-ephemeral path for reopen tests (cleaned by the test).
    fn scratch(tag: &str) -> PathBuf {
        let p = std::env::temp_dir().join(format!(
            "instantdb-waldir-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&p);
        let _ = std::fs::remove_file(&p);
        p
    }

    #[test]
    fn append_iterate_round_trip() {
        let wal = Wal::temp("w1").unwrap();
        for i in 0..10 {
            let lsn = wal.append(&rec(i)).unwrap();
            assert_eq!(lsn, i);
        }
        wal.sync().unwrap();
        let records = wal.iterate().unwrap();
        assert_eq!(records.len(), 10);
        for (i, (lsn, r)) in records.iter().enumerate() {
            assert_eq!(*lsn, i as u64);
            assert_eq!(r, &rec(i as u64));
        }
    }

    #[test]
    fn reopen_continues_lsns() {
        let path = scratch("reopen");
        {
            let wal = Wal::open(&path).unwrap();
            wal.append(&rec(0)).unwrap();
            wal.append(&rec(1)).unwrap();
            wal.sync().unwrap();
        }
        {
            let wal = Wal::open(&path).unwrap();
            assert_eq!(wal.next_lsn(), 2);
            let lsn = wal.append(&rec(2)).unwrap();
            assert_eq!(lsn, 2);
            wal.sync().unwrap();
            assert_eq!(wal.iterate().unwrap().len(), 3);
        }
        std::fs::remove_dir_all(&path).unwrap();
    }

    #[test]
    fn rotation_on_capacity_creates_numbered_segments() {
        let wal = Wal::temp_with("rot", tiny_cfg()).unwrap();
        // Each record is ~60 framed bytes; MIN_SEGMENT_BYTES = 4096, so
        // ~70 records per segment. 300 records must rotate several times.
        for i in 0..300 {
            wal.append(&rec(i)).unwrap();
        }
        wal.sync().unwrap();
        let stats = wal.segment_stats();
        assert!(stats.rotations >= 2, "{stats:?}");
        assert_eq!(stats.segments, stats.rotations + 1);
        let names: Vec<u64> = segment::list_segments(wal.path())
            .unwrap()
            .into_iter()
            .map(|(n, _)| n)
            .collect();
        let want: Vec<u64> = (0..names.len() as u64).collect();
        assert_eq!(names, want, "segments numbered sequentially from 0");
        // The full stream reads back across the rotation boundaries.
        let records = wal.iterate().unwrap();
        assert_eq!(records.len(), 300);
        for (i, (lsn, r)) in records.iter().enumerate() {
            assert_eq!(*lsn, i as u64);
            assert_eq!(r, &rec(i as u64));
        }
    }

    #[test]
    fn reopen_multi_segment_log_continues_lsns() {
        let path = scratch("reopen-multi");
        {
            let wal = Wal::open_with(&path, tiny_cfg()).unwrap();
            for i in 0..200 {
                wal.append(&rec(i)).unwrap();
            }
            wal.sync().unwrap();
            assert!(wal.segment_stats().rotations >= 1);
        }
        {
            let wal = Wal::open_with(&path, tiny_cfg()).unwrap();
            assert_eq!(wal.next_lsn(), 200);
            assert_eq!(wal.base_lsn(), 0);
            assert_eq!(wal.append(&rec(200)).unwrap(), 200);
            wal.sync().unwrap();
            assert_eq!(wal.iterate().unwrap().len(), 201);
        }
        std::fs::remove_dir_all(&path).unwrap();
    }

    #[test]
    fn reopen_after_corrupt_tail_frame_trims_it_too() {
        // Corruption with an intact length field (bit rot, failed fsync
        // garbage) must also be trimmed at open — otherwise the scanner's
        // end-of-log would include it and post-reopen appends would land
        // after bytes no scan can ever cross.
        let path = scratch("corrupt-reopen");
        {
            let wal = Wal::open(&path).unwrap();
            for i in 0..5 {
                wal.append(&rec(i)).unwrap();
            }
            wal.sync().unwrap();
        }
        {
            use std::io::{Read, Seek, SeekFrom, Write};
            let seg = segment::list_segments(&path).unwrap().pop().unwrap().1;
            let mut f = OpenOptions::new().read(true).write(true).open(seg).unwrap();
            let len = f.metadata().unwrap().len();
            f.seek(SeekFrom::Start(len - 2)).unwrap();
            let mut b = [0u8; 1];
            f.read_exact(&mut b).unwrap();
            f.seek(SeekFrom::Start(len - 2)).unwrap();
            f.write_all(&[b[0] ^ 0xAA]).unwrap();
        }
        {
            let wal = Wal::open(&path).unwrap();
            assert_eq!(wal.next_lsn(), 4, "corrupt final record dropped");
            assert_eq!(wal.append(&rec(4)).unwrap(), 4);
            wal.sync().unwrap();
            let records = wal.iterate().unwrap();
            assert_eq!(records.len(), 5, "append after corrupt-tail trim reachable");
            assert_eq!(records[4].1, rec(4));
        }
        std::fs::remove_dir_all(&path).unwrap();
    }

    #[test]
    fn reopen_after_torn_tail_trims_garbage_so_new_appends_are_reachable() {
        let path = scratch("torn-reopen");
        {
            let wal = Wal::open(&path).unwrap();
            for i in 0..5 {
                wal.append(&rec(i)).unwrap();
            }
            wal.sync().unwrap();
            wal.torn_tail(3).unwrap(); // crash chops into the last frame
        }
        {
            let wal = Wal::open(&path).unwrap();
            assert_eq!(wal.next_lsn(), 4, "torn final record dropped");
            let lsn = wal.append(&rec(4)).unwrap();
            assert_eq!(lsn, 4);
            wal.sync().unwrap();
            let records = wal.iterate().unwrap();
            assert_eq!(
                records.len(),
                5,
                "open must trim the torn garbage or this append is unreachable"
            );
            assert_eq!(records[4].1, rec(4));
        }
        std::fs::remove_dir_all(&path).unwrap();
    }

    #[test]
    fn torn_tail_detected_and_dropped() {
        let wal = Wal::temp("w2").unwrap();
        for i in 0..5 {
            wal.append(&rec(i)).unwrap();
        }
        wal.sync().unwrap();
        // Chop 3 bytes off the last frame.
        wal.torn_tail(3).unwrap();
        let records = wal.iterate().unwrap();
        assert_eq!(records.len(), 4, "torn final record must be dropped");
    }

    #[test]
    fn corrupt_middle_frame_stops_iteration() {
        let wal = Wal::temp("w3").unwrap();
        for i in 0..5 {
            wal.append(&rec(i)).unwrap();
        }
        wal.sync().unwrap();
        // Flip a byte near the middle of the (single) segment file.
        let seg = segment::list_segments(wal.path()).unwrap().pop().unwrap().1;
        let mid = std::fs::metadata(&seg).unwrap().len() / 2;
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = OpenOptions::new().write(true).open(&seg).unwrap();
            f.seek(SeekFrom::Start(mid)).unwrap();
            f.write_all(&[0xFF]).unwrap();
        }
        let records = wal.iterate().unwrap();
        assert!(records.len() < 5, "corruption must truncate the usable log");
    }

    #[test]
    fn truncate_deletes_only_whole_dead_segments() {
        let wal = Wal::temp("w4").unwrap();
        for i in 0..6 {
            wal.append(&rec(i)).unwrap();
        }
        wal.rotate().unwrap(); // seal [0..6)
        for i in 6..10 {
            wal.append(&rec(i)).unwrap();
        }
        wal.sync().unwrap();
        // Cut at 6 = the segment boundary: the sealed segment dies whole.
        let dropped = wal.truncate_before(6).unwrap();
        assert_eq!(dropped, 6);
        assert_eq!(wal.base_lsn(), 6);
        assert!(
            wal.truncated_bytes() > 0,
            "physical destruction must be accounted"
        );
        assert_eq!(wal.segment_stats().segments_deleted, 1);
        let records = wal.iterate().unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(records[0].0, 6);
        assert_eq!(records[0].1, rec(6));
        // Appends continue with correct LSNs.
        let lsn = wal.append(&rec(10)).unwrap();
        assert_eq!(lsn, 10);
        wal.sync().unwrap();
        assert_eq!(wal.iterate().unwrap().len(), 5);
    }

    #[test]
    fn truncate_mid_segment_keeps_the_whole_segment() {
        // The cut lands inside the sealed segment: nothing is rewritten,
        // so the whole segment survives and `dropped` reports 0. The
        // remainder dies with the next checkpoint's truncation.
        let wal = Wal::temp("w4b").unwrap();
        for i in 0..6 {
            wal.append(&rec(i)).unwrap();
        }
        wal.rotate().unwrap();
        for i in 6..8 {
            wal.append(&rec(i)).unwrap();
        }
        wal.sync().unwrap();
        let dropped = wal.truncate_before(3).unwrap();
        assert_eq!(dropped, 0, "mid-segment cut deletes nothing");
        assert_eq!(wal.base_lsn(), 0);
        assert_eq!(wal.iterate().unwrap().len(), 8);
        // A later cut at/past the boundary frees it.
        assert_eq!(wal.truncate_before(7).unwrap(), 6);
        assert_eq!(wal.base_lsn(), 6);
    }

    #[test]
    fn truncation_physically_destroys_bytes() {
        let wal = Wal::temp("w5").unwrap();
        wal.append(&LogRecord::Insert {
            tx: TxId(1),
            table: TableId(1),
            tid: TupleId::new(1, 1),
            row: Payload::Plain(b"DESTROY-ME".to_vec()),
            at: Timestamp::ZERO,
        })
        .unwrap();
        // The engine rotates before a checkpoint record for exactly this
        // reason: the doomed record's segment becomes wholly dead.
        wal.rotate().unwrap();
        wal.append(&rec(99)).unwrap();
        wal.sync().unwrap();
        assert!(wal
            .raw_image()
            .unwrap()
            .windows(10)
            .any(|w| w == b"DESTROY-ME"));
        wal.truncate_before(1).unwrap();
        assert!(
            !wal.raw_image()
                .unwrap()
                .windows(10)
                .any(|w| w == b"DESTROY-ME"),
            "truncated bytes must be physically gone"
        );
    }

    #[test]
    fn migration_converts_legacy_single_file_log() {
        use instant_common::codec::fnv1a;
        let path = scratch("migrate");
        // Hand-write the old single-file format: WALB header with base
        // LSN 2, then framed records, then a torn half-frame.
        {
            let mut f = File::create(&path).unwrap();
            f.write_all(b"WALB").unwrap();
            f.write_all(&2u64.to_le_bytes()).unwrap();
            for i in 2..8u64 {
                let body = rec(i).encode();
                f.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
                f.write_all(&fnv1a(&body).to_le_bytes()).unwrap();
                f.write_all(&body).unwrap();
            }
            f.write_all(&[7u8; 5]).unwrap(); // torn garbage tail
            f.sync_all().unwrap();
        }
        let wal = Wal::open(&path).unwrap();
        assert!(path.is_dir(), "file migrated into a segment directory");
        assert!(
            !legacy_marker(&path).exists(),
            "migration marker cleaned up"
        );
        assert_eq!(wal.base_lsn(), 2, "WALB base LSN carried over");
        assert_eq!(wal.next_lsn(), 8, "torn legacy tail not migrated");
        let records = wal.iterate().unwrap();
        assert_eq!(records.len(), 6);
        for (lsn, r) in &records {
            assert_eq!(r, &rec(*lsn));
        }
        // The migrated log keeps working.
        assert_eq!(wal.append(&rec(8)).unwrap(), 8);
        wal.sync().unwrap();
        drop(wal);
        std::fs::remove_dir_all(&path).unwrap();
    }

    #[test]
    fn interrupted_migration_retries_from_marker() {
        use instant_common::codec::fnv1a;
        let path = scratch("migrate-crash");
        // Simulate a crash *after* the legacy file was renamed to the
        // marker but with only a partial directory written: open must
        // rebuild from the marker, not trust the partial dir.
        {
            let mut f = File::create(legacy_marker(&path)).unwrap();
            for i in 0..4u64 {
                let body = rec(i).encode();
                f.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
                f.write_all(&fnv1a(&body).to_le_bytes()).unwrap();
                f.write_all(&body).unwrap();
            }
            f.sync_all().unwrap();
        }
        std::fs::create_dir_all(&path).unwrap();
        std::fs::write(path.join(segment::file_name(0)), b"partial junk").unwrap();
        let wal = Wal::open(&path).unwrap();
        assert_eq!(wal.next_lsn(), 4, "all four legacy records migrated");
        assert!(!legacy_marker(&path).exists());
        assert_eq!(wal.iterate().unwrap().len(), 4);
        drop(wal);
        std::fs::remove_dir_all(&path).unwrap();
    }

    #[test]
    fn counters_track_appends_and_syncs() {
        let wal = Wal::temp("w6").unwrap();
        wal.append(&rec(0)).unwrap();
        wal.append(&rec(1)).unwrap();
        wal.sync().unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.counters(), (2, 2));
    }

    #[test]
    fn rotation_fsync_not_counted_as_durability_sync() {
        let wal = Wal::temp("w6b").unwrap();
        wal.append(&rec(0)).unwrap();
        wal.rotate().unwrap();
        wal.append(&rec(1)).unwrap();
        wal.sync().unwrap();
        let (appended, syncs) = wal.counters();
        assert_eq!((appended, syncs), (2, 1));
        assert_eq!(wal.segment_stats().rotations, 1);
    }

    #[test]
    fn rotate_on_empty_active_segment_is_a_noop() {
        let wal = Wal::temp("w6c").unwrap();
        wal.rotate().unwrap();
        wal.rotate().unwrap();
        assert_eq!(wal.segment_stats().rotations, 0);
        assert_eq!(wal.segment_stats().segments, 1);
        wal.append(&rec(0)).unwrap();
        wal.rotate().unwrap();
        wal.rotate().unwrap();
        assert_eq!(wal.segment_stats().rotations, 1, "second rotate idles");
    }

    #[test]
    fn sealed_segments_enumerates_rotated_segments_only() {
        let wal = Wal::temp("sealed-enum").unwrap();
        assert!(wal.sealed_segments().is_empty(), "fresh log has no seals");
        assert_eq!(wal.sealed_end_lsn(), 0);
        for i in 0..4 {
            wal.append(&rec(i)).unwrap();
        }
        wal.rotate().unwrap(); // seal [0..4) as segment 0
        for i in 4..6 {
            wal.append(&rec(i)).unwrap();
        }
        wal.rotate().unwrap(); // seal [4..6) as segment 1
        wal.append(&rec(6)).unwrap(); // active segment 2 — not listed
        wal.sync().unwrap();
        let sealed = wal.sealed_segments();
        assert_eq!(sealed.len(), 2);
        assert_eq!((sealed[0].0, sealed[0].1), (0, 0));
        assert_eq!((sealed[1].0, sealed[1].1), (1, 4));
        assert!(sealed.iter().all(|(_, _, len)| *len > SEGMENT_HEADER_LEN));
        assert_eq!(wal.sealed_end_lsn(), 6, "active segment starts at 6");
        // The listing names real immutable files of exactly that length.
        for (seqno, _, len) in &sealed {
            let path = wal.path().join(segment::file_name(*seqno));
            assert_eq!(std::fs::metadata(&path).unwrap().len(), *len);
        }
        // Truncation drops the dead entry from the manifest too.
        wal.truncate_before(4).unwrap();
        let sealed = wal.sealed_segments();
        assert_eq!(sealed.len(), 1);
        assert_eq!(sealed[0].0, 1, "segment 0 deleted, seqno 1 survives");
    }

    #[test]
    fn sealed_segments_survive_reopen_with_seqnos() {
        let path = scratch("sealed-reopen");
        {
            let wal = Wal::open(&path).unwrap();
            for i in 0..3 {
                wal.append(&rec(i)).unwrap();
            }
            wal.rotate().unwrap();
            wal.append(&rec(3)).unwrap();
            wal.sync().unwrap();
        }
        {
            let wal = Wal::open(&path).unwrap();
            let sealed = wal.sealed_segments();
            assert_eq!(sealed.len(), 1);
            assert_eq!((sealed[0].0, sealed[0].1), (0, 0));
            assert_eq!(wal.sealed_end_lsn(), 3);
        }
        std::fs::remove_dir_all(&path).unwrap();
    }

    #[test]
    fn empty_log_iterates_empty() {
        let wal = Wal::temp("w7").unwrap();
        assert!(wal.iterate().unwrap().is_empty());
        assert_eq!(wal.next_lsn(), 0);
    }

    #[test]
    fn alloc_appends_with_gaps_round_trip_and_reopen() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let path = scratch("alloc-gaps");
        {
            let wal = Wal::open(&path).unwrap();
            let alloc = AtomicU64::new(0);
            assert_eq!(
                wal.append_batch_alloc(&alloc, &[rec(0), rec(1)]).unwrap(),
                0
            );
            // Other shards take LSNs 2..7 from the shared allocator.
            alloc.fetch_add(5, Ordering::Relaxed);
            assert_eq!(
                wal.append_batch_alloc(&alloc, &[rec(7), rec(8)]).unwrap(),
                7
            );
            wal.sync().unwrap();
            let records = wal.iterate().unwrap();
            let lsns: Vec<Lsn> = records.iter().map(|(l, _)| *l).collect();
            assert_eq!(lsns, vec![0, 1, 7, 8], "jump applied and stripped");
            assert_eq!(records[2].1, rec(7));
            assert_eq!(wal.next_lsn(), 9);
        }
        {
            let wal = Wal::open(&path).unwrap();
            assert_eq!(wal.next_lsn(), 9, "reopen scans jump-aware");
            let alloc = AtomicU64::new(12);
            assert_eq!(wal.append_batch_alloc(&alloc, &[rec(12)]).unwrap(), 12);
            wal.sync().unwrap();
            let lsns: Vec<Lsn> = wal.iterate().unwrap().iter().map(|(l, _)| *l).collect();
            assert_eq!(lsns, vec![0, 1, 7, 8, 12]);
        }
        std::fs::remove_dir_all(&path).unwrap();
    }

    #[test]
    fn gapped_log_rotates_and_truncates_like_a_dense_one() {
        use std::sync::atomic::{AtomicU64, Ordering};
        let wal = Wal::temp_with("alloc-rot", tiny_cfg()).unwrap();
        let alloc = AtomicU64::new(0);
        // Every batch jumps (stride 3: this shard takes one LSN of each
        // allocation, "other shards" the rest), across several rotations.
        let mut lsns = Vec::new();
        for i in 0..200u64 {
            lsns.push(wal.append_batch_alloc(&alloc, &[rec(i)]).unwrap());
            alloc.fetch_add(2, Ordering::Relaxed);
        }
        wal.sync().unwrap();
        assert!(wal.segment_stats().rotations >= 1);
        let read: Vec<Lsn> = wal.iterate().unwrap().iter().map(|(l, _)| *l).collect();
        assert_eq!(read, lsns, "sparse LSNs survive rotation boundaries");
        // Truncate below a mid-log LSN: whole dead segments go, the
        // retained suffix still scans with correct sparse LSNs.
        wal.rotate().unwrap();
        let cut = lsns[150];
        wal.truncate_before(cut).unwrap();
        let after: Vec<Lsn> = wal.iterate().unwrap().iter().map(|(l, _)| *l).collect();
        assert!(after.ends_with(&lsns[150..]), "retained suffix intact");
        assert!(after.len() < lsns.len(), "dead prefix segments deleted");
    }

    #[test]
    fn readers_skip_segments_a_racing_truncation_unlinked() {
        // iterate/raw_image snapshot the segment list under the lock but
        // read the files outside it, so a concurrent truncate_before can
        // unlink a snapshotted prefix segment mid-read. The reader must
        // skip it (those records are below the new base) — not return an
        // empty log, a truncated one, or an error.
        let wal = Wal::temp("w8").unwrap();
        for i in 0..4 {
            wal.append(&rec(i)).unwrap();
        }
        wal.rotate().unwrap();
        for i in 4..6 {
            wal.append(&rec(i)).unwrap();
        }
        wal.sync().unwrap();
        // Simulate the race window: the sealed segment's file vanishes
        // while still being tracked in memory.
        let first = segment::list_segments(wal.path()).unwrap().remove(0).1;
        std::fs::remove_file(first).unwrap();
        let records = wal.iterate().unwrap();
        assert_eq!(records.len(), 2, "retained segment still readable");
        assert_eq!(records[0], (4, rec(4)));
        assert_eq!(records[1], (5, rec(5)));
        let img = wal.raw_image().unwrap();
        assert!(!img.is_empty(), "forensic dump survives the race too");
    }
}
