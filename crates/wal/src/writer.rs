//! The log file: append, iterate, truncate, forensic view.
//!
//! Framing per record: `len: u32 | fnv1a(bytes): u64 | bytes`. Appends are
//! buffered; `sync()` flushes and fsyncs (called at commit — group commit
//! simply batches appends between syncs). Iteration stops at the first
//! frame whose checksum fails or whose length overruns the file: a torn
//! tail from a crash mid-write loses at most the unsynced suffix, which by
//! WAL discipline contains no committed work.
//!
//! `truncate_before(lsn)` physically drops records below an LSN (after a
//! checkpoint) by rewriting the retained suffix — this is the *physical*
//! counterpart to key shredding: shredding makes old images unreadable
//! immediately; truncation eventually reclaims and destroys the bytes too.

use std::fs::{File, OpenOptions};
use std::io::{BufReader, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use parking_lot::Mutex;

use instant_common::codec::fnv1a;
use instant_common::{Error, Result};

use crate::record::{LogRecord, Lsn};

struct WalInner {
    writer: BufWriter<File>,
    next_lsn: Lsn,
    /// LSN of the first record still physically present.
    base_lsn: Lsn,
    syncs: u64,
    appended: u64,
    /// Bytes physically destroyed by truncation since open.
    truncated_bytes: u64,
}

impl WalInner {
    fn append_one(&mut self, rec: &LogRecord) -> Result<Lsn> {
        let bytes = rec.encode();
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        self.appended += 1;
        let frame_len = bytes.len() as u32;
        self.writer.write_all(&frame_len.to_le_bytes())?;
        self.writer.write_all(&fnv1a(&bytes).to_le_bytes())?;
        self.writer.write_all(&bytes)?;
        Ok(lsn)
    }
}

/// An append-only write-ahead log.
pub struct Wal {
    path: PathBuf,
    inner: Mutex<WalInner>,
    ephemeral: bool,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal").field("path", &self.path).finish()
    }
}

impl Wal {
    /// Open (or create) the log at `path`, scanning to find the next LSN.
    /// The scan streams frame by frame — the log is never materialized in
    /// memory, so opening a multi-gigabyte log costs one pass and one
    /// frame-sized buffer. A torn/corrupt tail is **trimmed off** before
    /// the log reopens for appending: without the trim, post-recovery
    /// commits would land after the garbage bytes and be unreachable by
    /// every future scan.
    pub fn open(path: impl AsRef<Path>) -> Result<Wal> {
        let path = path.as_ref().to_path_buf();
        let (count, base_lsn, valid_len) = match FrameScanner::open(&path)? {
            None => (0, 0, None),
            Some((mut scan, base)) => {
                let mut n = 0u64;
                while scan.next_record()?.is_some() {
                    n += 1;
                }
                (n, base, Some((scan.pos, scan.file_len)))
            }
        };
        if let Some((valid, file_len)) = valid_len {
            if valid < file_len {
                let f = OpenOptions::new().write(true).open(&path)?;
                f.set_len(valid)?;
                f.sync_all()?;
            }
        }
        let next_lsn = base_lsn + count;
        let file = OpenOptions::new()
            .create(true)
            .append(true)
            .read(true)
            .open(&path)?;
        Ok(Wal {
            path,
            inner: Mutex::new(WalInner {
                writer: BufWriter::new(file),
                next_lsn,
                base_lsn,
                syncs: 0,
                appended: 0,
                truncated_bytes: 0,
            }),
            ephemeral: false,
        })
    }

    /// Throwaway log in the temp directory, removed on drop.
    pub fn temp(tag: &str) -> Result<Wal> {
        use std::time::{SystemTime, UNIX_EPOCH};
        let nanos = SystemTime::now()
            .duration_since(UNIX_EPOCH)
            .unwrap()
            .as_nanos();
        let path = std::env::temp_dir().join(format!(
            "instantdb-wal-{tag}-{}-{nanos}.log",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        let mut wal = Self::open(path)?;
        wal.ephemeral = true;
        Ok(wal)
    }

    pub fn path(&self) -> &Path {
        &self.path
    }

    /// Append a record, returning its LSN. Buffered — call [`Wal::sync`]
    /// at commit points.
    pub fn append(&self, rec: &LogRecord) -> Result<Lsn> {
        self.inner.lock().append_one(rec)
    }

    /// Append a batch of records contiguously under one lock acquisition,
    /// returning the LSN of the first (or the next LSN for an empty
    /// batch). Buffered — call [`Wal::sync`] for durability. Both the
    /// inline commit path and the group-commit writer thread go through
    /// this, so the framing/ordering logic exists once.
    pub fn append_batch(&self, records: &[LogRecord]) -> Result<Lsn> {
        let mut inner = self.inner.lock();
        let first = inner.next_lsn;
        for rec in records {
            inner.append_one(rec)?;
        }
        Ok(first)
    }

    /// Flush buffers and fsync — the durability point.
    pub fn sync(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.writer.flush()?;
        inner.writer.get_ref().sync_all()?;
        inner.syncs += 1;
        Ok(())
    }

    /// `(appended records, fsync calls)` since open.
    pub fn counters(&self) -> (u64, u64) {
        let inner = self.inner.lock();
        (inner.appended, inner.syncs)
    }

    /// Bytes physically destroyed by [`Wal::truncate_before`] since open.
    pub fn truncated_bytes(&self) -> u64 {
        self.inner.lock().truncated_bytes
    }

    /// Next LSN to be assigned.
    pub fn next_lsn(&self) -> Lsn {
        self.inner.lock().next_lsn
    }

    /// LSN of the first physically retained record.
    pub fn base_lsn(&self) -> Lsn {
        self.inner.lock().base_lsn
    }

    /// Read every intact record: `(lsn, record)` pairs. Stops at the first
    /// torn/corrupt frame.
    pub fn iterate(&self) -> Result<Vec<(Lsn, LogRecord)>> {
        {
            let mut inner = self.inner.lock();
            inner.writer.flush()?;
        }
        let (raw, base) = Self::read_all(&self.path)?;
        Ok(raw
            .into_iter()
            .enumerate()
            .map(|(i, r)| (base + i as u64, r))
            .collect())
    }

    /// Physically drop all records with `lsn < keep_from` (post-checkpoint
    /// truncation). Streams the retained suffix to a fresh file — one pass,
    /// one frame-sized buffer, no in-memory copy of the log.
    pub fn truncate_before(&self, keep_from: Lsn) -> Result<u64> {
        let mut inner = self.inner.lock();
        inner.writer.flush()?;
        let old_len = std::fs::metadata(&self.path).map(|m| m.len()).unwrap_or(0);
        let tmp = self.path.with_extension("log.tmp");
        let mut dropped = 0u64;
        {
            let mut out = BufWriter::new(File::create(&tmp)?);
            // New header: base LSN marker, patched once `dropped` is known.
            out.write_all(b"WALB")?;
            out.write_all(&[0u8; 8])?;
            let mut new_base = 0;
            if let Some((mut scan, base)) = FrameScanner::open(&self.path)? {
                let mut lsn = base;
                while scan.next_record()?.is_some() {
                    if lsn >= keep_from {
                        let body = scan.frame_body();
                        out.write_all(&(body.len() as u32).to_le_bytes())?;
                        out.write_all(&fnv1a(body).to_le_bytes())?;
                        out.write_all(body)?;
                    } else {
                        dropped += 1;
                    }
                    lsn += 1;
                }
                new_base = base + dropped;
            }
            out.flush()?;
            let f = out.get_mut();
            f.seek(SeekFrom::Start(4))?;
            f.write_all(&new_base.to_le_bytes())?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, &self.path)?;
        let file = OpenOptions::new()
            .append(true)
            .read(true)
            .open(&self.path)?;
        let new_len = file.metadata()?.len();
        inner.writer = BufWriter::new(file);
        inner.base_lsn += dropped;
        inner.truncated_bytes += old_len.saturating_sub(new_len);
        Ok(dropped)
    }

    /// Raw on-disk log bytes (forensic attacker's view).
    pub fn raw_image(&self) -> Result<Vec<u8>> {
        {
            let mut inner = self.inner.lock();
            inner.writer.flush()?;
        }
        let mut f = File::open(&self.path)?;
        let mut out = Vec::new();
        f.read_to_end(&mut out)?;
        Ok(out)
    }

    /// Parse a log file: returns `(records, base_lsn)`. Tolerates a torn
    /// tail (stops), rejects nothing else.
    fn read_all(path: &Path) -> Result<(Vec<LogRecord>, Lsn)> {
        let Some((mut scan, base_lsn)) = FrameScanner::open(path)? else {
            return Ok((Vec::new(), 0));
        };
        let mut records = Vec::new();
        while let Some(rec) = scan.next_record()? {
            records.push(rec);
        }
        Ok((records, base_lsn))
    }

    /// Simulate a crash that loses the last `n` *bytes* of the file (torn
    /// write). Test/experiment hook.
    pub fn torn_tail(&self, n: u64) -> Result<()> {
        let mut inner = self.inner.lock();
        inner.writer.flush()?;
        let f = OpenOptions::new().write(true).open(&self.path)?;
        let len = f.metadata()?.len();
        f.set_len(len.saturating_sub(n))?;
        drop(f);
        let file = OpenOptions::new()
            .append(true)
            .read(true)
            .open(&self.path)?;
        inner.writer = BufWriter::new(file);
        Ok(())
    }
}

impl Drop for Wal {
    fn drop(&mut self) {
        if self.ephemeral {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// Streaming reader over the framed log: validates and yields one record
/// at a time. Shared by [`Wal::open`] (LSN scan), [`Wal::truncate_before`]
/// (suffix copy) and iteration, so none of them ever holds the whole log
/// in memory.
struct FrameScanner {
    reader: BufReader<File>,
    /// File length at open; caps frame lengths so a torn length field can
    /// never trigger a giant allocation.
    file_len: u64,
    pos: u64,
    body: Vec<u8>,
}

impl FrameScanner {
    /// `None` when the file does not exist; otherwise the scanner plus the
    /// base LSN from the optional `WALB` truncation marker.
    fn open(path: &Path) -> Result<Option<(FrameScanner, Lsn)>> {
        let file = match File::open(path) {
            Ok(f) => f,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let file_len = file.metadata()?.len();
        let mut reader = BufReader::new(file);
        let mut base_lsn: Lsn = 0;
        let mut pos = 0u64;
        if file_len >= 12 {
            let mut head = [0u8; 12];
            reader.read_exact(&mut head)?;
            if &head[0..4] == b"WALB" {
                base_lsn = u64::from_le_bytes(head[4..12].try_into().unwrap());
                pos = 12;
            } else {
                reader.seek(SeekFrom::Start(0))?;
            }
        }
        Ok(Some((
            FrameScanner {
                reader,
                file_len,
                pos,
                body: Vec::new(),
            },
            base_lsn,
        )))
    }

    /// The next intact record; `None` at EOF, a torn tail, or the first
    /// corrupt frame. After `Some`, [`FrameScanner::frame_body`] holds the
    /// raw body bytes of that frame.
    ///
    /// `pos` advances only past frames that validate end to end, so after
    /// the scan it marks the exact end of the usable log — [`Wal::open`]
    /// trims everything beyond it (torn *or* corrupt) before reopening
    /// for append.
    fn next_record(&mut self) -> Result<Option<LogRecord>> {
        if self.pos + 12 > self.file_len {
            return Ok(None); // torn header / EOF
        }
        let mut head = [0u8; 12];
        self.reader.read_exact(&mut head)?;
        let len = u32::from_le_bytes(head[0..4].try_into().unwrap()) as u64;
        let sum = u64::from_le_bytes(head[4..12].try_into().unwrap());
        if self.pos + 12 + len > self.file_len {
            return Ok(None); // torn tail
        }
        self.body.resize(len as usize, 0);
        self.reader.read_exact(&mut self.body)?;
        if fnv1a(&self.body) != sum {
            return Ok(None); // corrupt frame — stop here, pos untouched
        }
        match LogRecord::decode(&self.body) {
            Ok(rec) => {
                self.pos += 12 + len;
                Ok(Some(rec))
            }
            Err(_) => Ok(None),
        }
    }

    /// Raw body bytes of the record last returned by `next_record`.
    fn frame_body(&self) -> &[u8] {
        &self.body
    }
}

/// Helper for benches: total on-disk size of the log in bytes.
pub fn log_size(wal: &Wal) -> Result<u64> {
    std::fs::metadata(wal.path())
        .map(|m| m.len())
        .map_err(Error::from)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Payload;
    use instant_common::{TableId, Timestamp, TupleId, TxId};

    fn rec(i: u64) -> LogRecord {
        LogRecord::Insert {
            tx: TxId(i),
            table: TableId(1),
            tid: TupleId::new(1, i as u16),
            row: Payload::Plain(format!("row-{i}").into_bytes()),
            at: Timestamp::micros(i),
        }
    }

    #[test]
    fn append_iterate_round_trip() {
        let wal = Wal::temp("w1").unwrap();
        for i in 0..10 {
            let lsn = wal.append(&rec(i)).unwrap();
            assert_eq!(lsn, i);
        }
        wal.sync().unwrap();
        let records = wal.iterate().unwrap();
        assert_eq!(records.len(), 10);
        for (i, (lsn, r)) in records.iter().enumerate() {
            assert_eq!(*lsn, i as u64);
            assert_eq!(r, &rec(i as u64));
        }
    }

    #[test]
    fn reopen_continues_lsns() {
        let path =
            std::env::temp_dir().join(format!("instantdb-wal-reopen-{}.log", std::process::id()));
        let _ = std::fs::remove_file(&path);
        {
            let wal = Wal::open(&path).unwrap();
            wal.append(&rec(0)).unwrap();
            wal.append(&rec(1)).unwrap();
            wal.sync().unwrap();
        }
        {
            let wal = Wal::open(&path).unwrap();
            assert_eq!(wal.next_lsn(), 2);
            let lsn = wal.append(&rec(2)).unwrap();
            assert_eq!(lsn, 2);
            wal.sync().unwrap();
            assert_eq!(wal.iterate().unwrap().len(), 3);
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_after_corrupt_tail_frame_trims_it_too() {
        // Corruption with an intact length field (bit rot, failed fsync
        // garbage) must also be trimmed at open — otherwise the scanner's
        // end-of-log would include it and post-reopen appends would land
        // after bytes no scan can ever cross.
        let path = std::env::temp_dir().join(format!(
            "instantdb-wal-corrupt-reopen-{}.log",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let wal = Wal::open(&path).unwrap();
            for i in 0..5 {
                wal.append(&rec(i)).unwrap();
            }
            wal.sync().unwrap();
        }
        {
            use std::io::{Read, Seek, SeekFrom, Write};
            let mut f = OpenOptions::new()
                .read(true)
                .write(true)
                .open(&path)
                .unwrap();
            let len = f.metadata().unwrap().len();
            f.seek(SeekFrom::Start(len - 2)).unwrap();
            let mut b = [0u8; 1];
            f.read_exact(&mut b).unwrap();
            f.seek(SeekFrom::Start(len - 2)).unwrap();
            f.write_all(&[b[0] ^ 0xAA]).unwrap();
        }
        {
            let wal = Wal::open(&path).unwrap();
            assert_eq!(wal.next_lsn(), 4, "corrupt final record dropped");
            assert_eq!(wal.append(&rec(4)).unwrap(), 4);
            wal.sync().unwrap();
            let records = wal.iterate().unwrap();
            assert_eq!(records.len(), 5, "append after corrupt-tail trim reachable");
            assert_eq!(records[4].1, rec(4));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reopen_after_torn_tail_trims_garbage_so_new_appends_are_reachable() {
        let path = std::env::temp_dir().join(format!(
            "instantdb-wal-torn-reopen-{}.log",
            std::process::id()
        ));
        let _ = std::fs::remove_file(&path);
        {
            let wal = Wal::open(&path).unwrap();
            for i in 0..5 {
                wal.append(&rec(i)).unwrap();
            }
            wal.sync().unwrap();
            wal.torn_tail(3).unwrap(); // crash chops into the last frame
        }
        {
            let wal = Wal::open(&path).unwrap();
            assert_eq!(wal.next_lsn(), 4, "torn final record dropped");
            let lsn = wal.append(&rec(4)).unwrap();
            assert_eq!(lsn, 4);
            wal.sync().unwrap();
            let records = wal.iterate().unwrap();
            assert_eq!(
                records.len(),
                5,
                "open must trim the torn garbage or this append is unreachable"
            );
            assert_eq!(records[4].1, rec(4));
        }
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_detected_and_dropped() {
        let wal = Wal::temp("w2").unwrap();
        for i in 0..5 {
            wal.append(&rec(i)).unwrap();
        }
        wal.sync().unwrap();
        // Chop 3 bytes off the last frame.
        wal.torn_tail(3).unwrap();
        let records = wal.iterate().unwrap();
        assert_eq!(records.len(), 4, "torn final record must be dropped");
    }

    #[test]
    fn corrupt_middle_frame_stops_iteration() {
        let wal = Wal::temp("w3").unwrap();
        for i in 0..5 {
            wal.append(&rec(i)).unwrap();
        }
        wal.sync().unwrap();
        // Flip a byte near the middle of the file.
        let img = wal.raw_image().unwrap();
        let mid = img.len() / 2;
        {
            use std::io::{Seek, SeekFrom, Write};
            let mut f = OpenOptions::new().write(true).open(wal.path()).unwrap();
            f.seek(SeekFrom::Start(mid as u64)).unwrap();
            f.write_all(&[0xFF]).unwrap();
        }
        let records = wal.iterate().unwrap();
        assert!(records.len() < 5, "corruption must truncate the usable log");
    }

    #[test]
    fn truncate_before_drops_prefix() {
        let wal = Wal::temp("w4").unwrap();
        for i in 0..10 {
            wal.append(&rec(i)).unwrap();
        }
        wal.sync().unwrap();
        let dropped = wal.truncate_before(6).unwrap();
        assert_eq!(dropped, 6);
        assert_eq!(wal.base_lsn(), 6);
        assert!(
            wal.truncated_bytes() > 0,
            "physical destruction must be accounted"
        );
        let records = wal.iterate().unwrap();
        assert_eq!(records.len(), 4);
        assert_eq!(records[0].0, 6);
        assert_eq!(records[0].1, rec(6));
        // Appends continue with correct LSNs.
        let lsn = wal.append(&rec(10)).unwrap();
        assert_eq!(lsn, 10);
        wal.sync().unwrap();
        assert_eq!(wal.iterate().unwrap().len(), 5);
    }

    #[test]
    fn truncation_physically_destroys_bytes() {
        let wal = Wal::temp("w5").unwrap();
        wal.append(&LogRecord::Insert {
            tx: TxId(1),
            table: TableId(1),
            tid: TupleId::new(1, 1),
            row: Payload::Plain(b"DESTROY-ME".to_vec()),
            at: Timestamp::ZERO,
        })
        .unwrap();
        wal.append(&rec(99)).unwrap();
        wal.sync().unwrap();
        assert!(wal
            .raw_image()
            .unwrap()
            .windows(10)
            .any(|w| w == b"DESTROY-ME"));
        wal.truncate_before(1).unwrap();
        assert!(
            !wal.raw_image()
                .unwrap()
                .windows(10)
                .any(|w| w == b"DESTROY-ME"),
            "truncated bytes must be physically gone"
        );
    }

    #[test]
    fn counters_track_appends_and_syncs() {
        let wal = Wal::temp("w6").unwrap();
        wal.append(&rec(0)).unwrap();
        wal.append(&rec(1)).unwrap();
        wal.sync().unwrap();
        wal.sync().unwrap();
        assert_eq!(wal.counters(), (2, 2));
    }

    #[test]
    fn empty_log_iterates_empty() {
        let wal = Wal::temp("w7").unwrap();
        assert!(wal.iterate().unwrap().is_empty());
        assert_eq!(wal.next_lsn(), 0);
    }
}
