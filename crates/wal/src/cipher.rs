//! ChaCha20 stream cipher core (RFC 8439 block function).
//!
//! Used to seal degradable payloads in the WAL under time-windowed keys, so
//! that shredding a key renders the corresponding log bytes unreadable
//! ("cryptographic erasure"). Implemented from scratch because the offline
//! dependency set contains no cryptography crate. The implementation follows
//! the RFC test vectors (checked in the tests below), but this build is a
//! research artifact: **do not reuse as production crypto** (no AEAD, no
//! constant-time guarantees needed here since keys protect only synthetic
//! data).

/// 256-bit key.
pub type Key = [u8; 32];

const SIGMA: [u32; 4] = [0x61707865, 0x3320646e, 0x79622d32, 0x6b206574];

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha20_block(key: &Key, counter: u32, nonce: &[u8; 12]) -> [u8; 64] {
    let mut state = [0u32; 16];
    state[0..4].copy_from_slice(&SIGMA);
    for i in 0..8 {
        // lint:allow(L001, fixed 4-byte chunks of a 32-byte key)
        state[4 + i] = u32::from_le_bytes(key[i * 4..i * 4 + 4].try_into().unwrap());
    }
    state[12] = counter;
    for i in 0..3 {
        // lint:allow(L001, fixed 4-byte chunks of a 12-byte nonce)
        state[13 + i] = u32::from_le_bytes(nonce[i * 4..i * 4 + 4].try_into().unwrap());
    }
    let mut working = state;
    for _ in 0..10 {
        // column rounds
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // diagonal rounds
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    let mut out = [0u8; 64];
    for i in 0..16 {
        let word = working[i].wrapping_add(state[i]);
        out[i * 4..i * 4 + 4].copy_from_slice(&word.to_le_bytes());
    }
    out
}

/// XOR `data` with the ChaCha20 keystream for `(key, nonce)`.
/// Encryption and decryption are the same operation.
pub fn apply_keystream(key: &Key, nonce64: u64, data: &mut [u8]) {
    let mut nonce = [0u8; 12];
    nonce[4..12].copy_from_slice(&nonce64.to_le_bytes());
    let mut counter = 1u32; // RFC convention: counter 0 reserved for AEAD tag
    let mut off = 0usize;
    while off < data.len() {
        let block = chacha20_block(key, counter, &nonce);
        let n = (data.len() - off).min(64);
        for i in 0..n {
            data[off + i] ^= block[i];
        }
        off += n;
        counter = counter.wrapping_add(1);
    }
}

/// Convenience: seal a buffer (copies).
pub fn seal(key: &Key, nonce64: u64, plain: &[u8]) -> Vec<u8> {
    let mut out = plain.to_vec();
    apply_keystream(key, nonce64, &mut out);
    out
}

/// Convenience: open a sealed buffer (copies).
pub fn open(key: &Key, nonce64: u64, sealed: &[u8]) -> Vec<u8> {
    seal(key, nonce64, sealed)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.3.2 block-function test vector.
    #[test]
    fn rfc8439_block_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        let nonce: [u8; 12] = [0, 0, 0, 9, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let block = chacha20_block(&key, 1, &nonce);
        let expect_first16: [u8; 16] = [
            0x10, 0xf1, 0xe7, 0xe4, 0xd1, 0x3b, 0x59, 0x15, 0x50, 0x0f, 0xdd, 0x1f, 0xa3, 0x20,
            0x71, 0xc4,
        ];
        assert_eq!(&block[..16], &expect_first16);
    }

    /// RFC 8439 §2.4.2 encryption test vector (first bytes).
    #[test]
    fn rfc8439_encrypt_vector() {
        let mut key = [0u8; 32];
        for (i, b) in key.iter_mut().enumerate() {
            *b = i as u8;
        }
        // nonce 00:00:00:00 / 00:00:00:4a:00:00:00:00 — matches our u64 path
        // only partially, so use the raw block path for the vector:
        let plaintext = b"Ladies and Gentlemen of the class of '99: If I could offer you only one tip for the future, sunscreen would be it.";
        let nonce: [u8; 12] = [0, 0, 0, 0, 0, 0, 0, 0x4a, 0, 0, 0, 0];
        let mut data = plaintext.to_vec();
        let mut counter = 1u32;
        let mut off = 0;
        while off < data.len() {
            let block = chacha20_block(&key, counter, &nonce);
            let n = (data.len() - off).min(64);
            for i in 0..n {
                data[off + i] ^= block[i];
            }
            off += n;
            counter += 1;
        }
        let expect_first8: [u8; 8] = [0x6e, 0x2e, 0x35, 0x9a, 0x25, 0x68, 0xf9, 0x80];
        assert_eq!(&data[..8], &expect_first8);
    }

    #[test]
    fn seal_open_round_trip() {
        let key = [7u8; 32];
        let msg = b"degradable payload: Domaine de Voluceau".to_vec();
        let sealed = seal(&key, 42, &msg);
        assert_ne!(sealed, msg);
        assert_eq!(open(&key, 42, &sealed), msg);
    }

    #[test]
    fn wrong_key_or_nonce_fails_to_open() {
        let key = [7u8; 32];
        let other = [8u8; 32];
        let msg = b"secret".to_vec();
        let sealed = seal(&key, 1, &msg);
        assert_ne!(open(&other, 1, &sealed), msg);
        assert_ne!(open(&key, 2, &sealed), msg);
    }

    #[test]
    fn ciphertext_hides_plaintext_patterns() {
        let key = [3u8; 32];
        let msg = vec![b'A'; 256];
        let sealed = seal(&key, 9, &msg);
        // No 8-byte window of the ciphertext equals the plaintext run.
        assert!(!sealed.windows(8).any(|w| w == &msg[..8]));
    }

    #[test]
    fn empty_and_block_boundary_lengths() {
        let key = [1u8; 32];
        for len in [0usize, 1, 63, 64, 65, 128, 257] {
            let msg = vec![0xAB; len];
            let sealed = seal(&key, 5, &msg);
            assert_eq!(open(&key, 5, &sealed), msg, "len {len}");
        }
    }
}
