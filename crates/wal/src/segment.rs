//! Segment files: the on-disk unit of the segmented WAL.
//!
//! The log is a directory of fixed-capacity, sequentially numbered segment
//! files named `wal.<seqno>.seg`. The scheme is **manifest-free**: every
//! fact recovery needs is derivable from the file names plus a 20-byte
//! per-segment header (`WSEG` magic, the segment's sequence number, and
//! the LSN of its first record). Within a segment, records use the same
//! framing as the old single-file log: `len: u32 | fnv1a(bytes): u64 |
//! bytes`.
//!
//! Why segments: checkpoint truncation becomes *deletion of whole dead
//! segments* — O(segments freed) unlinks instead of an O(live log)
//! rewrite of the retained suffix, so the checkpointer's shred→truncate
//! cycle never stalls commit acknowledgments behind a log-sized copy.
//!
//! This module owns the format-level pieces: naming, the header codec,
//! the streaming [`FrameScanner`] shared by open/recovery/iteration, and
//! the directory helpers ([`list_segments`], [`sync_dir`]). The policy —
//! when to rotate, what to delete — lives in [`crate::writer::Wal`].

use std::fs::File;
use std::io::{BufReader, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

use instant_common::codec::fnv1a;
use instant_common::{Error, Result};

use crate::record::{LogRecord, Lsn};

/// Magic prefix of every segment file.
pub const SEGMENT_MAGIC: &[u8; 4] = b"WSEG";
/// Bytes of the segment header: magic + seqno + first LSN.
pub const SEGMENT_HEADER_LEN: u64 = 20;
/// Bytes of one frame header: length + checksum.
pub const FRAME_HEADER_LEN: u64 = 12;
/// Default rotation capacity (a segment may exceed it by one frame).
pub const DEFAULT_SEGMENT_BYTES: u64 = 4 * 1024 * 1024;
/// Floor on the configured capacity — a segment always fits its header
/// plus at least one reasonable frame.
pub const MIN_SEGMENT_BYTES: u64 = 4096;

/// Tuning knobs for the segmented log.
#[derive(Debug, Clone)]
pub struct SegmentConfig {
    /// Rotate the active segment once it reaches this many bytes
    /// (clamped to [`MIN_SEGMENT_BYTES`]).
    pub segment_bytes: u64,
}

impl Default for SegmentConfig {
    fn default() -> Self {
        SegmentConfig {
            segment_bytes: DEFAULT_SEGMENT_BYTES,
        }
    }
}

impl SegmentConfig {
    /// The effective rotation threshold.
    pub fn capacity(&self) -> u64 {
        self.segment_bytes.max(MIN_SEGMENT_BYTES)
    }
}

/// Segment lifecycle counters (snapshot; see `Wal::segment_stats`).
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SegmentStats {
    /// Segment files currently on disk (sealed + active).
    pub segments: u64,
    /// Rotations since open (capacity-triggered or explicit).
    pub rotations: u64,
    /// Whole segments deleted by truncation since open.
    pub segments_deleted: u64,
    /// Bytes physically destroyed by those deletions since open.
    pub deleted_bytes: u64,
}

/// The fixed header at the start of every segment file.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SegmentHeader {
    /// Sequence number; must match the one in the file name.
    pub seqno: u64,
    /// LSN of the segment's first record.
    pub first_lsn: Lsn,
}

impl SegmentHeader {
    pub fn encode(&self) -> [u8; SEGMENT_HEADER_LEN as usize] {
        let mut out = [0u8; SEGMENT_HEADER_LEN as usize];
        out[0..4].copy_from_slice(SEGMENT_MAGIC);
        out[4..12].copy_from_slice(&self.seqno.to_le_bytes());
        out[12..20].copy_from_slice(&self.first_lsn.to_le_bytes());
        out
    }

    /// `None` when the bytes are not a complete, well-formed header.
    pub fn decode(bytes: &[u8]) -> Option<SegmentHeader> {
        if bytes.len() < SEGMENT_HEADER_LEN as usize || &bytes[0..4] != SEGMENT_MAGIC {
            return None;
        }
        Some(SegmentHeader {
            seqno: u64::from_le_bytes(bytes[4..12].try_into().unwrap()), // lint:allow(L001, fixed-width slice behind the length check)
            first_lsn: u64::from_le_bytes(bytes[12..20].try_into().unwrap()), // lint:allow(L001, fixed-width slice behind the length check)
        })
    }
}

/// File name of segment `seqno` (zero-padded so a plain directory listing
/// sorts in log order).
pub fn file_name(seqno: u64) -> String {
    format!("wal.{seqno:012}.seg")
}

/// Parse a `wal.<seqno>.seg` file name; `None` for anything else.
pub fn parse_file_name(name: &str) -> Option<u64> {
    let rest = name.strip_prefix("wal.")?;
    let digits = rest.strip_suffix(".seg")?;
    if digits.is_empty() || !digits.bytes().all(|b| b.is_ascii_digit()) {
        return None;
    }
    digits.parse().ok()
}

/// Every segment in `dir`, sorted by sequence number.
pub fn list_segments(dir: &Path) -> Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        if let Some(seqno) = entry.file_name().to_str().and_then(parse_file_name) {
            out.push((seqno, entry.path()));
        }
    }
    out.sort_by_key(|(seqno, _)| *seqno);
    Ok(out)
}

/// fsync the directory itself, making created/unlinked segment names
/// durable. Segment creation syncs the directory *before* the first
/// commit fsync into the new file, so an acknowledged record can never
/// live in a file whose name a crash forgets; deletion syncs after the
/// unlinks so truncation is durable too.
pub fn sync_dir(dir: &Path) -> Result<()> {
    File::open(dir)?.sync_all().map_err(Error::from)
}

/// Append one frame (`len | fnv1a | body`) to `w`; returns bytes written.
pub fn write_frame(w: &mut impl Write, body: &[u8]) -> Result<u64> {
    w.write_all(&(body.len() as u32).to_le_bytes())?;
    w.write_all(&fnv1a(body).to_le_bytes())?;
    w.write_all(body)?;
    Ok(FRAME_HEADER_LEN + body.len() as u64)
}

/// Streaming reader over the framed portion of one file: validates and
/// yields one record at a time, never holding more than a frame in
/// memory. Shared by segment scans (offset [`SEGMENT_HEADER_LEN`]),
/// legacy single-file migration (offset 0 or the old `WALB` header), and
/// iteration/recovery.
pub struct FrameScanner {
    reader: BufReader<File>,
    file_len: u64,
    pos: u64,
    body: Vec<u8>,
}

impl FrameScanner {
    /// Scan `file` starting at byte `start`.
    pub fn new(file: File, start: u64) -> Result<FrameScanner> {
        let file_len = file.metadata()?.len();
        let mut reader = BufReader::new(file);
        if start > 0 {
            reader.seek(SeekFrom::Start(start))?;
        }
        Ok(FrameScanner {
            reader,
            file_len,
            pos: start,
            body: Vec::new(),
        })
    }

    /// The next intact record; `None` at EOF, a torn tail, or the first
    /// corrupt frame. `pos()` advances only past frames that validate end
    /// to end, so after the scan it marks the exact end of the usable
    /// log — callers trim everything beyond it (torn *or* corrupt).
    pub fn next_record(&mut self) -> Result<Option<LogRecord>> {
        if self.pos + FRAME_HEADER_LEN > self.file_len {
            return Ok(None); // torn header / EOF
        }
        let mut head = [0u8; FRAME_HEADER_LEN as usize];
        self.reader.read_exact(&mut head)?;
        let len = u32::from_le_bytes(head[0..4].try_into().unwrap()) as u64; // lint:allow(L001, fixed-width frame-header slice)
        let sum = u64::from_le_bytes(head[4..12].try_into().unwrap()); // lint:allow(L001, fixed-width frame-header slice)
        if self.pos + FRAME_HEADER_LEN + len > self.file_len {
            return Ok(None); // torn tail
        }
        self.body.resize(len as usize, 0);
        self.reader.read_exact(&mut self.body)?;
        if fnv1a(&self.body) != sum {
            return Ok(None); // corrupt frame — stop here, pos untouched
        }
        match LogRecord::decode(&self.body) {
            Ok(rec) => {
                self.pos += FRAME_HEADER_LEN + len;
                Ok(Some(rec))
            }
            Err(_) => Ok(None),
        }
    }

    /// Raw body bytes of the record last returned by `next_record`.
    pub fn frame_body(&self) -> &[u8] {
        &self.body
    }

    /// Byte offset just past the last fully validated frame.
    pub fn pos(&self) -> u64 {
        self.pos
    }

    /// File length observed at open.
    pub fn file_len(&self) -> u64 {
        self.file_len
    }
}

/// Everything a full validating scan of one segment learns.
pub struct ScannedSegment {
    pub header: SegmentHeader,
    /// Fully validated frames in the segment (jump markers included).
    pub records: u64,
    /// Byte offset just past the last valid frame (= end of usable data).
    pub valid_len: u64,
    /// On-disk file length (> `valid_len` means a torn/corrupt tail).
    pub file_len: u64,
    /// LSN the record *after* this segment's valid frames would carry.
    /// Tracked frame by frame rather than derived as `first_lsn +
    /// records`, because a sharded log's [`LogRecord::LsnJump`] markers
    /// make per-shard LSNs discontinuous (a jump re-bases the running
    /// LSN and consumes none itself).
    pub next_lsn: Lsn,
}

/// Scan one segment file end to end. `Ok(None)` means the header itself
/// is missing or malformed (e.g. a crash between creating the file and
/// making its header durable) — the caller treats the file as dead.
pub fn scan_segment(path: &Path) -> Result<Option<ScannedSegment>> {
    let mut file = File::open(path)?;
    let mut head = [0u8; SEGMENT_HEADER_LEN as usize];
    let mut read = 0usize;
    while read < head.len() {
        match file.read(&mut head[read..])? {
            0 => break,
            n => read += n,
        }
    }
    let Some(header) = SegmentHeader::decode(&head[..read]) else {
        return Ok(None);
    };
    file.seek(SeekFrom::Start(0))?;
    let mut scan = FrameScanner::new(file, SEGMENT_HEADER_LEN)?;
    let mut records = 0u64;
    let mut next_lsn = header.first_lsn;
    while let Some(rec) = scan.next_record()? {
        records += 1;
        match rec {
            LogRecord::LsnJump { next } => next_lsn = next,
            _ => next_lsn += 1,
        }
    }
    Ok(Some(ScannedSegment {
        header,
        records,
        valid_len: scan.pos(),
        file_len: scan.file_len(),
        next_lsn,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_and_sort() {
        for seqno in [0u64, 7, 999, 1_000_000_000_000] {
            assert_eq!(parse_file_name(&file_name(seqno)), Some(seqno));
        }
        assert!(file_name(2) < file_name(10), "zero padding keeps ls order");
        assert_eq!(parse_file_name("wal.seg"), None);
        assert_eq!(parse_file_name("wal..seg"), None);
        assert_eq!(parse_file_name("wal.12x.seg"), None);
        assert_eq!(parse_file_name("db.idb"), None);
    }

    #[test]
    fn header_round_trip_rejects_garbage() {
        let h = SegmentHeader {
            seqno: 42,
            first_lsn: 12345,
        };
        assert_eq!(SegmentHeader::decode(&h.encode()), Some(h));
        assert_eq!(SegmentHeader::decode(b"WALB"), None);
        assert_eq!(SegmentHeader::decode(&h.encode()[..10]), None);
    }

    #[test]
    fn config_clamps_capacity() {
        assert_eq!(
            SegmentConfig { segment_bytes: 1 }.capacity(),
            MIN_SEGMENT_BYTES
        );
        assert_eq!(SegmentConfig::default().capacity(), DEFAULT_SEGMENT_BYTES);
    }
}
