//! Group-commit pipeline: one fsync per drain, not per committer.
//!
//! Committers enqueue their record batch plus a commit ticket and block;
//! a dedicated log-writer thread drains every waiting batch, appends all
//! records, issues **one** [`Wal::sync`] for the whole drain, then
//! completes the tickets. A committer is only acknowledged *after* the
//! fsync that covers its records, so the classical WAL durability contract
//! is unchanged — the pipeline just lets N concurrent committers share one
//! fsync instead of paying N.
//!
//! Batching is natural: while the writer fsyncs drain *n*, the committers
//! arriving meanwhile pile up and become drain *n+1*. An optional
//! [`GroupCommitConfig::max_delay`] makes the writer linger once per drain
//! to deepen the batch further (throughput over latency).
//!
//! Failure semantics: if any append or the fsync of a drain fails, every
//! ticket in that drain is failed with the same broadcast error — no
//! committer in a failed drain is ever acknowledged. (As with any WAL, a
//! *failed* commit may still surface after recovery if its bytes reached
//! the disk; an *acknowledged* commit is always durable.)
//!
//! The pipeline also serializes appends against checkpoint truncation:
//! because every record reaches the log through the single writer thread,
//! a checkpoint record routed through the pipeline can never interleave
//! into the middle of another committer's unsynced batch.
//!
//! Segmented-log interplay: a drain's batch may straddle a segment
//! rotation. That is safe — rotation fsyncs the outgoing segment before
//! switching, so the drain's single [`Wal::sync`] (which covers the
//! active segment) still makes every appended record durable before any
//! ticket completes. And because truncation deletes whole dead segments
//! without touching the Wal append lock for the unlink I/O, a drain's
//! append + fsync never stalls behind a checkpoint truncation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration as StdDuration, Instant};

use parking_lot::{Condvar, Mutex};

use instant_common::{Error, Result};
use instant_obs::Obs;

use crate::record::{LogRecord, Lsn};
use crate::writer::Wal;

/// Tuning knobs for the pipeline.
#[derive(Debug, Clone)]
pub struct GroupCommitConfig {
    /// Maximum committers folded into one drain/fsync (clamped to ≥ 1).
    pub max_batch: usize,
    /// How long the writer lingers after picking up work, to let more
    /// committers join the drain. Zero = pure natural batching (no added
    /// latency; batches still form while the previous fsync runs).
    pub max_delay: StdDuration,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig {
            max_batch: 128,
            max_delay: StdDuration::ZERO,
        }
    }
}

/// Pipeline counters (monotonic since spawn).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct GroupCommitStats {
    /// Tickets acknowledged (commit calls that succeeded).
    pub commits: u64,
    /// Drains completed — one fsync each.
    pub batches: u64,
    /// Log records appended through the pipeline.
    pub records: u64,
    /// Largest number of committers folded into a single drain.
    pub max_batch: u64,
    /// Drains whose tickets were failed by an I/O error broadcast.
    pub failed_batches: u64,
}

impl GroupCommitStats {
    /// fsyncs avoided versus a per-commit-fsync discipline.
    pub fn fsyncs_saved(&self) -> u64 {
        self.commits.saturating_sub(self.batches)
    }
}

#[derive(Default)]
struct StatsCells {
    commits: AtomicU64,
    batches: AtomicU64,
    records: AtomicU64,
    max_batch: AtomicU64,
    failed_batches: AtomicU64,
}

enum TicketState {
    Pending,
    Done(Lsn),
    Failed(Arc<str>),
}

/// One committer's rendezvous with the writer thread.
struct Ticket {
    state: Mutex<TicketState>, // lock-rank: 510
    cv: Condvar,
    /// When the committer submitted — the start of its ack latency.
    submitted: Instant,
}

impl Ticket {
    fn new() -> Ticket {
        Ticket {
            state: Mutex::ranked(510, TicketState::Pending),
            cv: Condvar::new(),
            submitted: Instant::now(),
        }
    }

    fn complete(&self, lsn: Lsn) {
        *self.state.lock() = TicketState::Done(lsn);
        self.cv.notify_all();
    }

    fn fail(&self, msg: Arc<str>) {
        *self.state.lock() = TicketState::Failed(msg);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<Lsn> {
        let mut st = self.state.lock();
        loop {
            match &*st {
                TicketState::Pending => self.cv.wait(&mut st),
                TicketState::Done(lsn) => return Ok(*lsn),
                TicketState::Failed(msg) => {
                    return Err(Error::Io(std::io::Error::other(msg.to_string())))
                }
            }
        }
    }
}

/// A commit enqueued by [`GroupCommit::submit`] but not yet awaited.
pub struct CommitTicket(Arc<Ticket>);

impl CommitTicket {
    /// Block until the drain covering this commit has fsynced; returns
    /// the LSN of the batch's first record.
    pub fn wait(self) -> Result<Lsn> {
        self.0.wait()
    }
}

impl std::fmt::Debug for CommitTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CommitTicket")
    }
}

struct Queue {
    pending: Vec<(Vec<LogRecord>, Arc<Ticket>)>,
    stopping: bool,
}

struct Shared {
    queue: Mutex<Queue>, // lock-rank: 500
    /// Signals the writer that work arrived or stop was requested.
    work: Condvar,
    stats: StatsCells,
    /// Latency sinks (drain/fsync/ack histograms); recording is
    /// lock-free, so the writer thread feeds them mid-drain at no risk.
    obs: Arc<Obs>,
}

/// Handle to the commit pipeline. Dropping (or [`GroupCommit::stop`])
/// drains every enqueued batch, then joins the writer thread — a clean
/// shutdown never strands an acknowledged or enqueued committer.
pub struct GroupCommit {
    wal: Arc<Wal>,
    shared: Arc<Shared>,
    handle: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for GroupCommit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupCommit")
            .field("running", &self.handle.is_some())
            .finish()
    }
}

impl GroupCommit {
    /// Spawn the log-writer thread over `wal`. Fails only if the OS
    /// cannot spawn the thread — without its writer the pipeline could
    /// never acknowledge a commit, so that must surface as an error at
    /// startup, not a panic.
    pub fn spawn(wal: Arc<Wal>, cfg: GroupCommitConfig) -> Result<GroupCommit> {
        Self::spawn_obs(wal, cfg, Arc::new(Obs::new()))
    }

    /// [`GroupCommit::spawn`] recording drain/fsync/ack latencies into a
    /// caller-owned [`Obs`] — the engine passes its own so pipeline
    /// latency shows up in `SHOW STATS`.
    pub fn spawn_obs(wal: Arc<Wal>, cfg: GroupCommitConfig, obs: Arc<Obs>) -> Result<GroupCommit> {
        let shared = Arc::new(Shared {
            queue: Mutex::ranked(
                500,
                Queue {
                    pending: Vec::new(),
                    stopping: false,
                },
            ),
            work: Condvar::new(),
            stats: StatsCells::default(),
            obs,
        });
        let thread_wal = wal.clone();
        let thread_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name("wal-group-commit".into())
            .spawn(move || writer_loop(thread_wal, thread_shared, cfg))?;
        Ok(GroupCommit {
            wal,
            shared,
            handle: Some(handle),
        })
    }

    /// Durably commit `records` as one atomic batch: blocks until the
    /// writer thread has appended them and fsynced, then returns the LSN
    /// of the batch's first record.
    pub fn commit(&self, records: Vec<LogRecord>) -> Result<Lsn> {
        self.submit(records)?.wait()
    }

    /// Enqueue `records` without waiting for durability. Callers that
    /// must order the *enqueue* against other work — e.g. the engine's
    /// checkpoint gate, which guarantees every record ahead of a
    /// `Checkpoint` record had its page writes flushed — take the ticket
    /// inside their critical section and wait outside it.
    pub fn submit(&self, records: Vec<LogRecord>) -> Result<CommitTicket> {
        let ticket = Arc::new(Ticket::new());
        if records.is_empty() {
            ticket.complete(self.wal.next_lsn());
            return Ok(CommitTicket(ticket));
        }
        {
            let mut q = self.shared.queue.lock();
            if q.stopping {
                return Err(Error::TxState("group-commit pipeline stopped".into()));
            }
            q.pending.push((records, ticket.clone()));
        }
        self.shared.work.notify_all();
        Ok(CommitTicket(ticket))
    }

    /// Snapshot of the pipeline counters.
    pub fn stats(&self) -> GroupCommitStats {
        let s = &self.shared.stats;
        GroupCommitStats {
            commits: s.commits.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            records: s.records.load(Ordering::Relaxed),
            max_batch: s.max_batch.load(Ordering::Relaxed),
            failed_batches: s.failed_batches.load(Ordering::Relaxed),
        }
    }

    /// Drain outstanding batches, stop the writer thread, and return the
    /// final counters. Subsequent [`GroupCommit::commit`] calls error.
    pub fn stop(mut self) -> GroupCommitStats {
        self.shutdown();
        self.stats()
    }

    fn shutdown(&mut self) {
        let Some(handle) = self.handle.take() else {
            return;
        };
        self.shared.queue.lock().stopping = true;
        self.shared.work.notify_all();
        let _ = handle.join();
    }
}

impl Drop for GroupCommit {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn writer_loop(wal: Arc<Wal>, shared: Arc<Shared>, cfg: GroupCommitConfig) {
    let _poison = PoisonOnExit(shared.clone());
    let max_batch = cfg.max_batch.max(1);
    loop {
        let drain: Vec<(Vec<LogRecord>, Arc<Ticket>)> = {
            let mut q = shared.queue.lock();
            loop {
                if !q.pending.is_empty() {
                    break;
                }
                if q.stopping {
                    return;
                }
                shared.work.wait(&mut q);
            }
            if !cfg.max_delay.is_zero() && q.pending.len() < max_batch && !q.stopping {
                // Linger to deepen the batch, re-arming the wait across
                // arrivals (each submit notifies the condvar) until the
                // deadline passes, the batch fills, or stop is signalled.
                let deadline = std::time::Instant::now() + cfg.max_delay;
                while q.pending.len() < max_batch && !q.stopping {
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        break;
                    }
                    if shared.work.wait_for(&mut q, deadline - now).timed_out() {
                        break;
                    }
                }
            }
            let take = q.pending.len().min(max_batch);
            q.pending.drain(..take).collect()
        };

        let drain_started = Instant::now();
        let mut first_lsns = Vec::with_capacity(drain.len());
        let mut appended = 0u64;
        let mut failure: Option<String> = None;
        for (records, _) in &drain {
            match wal.append_batch(records) {
                Ok(first) => {
                    first_lsns.push(first);
                    appended += records.len() as u64;
                }
                Err(e) => {
                    failure = Some(e.to_string());
                    break;
                }
            }
        }
        if failure.is_none() {
            let fsync_started = Instant::now();
            if let Err(e) = wal.sync() {
                failure = Some(e.to_string());
            } else {
                shared
                    .obs
                    .wal_fsync
                    .record_duration(fsync_started.elapsed());
            }
        }

        match failure {
            None => {
                let s = &shared.stats;
                s.commits.fetch_add(drain.len() as u64, Ordering::Relaxed);
                s.batches.fetch_add(1, Ordering::Relaxed);
                s.records.fetch_add(appended, Ordering::Relaxed);
                s.max_batch.fetch_max(drain.len() as u64, Ordering::Relaxed);
                for ((_, ticket), lsn) in drain.iter().zip(first_lsns) {
                    // Ack latency is stamped by the completer: the
                    // committer's wake-up adds only its condvar signal.
                    shared
                        .obs
                        .commit_ack
                        .record_duration(ticket.submitted.elapsed());
                    ticket.complete(lsn);
                }
                shared
                    .obs
                    .wal_drain
                    .record_duration(drain_started.elapsed());
            }
            Some(msg) => {
                // Error broadcast: every ticket in the failed drain gets
                // the same cause; none is acknowledged. Then poison the
                // pipeline and exit: a failed append or fsync leaves the
                // log tail (and kernel dirty-page state) indeterminate,
                // so acknowledging anything appended after it could
                // violate acknowledged-implies-durable. The poison guard
                // fails whatever is still queued.
                let msg: Arc<str> = format!("group-commit drain failed: {msg}").into();
                shared.stats.failed_batches.fetch_add(1, Ordering::Relaxed);
                for (_, ticket) in &drain {
                    ticket.fail(msg.clone());
                }
                return;
            }
        }
    }
}

/// Runs when the writer thread exits — normally, after a drain failure,
/// or by panic. Marks the pipeline stopped (future submits error out
/// instead of enqueueing into the void) and fails every ticket still
/// queued so no committer is stranded in [`CommitTicket::wait`].
struct PoisonOnExit(Arc<Shared>);

impl Drop for PoisonOnExit {
    fn drop(&mut self) {
        let leftovers: Vec<(Vec<LogRecord>, Arc<Ticket>)> = {
            let mut q = self.0.queue.lock();
            q.stopping = true;
            q.pending.drain(..).collect()
        };
        if leftovers.is_empty() {
            return;
        }
        let msg: Arc<str> = "group-commit writer thread exited before this drain".into();
        for (_, ticket) in &leftovers {
            ticket.fail(msg.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Payload;
    use instant_common::{TableId, Timestamp, TupleId, TxId};

    fn batch(tx: u64) -> Vec<LogRecord> {
        let at = Timestamp::micros(tx);
        vec![
            LogRecord::Begin { tx: TxId(tx), at },
            LogRecord::Insert {
                tx: TxId(tx),
                table: TableId(1),
                tid: TupleId::new(1, tx as u16),
                row: Payload::Plain(format!("row-{tx}").into_bytes()),
                at,
            },
            LogRecord::Commit { tx: TxId(tx), at },
        ]
    }

    #[test]
    fn single_commit_returns_first_lsn_and_is_durable() {
        let wal = Arc::new(Wal::temp("gc1").unwrap());
        let gc = GroupCommit::spawn(wal.clone(), GroupCommitConfig::default()).unwrap();
        assert_eq!(gc.commit(batch(0)).unwrap(), 0);
        assert_eq!(gc.commit(batch(1)).unwrap(), 3);
        let stats = gc.stop();
        assert_eq!(stats.commits, 2);
        assert_eq!(stats.records, 6);
        assert_eq!(wal.iterate().unwrap().len(), 6);
        // Both drains synced before acknowledging.
        let (_, syncs) = wal.counters();
        assert_eq!(syncs, stats.batches);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let wal = Arc::new(Wal::temp("gc2").unwrap());
        let gc = GroupCommit::spawn(wal.clone(), GroupCommitConfig::default()).unwrap();
        assert_eq!(gc.commit(Vec::new()).unwrap(), 0);
        assert_eq!(gc.stop().commits, 0);
        assert!(wal.iterate().unwrap().is_empty());
    }

    #[test]
    fn commit_after_stop_errors() {
        let wal = Arc::new(Wal::temp("gc3").unwrap());
        let mut gc = GroupCommit::spawn(wal.clone(), GroupCommitConfig::default()).unwrap();
        gc.shutdown();
        assert!(gc.commit(batch(0)).is_err());
    }

    #[test]
    fn stop_signal_interrupts_linger_and_drains_pending() {
        // A huge max_delay must not stall shutdown or strand the pending
        // committer: stop notifies the same condvar the linger waits on,
        // and the writer drains everything enqueued before exiting.
        let wal = Arc::new(Wal::temp("gc4").unwrap());
        let gc = GroupCommit::spawn(
            wal.clone(),
            GroupCommitConfig {
                max_batch: 1024,
                max_delay: StdDuration::from_secs(30),
            },
        )
        .unwrap();
        let start = std::time::Instant::now();
        std::thread::scope(|s| {
            let gcr = &gc;
            let committer = s.spawn(move || gcr.commit(batch(7)));
            let deadline = start + StdDuration::from_secs(10);
            while gc.shared.queue.lock().pending.is_empty() && std::time::Instant::now() < deadline
            {
                std::thread::yield_now();
            }
            gc.shared.queue.lock().stopping = true;
            gc.shared.work.notify_all();
            committer.join().unwrap().unwrap();
        });
        assert!(
            start.elapsed() < StdDuration::from_secs(10),
            "stop must interrupt the linger wait"
        );
        assert_eq!(wal.iterate().unwrap().len(), 3);
    }

    #[test]
    fn drain_fsync_and_ack_latencies_are_recorded() {
        let wal = Arc::new(Wal::temp("gc6").unwrap());
        let obs = Arc::new(Obs::new());
        let gc = GroupCommit::spawn_obs(wal, GroupCommitConfig::default(), obs.clone()).unwrap();
        gc.commit(batch(0)).unwrap();
        gc.commit(batch(1)).unwrap();
        let stats = gc.stop();
        let drain = obs.wal_drain.snapshot();
        let fsync = obs.wal_fsync.snapshot();
        let ack = obs.commit_ack.snapshot();
        assert_eq!(drain.count, stats.batches, "one drain sample per batch");
        assert_eq!(fsync.count, stats.batches, "one fsync sample per batch");
        assert_eq!(ack.count, stats.commits, "one ack sample per commit");
        // A drain contains its fsync, an ack spans at least its drain's
        // append+fsync work — the p100s must order accordingly.
        assert!(drain.max_micros >= fsync.max_micros);
        assert!(ack.sum_micros >= fsync.sum_micros / stats.batches.max(1));
    }

    #[test]
    fn concurrent_arrivals_fold_into_fewer_drains() {
        let wal = Arc::new(Wal::temp("gc5").unwrap());
        let gc = GroupCommit::spawn(
            wal.clone(),
            GroupCommitConfig {
                max_batch: 1024,
                max_delay: StdDuration::from_millis(500),
            },
        )
        .unwrap();
        std::thread::scope(|s| {
            for tx in 0..4u64 {
                let gcr = &gc;
                s.spawn(move || gcr.commit(batch(tx)).unwrap());
            }
        });
        let stats = gc.stop();
        assert_eq!(stats.commits, 4);
        assert!(
            stats.batches < stats.commits,
            "lingering drain must fold concurrent committers: {stats:?}"
        );
        assert_eq!(wal.iterate().unwrap().len(), 12);
    }
}
