//! Group-commit pipeline: one fsync per drain, not per committer — and,
//! sharded, one pipeline per WAL shard with epoch-acknowledged fsyncs.
//!
//! Committers enqueue their record batch plus a commit ticket and block;
//! a dedicated log-writer thread drains every waiting batch and appends
//! all records. Appended drains are sealed into **epochs** and handed to
//! a second per-pipeline thread, the fsyncer, which issues **one**
//! [`Wal::sync`] covering every epoch pending at that moment, then
//! completes the covered tickets. A committer is only acknowledged
//! *after* the fsync that covers its records, so the classical WAL
//! durability contract is unchanged — the pipeline just lets N
//! concurrent committers share one fsync instead of paying N, and lets
//! the writer keep appending epoch *n+1* while the fsyncer waits on
//! epoch *n*'s disk flush.
//!
//! Batching is natural twice over: while the writer appends drain *n*,
//! the committers arriving meanwhile pile up and become drain *n+1*;
//! and while the fsyncer flushes epoch *m*, the epochs sealed meanwhile
//! fold into one covering fsync. An optional
//! [`GroupCommitConfig::max_delay`] makes the writer linger once per
//! drain to deepen the batch further (throughput over latency).
//!
//! Failure semantics: if any append fails, every ticket in that drain is
//! failed with the same broadcast error and the pipeline poisons itself;
//! if an epoch fsync fails, every ticket in every epoch that fsync would
//! have covered is failed the same way. No committer in a failed drain
//! or epoch is ever acknowledged. (As with any WAL, a *failed* commit
//! may still surface after recovery if its bytes reached the disk; an
//! *acknowledged* commit is always durable.)
//!
//! The pipeline also serializes appends against checkpoint truncation:
//! because every record reaches the log through the single writer thread,
//! a checkpoint record routed through the pipeline can never interleave
//! into the middle of another committer's unsynced batch.
//!
//! Segmented-log interplay: a drain's batch may straddle a segment
//! rotation. That is safe — rotation fsyncs the outgoing segment before
//! switching, so the epoch's single [`Wal::sync`] (which covers the
//! active segment) still makes every appended record durable before any
//! ticket completes. And because truncation deletes whole dead segments
//! without touching the Wal append lock for the unlink I/O, a drain's
//! append + fsync never stalls behind a checkpoint truncation.
//!
//! Sharded operation ([`GroupCommitSet`]): one pipeline per
//! [`WalSet`] shard, every pipeline allocating LSNs from the set's
//! global counter via [`Wal::append_batch_alloc`]. Transactions routed
//! to different shards append and fsync fully in parallel; recovery's
//! k-way merge puts the shards back into one LSN-ordered stream.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration as StdDuration, Instant};

use parking_lot::{Condvar, Mutex};

use instant_common::{Error, Result};
use instant_obs::{Obs, WalShardLane};

use crate::record::{LogRecord, Lsn};
use crate::walset::WalSet;
use crate::writer::Wal;

/// Tuning knobs for the pipeline.
#[derive(Debug, Clone)]
pub struct GroupCommitConfig {
    /// Maximum committers folded into one drain/fsync (clamped to ≥ 1).
    pub max_batch: usize,
    /// How long the writer lingers after picking up work, to let more
    /// committers join the drain. Zero = pure natural batching (no added
    /// latency; batches still form while the previous fsync runs).
    pub max_delay: StdDuration,
}

impl Default for GroupCommitConfig {
    fn default() -> Self {
        GroupCommitConfig {
            max_batch: 128,
            max_delay: StdDuration::ZERO,
        }
    }
}

/// Pipeline counters (monotonic since spawn).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct GroupCommitStats {
    /// Tickets acknowledged (commit calls that succeeded).
    pub commits: u64,
    /// Durability epochs completed — one fsync each.
    pub batches: u64,
    /// Log records appended through the pipeline.
    pub records: u64,
    /// Largest number of committers covered by a single fsync.
    pub max_batch: u64,
    /// Drains or epochs whose tickets were failed by an I/O error
    /// broadcast.
    pub failed_batches: u64,
}

impl GroupCommitStats {
    /// fsyncs avoided versus a per-commit-fsync discipline.
    pub fn fsyncs_saved(&self) -> u64 {
        self.commits.saturating_sub(self.batches)
    }

    /// Fold `other` into `self`: counters add, the high-water batch
    /// depth takes the max. Used to aggregate per-shard pipelines.
    pub fn merge(&mut self, other: &GroupCommitStats) {
        self.commits += other.commits;
        self.batches += other.batches;
        self.records += other.records;
        self.max_batch = self.max_batch.max(other.max_batch);
        self.failed_batches += other.failed_batches;
    }
}

#[derive(Default)]
struct StatsCells {
    commits: AtomicU64,
    batches: AtomicU64,
    records: AtomicU64,
    max_batch: AtomicU64,
    failed_batches: AtomicU64,
}

enum TicketState {
    Pending,
    Done(Lsn),
    Failed(Arc<str>),
}

/// One committer's rendezvous with the writer thread.
struct Ticket {
    state: Mutex<TicketState>, // lock-rank: 510
    cv: Condvar,
    /// When the committer submitted — the start of its ack latency.
    submitted: Instant,
}

impl Ticket {
    fn new() -> Ticket {
        Ticket {
            state: Mutex::ranked(510, TicketState::Pending),
            cv: Condvar::new(),
            submitted: Instant::now(),
        }
    }

    fn complete(&self, lsn: Lsn) {
        *self.state.lock() = TicketState::Done(lsn);
        self.cv.notify_all();
    }

    fn fail(&self, msg: Arc<str>) {
        *self.state.lock() = TicketState::Failed(msg);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<Lsn> {
        let mut st = self.state.lock();
        loop {
            match &*st {
                TicketState::Pending => self.cv.wait(&mut st),
                TicketState::Done(lsn) => return Ok(*lsn),
                TicketState::Failed(msg) => {
                    return Err(Error::Io(std::io::Error::other(msg.to_string())))
                }
            }
        }
    }

    fn poll(&self) -> Option<Result<Lsn>> {
        match &*self.state.lock() {
            TicketState::Pending => None,
            TicketState::Done(lsn) => Some(Ok(*lsn)),
            TicketState::Failed(msg) => {
                Some(Err(Error::Io(std::io::Error::other(msg.to_string()))))
            }
        }
    }
}

/// A commit enqueued by [`GroupCommit::submit`] but not yet awaited.
pub struct CommitTicket(Arc<Ticket>);

impl CommitTicket {
    /// Block until the epoch covering this commit has fsynced; returns
    /// the LSN of the batch's first record.
    pub fn wait(self) -> Result<Lsn> {
        self.0.wait()
    }

    /// Non-blocking durability check: `None` while the covering epoch
    /// is still in flight, `Some(Ok(first_lsn))` once it is durable,
    /// `Some(Err(..))` if its drain or fsync failed. The async-epoch
    /// server path polls this between wire turns instead of parking a
    /// thread per in-flight commit.
    pub fn try_poll(&self) -> Option<Result<Lsn>> {
        self.0.poll()
    }
}

impl std::fmt::Debug for CommitTicket {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("CommitTicket")
    }
}

struct Queue {
    pending: Vec<(Vec<LogRecord>, Arc<Ticket>)>,
    stopping: bool,
}

/// One appended-but-not-yet-durable drain, sealed by the writer and
/// awaiting its covering fsync.
struct Epoch {
    /// Each committer's ticket with the first LSN of its batch.
    entries: Vec<(Arc<Ticket>, Lsn)>,
    /// Records appended for this epoch.
    records: u64,
    /// When the writer picked the drain up — the start of the epoch's
    /// drain latency.
    drain_started: Instant,
}

struct EpochQueue {
    pending: Vec<Epoch>,
    /// The writer thread exited; the fsyncer flushes what is queued and
    /// follows.
    writer_done: bool,
    /// The fsyncer died on an fsync error; the writer fails further
    /// drains instead of queueing them into the void.
    fsync_dead: bool,
}

struct Shared {
    queue: Mutex<Queue>, // lock-rank: 500
    /// Signals the writer that work arrived or stop was requested.
    work: Condvar,
    /// Sealed epochs in flight between the writer and the fsyncer. The
    /// fsync itself always runs *outside* this lock, so a committer's
    /// submit never queues behind disk I/O.
    epochs: Mutex<EpochQueue>, // lock-rank: 505
    /// Signals the fsyncer that an epoch was sealed or the writer left.
    epoch_ready: Condvar,
    stats: StatsCells,
    /// Latency sinks (drain/fsync/ack histograms); recording is
    /// lock-free, so both threads feed them mid-epoch at no risk.
    obs: Arc<Obs>,
    /// Per-shard drain/fsync lane when this pipeline serves one shard
    /// of a [`WalSet`]; recorded alongside the global histograms.
    lane: Option<Arc<WalShardLane>>,
    /// Global LSN allocator shared by every pipeline of a [`WalSet`];
    /// `None` for a standalone single-log pipeline.
    alloc: Option<Arc<AtomicU64>>,
}

/// Handle to the commit pipeline. Dropping (or [`GroupCommit::stop`])
/// drains every enqueued batch, flushes every sealed epoch, then joins
/// both threads — a clean shutdown never strands an acknowledged or
/// enqueued committer.
pub struct GroupCommit {
    wal: Arc<Wal>,
    shared: Arc<Shared>,
    writer: Option<JoinHandle<()>>,
    fsyncer: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for GroupCommit {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupCommit")
            .field("running", &self.writer.is_some())
            .finish()
    }
}

impl GroupCommit {
    /// Spawn the log-writer and fsyncer threads over `wal`. Fails only
    /// if the OS cannot spawn a thread — without them the pipeline could
    /// never acknowledge a commit, so that must surface as an error at
    /// startup, not a panic.
    pub fn spawn(wal: Arc<Wal>, cfg: GroupCommitConfig) -> Result<GroupCommit> {
        Self::spawn_obs(wal, cfg, Arc::new(Obs::new()))
    }

    /// [`GroupCommit::spawn`] recording drain/fsync/ack latencies into a
    /// caller-owned [`Obs`] — the engine passes its own so pipeline
    /// latency shows up in `SHOW STATS`.
    pub fn spawn_obs(wal: Arc<Wal>, cfg: GroupCommitConfig, obs: Arc<Obs>) -> Result<GroupCommit> {
        Self::spawn_inner(wal, cfg, obs, None, None, None)
    }

    /// Spawn one shard's pipeline of a [`WalSet`]: LSNs come from the
    /// set-wide `alloc` (so the shard's appends slot into the global
    /// order), and latencies land in the shard's obs `lane` next to the
    /// global histograms. Used by [`GroupCommitSet::spawn_obs`].
    pub fn spawn_sharded(
        wal: Arc<Wal>,
        cfg: GroupCommitConfig,
        obs: Arc<Obs>,
        alloc: Arc<AtomicU64>,
        lane: Option<Arc<WalShardLane>>,
        shard: usize,
    ) -> Result<GroupCommit> {
        Self::spawn_inner(wal, cfg, obs, Some(alloc), lane, Some(shard))
    }

    fn spawn_inner(
        wal: Arc<Wal>,
        cfg: GroupCommitConfig,
        obs: Arc<Obs>,
        alloc: Option<Arc<AtomicU64>>,
        lane: Option<Arc<WalShardLane>>,
        shard: Option<usize>,
    ) -> Result<GroupCommit> {
        let shared = Arc::new(Shared {
            queue: Mutex::ranked(
                500,
                Queue {
                    pending: Vec::new(),
                    stopping: false,
                },
            ),
            work: Condvar::new(),
            epochs: Mutex::ranked(
                505,
                EpochQueue {
                    pending: Vec::new(),
                    writer_done: false,
                    fsync_dead: false,
                },
            ),
            epoch_ready: Condvar::new(),
            stats: StatsCells::default(),
            obs,
            lane,
            alloc,
        });
        let suffix = shard.map(|k| format!("-{k}")).unwrap_or_default();
        let thread_wal = wal.clone();
        let thread_shared = shared.clone();
        let writer = std::thread::Builder::new()
            .name(format!("wal-group-commit{suffix}"))
            .spawn(move || writer_loop(thread_wal, thread_shared, cfg))?;
        let thread_wal = wal.clone();
        let thread_shared = shared.clone();
        let fsyncer = std::thread::Builder::new()
            .name(format!("wal-group-fsync{suffix}"))
            .spawn(move || fsync_loop(thread_wal, thread_shared));
        let fsyncer = match fsyncer {
            Ok(handle) => handle,
            Err(e) => {
                // Half a pipeline acknowledges nothing: stop the writer
                // (its exit guard fails anything already queued) before
                // surfacing the spawn error.
                shared.queue.lock().stopping = true;
                shared.work.notify_all();
                let _ = writer.join();
                return Err(e.into());
            }
        };
        Ok(GroupCommit {
            wal,
            shared,
            writer: Some(writer),
            fsyncer: Some(fsyncer),
        })
    }

    /// Durably commit `records` as one atomic batch: blocks until the
    /// epoch covering them has fsynced, then returns the LSN of the
    /// batch's first record.
    pub fn commit(&self, records: Vec<LogRecord>) -> Result<Lsn> {
        self.submit(records)?.wait()
    }

    /// Enqueue `records` without waiting for durability. Callers that
    /// must order the *enqueue* against other work — e.g. the engine's
    /// checkpoint gate, which guarantees every record ahead of a
    /// `Checkpoint` record had its page writes flushed — take the ticket
    /// inside their critical section and wait outside it.
    pub fn submit(&self, records: Vec<LogRecord>) -> Result<CommitTicket> {
        let ticket = Arc::new(Ticket::new());
        if records.is_empty() {
            let next = match &self.shared.alloc {
                Some(alloc) => alloc.load(Ordering::Relaxed),
                None => self.wal.next_lsn(),
            };
            ticket.complete(next);
            return Ok(CommitTicket(ticket));
        }
        {
            let mut q = self.shared.queue.lock();
            if q.stopping {
                return Err(Error::TxState("group-commit pipeline stopped".into()));
            }
            q.pending.push((records, ticket.clone()));
        }
        self.shared.work.notify_all();
        Ok(CommitTicket(ticket))
    }

    /// Snapshot of the pipeline counters.
    pub fn stats(&self) -> GroupCommitStats {
        let s = &self.shared.stats;
        GroupCommitStats {
            commits: s.commits.load(Ordering::Relaxed),
            batches: s.batches.load(Ordering::Relaxed),
            records: s.records.load(Ordering::Relaxed),
            max_batch: s.max_batch.load(Ordering::Relaxed),
            failed_batches: s.failed_batches.load(Ordering::Relaxed),
        }
    }

    /// Drain outstanding batches, stop both threads, and return the
    /// final counters. Subsequent [`GroupCommit::commit`] calls error.
    pub fn stop(mut self) -> GroupCommitStats {
        self.shutdown();
        self.stats()
    }

    fn shutdown(&mut self) {
        let Some(writer) = self.writer.take() else {
            return;
        };
        self.shared.queue.lock().stopping = true;
        self.shared.work.notify_all();
        // The writer drains the queue, seals the last epochs, and its
        // exit guard flags `writer_done`; the fsyncer flushes whatever
        // is sealed and follows. Join in that order.
        let _ = writer.join();
        if let Some(fsyncer) = self.fsyncer.take() {
            let _ = fsyncer.join();
        }
    }
}

impl Drop for GroupCommit {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn writer_loop(wal: Arc<Wal>, shared: Arc<Shared>, cfg: GroupCommitConfig) {
    let _poison = PoisonOnExit(shared.clone());
    let max_batch = cfg.max_batch.max(1);
    loop {
        let drain: Vec<(Vec<LogRecord>, Arc<Ticket>)> = {
            let mut q = shared.queue.lock();
            loop {
                if !q.pending.is_empty() {
                    break;
                }
                if q.stopping {
                    return;
                }
                shared.work.wait(&mut q);
            }
            if !cfg.max_delay.is_zero() && q.pending.len() < max_batch && !q.stopping {
                // Linger to deepen the batch, re-arming the wait across
                // arrivals (each submit notifies the condvar) until the
                // deadline passes, the batch fills, or stop is signalled.
                let deadline = std::time::Instant::now() + cfg.max_delay;
                while q.pending.len() < max_batch && !q.stopping {
                    let now = std::time::Instant::now();
                    if now >= deadline {
                        break;
                    }
                    if shared.work.wait_for(&mut q, deadline - now).timed_out() {
                        break;
                    }
                }
            }
            let take = q.pending.len().min(max_batch);
            q.pending.drain(..take).collect()
        };

        let drain_started = Instant::now();
        let mut entries = Vec::with_capacity(drain.len());
        let mut appended = 0u64;
        let mut failure: Option<String> = None;
        for (records, ticket) in &drain {
            let res = match shared.alloc.as_deref() {
                Some(alloc) => wal.append_batch_alloc(alloc, records),
                None => wal.append_batch(records),
            };
            match res {
                Ok(first) => {
                    entries.push((ticket.clone(), first));
                    appended += records.len() as u64;
                }
                Err(e) => {
                    failure = Some(e.to_string());
                    break;
                }
            }
        }

        match failure {
            None => {
                let sealed = {
                    let mut eq = shared.epochs.lock();
                    if eq.fsync_dead {
                        false
                    } else {
                        eq.pending.push(Epoch {
                            entries,
                            records: appended,
                            drain_started,
                        });
                        true
                    }
                };
                if sealed {
                    shared.epoch_ready.notify_all();
                } else {
                    // The fsyncer died under us: nothing will ever flush
                    // this drain, so fail it and exit — the poison guard
                    // fails whatever is still queued behind it.
                    let msg: Arc<str> =
                        "group-commit fsyncer thread exited before this epoch".into();
                    for (_, ticket) in &drain {
                        ticket.fail(msg.clone());
                    }
                    return;
                }
            }
            Some(msg) => {
                // Error broadcast: every ticket in the failed drain gets
                // the same cause; none is acknowledged. Then poison the
                // pipeline and exit: a failed append leaves the log tail
                // (and kernel dirty-page state) indeterminate, so
                // acknowledging anything appended after it could violate
                // acknowledged-implies-durable. Epochs sealed *before*
                // the failure were fully appended and may still be
                // flushed and acknowledged by the fsyncer. The poison
                // guard fails whatever is still queued.
                let msg: Arc<str> = format!("group-commit drain failed: {msg}").into();
                shared.stats.failed_batches.fetch_add(1, Ordering::Relaxed);
                for (_, ticket) in &drain {
                    ticket.fail(msg.clone());
                }
                return;
            }
        }
    }
}

/// The fsyncer half of the pipeline: pops every epoch sealed since its
/// last flush, issues **one** [`Wal::sync`] covering all of them —
/// outside the epoch lock, so committers never queue behind disk I/O —
/// then acknowledges the covered tickets and accounts the epoch.
fn fsync_loop(wal: Arc<Wal>, shared: Arc<Shared>) {
    loop {
        let epochs: Vec<Epoch> = {
            let mut eq = shared.epochs.lock();
            loop {
                if !eq.pending.is_empty() {
                    break;
                }
                if eq.writer_done {
                    return;
                }
                shared.epoch_ready.wait(&mut eq);
            }
            std::mem::take(&mut eq.pending)
        };

        let fsync_started = Instant::now();
        match wal.sync() {
            Ok(()) => {
                let fsync_elapsed = fsync_started.elapsed();
                shared.obs.wal_fsync.record_duration(fsync_elapsed);
                if let Some(lane) = &shared.lane {
                    lane.fsync.record_duration(fsync_elapsed);
                }
                let commits: u64 = epochs.iter().map(|e| e.entries.len() as u64).sum();
                let records: u64 = epochs.iter().map(|e| e.records).sum();
                let s = &shared.stats;
                s.commits.fetch_add(commits, Ordering::Relaxed);
                s.batches.fetch_add(1, Ordering::Relaxed);
                s.records.fetch_add(records, Ordering::Relaxed);
                s.max_batch.fetch_max(commits, Ordering::Relaxed);
                let earliest = epochs.iter().map(|e| e.drain_started).min();
                for epoch in &epochs {
                    for (ticket, lsn) in &epoch.entries {
                        // Ack latency is stamped by the completer: the
                        // committer's wake-up adds only its condvar
                        // signal.
                        shared
                            .obs
                            .commit_ack
                            .record_duration(ticket.submitted.elapsed());
                        ticket.complete(*lsn);
                    }
                }
                if let Some(start) = earliest {
                    let drain_elapsed = start.elapsed();
                    shared.obs.wal_drain.record_duration(drain_elapsed);
                    if let Some(lane) = &shared.lane {
                        lane.drain.record_duration(drain_elapsed);
                    }
                }
            }
            Err(e) => {
                // A failed fsync leaves the kernel dirty-page state
                // indeterminate: nothing appended but unflushed can ever
                // be acknowledged again. Fail everything this fsync
                // would have covered, everything sealed behind it, and
                // everything still queued at the writer; mark the
                // pipeline stopped so future submits error out.
                shared.stats.failed_batches.fetch_add(1, Ordering::Relaxed);
                let msg: Arc<str> = format!("group-commit epoch fsync failed: {e}").into();
                for epoch in &epochs {
                    for (ticket, _) in &epoch.entries {
                        ticket.fail(msg.clone());
                    }
                }
                let sealed: Vec<Epoch> = {
                    let mut eq = shared.epochs.lock();
                    eq.fsync_dead = true;
                    std::mem::take(&mut eq.pending)
                };
                for epoch in &sealed {
                    for (ticket, _) in &epoch.entries {
                        ticket.fail(msg.clone());
                    }
                }
                let queued: Vec<(Vec<LogRecord>, Arc<Ticket>)> = {
                    let mut q = shared.queue.lock();
                    q.stopping = true;
                    q.pending.drain(..).collect()
                };
                shared.work.notify_all();
                for (_, ticket) in &queued {
                    ticket.fail(msg.clone());
                }
                return;
            }
        }
    }
}

/// Runs when the writer thread exits — normally, after a drain failure,
/// or by panic. Marks the pipeline stopped (future submits error out
/// instead of enqueueing into the void), fails every ticket still
/// queued so no committer is stranded in [`CommitTicket::wait`], and
/// flags `writer_done` so the fsyncer flushes its last epochs and
/// exits.
struct PoisonOnExit(Arc<Shared>);

impl Drop for PoisonOnExit {
    fn drop(&mut self) {
        let leftovers: Vec<(Vec<LogRecord>, Arc<Ticket>)> = {
            let mut q = self.0.queue.lock();
            q.stopping = true;
            q.pending.drain(..).collect()
        };
        if !leftovers.is_empty() {
            let msg: Arc<str> = "group-commit writer thread exited before this drain".into();
            for (_, ticket) in &leftovers {
                ticket.fail(msg.clone());
            }
        }
        self.0.epochs.lock().writer_done = true;
        self.0.epoch_ready.notify_all();
    }
}

/// The parallel commit backbone: one [`GroupCommit`] pipeline per
/// [`WalSet`] shard, all allocating LSNs from the set's global counter.
/// Commits routed to different shards append and fsync fully in
/// parallel; within a shard they share fsyncs exactly as the
/// single-pipeline design always did. Stats aggregate across every
/// pipeline ([`GroupCommitSet::stats`]); the per-shard breakdown stays
/// available for metrics ([`GroupCommitSet::pipe_stats`]).
pub struct GroupCommitSet {
    pipes: Vec<GroupCommit>,
}

impl std::fmt::Debug for GroupCommitSet {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("GroupCommitSet")
            .field("pipes", &self.pipes.len())
            .finish()
    }
}

impl GroupCommitSet {
    /// Spawn one pipeline per shard of `set`.
    pub fn spawn(set: &WalSet, cfg: GroupCommitConfig) -> Result<GroupCommitSet> {
        Self::spawn_obs(set, cfg, Arc::new(Obs::new()))
    }

    /// [`GroupCommitSet::spawn`] recording into a caller-owned [`Obs`]:
    /// every pipeline feeds the global drain/fsync/ack histograms plus
    /// its own `wal.drain.shard<k>` / `wal.fsync.shard<k>` lane.
    pub fn spawn_obs(
        set: &WalSet,
        cfg: GroupCommitConfig,
        obs: Arc<Obs>,
    ) -> Result<GroupCommitSet> {
        let mut pipes = Vec::with_capacity(set.shard_count());
        for k in 0..set.shard_count() {
            let lane = obs.wal_shard_lane(k);
            pipes.push(GroupCommit::spawn_sharded(
                set.shard(k).clone(),
                cfg.clone(),
                obs.clone(),
                set.alloc_handle(),
                Some(lane),
                k,
            )?);
        }
        Ok(GroupCommitSet { pipes })
    }

    /// Number of pipelines (= the set's shard count).
    pub fn shard_count(&self) -> usize {
        self.pipes.len()
    }

    /// The pipeline serving shard `k`.
    pub fn pipe(&self, k: usize) -> &GroupCommit {
        &self.pipes[k]
    }

    /// Enqueue `records` on shard `shard`'s pipeline without waiting.
    /// The caller picks the shard ([`WalSet::shard_for`] keeps one
    /// transaction's records on one shard).
    pub fn submit(&self, shard: usize, records: Vec<LogRecord>) -> Result<CommitTicket> {
        self.pipes[shard % self.pipes.len()].submit(records)
    }

    /// Durably commit `records` on shard `shard`'s pipeline.
    pub fn commit(&self, shard: usize, records: Vec<LogRecord>) -> Result<Lsn> {
        self.submit(shard, records)?.wait()
    }

    /// Counters aggregated across every pipeline — the cross-shard
    /// totals `metrics::wal_stats` reports.
    pub fn stats(&self) -> GroupCommitStats {
        let mut total = GroupCommitStats::default();
        for pipe in &self.pipes {
            total.merge(&pipe.stats());
        }
        total
    }

    /// One counter snapshot per shard pipeline, indexed by shard.
    pub fn pipe_stats(&self) -> Vec<GroupCommitStats> {
        self.pipes.iter().map(GroupCommit::stats).collect()
    }

    /// Stop every pipeline (draining each) and return the aggregated
    /// final counters.
    pub fn stop(self) -> GroupCommitStats {
        let mut total = GroupCommitStats::default();
        for pipe in self.pipes {
            total.merge(&pipe.stop());
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::Payload;
    use crate::segment::SegmentConfig;
    use instant_common::{TableId, Timestamp, TupleId, TxId};

    fn batch(tx: u64) -> Vec<LogRecord> {
        let at = Timestamp::micros(tx);
        vec![
            LogRecord::Begin { tx: TxId(tx), at },
            LogRecord::Insert {
                tx: TxId(tx),
                table: TableId(1),
                tid: TupleId::new(1, tx as u16),
                row: Payload::Plain(format!("row-{tx}").into_bytes()),
                at,
            },
            LogRecord::Commit { tx: TxId(tx), at },
        ]
    }

    #[test]
    fn single_commit_returns_first_lsn_and_is_durable() {
        let wal = Arc::new(Wal::temp("gc1").unwrap());
        let gc = GroupCommit::spawn(wal.clone(), GroupCommitConfig::default()).unwrap();
        assert_eq!(gc.commit(batch(0)).unwrap(), 0);
        assert_eq!(gc.commit(batch(1)).unwrap(), 3);
        let stats = gc.stop();
        assert_eq!(stats.commits, 2);
        assert_eq!(stats.records, 6);
        assert_eq!(wal.iterate().unwrap().len(), 6);
        // Both epochs synced before acknowledging.
        let (_, syncs) = wal.counters();
        assert_eq!(syncs, stats.batches);
    }

    #[test]
    fn empty_batch_is_a_noop() {
        let wal = Arc::new(Wal::temp("gc2").unwrap());
        let gc = GroupCommit::spawn(wal.clone(), GroupCommitConfig::default()).unwrap();
        assert_eq!(gc.commit(Vec::new()).unwrap(), 0);
        assert_eq!(gc.stop().commits, 0);
        assert!(wal.iterate().unwrap().is_empty());
    }

    #[test]
    fn commit_after_stop_errors() {
        let wal = Arc::new(Wal::temp("gc3").unwrap());
        let mut gc = GroupCommit::spawn(wal.clone(), GroupCommitConfig::default()).unwrap();
        gc.shutdown();
        assert!(gc.commit(batch(0)).is_err());
    }

    #[test]
    fn stop_signal_interrupts_linger_and_drains_pending() {
        // A huge max_delay must not stall shutdown or strand the pending
        // committer: stop notifies the same condvar the linger waits on,
        // and the writer drains everything enqueued before exiting.
        let wal = Arc::new(Wal::temp("gc4").unwrap());
        let gc = GroupCommit::spawn(
            wal.clone(),
            GroupCommitConfig {
                max_batch: 1024,
                max_delay: StdDuration::from_secs(30),
            },
        )
        .unwrap();
        let start = std::time::Instant::now();
        std::thread::scope(|s| {
            let gcr = &gc;
            let committer = s.spawn(move || gcr.commit(batch(7)));
            let deadline = start + StdDuration::from_secs(10);
            while gc.shared.queue.lock().pending.is_empty() && std::time::Instant::now() < deadline
            {
                std::thread::yield_now();
            }
            gc.shared.queue.lock().stopping = true;
            gc.shared.work.notify_all();
            committer.join().unwrap().unwrap();
        });
        assert!(
            start.elapsed() < StdDuration::from_secs(10),
            "stop must interrupt the linger wait"
        );
        assert_eq!(wal.iterate().unwrap().len(), 3);
    }

    #[test]
    fn drain_fsync_and_ack_latencies_are_recorded() {
        let wal = Arc::new(Wal::temp("gc6").unwrap());
        let obs = Arc::new(Obs::new());
        let gc = GroupCommit::spawn_obs(wal, GroupCommitConfig::default(), obs.clone()).unwrap();
        gc.commit(batch(0)).unwrap();
        gc.commit(batch(1)).unwrap();
        let stats = gc.stop();
        let drain = obs.wal_drain.snapshot();
        let fsync = obs.wal_fsync.snapshot();
        let ack = obs.commit_ack.snapshot();
        assert_eq!(drain.count, stats.batches, "one drain sample per epoch");
        assert_eq!(fsync.count, stats.batches, "one fsync sample per epoch");
        assert_eq!(ack.count, stats.commits, "one ack sample per commit");
        // A drain contains its fsync, an ack spans at least its epoch's
        // append+fsync work — the p100s must order accordingly.
        assert!(drain.max_micros >= fsync.max_micros);
        assert!(ack.sum_micros >= fsync.sum_micros / stats.batches.max(1));
    }

    #[test]
    fn concurrent_arrivals_fold_into_fewer_drains() {
        let wal = Arc::new(Wal::temp("gc5").unwrap());
        let gc = GroupCommit::spawn(
            wal.clone(),
            GroupCommitConfig {
                max_batch: 1024,
                max_delay: StdDuration::from_millis(500),
            },
        )
        .unwrap();
        std::thread::scope(|s| {
            for tx in 0..4u64 {
                let gcr = &gc;
                s.spawn(move || gcr.commit(batch(tx)).unwrap());
            }
        });
        let stats = gc.stop();
        assert_eq!(stats.commits, 4);
        assert!(
            stats.batches < stats.commits,
            "lingering drain must fold concurrent committers: {stats:?}"
        );
        assert_eq!(wal.iterate().unwrap().len(), 12);
    }

    #[test]
    fn try_poll_sees_durability_without_consuming_the_ticket() {
        let wal = Arc::new(Wal::temp("gc7").unwrap());
        let gc = GroupCommit::spawn(wal, GroupCommitConfig::default()).unwrap();
        let ticket = gc.submit(batch(0)).unwrap();
        // Poll until the epoch lands; a pipeline that never completes
        // would hang this loop, not pass it.
        let lsn = loop {
            match ticket.try_poll() {
                Some(res) => break res.unwrap(),
                None => std::thread::yield_now(),
            }
        };
        assert_eq!(lsn, 0);
        // Durable tickets stay pollable (and consistent) until consumed.
        assert_eq!(ticket.try_poll().unwrap().unwrap(), 0);
        assert_eq!(ticket.wait().unwrap(), 0);
    }

    #[test]
    fn sharded_pipelines_merge_back_in_global_lsn_order() {
        let set = WalSet::temp_with("gcs1", 4, SegmentConfig::default()).unwrap();
        let gcs = GroupCommitSet::spawn(&set, GroupCommitConfig::default()).unwrap();
        std::thread::scope(|s| {
            for tx in 0..32u64 {
                let gcs = &gcs;
                let set = &set;
                s.spawn(move || {
                    let shard = set.shard_for(Some(TxId(tx)));
                    gcs.commit(shard, batch(tx)).unwrap();
                });
            }
        });
        let stats = gcs.stop();
        assert_eq!(stats.commits, 32);
        assert_eq!(stats.records, 96);
        let merged = set.iterate().unwrap();
        assert_eq!(merged.len(), 96, "every record survives the k-way merge");
        for pair in merged.windows(2) {
            assert!(pair[0].0 < pair[1].0, "merge is strictly LSN-ordered");
        }
        // Each transaction's batch stayed contiguous on its shard: its
        // Begin/Insert/Commit carry consecutive LSNs.
        let mut by_tx = std::collections::BTreeMap::<u64, Vec<Lsn>>::new();
        for (lsn, rec) in &merged {
            if let Some(tx) = rec.tx() {
                by_tx.entry(tx.0).or_default().push(*lsn);
            }
        }
        assert_eq!(by_tx.len(), 32);
        for (tx, lsns) in by_tx {
            assert_eq!(lsns.len(), 3, "tx {tx} kept all three records");
            assert_eq!(lsns[2] - lsns[0], 2, "tx {tx} batch stayed contiguous");
        }
    }

    #[test]
    fn sharded_stats_aggregate_and_split_per_pipe() {
        let set = WalSet::temp_with("gcs2", 2, SegmentConfig::default()).unwrap();
        let obs = Arc::new(Obs::new());
        let gcs =
            GroupCommitSet::spawn_obs(&set, GroupCommitConfig::default(), obs.clone()).unwrap();
        // Route txs so both shards see work: tx 0, 2 → shard 0; tx 1 →
        // shard 1.
        for tx in 0..3u64 {
            let shard = set.shard_for(Some(TxId(tx)));
            gcs.commit(shard, batch(tx)).unwrap();
        }
        let per_pipe = gcs.pipe_stats();
        assert_eq!(per_pipe.len(), 2);
        assert_eq!(per_pipe[0].commits, 2);
        assert_eq!(per_pipe[1].commits, 1);
        let total = gcs.stats();
        assert_eq!(total.commits, 3);
        assert_eq!(total.records, 9);
        assert_eq!(
            total.batches,
            per_pipe[0].batches + per_pipe[1].batches,
            "aggregate sums every pipeline, not shard 0 only"
        );
        drop(gcs);
        // Both shards' obs lanes saw their epochs.
        let snap = obs.snapshot();
        assert_eq!(
            snap.hist("wal.fsync.shard0").map(|h| h.count),
            Some(per_pipe[0].batches)
        );
        assert_eq!(
            snap.hist("wal.fsync.shard1").map(|h| h.count),
            Some(per_pipe[1].batches)
        );
        assert_eq!(
            snap.hist("wal.fsync").map(|h| h.count),
            Some(total.batches),
            "global histogram is the union of the lanes"
        );
    }
}
