//! Log record types and their binary format.
//!
//! Design points driven by the paper:
//!
//! * [`LogRecord::Degrade`] carries **only the after-image** (redo-only).
//!   A degradation step never logs the finer pre-image, in any encoding —
//!   logging it would re-open the forensic channel the whole mechanism
//!   exists to close.
//! * Row images ride in a [`Payload`], which is either `Plain` (classical
//!   WAL mode, used as the baseline in experiment E10/E8) or `Sealed`
//!   (ciphertext + window id + nonce). Once the window key is shredded a
//!   `Sealed` payload can never be opened again.
//! * Every record is framed by the writer with a length + FNV checksum so
//!   torn tails are detected and recovery stops cleanly.

use instant_common::codec::raw;
use instant_common::{ColumnId, Error, LevelId, Result, TableId, Timestamp, TupleId, TxId};

use crate::cipher;
use crate::keystore::{KeyStore, WindowId};

/// Log sequence number (1-based; 0 = "none").
pub type Lsn = u64;

/// A row image, possibly sealed under a window key.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Payload {
    /// Plaintext image — the classical-WAL baseline.
    Plain(Vec<u8>),
    /// Ciphertext under `window`'s key with a per-record nonce.
    Sealed {
        window: WindowId,
        nonce: u64,
        ct: Vec<u8>,
    },
}

impl Payload {
    /// Seal `bytes` under the key for `now`.
    pub fn seal(ks: &KeyStore, now: Timestamp, bytes: &[u8]) -> Result<Payload> {
        let (window, key) = ks.key_for(now)?;
        let nonce = ks.next_nonce();
        Ok(Payload::Sealed {
            window,
            nonce,
            ct: cipher::seal(&key, nonce, bytes),
        })
    }

    /// Open the payload. `None` when the window key has been shredded —
    /// the image is gone for good.
    pub fn open(&self, ks: &KeyStore) -> Option<Vec<u8>> {
        match self {
            Payload::Plain(b) => Some(b.clone()),
            Payload::Sealed { window, nonce, ct } => {
                let key = ks.key_of(*window)?;
                Some(cipher::open(&key, *nonce, ct))
            }
        }
    }

    /// Byte length of the carried image.
    pub fn len(&self) -> usize {
        match self {
            Payload::Plain(b) => b.len(),
            Payload::Sealed { ct, .. } => ct.len(),
        }
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn is_sealed(&self) -> bool {
        matches!(self, Payload::Sealed { .. })
    }
}

/// One WAL record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LogRecord {
    /// Transaction start.
    Begin { tx: TxId, at: Timestamp },
    /// Transaction commit — the durability point.
    Commit { tx: TxId, at: Timestamp },
    /// Transaction abort.
    Abort { tx: TxId, at: Timestamp },
    /// Tuple insertion (always at the most accurate state, per Section II).
    Insert {
        tx: TxId,
        table: TableId,
        tid: TupleId,
        /// Full row image at insert (the *accurate* state — sealed in
        /// degradation-aware mode precisely because it is the most
        /// sensitive image in the whole log).
        row: Payload,
        at: Timestamp,
    },
    /// Stable-attribute update (degradable attributes are immutable).
    Update {
        tx: TxId,
        table: TableId,
        tid: TupleId,
        /// Full row after-image.
        row: Payload,
        at: Timestamp,
    },
    /// One degradation step of one tuple: redo-only after-image.
    Degrade {
        tx: TxId,
        table: TableId,
        tid: TupleId,
        /// Which degradable attribute moved.
        column: ColumnId,
        /// Level entered (`None` = attribute value removed).
        to_level: Option<LevelId>,
        /// Full row after-image (already degraded — safe to log).
        row: Payload,
        at: Timestamp,
    },
    /// User deletion (predicate-selected); tuple fully removed.
    Delete {
        tx: TxId,
        table: TableId,
        tid: TupleId,
        at: Timestamp,
    },
    /// End-of-life-cycle removal of the entire tuple by the degrader.
    Expunge {
        tx: TxId,
        table: TableId,
        tid: TupleId,
        at: Timestamp,
    },
    /// Checkpoint: all dirty pages flushed; log before this is dead.
    Checkpoint { at: Timestamp },
    /// Shard-log LSN discontinuity marker: the *next* record in this
    /// shard's byte stream carries global LSN `next`. Written by a
    /// sharded log when the global allocator handed other shards the
    /// intervening LSNs; consumes no LSN itself and never reaches
    /// recovery's replay (the scanner applies it and strips it). A
    /// single-shard log never produces one, which is what keeps the
    /// N=1 layout byte-identical to the unsharded format.
    LsnJump { next: Lsn },
}

impl LogRecord {
    pub fn tx(&self) -> Option<TxId> {
        match self {
            LogRecord::Begin { tx, .. }
            | LogRecord::Commit { tx, .. }
            | LogRecord::Abort { tx, .. }
            | LogRecord::Insert { tx, .. }
            | LogRecord::Update { tx, .. }
            | LogRecord::Degrade { tx, .. }
            | LogRecord::Delete { tx, .. }
            | LogRecord::Expunge { tx, .. } => Some(*tx),
            LogRecord::Checkpoint { .. } | LogRecord::LsnJump { .. } => None,
        }
    }

    pub fn at(&self) -> Timestamp {
        match self {
            LogRecord::Begin { at, .. }
            | LogRecord::Commit { at, .. }
            | LogRecord::Abort { at, .. }
            | LogRecord::Insert { at, .. }
            | LogRecord::Update { at, .. }
            | LogRecord::Degrade { at, .. }
            | LogRecord::Delete { at, .. }
            | LogRecord::Expunge { at, .. }
            | LogRecord::Checkpoint { at } => *at,
            // A jump is pure log plumbing; it happens at no event time.
            LogRecord::LsnJump { .. } => Timestamp::ZERO,
        }
    }

    /// Serialize (without framing — the writer adds length + checksum).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(64);
        match self {
            LogRecord::Begin { tx, at } => {
                out.push(1);
                raw::put_u64(&mut out, tx.0);
                raw::put_u64(&mut out, at.0);
            }
            LogRecord::Commit { tx, at } => {
                out.push(2);
                raw::put_u64(&mut out, tx.0);
                raw::put_u64(&mut out, at.0);
            }
            LogRecord::Abort { tx, at } => {
                out.push(3);
                raw::put_u64(&mut out, tx.0);
                raw::put_u64(&mut out, at.0);
            }
            LogRecord::Insert {
                tx,
                table,
                tid,
                row,
                at,
            } => {
                out.push(4);
                raw::put_u64(&mut out, tx.0);
                raw::put_u32(&mut out, table.0);
                raw::put_u64(&mut out, tid.pack());
                raw::put_u64(&mut out, at.0);
                encode_payload(&mut out, row);
            }
            LogRecord::Update {
                tx,
                table,
                tid,
                row,
                at,
            } => {
                out.push(5);
                raw::put_u64(&mut out, tx.0);
                raw::put_u32(&mut out, table.0);
                raw::put_u64(&mut out, tid.pack());
                raw::put_u64(&mut out, at.0);
                encode_payload(&mut out, row);
            }
            LogRecord::Degrade {
                tx,
                table,
                tid,
                column,
                to_level,
                row,
                at,
            } => {
                out.push(6);
                raw::put_u64(&mut out, tx.0);
                raw::put_u32(&mut out, table.0);
                raw::put_u64(&mut out, tid.pack());
                raw::put_u16(&mut out, column.0);
                out.push(match to_level {
                    Some(l) => l.0 + 1,
                    None => 0,
                });
                raw::put_u64(&mut out, at.0);
                encode_payload(&mut out, row);
            }
            LogRecord::Delete { tx, table, tid, at } => {
                out.push(7);
                raw::put_u64(&mut out, tx.0);
                raw::put_u32(&mut out, table.0);
                raw::put_u64(&mut out, tid.pack());
                raw::put_u64(&mut out, at.0);
            }
            LogRecord::Expunge { tx, table, tid, at } => {
                out.push(8);
                raw::put_u64(&mut out, tx.0);
                raw::put_u32(&mut out, table.0);
                raw::put_u64(&mut out, tid.pack());
                raw::put_u64(&mut out, at.0);
            }
            LogRecord::Checkpoint { at } => {
                out.push(9);
                raw::put_u64(&mut out, at.0);
            }
            LogRecord::LsnJump { next } => {
                out.push(10);
                raw::put_u64(&mut out, *next);
            }
        }
        out
    }

    /// Deserialize a record encoded by [`LogRecord::encode`].
    pub fn decode(mut buf: &[u8]) -> Result<LogRecord> {
        let buf = &mut buf;
        let tag = take_u8(buf)?;
        let rec = match tag {
            1 => LogRecord::Begin {
                tx: TxId(raw::get_u64(buf)?),
                at: Timestamp(raw::get_u64(buf)?),
            },
            2 => LogRecord::Commit {
                tx: TxId(raw::get_u64(buf)?),
                at: Timestamp(raw::get_u64(buf)?),
            },
            3 => LogRecord::Abort {
                tx: TxId(raw::get_u64(buf)?),
                at: Timestamp(raw::get_u64(buf)?),
            },
            4 | 5 => {
                let tx = TxId(raw::get_u64(buf)?);
                let table = TableId(raw::get_u32(buf)?);
                let tid = TupleId::unpack(raw::get_u64(buf)?);
                let at = Timestamp(raw::get_u64(buf)?);
                let row = decode_payload(buf)?;
                if tag == 4 {
                    LogRecord::Insert {
                        tx,
                        table,
                        tid,
                        row,
                        at,
                    }
                } else {
                    LogRecord::Update {
                        tx,
                        table,
                        tid,
                        row,
                        at,
                    }
                }
            }
            6 => {
                let tx = TxId(raw::get_u64(buf)?);
                let table = TableId(raw::get_u32(buf)?);
                let tid = TupleId::unpack(raw::get_u64(buf)?);
                let column = ColumnId(raw::get_u16(buf)?);
                let lv = take_u8(buf)?;
                let to_level = if lv == 0 { None } else { Some(LevelId(lv - 1)) };
                let at = Timestamp(raw::get_u64(buf)?);
                let row = decode_payload(buf)?;
                LogRecord::Degrade {
                    tx,
                    table,
                    tid,
                    column,
                    to_level,
                    row,
                    at,
                }
            }
            7 | 8 => {
                let tx = TxId(raw::get_u64(buf)?);
                let table = TableId(raw::get_u32(buf)?);
                let tid = TupleId::unpack(raw::get_u64(buf)?);
                let at = Timestamp(raw::get_u64(buf)?);
                if tag == 7 {
                    LogRecord::Delete { tx, table, tid, at }
                } else {
                    LogRecord::Expunge { tx, table, tid, at }
                }
            }
            9 => LogRecord::Checkpoint {
                at: Timestamp(raw::get_u64(buf)?),
            },
            10 => LogRecord::LsnJump {
                next: raw::get_u64(buf)?,
            },
            other => return Err(Error::Corrupt(format!("unknown log record tag {other}"))),
        };
        if !buf.is_empty() {
            return Err(Error::Corrupt(format!(
                "{} trailing bytes in log record",
                buf.len()
            )));
        }
        Ok(rec)
    }
}

fn encode_payload(out: &mut Vec<u8>, p: &Payload) {
    match p {
        Payload::Plain(b) => {
            out.push(0);
            raw::put_bytes(out, b);
        }
        Payload::Sealed { window, nonce, ct } => {
            out.push(1);
            raw::put_u64(out, window.0);
            raw::put_u64(out, *nonce);
            raw::put_bytes(out, ct);
        }
    }
}

fn decode_payload(buf: &mut &[u8]) -> Result<Payload> {
    match take_u8(buf)? {
        0 => Ok(Payload::Plain(raw::get_bytes(buf)?)),
        1 => Ok(Payload::Sealed {
            window: WindowId(raw::get_u64(buf)?),
            nonce: raw::get_u64(buf)?,
            ct: raw::get_bytes(buf)?,
        }),
        other => Err(Error::Corrupt(format!("unknown payload tag {other}"))),
    }
}

fn take_u8(buf: &mut &[u8]) -> Result<u8> {
    if buf.is_empty() {
        return Err(Error::Corrupt("truncated log record".into()));
    }
    let b = buf[0];
    *buf = &buf[1..];
    Ok(b)
}

#[cfg(test)]
mod tests {
    use super::*;
    use instant_common::Duration;

    fn samples() -> Vec<LogRecord> {
        let t = Timestamp::micros(99);
        vec![
            LogRecord::Begin { tx: TxId(1), at: t },
            LogRecord::Commit { tx: TxId(1), at: t },
            LogRecord::Abort { tx: TxId(2), at: t },
            LogRecord::Insert {
                tx: TxId(3),
                table: TableId(7),
                tid: TupleId::new(4, 5),
                row: Payload::Plain(b"row-bytes".to_vec()),
                at: t,
            },
            LogRecord::Update {
                tx: TxId(3),
                table: TableId(7),
                tid: TupleId::new(4, 5),
                row: Payload::Sealed {
                    window: WindowId(12),
                    nonce: 34,
                    ct: vec![1, 2, 3],
                },
                at: t,
            },
            LogRecord::Degrade {
                tx: TxId(0),
                table: TableId(7),
                tid: TupleId::new(4, 5),
                column: ColumnId(2),
                to_level: Some(LevelId(1)),
                row: Payload::Plain(b"degraded".to_vec()),
                at: t,
            },
            LogRecord::Degrade {
                tx: TxId(0),
                table: TableId(7),
                tid: TupleId::new(4, 5),
                column: ColumnId(2),
                to_level: None,
                row: Payload::Plain(vec![]),
                at: t,
            },
            LogRecord::Delete {
                tx: TxId(9),
                table: TableId(7),
                tid: TupleId::new(1, 2),
                at: t,
            },
            LogRecord::Expunge {
                tx: TxId(0),
                table: TableId(7),
                tid: TupleId::new(1, 3),
                at: t,
            },
            LogRecord::Checkpoint { at: t },
            LogRecord::LsnJump { next: 123_456 },
        ]
    }

    #[test]
    fn encode_decode_round_trip() {
        for rec in samples() {
            let bytes = rec.encode();
            let back = LogRecord::decode(&bytes).unwrap();
            assert_eq!(back, rec);
        }
    }

    #[test]
    fn truncated_records_rejected() {
        for rec in samples() {
            let bytes = rec.encode();
            for cut in 0..bytes.len() {
                assert!(
                    LogRecord::decode(&bytes[..cut]).is_err(),
                    "truncation at {cut} of {rec:?} must fail"
                );
            }
        }
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut bytes = LogRecord::Checkpoint {
            at: Timestamp::ZERO,
        }
        .encode();
        bytes.push(0);
        assert!(LogRecord::decode(&bytes).is_err());
    }

    #[test]
    fn sealed_payload_round_trip_through_keystore() {
        let ks = KeyStore::new(Duration::hours(1), 42);
        let now = Timestamp::micros(1_000);
        let p = Payload::seal(&ks, now, b"accurate address").unwrap();
        assert!(p.is_sealed());
        assert_eq!(p.open(&ks).unwrap(), b"accurate address");
        // Shred → unrecoverable.
        ks.shred_before(now + Duration::hours(5));
        assert_eq!(p.open(&ks), None);
    }

    #[test]
    fn sealed_ciphertext_differs_from_plaintext() {
        let ks = KeyStore::new(Duration::hours(1), 42);
        let p = Payload::seal(&ks, Timestamp::ZERO, b"SENSITIVE").unwrap();
        match &p {
            Payload::Sealed { ct, .. } => assert_ne!(ct.as_slice(), b"SENSITIVE"),
            _ => panic!("expected sealed"),
        }
    }

    #[test]
    fn tx_and_at_accessors() {
        let t = Timestamp::micros(5);
        assert_eq!(LogRecord::Begin { tx: TxId(7), at: t }.tx(), Some(TxId(7)));
        assert_eq!(LogRecord::Checkpoint { at: t }.tx(), None);
        assert_eq!(LogRecord::Checkpoint { at: t }.at(), t);
        assert_eq!(LogRecord::LsnJump { next: 9 }.tx(), None);
    }
}
