//! Logical redo recovery.
//!
//! InstantDB checkpoints aggressively (flush-at-checkpoint), so recovery is
//! redo-only over the suffix after the last [`LogRecord::Checkpoint`]:
//!
//! 1. **Analysis** — find the last checkpoint and the set of committed
//!    transactions in the suffix.
//! 2. **Redo** — in LSN order, emit one [`Op`] per committed data record,
//!    opening sealed payloads through the [`KeyStore`].
//!
//! A sealed payload whose window key was shredded yields
//! [`Op::Unrecoverable`]: recovery *cannot* resurrect it, by design. The
//! invariant that makes this safe is that key shredding only ever covers
//! windows whose images the degradation process has already superseded —
//! the core engine shreds a window only after every tuple state logged in
//! it has been degraded again (producing a newer image) or expunged.
//! Experiment E11 verifies both halves: committed recent work is recovered,
//! and degraded states never reappear.

use std::collections::HashSet;

use instant_common::{ColumnId, LevelId, TableId, Timestamp, TupleId, TxId};

use crate::keystore::KeyStore;
use crate::record::{LogRecord, Lsn, Payload};
use crate::writer::Wal;

/// One recovered (redo) operation, in commit order.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Op {
    Insert {
        table: TableId,
        tid: TupleId,
        row: Vec<u8>,
        at: Timestamp,
    },
    Update {
        table: TableId,
        tid: TupleId,
        row: Vec<u8>,
        at: Timestamp,
    },
    Degrade {
        table: TableId,
        tid: TupleId,
        column: ColumnId,
        to_level: Option<LevelId>,
        row: Vec<u8>,
        at: Timestamp,
    },
    Delete {
        table: TableId,
        tid: TupleId,
        at: Timestamp,
    },
    Expunge {
        table: TableId,
        tid: TupleId,
        at: Timestamp,
    },
    /// A committed image whose key was shredded. Carries enough metadata
    /// for the engine to drop the stale tuple state instead of resurrecting
    /// it with wrong accuracy.
    Unrecoverable {
        table: TableId,
        tid: TupleId,
        at: Timestamp,
    },
}

impl Op {
    pub fn tid(&self) -> TupleId {
        match self {
            Op::Insert { tid, .. }
            | Op::Update { tid, .. }
            | Op::Degrade { tid, .. }
            | Op::Delete { tid, .. }
            | Op::Expunge { tid, .. }
            | Op::Unrecoverable { tid, .. } => *tid,
        }
    }

    pub fn table(&self) -> TableId {
        match self {
            Op::Insert { table, .. }
            | Op::Update { table, .. }
            | Op::Degrade { table, .. }
            | Op::Delete { table, .. }
            | Op::Expunge { table, .. }
            | Op::Unrecoverable { table, .. } => *table,
        }
    }
}

/// Outcome of recovery analysis + redo.
#[derive(Debug, Default)]
pub struct RecoveryPlan {
    /// LSN of the last checkpoint (redo starts after it); `None` = replay all.
    pub checkpoint_lsn: Option<Lsn>,
    /// Committed transactions seen in the replayed suffix.
    pub committed: HashSet<TxId>,
    /// Transactions that began but never committed (their work is ignored).
    pub losers: HashSet<TxId>,
    /// Redo operations in LSN order (committed transactions only).
    pub ops: Vec<Op>,
    /// LSN of the log record each entry of `ops` was produced from
    /// (parallel to `ops`). Replication followers key incremental
    /// replay off this: "apply every op with LSN below the barrier".
    pub op_lsns: Vec<Lsn>,
    /// Count of records skipped because their tx never committed.
    pub skipped_uncommitted: usize,
    /// Count of sealed images that could not be opened (shredded keys).
    pub unrecoverable: usize,
}

/// Run analysis + redo over `wal`, opening sealed payloads via `ks`.
pub fn recover(wal: &Wal, ks: &KeyStore) -> instant_common::Result<RecoveryPlan> {
    let records = wal.iterate()?;
    Ok(replay(&records, ks))
}

/// [`recover`] over a sharded log: the set's k-way merge yields the
/// shards' records re-serialized into global LSN order, so the replay
/// core is identical to the single-directory case.
pub fn recover_set(
    set: &crate::walset::WalSet,
    ks: &KeyStore,
) -> instant_common::Result<RecoveryPlan> {
    let records = set.iterate()?;
    Ok(replay(&records, ks))
}

/// Pure-function core of [`recover`] (also used by tests on synthetic logs).
pub fn replay(records: &[(Lsn, LogRecord)], ks: &KeyStore) -> RecoveryPlan {
    let mut plan = RecoveryPlan::default();
    // Pass 0: find last checkpoint.
    for (lsn, rec) in records {
        if matches!(rec, LogRecord::Checkpoint { .. }) {
            plan.checkpoint_lsn = Some(*lsn);
        }
    }
    replay_into(plan, records, ks)
}

/// [`replay`] without the checkpoint cut: redo **every** committed record
/// in the stream. A replication follower has no heap image of its own —
/// its state is built purely from the shipped log — so a leader-side
/// `Checkpoint` record (which on the leader means "the heap below this
/// LSN is flushed") must not truncate the follower's redo.
pub fn replay_all(records: &[(Lsn, LogRecord)], ks: &KeyStore) -> RecoveryPlan {
    replay_into(RecoveryPlan::default(), records, ks)
}

fn replay_into(
    mut plan: RecoveryPlan,
    records: &[(Lsn, LogRecord)],
    ks: &KeyStore,
) -> RecoveryPlan {
    let start = plan.checkpoint_lsn.map(|l| l + 1).unwrap_or(0);

    // Pass 1 (analysis): committed / loser transactions over the suffix.
    // Commits may land after the data records, so scan the whole suffix first.
    for (lsn, rec) in records {
        if *lsn < start {
            continue;
        }
        match rec {
            LogRecord::Commit { tx, .. } => {
                plan.committed.insert(*tx);
                plan.losers.remove(tx);
            }
            LogRecord::Abort { tx, .. } => {
                plan.losers.insert(*tx);
                plan.committed.remove(tx);
            }
            LogRecord::Begin { tx, .. } if !plan.committed.contains(tx) => {
                plan.losers.insert(*tx);
            }
            _ => {}
        }
    }

    // Pass 2 (redo): committed data records in order.
    for (lsn, rec) in records {
        if *lsn < start {
            continue;
        }
        let Some(tx) = rec.tx() else { continue };
        let committed = plan.committed.contains(&tx);
        let open = |p: &Payload| p.open(ks);
        match rec {
            LogRecord::Insert {
                table,
                tid,
                row,
                at,
                ..
            } => {
                if !committed {
                    plan.skipped_uncommitted += 1;
                    continue;
                }
                match open(row) {
                    Some(bytes) => plan.ops.push(Op::Insert {
                        table: *table,
                        tid: *tid,
                        row: bytes,
                        at: *at,
                    }),
                    None => {
                        plan.unrecoverable += 1;
                        plan.ops.push(Op::Unrecoverable {
                            table: *table,
                            tid: *tid,
                            at: *at,
                        });
                    }
                }
            }
            LogRecord::Update {
                table,
                tid,
                row,
                at,
                ..
            } => {
                if !committed {
                    plan.skipped_uncommitted += 1;
                    continue;
                }
                match open(row) {
                    Some(bytes) => plan.ops.push(Op::Update {
                        table: *table,
                        tid: *tid,
                        row: bytes,
                        at: *at,
                    }),
                    None => {
                        plan.unrecoverable += 1;
                        plan.ops.push(Op::Unrecoverable {
                            table: *table,
                            tid: *tid,
                            at: *at,
                        });
                    }
                }
            }
            LogRecord::Degrade {
                table,
                tid,
                column,
                to_level,
                row,
                at,
                ..
            } => {
                if !committed {
                    plan.skipped_uncommitted += 1;
                    continue;
                }
                match open(row) {
                    Some(bytes) => plan.ops.push(Op::Degrade {
                        table: *table,
                        tid: *tid,
                        column: *column,
                        to_level: *to_level,
                        row: bytes,
                        at: *at,
                    }),
                    None => {
                        plan.unrecoverable += 1;
                        plan.ops.push(Op::Unrecoverable {
                            table: *table,
                            tid: *tid,
                            at: *at,
                        });
                    }
                }
            }
            LogRecord::Delete { table, tid, at, .. } => {
                if !committed {
                    plan.skipped_uncommitted += 1;
                    continue;
                }
                plan.ops.push(Op::Delete {
                    table: *table,
                    tid: *tid,
                    at: *at,
                });
            }
            LogRecord::Expunge { table, tid, at, .. } => {
                if !committed {
                    plan.skipped_uncommitted += 1;
                    continue;
                }
                plan.ops.push(Op::Expunge {
                    table: *table,
                    tid: *tid,
                    at: *at,
                });
            }
            _ => {}
        }
        // Each record emits at most one op; tag it with the record's LSN.
        if plan.ops.len() > plan.op_lsns.len() {
            plan.op_lsns.push(*lsn);
        }
    }
    debug_assert_eq!(plan.ops.len(), plan.op_lsns.len());
    plan
}

#[cfg(test)]
mod tests {
    use super::*;
    use instant_common::Duration;

    fn ks() -> KeyStore {
        KeyStore::new(Duration::hours(1), 7)
    }

    fn seq(records: Vec<LogRecord>) -> Vec<(Lsn, LogRecord)> {
        records
            .into_iter()
            .enumerate()
            .map(|(i, r)| (i as u64, r))
            .collect()
    }

    fn insert(tx: u64, slot: u16, body: &[u8]) -> LogRecord {
        LogRecord::Insert {
            tx: TxId(tx),
            table: TableId(1),
            tid: TupleId::new(1, slot),
            row: Payload::Plain(body.to_vec()),
            at: Timestamp::ZERO,
        }
    }

    fn begin(tx: u64) -> LogRecord {
        LogRecord::Begin {
            tx: TxId(tx),
            at: Timestamp::ZERO,
        }
    }

    fn commit(tx: u64) -> LogRecord {
        LogRecord::Commit {
            tx: TxId(tx),
            at: Timestamp::ZERO,
        }
    }

    #[test]
    fn committed_work_replays_uncommitted_skipped() {
        let ks = ks();
        let log = seq(vec![
            begin(1),
            insert(1, 0, b"a"),
            commit(1),
            begin(2),
            insert(2, 1, b"b"), // never commits
        ]);
        let plan = replay(&log, &ks);
        assert_eq!(plan.ops.len(), 1);
        assert!(matches!(&plan.ops[0], Op::Insert { row, .. } if row == b"a"));
        assert_eq!(plan.skipped_uncommitted, 1);
        assert!(plan.committed.contains(&TxId(1)));
        assert!(plan.losers.contains(&TxId(2)));
    }

    #[test]
    fn aborted_tx_is_loser() {
        let ks = ks();
        let log = seq(vec![
            begin(1),
            insert(1, 0, b"x"),
            LogRecord::Abort {
                tx: TxId(1),
                at: Timestamp::ZERO,
            },
        ]);
        let plan = replay(&log, &ks);
        assert!(plan.ops.is_empty());
        assert!(plan.losers.contains(&TxId(1)));
    }

    #[test]
    fn replay_starts_after_last_checkpoint() {
        let ks = ks();
        let log = seq(vec![
            begin(1),
            insert(1, 0, b"old"),
            commit(1),
            LogRecord::Checkpoint {
                at: Timestamp::ZERO,
            },
            begin(2),
            insert(2, 1, b"new"),
            commit(2),
        ]);
        let plan = replay(&log, &ks);
        assert_eq!(plan.checkpoint_lsn, Some(3));
        assert_eq!(plan.ops.len(), 1);
        assert!(matches!(&plan.ops[0], Op::Insert { row, .. } if row == b"new"));
    }

    #[test]
    fn commit_after_data_records_counts() {
        let ks = ks();
        let log = seq(vec![
            begin(1),
            insert(1, 0, b"later-committed"),
            insert(1, 1, b"also"),
            commit(1),
        ]);
        let plan = replay(&log, &ks);
        assert_eq!(plan.ops.len(), 2);
    }

    #[test]
    fn shredded_images_become_unrecoverable() {
        let ks = ks();
        let now = Timestamp::ZERO;
        let sealed = Payload::seal(&ks, now, b"accurate-address").unwrap();
        let log = seq(vec![
            begin(1),
            LogRecord::Insert {
                tx: TxId(1),
                table: TableId(1),
                tid: TupleId::new(1, 0),
                row: sealed,
                at: now,
            },
            commit(1),
        ]);
        // Before shredding: recoverable.
        let plan = replay(&log, &ks);
        assert!(matches!(&plan.ops[0], Op::Insert { row, .. } if row == b"accurate-address"));
        // Shred, replay again: unrecoverable, no plaintext anywhere.
        ks.shred_before(now + Duration::hours(5));
        let plan2 = replay(&log, &ks);
        assert_eq!(plan2.unrecoverable, 1);
        assert!(matches!(&plan2.ops[0], Op::Unrecoverable { .. }));
    }

    #[test]
    fn degrade_and_expunge_ops_flow_through() {
        let ks = ks();
        let log = seq(vec![
            begin(1),
            LogRecord::Degrade {
                tx: TxId(1),
                table: TableId(2),
                tid: TupleId::new(3, 4),
                column: ColumnId(1),
                to_level: Some(LevelId(2)),
                row: Payload::Plain(b"degraded-row".to_vec()),
                at: Timestamp::micros(50),
            },
            LogRecord::Expunge {
                tx: TxId(1),
                table: TableId(2),
                tid: TupleId::new(3, 5),
                at: Timestamp::micros(60),
            },
            commit(1),
        ]);
        let plan = replay(&log, &ks);
        assert_eq!(plan.ops.len(), 2);
        assert!(matches!(
            &plan.ops[0],
            Op::Degrade {
                to_level: Some(LevelId(2)),
                ..
            }
        ));
        assert!(matches!(&plan.ops[1], Op::Expunge { .. }));
    }

    #[test]
    fn op_lsns_parallel_the_ops() {
        let ks = ks();
        let log = seq(vec![
            begin(1),
            insert(1, 0, b"a"),
            insert(1, 1, b"b"),
            commit(1),
            begin(2),
            insert(2, 2, b"loser"),
        ]);
        let plan = replay(&log, &ks);
        assert_eq!(plan.ops.len(), 2);
        assert_eq!(plan.op_lsns, vec![1, 2], "data-record LSNs, in order");
    }

    #[test]
    fn replay_all_ignores_the_checkpoint_cut() {
        let ks = ks();
        let log = seq(vec![
            begin(1),
            insert(1, 0, b"old"),
            commit(1),
            LogRecord::Checkpoint {
                at: Timestamp::ZERO,
            },
            begin(2),
            insert(2, 1, b"new"),
            commit(2),
        ]);
        // A leader recovering itself starts after the checkpoint…
        let plan = replay(&log, &ks);
        assert_eq!(plan.ops.len(), 1);
        // …a follower with no heap of its own redoes everything.
        let full = replay_all(&log, &ks);
        assert_eq!(full.checkpoint_lsn, None);
        assert_eq!(full.ops.len(), 2);
        assert_eq!(full.op_lsns, vec![1, 5]);
        assert!(matches!(&full.ops[0], Op::Insert { row, .. } if row == b"old"));
        assert!(matches!(&full.ops[1], Op::Insert { row, .. } if row == b"new"));
    }

    #[test]
    fn end_to_end_through_wal_file() {
        let ks = ks();
        let wal = Wal::temp("recovery").unwrap();
        wal.append(&begin(1)).unwrap();
        wal.append(&insert(1, 0, b"durable")).unwrap();
        wal.append(&commit(1)).unwrap();
        wal.sync().unwrap();
        let plan = recover(&wal, &ks).unwrap();
        assert_eq!(plan.ops.len(), 1);
    }

    #[test]
    fn torn_tail_loses_only_unsynced_suffix() {
        let ks = ks();
        let wal = Wal::temp("recovery-torn").unwrap();
        wal.append(&begin(1)).unwrap();
        wal.append(&insert(1, 0, b"safe")).unwrap();
        wal.append(&commit(1)).unwrap();
        wal.sync().unwrap();
        wal.append(&begin(2)).unwrap();
        wal.append(&insert(2, 1, b"doomed")).unwrap();
        wal.append(&commit(2)).unwrap();
        // No sync; simulate torn write chopping into tx2's commit.
        wal.torn_tail(5).unwrap();
        let plan = recover(&wal, &ks).unwrap();
        assert_eq!(plan.ops.len(), 1, "only tx1 survives");
        assert!(matches!(&plan.ops[0], Op::Insert { row, .. } if row == b"safe"));
    }
}
