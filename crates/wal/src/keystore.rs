//! Time-windowed key store with shredding.
//!
//! Log payloads written during time window `w` are sealed under `key(w)`.
//! When the degradation process no longer needs any image from window `w`
//! (every tuple has moved past the states logged then), the key is
//! **shredded**: zeroed and dropped. The sealed bytes still sitting in the
//! log file become unreadable — physical log rewriting is never needed.
//! This is the mechanism the paper's "how to enforce timely data
//! degradation … in the logs" challenge calls for.
//!
//! Key material derives from a seed via SplitMix64 (simulation-grade; see
//! crate docs). Windows are indexed by `floor(now / window_len)`.
//!
//! **Threat model note.** Because keys are seed-derived, the seed plays the
//! role of a *key vault*: shredding removes a window from the set the vault
//! will ever serve again (persisted across restarts via
//! [`KeyStore::export_shredded`]). The adversary of the paper's experiments
//! obtains the disk and the log but not the vault — matching the authors'
//! broader line of work, which places keys in tamper-resistant secure
//! hardware. A production deployment would use random per-window keys whose
//! bytes are physically destroyed on shredding.

use std::collections::HashMap;

use parking_lot::RwLock;

use instant_common::{Duration, Error, Result, Timestamp};

use crate::cipher::Key;

/// Identifier of a key window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct WindowId(pub u64);

#[derive(Debug)]
struct Inner {
    keys: HashMap<WindowId, Key>,
    shredded: Vec<WindowId>,
    counter: u64,
}

/// Key store covering the log's lifetime in fixed windows.
#[derive(Debug)]
pub struct KeyStore {
    window_len: Duration,
    seed: u64,
    inner: RwLock<Inner>, // lock-rank: 530
}

impl KeyStore {
    /// A store with the given window length and key-derivation seed.
    pub fn new(window_len: Duration, seed: u64) -> KeyStore {
        assert!(window_len.as_micros() > 0, "window length must be positive");
        KeyStore {
            window_len,
            seed,
            inner: RwLock::ranked(
                530,
                Inner {
                    keys: HashMap::new(),
                    shredded: Vec::new(),
                    counter: 0,
                },
            ),
        }
    }

    pub fn window_len(&self) -> Duration {
        self.window_len
    }

    /// The window containing `t`.
    pub fn window_of(&self, t: Timestamp) -> WindowId {
        WindowId(t.0 / self.window_len.as_micros())
    }

    /// The key for the window containing `t`, deriving it on first use.
    /// Errors if that window has been shredded (writers must never seal
    /// into the past).
    pub fn key_for(&self, t: Timestamp) -> Result<(WindowId, Key)> {
        let w = self.window_of(t);
        let mut inner = self.inner.write();
        if inner.shredded.contains(&w) {
            return Err(Error::Policy(format!(
                "window {w:?} already shredded; cannot seal into the past"
            )));
        }
        if let Some(k) = inner.keys.get(&w) {
            return Ok((w, *k));
        }
        let key = derive_key(self.seed, w.0);
        inner.keys.insert(w, key);
        Ok((w, key))
    }

    /// The key for window `w` if it is still alive (for opening payloads).
    /// Keys are seed-derived, so a restart can re-derive any window that
    /// was never shredded — only the shredded set is truly destroyed.
    pub fn key_of(&self, w: WindowId) -> Option<Key> {
        {
            let inner = self.inner.read();
            if inner.shredded.contains(&w) {
                return None;
            }
            if let Some(k) = inner.keys.get(&w) {
                return Some(*k);
            }
        }
        let key = derive_key(self.seed, w.0);
        self.inner.write().keys.insert(w, key);
        Some(key)
    }

    /// Has `w` been shredded?
    pub fn is_shredded(&self, w: WindowId) -> bool {
        self.inner.read().shredded.contains(&w)
    }

    /// Shred every window that ended strictly before `horizon`. Returns the
    /// windows destroyed. After this call the sealed payloads of those
    /// windows are unrecoverable — the log-side counterpart of the heap's
    /// secure overwrite.
    pub fn shred_before(&self, horizon: Timestamp) -> Vec<WindowId> {
        let horizon_window = self.window_of(horizon);
        let mut inner = self.inner.write();
        let victims: Vec<WindowId> = inner
            .keys
            .keys()
            .copied()
            .filter(|w| *w < horizon_window)
            .collect();
        for w in &victims {
            if let Some(mut k) = inner.keys.remove(w) {
                // Zero the key material before dropping (belt and braces —
                // the HashMap copy semantics mean other copies never existed
                // outside short-lived seal/open calls).
                k.fill(0);
            }
            inner.shredded.push(*w);
        }
        inner.shredded.sort_unstable();
        inner.shredded.dedup();
        victims
    }

    /// Number of live keys.
    pub fn live_keys(&self) -> usize {
        self.inner.read().keys.len()
    }

    /// Number of shredded windows.
    pub fn shredded_count(&self) -> usize {
        self.inner.read().shredded.len()
    }

    /// A fresh unique nonce (per-record).
    pub fn next_nonce(&self) -> u64 {
        let mut inner = self.inner.write();
        inner.counter += 1;
        inner.counter
    }

    /// Export the shredded window list (persisted across restarts — keys
    /// are seed-derived, so *which windows are destroyed* is the only state
    /// that must survive; losing it would resurrect old keys).
    pub fn export_shredded(&self) -> Vec<WindowId> {
        self.inner.read().shredded.clone()
    }

    /// Re-import a shredded window list after restart. Idempotent.
    pub fn mark_shredded(&self, windows: &[WindowId]) {
        let mut inner = self.inner.write();
        for w in windows {
            inner.keys.remove(w);
            inner.shredded.push(*w);
        }
        inner.shredded.sort_unstable();
        inner.shredded.dedup();
    }
}

/// SplitMix64-based key derivation (simulation-grade).
fn derive_key(seed: u64, window: u64) -> Key {
    let mut state = seed ^ window.wrapping_mul(0x9E3779B97F4A7C15);
    let mut key = [0u8; 32];
    for chunk in key.chunks_mut(8) {
        state = state.wrapping_add(0x9E3779B97F4A7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
        z ^= z >> 31;
        chunk.copy_from_slice(&z.to_le_bytes());
    }
    key
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ks() -> KeyStore {
        KeyStore::new(Duration::hours(1), 0xDEADBEEF)
    }

    #[test]
    fn same_window_same_key() {
        let ks = ks();
        let t1 = Timestamp::ZERO + Duration::minutes(10);
        let t2 = Timestamp::ZERO + Duration::minutes(50);
        let (w1, k1) = ks.key_for(t1).unwrap();
        let (w2, k2) = ks.key_for(t2).unwrap();
        assert_eq!(w1, w2);
        assert_eq!(k1, k2);
    }

    #[test]
    fn different_windows_different_keys() {
        let ks = ks();
        let (w1, k1) = ks.key_for(Timestamp::ZERO).unwrap();
        let (w2, k2) = ks.key_for(Timestamp::ZERO + Duration::hours(2)).unwrap();
        assert_ne!(w1, w2);
        assert_ne!(k1, k2);
    }

    #[test]
    fn shred_destroys_old_keys_only() {
        let ks = ks();
        let (w0, _) = ks.key_for(Timestamp::ZERO).unwrap();
        let (w5, _) = ks.key_for(Timestamp::ZERO + Duration::hours(5)).unwrap();
        let victims = ks.shred_before(Timestamp::ZERO + Duration::hours(5));
        assert_eq!(victims, vec![w0]);
        assert!(ks.is_shredded(w0));
        assert!(ks.key_of(w0).is_none());
        assert!(!ks.is_shredded(w5));
        assert!(ks.key_of(w5).is_some());
    }

    #[test]
    fn sealing_into_shredded_window_rejected() {
        let ks = ks();
        ks.key_for(Timestamp::ZERO).unwrap();
        ks.shred_before(Timestamp::ZERO + Duration::hours(3));
        assert!(matches!(
            ks.key_for(Timestamp::ZERO + Duration::minutes(5)),
            Err(Error::Policy(_))
        ));
    }

    #[test]
    fn derivation_is_deterministic_across_instances() {
        let a = KeyStore::new(Duration::hours(1), 7);
        let b = KeyStore::new(Duration::hours(1), 7);
        let t = Timestamp::ZERO + Duration::minutes(30);
        assert_eq!(a.key_for(t).unwrap(), b.key_for(t).unwrap());
        // Different seeds → different keys.
        let c = KeyStore::new(Duration::hours(1), 8);
        assert_ne!(a.key_for(t).unwrap().1, c.key_for(t).unwrap().1);
    }

    #[test]
    fn nonces_are_unique() {
        let ks = ks();
        let n1 = ks.next_nonce();
        let n2 = ks.next_nonce();
        assert_ne!(n1, n2);
    }

    #[test]
    fn counters() {
        let ks = ks();
        ks.key_for(Timestamp::ZERO).unwrap();
        ks.key_for(Timestamp::ZERO + Duration::hours(2)).unwrap();
        assert_eq!(ks.live_keys(), 2);
        ks.shred_before(Timestamp::ZERO + Duration::hours(10));
        assert_eq!(ks.live_keys(), 0);
        assert_eq!(ks.shredded_count(), 2);
    }
}
