//! Crash consistency of batched appends (the group-commit contract):
//!
//! * a commit is acknowledged only after the fsync covering its records,
//!   so a tear anywhere in the *unsynced* suffix — including mid-way
//!   through a group batch the crash interrupted — loses no acknowledged
//!   commit;
//! * concurrent committers share fsyncs (batch counter < commit counter)
//!   without losing a single record;
//! * recovery replays every acknowledged transaction and no torn one.

use std::sync::Arc;
use std::time::Duration as StdDuration;

use instant_common::{Duration, TableId, Timestamp, TupleId, TxId};
use instant_wal::group::{GroupCommit, GroupCommitConfig};
use instant_wal::record::{LogRecord, Payload};
use instant_wal::recovery;
use instant_wal::writer::log_size;
use instant_wal::{KeyStore, Wal};

fn batch(tx: u64) -> Vec<LogRecord> {
    let at = Timestamp::micros(tx);
    vec![
        LogRecord::Begin { tx: TxId(tx), at },
        LogRecord::Insert {
            tx: TxId(tx),
            table: TableId(1),
            tid: TupleId::new(1, (tx % u16::MAX as u64) as u16),
            row: Payload::Plain(format!("row-{tx}").into_bytes()),
            at,
        },
        LogRecord::Commit { tx: TxId(tx), at },
    ]
}

fn ks() -> KeyStore {
    KeyStore::new(Duration::hours(1), 7)
}

/// Flush buffered appends into the file without fsyncing them (what the
/// OS would have seen at a crash point mid-drain).
fn flush_unsynced(wal: &Wal) {
    wal.torn_tail(0).unwrap();
}

#[test]
fn tear_mid_group_batch_loses_no_acknowledged_commit() {
    let wal = Arc::new(Wal::temp("gp-tear").unwrap());
    let gc = GroupCommit::spawn(wal.clone(), GroupCommitConfig::default()).unwrap();
    for tx in 0..5 {
        gc.commit(batch(tx)).unwrap(); // acknowledged ⇒ fsynced
    }
    gc.stop();

    // A sixth batch reaches the file but the crash hits before its fsync:
    // append directly (the pipeline's append step) and never sync.
    flush_unsynced(&wal);
    let synced = log_size(&wal).unwrap();
    for rec in batch(99) {
        wal.append(&rec).unwrap();
    }
    flush_unsynced(&wal);
    let full = log_size(&wal).unwrap();
    assert!(full > synced);

    // Tear mid-way through the un-acknowledged batch.
    wal.torn_tail((full - synced) / 2).unwrap();

    let plan = recovery::recover(&wal, &ks()).unwrap();
    assert_eq!(plan.ops.len(), 5, "all five acknowledged inserts replay");
    for tx in 0..5 {
        assert!(plan.committed.contains(&TxId(tx)));
    }
    assert!(
        !plan.committed.contains(&TxId(99)),
        "the torn batch must not be treated as committed"
    );
}

#[test]
fn concurrent_commits_all_durable_with_fewer_fsyncs() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 50;
    let wal = Arc::new(Wal::temp("gp-stress").unwrap());
    let gc = GroupCommit::spawn(
        wal.clone(),
        GroupCommitConfig {
            max_batch: 64,
            max_delay: StdDuration::from_micros(200),
        },
    )
    .unwrap();
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let gc = &gc;
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    gc.commit(batch(t * PER_THREAD + i)).unwrap();
                }
            });
        }
    });
    let stats = gc.stop();
    assert_eq!(stats.commits, THREADS * PER_THREAD);
    assert!(
        stats.batches < stats.commits,
        "concurrent committers must share fsyncs: {stats:?}"
    );
    let (appended, syncs) = wal.counters();
    assert_eq!(appended, THREADS * PER_THREAD * 3);
    assert_eq!(syncs, stats.batches, "exactly one fsync per drain");

    // Every acknowledged transaction replays, none duplicated.
    let plan = recovery::recover(&wal, &ks()).unwrap();
    assert_eq!(plan.ops.len(), (THREADS * PER_THREAD) as usize);
    for tx in 0..THREADS * PER_THREAD {
        assert!(plan.committed.contains(&TxId(tx)), "tx {tx} lost");
    }
}

#[test]
fn pipeline_commits_then_truncate_round_trip() {
    // Group-committed records + checkpoint-style truncation: the engine
    // rotates right before logging the Checkpoint record, so the record
    // starts a fresh segment, every prior record lives in wholly-dead
    // segments, and the retained suffix replays with correct LSNs through
    // the streaming scanner.
    let wal = Arc::new(Wal::temp("gp-trunc").unwrap());
    let gc = GroupCommit::spawn(wal.clone(), GroupCommitConfig::default()).unwrap();
    for tx in 0..10 {
        gc.commit(batch(tx)).unwrap();
    }
    wal.rotate().unwrap();
    let ckpt_lsn = gc
        .commit(vec![LogRecord::Checkpoint {
            at: Timestamp::micros(1),
        }])
        .unwrap();
    for tx in 10..13 {
        gc.commit(batch(tx)).unwrap();
    }
    gc.stop();

    assert_eq!(wal.truncated_bytes(), 0);
    let dropped = wal.truncate_before(ckpt_lsn).unwrap();
    assert_eq!(dropped, 30, "ten 3-record batches die with the prefix");
    assert!(wal.truncated_bytes() > 0);
    assert_eq!(wal.base_lsn(), ckpt_lsn);

    let plan = recovery::recover(&wal, &ks()).unwrap();
    assert_eq!(plan.checkpoint_lsn, Some(ckpt_lsn));
    assert_eq!(plan.ops.len(), 3, "only the post-checkpoint suffix replays");
    for tx in 10..13 {
        assert!(plan.committed.contains(&TxId(tx)));
    }
}
