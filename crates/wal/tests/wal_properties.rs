//! Property tests for the WAL: arbitrary record sequences survive the
//! encode → frame → file → parse pipeline; torn tails lose only a suffix;
//! sealing round-trips for live windows and never for shredded ones.

use instant_common::{ColumnId, Duration, LevelId, TableId, Timestamp, TupleId, TxId};
use instant_wal::group::{GroupCommit, GroupCommitConfig, GroupCommitSet};
use instant_wal::keystore::KeyStore;
use instant_wal::record::{LogRecord, Payload};
use instant_wal::recovery;
use instant_wal::writer::log_size;
use instant_wal::{Wal, WalSet};
use proptest::prelude::*;
use std::sync::Arc;

fn arb_payload() -> impl Strategy<Value = Payload> {
    proptest::collection::vec(any::<u8>(), 0..64).prop_map(Payload::Plain)
}

fn arb_record() -> impl Strategy<Value = LogRecord> {
    let t = 0u64..1_000_000;
    prop_oneof![
        (0u64..100, t.clone()).prop_map(|(tx, at)| LogRecord::Begin {
            tx: TxId(tx),
            at: Timestamp(at)
        }),
        (0u64..100, t.clone()).prop_map(|(tx, at)| LogRecord::Commit {
            tx: TxId(tx),
            at: Timestamp(at)
        }),
        (0u64..100, t.clone()).prop_map(|(tx, at)| LogRecord::Abort {
            tx: TxId(tx),
            at: Timestamp(at)
        }),
        (0u64..100, 0u32..10, 0u64..1000, arb_payload(), t.clone()).prop_map(
            |(tx, table, tid, row, at)| LogRecord::Insert {
                tx: TxId(tx),
                table: TableId(table),
                tid: TupleId::unpack(tid),
                row,
                at: Timestamp(at),
            }
        ),
        (
            0u64..100,
            0u32..10,
            0u64..1000,
            0u16..8,
            proptest::option::of(0u8..4),
            arb_payload(),
            t.clone()
        )
            .prop_map(|(tx, table, tid, col, lv, row, at)| LogRecord::Degrade {
                tx: TxId(tx),
                table: TableId(table),
                tid: TupleId::unpack(tid),
                column: ColumnId(col),
                to_level: lv.map(LevelId),
                row,
                at: Timestamp(at),
            }),
        (0u64..100, 0u32..10, 0u64..1000, t.clone()).prop_map(|(tx, table, tid, at)| {
            LogRecord::Expunge {
                tx: TxId(tx),
                table: TableId(table),
                tid: TupleId::unpack(tid),
                at: Timestamp(at),
            }
        }),
        t.prop_map(|at| LogRecord::Checkpoint { at: Timestamp(at) }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn file_round_trip(records in proptest::collection::vec(arb_record(), 0..60)) {
        let wal = Wal::temp("prop-rt").unwrap();
        for r in &records {
            wal.append(r).unwrap();
        }
        wal.sync().unwrap();
        let back = wal.iterate().unwrap();
        prop_assert_eq!(back.len(), records.len());
        for ((lsn, got), (i, want)) in back.iter().zip(records.iter().enumerate()) {
            prop_assert_eq!(*lsn, i as u64);
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn torn_tail_is_prefix(records in proptest::collection::vec(arb_record(), 1..40), cut in 1u64..200) {
        let wal = Wal::temp("prop-torn").unwrap();
        for r in &records {
            wal.append(r).unwrap();
        }
        wal.sync().unwrap();
        wal.torn_tail(cut).unwrap();
        let back = wal.iterate().unwrap();
        prop_assert!(back.len() <= records.len());
        for ((_, got), want) in back.iter().zip(records.iter()) {
            prop_assert_eq!(got, want, "surviving prefix must be unmodified");
        }
    }

    #[test]
    fn acknowledged_group_commits_survive_any_unsynced_tear(
        batches in proptest::collection::vec(
            proptest::collection::vec(arb_record(), 1..5), 1..8),
        junk in proptest::collection::vec(arb_record(), 1..5),
        cut_at in any::<prop::sample::Index>(),
    ) {
        // Everything committed through the pipeline was fsynced before its
        // ticket completed; a tear of any length within the later unsynced
        // suffix (a drain the crash interrupted) must leave the
        // acknowledged records intact, in order.
        let wal = Arc::new(Wal::temp("prop-group").unwrap());
        let gc = GroupCommit::spawn(wal.clone(), GroupCommitConfig::default()).unwrap();
        let mut acknowledged = Vec::new();
        for b in &batches {
            acknowledged.extend(b.iter().cloned());
            gc.commit(b.clone()).unwrap();
        }
        gc.stop();
        let synced = log_size(&wal).unwrap();
        for r in &junk {
            wal.append(r).unwrap();
        }
        wal.torn_tail(0).unwrap(); // flush the unsynced suffix, no fsync
        let full = log_size(&wal).unwrap();
        let cut = cut_at.index((full - synced) as usize + 1) as u64;
        wal.torn_tail(cut).unwrap();
        let back = wal.iterate().unwrap();
        prop_assert!(back.len() >= acknowledged.len(),
            "tear inside the unsynced suffix can never reach synced frames");
        for ((lsn, got), (i, want)) in back.iter().zip(acknowledged.iter().enumerate()) {
            prop_assert_eq!(*lsn, i as u64);
            prop_assert_eq!(got, want);
        }
    }

    #[test]
    fn truncation_at_segment_boundary_drops_exact_prefix(
        records in proptest::collection::vec(arb_record(), 1..40),
        keep_at in any::<prop::sample::Index>(),
    ) {
        // The engine rotates right before logging a checkpoint record, so
        // the truncation cut always lands on a segment boundary — and then
        // segment deletion drops *exactly* the dead prefix.
        let wal = Wal::temp("prop-trunc").unwrap();
        let keep_from = keep_at.index(records.len() + 1);
        for r in &records[..keep_from] {
            wal.append(r).unwrap();
        }
        wal.rotate().unwrap();
        for r in &records[keep_from..] {
            wal.append(r).unwrap();
        }
        wal.sync().unwrap();
        let dropped = wal.truncate_before(keep_from as u64).unwrap();
        prop_assert_eq!(dropped, keep_from as u64);
        let back = wal.iterate().unwrap();
        prop_assert_eq!(back.len(), records.len() - keep_from);
        for (lsn, got) in &back {
            prop_assert_eq!(got, &records[*lsn as usize]);
        }
    }

    #[test]
    fn truncation_deletes_only_whole_dead_segments(
        records in proptest::collection::vec(arb_record(), 1..40),
        chunk in 1usize..8,
        keep_at in any::<prop::sample::Index>(),
    ) {
        // For an arbitrary cut, truncation frees whole dead segments and
        // nothing more: no retained record is lost or rewritten, and the
        // new base is exactly the first retained segment's first LSN.
        let wal = Wal::temp("prop-trunc2").unwrap();
        for (i, r) in records.iter().enumerate() {
            if i > 0 && i % chunk == 0 {
                wal.rotate().unwrap();
            }
            wal.append(r).unwrap();
        }
        wal.sync().unwrap();
        let keep_from = keep_at.index(records.len() + 1) as u64;
        let dropped = wal.truncate_before(keep_from).unwrap();
        prop_assert!(dropped <= keep_from);
        prop_assert_eq!(wal.base_lsn(), dropped);
        let back = wal.iterate().unwrap();
        prop_assert_eq!(back.len() as u64, records.len() as u64 - dropped);
        for (lsn, got) in &back {
            prop_assert_eq!(got, &records[*lsn as usize]);
        }
    }

    #[test]
    fn sealing_round_trips_until_shredded(
        body in proptest::collection::vec(any::<u8>(), 0..256),
        at_hours in 0u64..48,
    ) {
        let ks = KeyStore::new(Duration::hours(1), 1234);
        let at = Timestamp::ZERO + Duration::hours(at_hours);
        let sealed = Payload::seal(&ks, at, &body).unwrap();
        prop_assert_eq!(sealed.open(&ks), Some(body.clone()));
        // Shred everything up to and including that window.
        ks.shred_before(at + Duration::hours(1));
        prop_assert_eq!(sealed.open(&ks), None);
    }

    /// The parallel-backbone crash contract: a mid-burst kill with K
    /// shards loses no acknowledged commit under the LSN merge — even
    /// when a phantom epoch after the acknowledged prefix reached the
    /// shards unevenly (durable on some, torn mid-frame on another).
    #[test]
    fn sharded_mid_burst_kill_recovers_every_acknowledged_record(
        shards in 1usize..=4,
        batches in proptest::collection::vec(
            proptest::collection::vec(arb_record(), 1..4), 1..10),
        junk in proptest::collection::vec(arb_record(), 1..6),
        torn_pick in any::<prop::sample::Index>(),
        cut_at in any::<prop::sample::Index>(),
    ) {
        let dir = std::env::temp_dir().join(format!(
            "instantdb-prop-shardkill-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        let mut acknowledged: Vec<(u64, LogRecord)> = Vec::new();
        {
            let set = WalSet::open(&dir, shards).unwrap();
            let gcs = GroupCommitSet::spawn(&set, GroupCommitConfig::default()).unwrap();
            for b in &batches {
                let shard = set.shard_for_batch(b);
                let first = gcs.commit(shard, b.clone()).unwrap();
                // Batch LSNs are consecutive: the shard draws the whole
                // range from the global allocator under its lock.
                for (i, r) in b.iter().enumerate() {
                    acknowledged.push((first + i as u64, r.clone()));
                }
            }
            // Every acknowledged epoch is durable once the pipelines stop.
            gcs.stop();
            let synced: Vec<u64> = (0..set.shard_count())
                .map(|k| {
                    set.shard(k).torn_tail(0).unwrap(); // flush, no fsync
                    log_size(set.shard(k)).unwrap()
                })
                .collect();
            // The phantom epoch the kill interrupts: unacknowledged
            // appends that reach the shards unevenly.
            for r in &junk {
                set.append(r).unwrap();
            }
            let torn = torn_pick.index(set.shard_count());
            for (k, &synced_len) in synced.iter().enumerate() {
                let shard = set.shard(k);
                shard.torn_tail(0).unwrap(); // flush the phantom bytes
                if k == torn {
                    // Tear mid-way through this shard's unsynced suffix.
                    let unsynced = log_size(shard).unwrap() - synced_len;
                    shard.torn_tail(cut_at.index(unsynced as usize + 1) as u64).unwrap();
                } else {
                    // Durable on this shard — but never acknowledged.
                    shard.sync().unwrap();
                }
            }
        }
        // "Reboot": reopen the set and k-way merge the shards by LSN.
        let set = WalSet::open(&dir, shards).unwrap();
        let back = set.iterate().unwrap();
        let by_lsn: std::collections::HashMap<u64, &LogRecord> =
            back.iter().map(|(l, r)| (*l, r)).collect();
        prop_assert_eq!(by_lsn.len(), back.len(), "merged LSNs must be unique");
        for (lsn, want) in &acknowledged {
            match by_lsn.get(lsn) {
                Some(got) => prop_assert_eq!(*got, want, "acknowledged record changed at lsn {}", lsn),
                None => prop_assert!(false, "acknowledged lsn {} lost by the merge", lsn),
            }
        }
        // The merge yields a strictly LSN-sorted stream.
        for w in back.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
        }
        drop(set);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Migration round-trip: a single-directory (PR-4 era) segment
    /// layout opened as a `WalSet` moves byte-for-byte into shard 0,
    /// keeps every record at its LSN, and the migration is idempotent
    /// across reopens at any shard count.
    #[test]
    fn flat_single_directory_layout_migrates_and_round_trips(
        records in proptest::collection::vec(arb_record(), 1..40),
        chunk in 1usize..8,
        shards in 1usize..=4,
    ) {
        let dir = std::env::temp_dir().join(format!(
            "instantdb-prop-migrate-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = std::fs::remove_dir_all(&dir);
        {
            // The old layout: segments directly under <dir>.
            let wal = Wal::open(&dir).unwrap();
            for (i, r) in records.iter().enumerate() {
                if i > 0 && i % chunk == 0 {
                    wal.rotate().unwrap();
                }
                wal.append(r).unwrap();
            }
            wal.sync().unwrap();
        }
        for reopen in 0..2 {
            let set = WalSet::open(&dir, shards).unwrap();
            let back = set.iterate().unwrap();
            prop_assert_eq!(back.len(), records.len(), "reopen {}", reopen);
            for ((lsn, got), (i, want)) in back.iter().zip(records.iter().enumerate()) {
                prop_assert_eq!(*lsn, i as u64);
                prop_assert_eq!(got, want);
            }
            prop_assert_eq!(set.next_lsn(), records.len() as u64);
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Recovery only ever replays committed transactions, for arbitrary
    /// interleavings.
    #[test]
    fn recovery_replays_only_committed(records in proptest::collection::vec(arb_record(), 0..80)) {
        let ks = KeyStore::new(Duration::hours(1), 1);
        let seq: Vec<(u64, LogRecord)> = records
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, r)| (i as u64, r))
            .collect();
        let plan = recovery::replay(&seq, &ks);
        // Find last checkpoint; compute committed txs of the suffix.
        let ckpt = seq
            .iter()
            .filter(|(_, r)| matches!(r, LogRecord::Checkpoint { .. }))
            .map(|(l, _)| *l)
            .next_back();
        let start = ckpt.map(|l| l + 1).unwrap_or(0);
        let committed: std::collections::HashSet<TxId> = seq
            .iter()
            .filter(|(l, _)| *l >= start)
            .filter_map(|(_, r)| match r {
                LogRecord::Commit { tx, .. } => Some(*tx),
                _ => None,
            })
            .collect();
        // Aborts can re-commit later in random streams; accept the replay's
        // committed set being a subset of observed commits.
        for tx in &plan.committed {
            prop_assert!(committed.contains(tx));
        }
        // And every emitted op's record index count is bounded by the
        // committed data records in the suffix.
        let data_records = seq
            .iter()
            .filter(|(l, _)| *l >= start)
            .filter(|(_, r)| {
                r.tx().is_some_and(|tx| plan.committed.contains(&tx))
                    && !matches!(
                        r,
                        LogRecord::Begin { .. } | LogRecord::Commit { .. } | LogRecord::Abort { .. }
                    )
            })
            .count();
        prop_assert_eq!(plan.ops.len(), data_records);
    }
}
