//! Segmented-WAL contracts, end to end:
//!
//! * an acknowledged commit whose records live in segment N survives the
//!   deletion of every segment below N (the checkpoint-truncation path);
//! * a crash whose torn point lands **exactly on a segment boundary** —
//!   whether the tail segment is chopped back to its header or its file
//!   vanishes entirely — loses nothing before the boundary, and the
//!   reopened log accepts reachable appends;
//! * truncation never rewrites a retained byte (same files, same sizes,
//!   same mtimes), and a commit issued while a truncation runs is
//!   acknowledged without waiting on the unlink I/O.

use std::path::PathBuf;
use std::sync::Arc;

use instant_common::{Duration, TableId, Timestamp, TupleId, TxId};
use instant_wal::group::{GroupCommit, GroupCommitConfig};
use instant_wal::record::{LogRecord, Payload};
use instant_wal::segment;
use instant_wal::{recovery, KeyStore, Wal};
use proptest::prelude::*;

fn batch(tx: u64) -> Vec<LogRecord> {
    let at = Timestamp::micros(tx);
    vec![
        LogRecord::Begin { tx: TxId(tx), at },
        LogRecord::Insert {
            tx: TxId(tx),
            table: TableId(1),
            tid: TupleId::new(1, (tx % u16::MAX as u64) as u16),
            row: Payload::Plain(format!("row-{tx}").into_bytes()),
            at,
        },
        LogRecord::Commit { tx: TxId(tx), at },
    ]
}

fn rec(i: u64) -> LogRecord {
    LogRecord::Insert {
        tx: TxId(i),
        table: TableId(1),
        tid: TupleId::new(1, (i % u16::MAX as u64) as u16),
        row: Payload::Plain(format!("row-{i}").into_bytes()),
        at: Timestamp::micros(i),
    }
}

fn ks() -> KeyStore {
    KeyStore::new(Duration::hours(1), 7)
}

/// Unique non-ephemeral log dir (tests that reopen across a simulated
/// crash need the path to outlive the `Wal`).
fn scratch(tag: &str) -> PathBuf {
    let p = std::env::temp_dir().join(format!(
        "instantdb-segtest-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&p);
    p
}

#[test]
fn acknowledged_commit_in_segment_n_survives_deletion_of_older_segments() {
    // Regression for the checkpoint-truncation path: commits land in
    // segment N, every segment below N is deleted, and the acknowledged
    // work still replays in full.
    let wal = Arc::new(Wal::temp("seg-ack").unwrap());
    let gc = GroupCommit::spawn(wal.clone(), GroupCommitConfig::default()).unwrap();
    for tx in 0..20 {
        gc.commit(batch(tx)).unwrap();
        if tx % 5 == 4 {
            wal.rotate().unwrap(); // several sealed segments build up
        }
    }
    // The acknowledged commits under test live in the *last* segment.
    for tx in 20..23 {
        gc.commit(batch(tx)).unwrap();
    }
    gc.stop();

    let boundary = wal.next_lsn() - 9; // first LSN of the last segment
    let dropped = wal.truncate_before(boundary).unwrap();
    assert_eq!(dropped, 60, "all twenty 3-record batches below the cut die");
    assert!(wal.segment_stats().segments_deleted >= 4);

    let plan = recovery::recover(&wal, &ks()).unwrap();
    assert_eq!(plan.ops.len(), 3, "exactly the retained inserts replay");
    for tx in 20..23 {
        assert!(
            plan.committed.contains(&TxId(tx)),
            "acknowledged tx {tx} must survive deletion of older segments"
        );
    }
}

#[test]
fn truncation_never_touches_retained_segment_files() {
    // The no-rewrite guarantee, asserted structurally: after truncation,
    // every retained segment is the *same file* — same path, same size,
    // same mtime — and no temporary rewrite artifacts appear.
    let wal = Wal::temp("seg-norewrite").unwrap();
    for i in 0..40 {
        wal.append(&rec(i)).unwrap();
        if i % 10 == 9 {
            wal.rotate().unwrap();
        }
    }
    wal.sync().unwrap();
    let before: Vec<(PathBuf, u64, std::time::SystemTime)> = segment::list_segments(wal.path())
        .unwrap()
        .into_iter()
        .map(|(_, p)| {
            let m = std::fs::metadata(&p).unwrap();
            (p, m.len(), m.modified().unwrap())
        })
        .collect();
    assert_eq!(before.len(), 5, "four sealed segments + the active one");

    let dropped = wal.truncate_before(20).unwrap();
    assert_eq!(dropped, 20);

    let after: Vec<(PathBuf, u64, std::time::SystemTime)> = segment::list_segments(wal.path())
        .unwrap()
        .into_iter()
        .map(|(_, p)| {
            let m = std::fs::metadata(&p).unwrap();
            (p, m.len(), m.modified().unwrap())
        })
        .collect();
    assert_eq!(
        after,
        before[2..].to_vec(),
        "retained segments byte-for-byte untouched, dead ones gone"
    );
    // No rewrite droppings (tmp files) either.
    for entry in std::fs::read_dir(wal.path()).unwrap() {
        let name = entry.unwrap().file_name();
        assert!(
            segment::parse_file_name(name.to_str().unwrap()).is_some(),
            "unexpected non-segment file after truncation: {name:?}"
        );
    }
}

#[test]
fn commit_is_acknowledged_while_truncation_runs() {
    // Truncation holds the Wal lock only to splice its in-memory segment
    // list; the unlinks happen outside it. A committer racing the
    // truncation of hundreds of dead segments must therefore be
    // acknowledged promptly — not after an O(live log) rewrite, which on
    // the seed implementation stalled every commit ack.
    let wal = Arc::new(Wal::temp("seg-conc").unwrap());
    for i in 0..400u64 {
        wal.append(&rec(i)).unwrap();
        if i % 2 == 1 {
            wal.rotate().unwrap(); // ~200 dead segments
        }
    }
    wal.sync().unwrap();
    let boundary = wal.next_lsn();
    wal.rotate().unwrap();

    let gc = GroupCommit::spawn(wal.clone(), GroupCommitConfig::default()).unwrap();
    let started = std::time::Instant::now();
    std::thread::scope(|s| {
        let wal_t = wal.clone();
        let truncator = s.spawn(move || wal_t.truncate_before(boundary).unwrap());
        // Commits issued while the truncation runs: each must come back
        // acknowledged and durable.
        for tx in 0..20 {
            gc.commit(batch(1000 + tx)).unwrap();
        }
        assert_eq!(truncator.join().unwrap(), 400);
    });
    let elapsed = started.elapsed();
    assert!(
        elapsed < std::time::Duration::from_secs(5),
        "commits + segment-delete truncation must not serialize behind \
         log-sized work (took {elapsed:?})"
    );
    let plan = recovery::recover(&wal, &ks()).unwrap();
    for tx in 0..20 {
        assert!(plan.committed.contains(&TxId(1000 + tx)));
    }
    assert_eq!(wal.base_lsn(), 400);
}

#[test]
fn crash_that_loses_the_entire_tail_segment_file_recovers_to_the_boundary() {
    // Torn point exactly on a segment boundary, hardest flavor: the tail
    // segment's *file* is gone (crash before its directory entry or
    // header ever became durable). Everything in the sealed segments
    // stays; the reopened log appends reachably from the boundary.
    let path = scratch("lost-tail");
    {
        let wal = Wal::open(&path).unwrap();
        for i in 0..12 {
            wal.append(&rec(i)).unwrap();
        }
        wal.rotate().unwrap();
        for i in 12..15 {
            wal.append(&rec(i)).unwrap();
        }
        wal.sync().unwrap();
    }
    let last = segment::list_segments(&path).unwrap().pop().unwrap().1;
    std::fs::remove_file(last).unwrap();
    {
        let wal = Wal::open(&path).unwrap();
        assert_eq!(wal.next_lsn(), 12, "log ends exactly at the boundary");
        assert_eq!(wal.base_lsn(), 0);
        assert_eq!(wal.append(&rec(12)).unwrap(), 12);
        wal.sync().unwrap();
        let back = wal.iterate().unwrap();
        assert_eq!(back.len(), 13);
        assert_eq!(back[12].1, rec(12));
    }
    std::fs::remove_dir_all(&path).unwrap();
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Crash-recovery property: the torn point lands exactly on a segment
    /// boundary — the active segment is chopped back to precisely its
    /// header, leaving zero torn frame bytes. Recovery must keep every
    /// record of the sealed segments, lose only the tail segment's
    /// records, and leave the log appendable.
    #[test]
    fn torn_point_exactly_on_segment_boundary_loses_only_the_tail_segment(
        chunks in proptest::collection::vec(1usize..12, 2..6),
    ) {
        let path = scratch("boundary-prop");
        let total: usize = chunks.iter().sum();
        let kept: usize = total - chunks.last().unwrap();
        let tail_bytes;
        {
            let wal = Wal::open(&path).unwrap();
            let mut i = 0u64;
            for (ci, chunk) in chunks.iter().enumerate() {
                for _ in 0..*chunk {
                    wal.append(&rec(i)).unwrap();
                    i += 1;
                }
                if ci + 1 < chunks.len() {
                    wal.rotate().unwrap();
                }
            }
            wal.sync().unwrap();
            let last = segment::list_segments(&path).unwrap().pop().unwrap().1;
            tail_bytes = std::fs::metadata(&last).unwrap().len()
                - segment::SEGMENT_HEADER_LEN;
            // The crash chops off every frame byte of the active segment:
            // the usable log now ends exactly on the rotation boundary.
            wal.torn_tail(tail_bytes).unwrap();
        }
        prop_assert!(tail_bytes > 0);
        {
            let wal = Wal::open(&path).unwrap();
            prop_assert_eq!(wal.next_lsn(), kept as u64);
            let back = wal.iterate().unwrap();
            prop_assert_eq!(back.len(), kept);
            for (lsn, got) in &back {
                prop_assert_eq!(got, &rec(*lsn));
            }
            // Post-crash appends are reachable.
            prop_assert_eq!(wal.append(&rec(kept as u64)).unwrap(), kept as u64);
            wal.sync().unwrap();
            prop_assert_eq!(wal.iterate().unwrap().len(), kept + 1);
        }
        std::fs::remove_dir_all(&path).unwrap();
    }
}
