//! Per-file analysis context: test-region detection and comment-borne
//! annotations (`lint:allow`, `lock-rank:`, `SAFETY:`).

use std::collections::{HashMap, HashSet};

use crate::lexer::{lex, Lexed, Tok};

/// Where a file sits in the workspace; decides which rules apply.
#[derive(Debug, Clone)]
pub struct FileContext {
    /// Workspace-relative path, e.g. `crates/wal/src/writer.rs`.
    pub rel_path: String,
    /// The owning workspace member, e.g. `crates/wal` (`.` for the root
    /// package).
    pub member: String,
}

impl FileContext {
    pub fn is_shim(&self) -> bool {
        self.member.starts_with("shims/") || self.member.starts_with("shims\\")
    }

    /// Binary targets: `src/bin/**` and the crate-root `src/main.rs`.
    /// Operator-facing entry points may print and may exit by panicking
    /// with a message; library code may not.
    pub fn is_bin(&self) -> bool {
        self.rel_path.contains("/src/bin/")
            || self.rel_path.starts_with("src/bin/")
            || self.rel_path.ends_with("src/main.rs")
    }

    /// L001's blast radius: the four crates on the durability/degradation
    /// hot path, where a stray panic kills a daemon thread silently.
    pub fn panic_hygiene_applies(&self) -> bool {
        matches!(
            self.member.as_str(),
            "crates/wal" | "crates/server" | "crates/core" | "crates/storage"
        )
    }
}

/// A lexed file plus everything the rules need to query about it.
pub struct SourceFile {
    pub ctx: FileContext,
    pub lexed: Lexed,
    /// Line ranges (inclusive) covered by `#[test]` / `#[cfg(test)]`
    /// items.
    test_ranges: Vec<(u32, u32)>,
    /// Concatenated comment text per line (a block comment contributes to
    /// every line it spans).
    comments_by_line: HashMap<u32, String>,
    /// Lines containing at least one code token.
    code_lines: HashSet<u32>,
    /// For each comment-only run containing a `lint:allow(`, the line
    /// span of the statement it covers (first code line through the
    /// statement's last line) plus the run's combined text.
    allow_spans: Vec<(u32, u32, String)>,
}

impl SourceFile {
    pub fn parse(ctx: FileContext, source: &str) -> SourceFile {
        let lexed = lex(source);
        let test_ranges = test_line_ranges(&lexed.tokens);
        let mut comments_by_line: HashMap<u32, String> = HashMap::new();
        for c in &lexed.comments {
            for line in c.start_line..=c.end_line {
                let slot = comments_by_line.entry(line).or_default();
                if !slot.is_empty() {
                    slot.push(' ');
                }
                slot.push_str(&c.text);
            }
        }
        let code_lines: HashSet<u32> = lexed.tokens.iter().map(|t| t.line).collect();
        let allow_spans = allow_statement_spans(&lexed.tokens, &comments_by_line, &code_lines);
        SourceFile {
            ctx,
            lexed,
            test_ranges,
            comments_by_line,
            code_lines,
            allow_spans,
        }
    }

    pub fn tokens(&self) -> &[Tok] {
        &self.lexed.tokens
    }

    /// Is `line` inside a `#[test]` fn or `#[cfg(test)]` item?
    pub fn in_test_code(&self, line: u32) -> bool {
        self.test_ranges
            .iter()
            .any(|&(start, end)| (start..=end).contains(&line))
    }

    /// Comment texts that annotate `line`: the trailing comment on the
    /// line itself, plus the contiguous run of comment-only lines directly
    /// above it (a blank line or an intervening code line breaks the
    /// association).
    pub fn annotation_comments(&self, line: u32) -> Vec<&str> {
        let mut texts: Vec<&str> = Vec::new();
        if let Some(t) = self.comments_by_line.get(&line) {
            texts.push(t);
        }
        let mut l = line.saturating_sub(1);
        while l >= 1 {
            match self.comments_by_line.get(&l) {
                Some(t) if !self.code_lines.contains(&l) => texts.push(t),
                _ => break,
            }
            l -= 1;
        }
        texts
    }

    /// Does an `// lint:allow(RULE, reason)` with a non-empty reason cover
    /// `line`? A trailing allow covers its own line; a standalone allow
    /// comment covers the entire following *statement* through its end
    /// (so one allow suffices for a multi-line call), but only the first
    /// line of a following *item* (an allow above a `fn` must not
    /// silence the whole body).
    pub fn allows(&self, rule: &str, line: u32) -> bool {
        self.annotation_comments(line)
            .iter()
            .any(|t| comment_allows(t, rule))
            || self.allow_spans.iter().any(|(start, end, text)| {
                (*start..=*end).contains(&line) && comment_allows(text, rule)
            })
    }

    /// The `lock-rank:` annotation covering `line`, if any.
    pub fn lock_rank(&self, line: u32) -> Option<RankAnnotation> {
        self.annotation_comments(line)
            .iter()
            .find_map(|t| parse_lock_rank(t))
    }

    /// Does a `SAFETY:` comment cover `line`?
    pub fn has_safety_comment(&self, line: u32) -> bool {
        self.annotation_comments(line)
            .iter()
            .any(|t| t.contains("SAFETY:"))
    }
}

/// Parsed `lock-rank:` annotation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RankAnnotation {
    /// `// lock-rank: <N>` — participates in the global order.
    Ranked(u32),
    /// `// lock-rank: unranked(reason)` — exempt, with a stated reason.
    Unranked { reason_ok: bool },
    /// `lock-rank:` present but unparsable.
    Malformed,
}

fn comment_allows(comment: &str, rule: &str) -> bool {
    let mut rest = comment;
    while let Some(at) = rest.find("lint:allow(") {
        let args = &rest[at + "lint:allow(".len()..];
        if let Some(close) = args.find(')') {
            let mut parts = args[..close].splitn(2, ',');
            let id = parts.next().unwrap_or("").trim();
            let reason = parts.next().unwrap_or("").trim();
            if id == rule && !reason.is_empty() {
                return true;
            }
        }
        rest = &rest[at + "lint:allow(".len()..];
    }
    false
}

fn parse_lock_rank(comment: &str) -> Option<RankAnnotation> {
    let at = comment.find("lock-rank:")?;
    let rest = comment[at + "lock-rank:".len()..].trim_start();
    if let Some(unranked) = rest.strip_prefix("unranked(") {
        let reason = unranked.split(')').next().unwrap_or("").trim();
        return Some(RankAnnotation::Unranked {
            reason_ok: !reason.is_empty(),
        });
    }
    let digits: String = rest.chars().take_while(|c| c.is_ascii_digit()).collect();
    if digits.is_empty() {
        return Some(RankAnnotation::Malformed);
    }
    digits
        .parse::<u32>()
        .ok()
        .map(RankAnnotation::Ranked)
        .or(Some(RankAnnotation::Malformed))
}

/// Item-starting tokens: a standalone allow above one of these covers
/// only the item's first line, never its whole body.
fn starts_item(toks: &[Tok], i: usize) -> bool {
    let t = &toks[i];
    if t.is_punct('#') {
        return true;
    }
    matches!(
        t.text.as_str(),
        "fn" | "pub"
            | "impl"
            | "struct"
            | "enum"
            | "union"
            | "mod"
            | "trait"
            | "use"
            | "static"
            | "const"
            | "type"
            | "macro_rules"
    ) || (t.is_ident("unsafe")
        && toks
            .get(i + 1)
            .is_some_and(|n| n.is_ident("fn") || n.is_ident("impl") || n.is_ident("trait")))
}

/// For each run of contiguous comment-only lines containing a
/// `lint:allow(`, compute the line span of the statement starting on the
/// next line: through the `;` at bracket depth 0, the close of a
/// depth-0 brace group that ends the expression (`if`/`match`
/// statements), or the end of the enclosing block/argument list.
fn allow_statement_spans(
    toks: &[Tok],
    comments_by_line: &HashMap<u32, String>,
    code_lines: &HashSet<u32>,
) -> Vec<(u32, u32, String)> {
    let mut spans = Vec::new();
    let mut comment_lines: Vec<u32> = comments_by_line
        .keys()
        .copied()
        .filter(|l| !code_lines.contains(l))
        .collect();
    comment_lines.sort_unstable();
    let mut run_start = 0usize;
    for i in 0..comment_lines.len() {
        let is_run_end =
            i + 1 == comment_lines.len() || comment_lines[i + 1] != comment_lines[i] + 1;
        if !is_run_end {
            continue;
        }
        let run: &[u32] = &comment_lines[run_start..=i];
        run_start = i + 1;
        let text = run
            .iter()
            .filter_map(|l| comments_by_line.get(l).map(String::as_str))
            .collect::<Vec<_>>()
            .join(" ");
        if !text.contains("lint:allow(") {
            continue;
        }
        let first_code = run[run.len() - 1] + 1;
        if !code_lines.contains(&first_code) {
            continue; // blank line breaks the association
        }
        let Some(start_tok) = toks.iter().position(|t| t.line >= first_code) else {
            continue;
        };
        let end_line = if starts_item(toks, start_tok) {
            first_code
        } else {
            statement_end_line(toks, start_tok)
        };
        spans.push((first_code, end_line, text));
    }
    spans
}

/// Last line of the statement beginning at token `start`.
fn statement_end_line(toks: &[Tok], start: usize) -> u32 {
    let mut paren = 0i32; // () and []
    let mut brace = 0i32;
    let mut i = start;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') || t.is_punct('[') {
            paren += 1;
        } else if t.is_punct(')') || t.is_punct(']') {
            paren -= 1;
            if paren < 0 {
                // The enclosing argument list closed: the statement was
                // its final element.
                return toks[i.saturating_sub(1)].line;
            }
        } else if t.is_punct('{') {
            brace += 1;
        } else if t.is_punct('}') {
            brace -= 1;
            if brace < 0 {
                // Enclosing block ended without a `;` (tail expression).
                return toks[i.saturating_sub(1)].line;
            }
            if brace == 0 && paren == 0 {
                // A depth-0 brace group closed (`if`/`match`/block).
                // Continue only if the expression visibly continues.
                match toks.get(i + 1) {
                    Some(n)
                        if n.is_ident("else")
                            || n.is_punct('.')
                            || n.is_punct('?')
                            || n.is_punct(';') => {}
                    _ => return t.line,
                }
            }
        } else if t.is_punct(';') && paren == 0 && brace == 0 {
            return t.line;
        }
        i += 1;
    }
    toks.last().map(|t| t.line).unwrap_or(0)
}

/// Find line ranges covered by test-marked items: `#[test]`,
/// `#[cfg(test)]`, `#[cfg(all(test, ...))]` and friends. An attribute
/// containing the `test` ident marks a test item *unless* it also
/// contains `not` (so `#[cfg(not(test))]` is production code).
fn test_line_ranges(toks: &[Tok]) -> Vec<(u32, u32)> {
    let mut ranges = Vec::new();
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            let attr_line = toks[i].line;
            let (attr_end, is_test) = scan_attr(toks, i + 1);
            if is_test {
                if let Some(body_end) = item_end(toks, attr_end + 1) {
                    ranges.push((attr_line, toks[body_end].line));
                }
            }
            i = attr_end + 1;
        } else {
            i += 1;
        }
    }
    ranges
}

/// Scan a `[...]` attribute starting at its `[`. Returns (index of the
/// closing `]`, whether this attribute marks test code).
fn scan_attr(toks: &[Tok], open: usize) -> (usize, bool) {
    let mut depth = 0usize;
    let mut has_test = false;
    let mut has_not = false;
    let mut i = open;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('[') {
            depth += 1;
        } else if t.is_punct(']') {
            depth -= 1;
            if depth == 0 {
                break;
            }
        } else if t.is_ident("test") {
            has_test = true;
        } else if t.is_ident("not") {
            has_not = true;
        }
        i += 1;
    }
    (i.min(toks.len().saturating_sub(1)), has_test && !has_not)
}

/// Given the token index just past a test attribute, find the index of
/// the token ending the annotated item: the matching `}` of its body, or
/// the `;` of a body-less item. Skips any further attributes in between.
fn item_end(toks: &[Tok], mut i: usize) -> Option<usize> {
    // Skip stacked attributes (#[test] #[ignore] fn ...).
    while i < toks.len()
        && toks[i].is_punct('#')
        && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
    {
        let (end, _) = scan_attr(toks, i + 1);
        i = end + 1;
    }
    // Walk to the body `{` (at paren depth 0) or a terminating `;`.
    let mut paren = 0usize;
    while i < toks.len() {
        let t = &toks[i];
        if t.is_punct('(') {
            paren += 1;
        } else if t.is_punct(')') {
            paren = paren.saturating_sub(1);
        } else if t.is_punct(';') && paren == 0 {
            return Some(i);
        } else if t.is_punct('{') && paren == 0 {
            // Brace-match the body.
            let mut depth = 0usize;
            while i < toks.len() {
                if toks[i].is_punct('{') {
                    depth += 1;
                } else if toks[i].is_punct('}') {
                    depth -= 1;
                    if depth == 0 {
                        return Some(i);
                    }
                }
                i += 1;
            }
            return None;
        }
        i += 1;
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn file(src: &str) -> SourceFile {
        SourceFile::parse(
            FileContext {
                rel_path: "crates/demo/src/lib.rs".into(),
                member: "crates/demo".into(),
            },
            src,
        )
    }

    #[test]
    fn cfg_test_mod_is_test_code() {
        let f = file(
            "fn prod() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 fn helper() {}\n\
             }\n\
             fn also_prod() {}\n",
        );
        assert!(!f.in_test_code(1));
        assert!(f.in_test_code(2));
        assert!(f.in_test_code(4));
        assert!(!f.in_test_code(6));
    }

    #[test]
    fn cfg_not_test_is_production() {
        let f = file("#[cfg(not(test))]\nfn prod() { body(); }\n");
        assert!(!f.in_test_code(2));
    }

    #[test]
    fn test_attr_with_stacked_attrs() {
        let f = file("#[test]\n#[ignore]\nfn t() {\n    body();\n}\n");
        assert!(f.in_test_code(4));
    }

    #[test]
    fn allow_requires_reason() {
        let f = file(
            "fn a() {} // lint:allow(L001, infallible: len checked above)\n\
             fn b() {} // lint:allow(L001,)\n\
             fn c() {} // lint:allow(L001)\n",
        );
        assert!(f.allows("L001", 1));
        assert!(!f.allows("L001", 2));
        assert!(!f.allows("L001", 3));
        assert!(!f.allows("L002", 1));
    }

    #[test]
    fn allow_on_preceding_comment_line() {
        let f = file(
            "// lint:allow(L005, demo output)\n\
             fn a() {}\n\
             \n\
             // lint:allow(L005, too far away)\n\
             \n\
             fn b() {}\n",
        );
        assert!(f.allows("L005", 2));
        assert!(!f.allows("L005", 6), "blank line breaks the association");
    }

    #[test]
    fn standalone_allow_covers_the_whole_statement() {
        let f = file(
            "fn a() {\n\
                 // lint:allow(L001, demo covers the full call)\n\
                 panic!(\n\
                     \"multi\\\n\
                      line\"\n\
                 );\n\
                 other();\n\
             }\n",
        );
        for line in 3..=6 {
            assert!(
                f.allows("L001", line),
                "line {line} is inside the statement"
            );
        }
        assert!(!f.allows("L001", 7), "next statement is not covered");
    }

    #[test]
    fn standalone_allow_above_an_item_covers_only_its_first_line() {
        let f = file(
            "// lint:allow(L001, signature only)\n\
             fn a() {\n\
                 body();\n\
             }\n",
        );
        assert!(f.allows("L001", 2));
        assert!(
            !f.allows("L001", 3),
            "an allow above a fn must not silence its body"
        );
    }

    #[test]
    fn standalone_allow_covers_if_statement_without_semicolon() {
        let f = file(
            "fn a() {\n\
                 // lint:allow(L001, both arms)\n\
                 if x {\n\
                     panic!(\"a\")\n\
                 } else {\n\
                     panic!(\"b\")\n\
                 }\n\
                 other();\n\
             }\n",
        );
        for line in 3..=7 {
            assert!(f.allows("L001", line), "line {line}");
        }
        assert!(!f.allows("L001", 8));
    }

    #[test]
    fn lock_rank_forms() {
        let f = file(
            "struct S {\n\
                 a: u32, // lock-rank: 120\n\
                 b: u32, // lock-rank: unranked(page-ordered latch)\n\
                 c: u32, // lock-rank: unranked()\n\
                 d: u32, // lock-rank: soon\n\
             }\n",
        );
        assert_eq!(f.lock_rank(2), Some(RankAnnotation::Ranked(120)));
        assert_eq!(
            f.lock_rank(3),
            Some(RankAnnotation::Unranked { reason_ok: true })
        );
        assert_eq!(
            f.lock_rank(4),
            Some(RankAnnotation::Unranked { reason_ok: false })
        );
        assert_eq!(f.lock_rank(5), Some(RankAnnotation::Malformed));
        assert_eq!(f.lock_rank(1), None);
    }
}
