//! `instantdb-lint`: run the workspace invariant checker.
//!
//! ```text
//! instantdb-lint [--root DIR] [--deny-all] [--ranks] [--format text|json]
//! ```
//!
//! Exits non-zero iff violations were found. `--ranks` prints the global
//! lock-rank table instead (the source of truth for INVARIANTS.md).
//! `--format json` emits one JSON object per line (machine-readable; the
//! GitHub Actions problem-matcher consumes the default text format).

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

enum Format {
    Text,
    Json,
}

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut print_ranks = false;
    let mut format = Format::Text;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            // Violations are always denying; the flag exists so the CI
            // invocation states its intent explicitly.
            "--deny-all" => {}
            "--ranks" => print_ranks = true,
            "--format" => match args.next().as_deref() {
                Some("text") => format = Format::Text,
                Some("json") => format = Format::Json,
                Some(other) => return usage(&format!("unknown format `{other}`")),
                None => return usage("--format needs `text` or `json`"),
            },
            "--format=text" => format = Format::Text,
            "--format=json" => format = Format::Json,
            "-h" | "--help" => {
                let mut out = std::io::stdout().lock();
                let _ = writeln!(
                    out,
                    "instantdb-lint [--root DIR] [--deny-all] [--ranks] [--format text|json]\n\n\
                     Checks the workspace against INVARIANTS.md rules L001-L006 and the\n\
                     call-graph flow rules L101 (static lock-order) / L102 (blocking I/O\n\
                     under an exclusive ranked lock). Exits non-zero iff violations were\n\
                     found.\n\n\
                       --root DIR     workspace root (default: .)\n\
                       --deny-all     fail on any violation (the default; kept for CI clarity)\n\
                       --ranks        print the global lock-rank table and exit\n\
                       --format FMT   `text` (default, problem-matcher friendly) or `json`\n\
                                      (one object per violation per line)"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let report = match instant_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err, "instantdb-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let mut out = std::io::stdout().lock();
    if print_ranks {
        let mut decls = report.rank_decls;
        decls.sort_by_key(|d| d.rank);
        let _ = writeln!(out, "rank  declaration site");
        for d in &decls {
            let _ = writeln!(out, "{:>4}  {}:{}", d.rank, d.file, d.line);
        }
        return ExitCode::SUCCESS;
    }

    for v in &report.violations {
        match format {
            Format::Text => {
                let _ = writeln!(out, "{v}");
            }
            Format::Json => {
                let _ = writeln!(
                    out,
                    "{{\"file\":\"{}\",\"line\":{},\"col\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
                    json_escape(&v.file),
                    v.line,
                    v.col,
                    v.rule,
                    json_escape(&v.message)
                );
            }
        }
    }
    let mut err = std::io::stderr().lock();
    if report.violations.is_empty() {
        let _ = writeln!(
            err,
            "instantdb-lint: {} files clean ({} ranked locks)",
            report.files_checked,
            report.rank_decls.len()
        );
        ExitCode::SUCCESS
    } else {
        let _ = writeln!(
            err,
            "instantdb-lint: {} violation(s) in {} files",
            report.violations.len(),
            report.files_checked
        );
        ExitCode::FAILURE
    }
}

/// Minimal JSON string escaping (quotes, backslashes, control chars).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn usage(msg: &str) -> ExitCode {
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "instantdb-lint: {msg} (try --help)");
    ExitCode::from(2)
}
