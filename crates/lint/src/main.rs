//! `instantdb-lint`: run the workspace invariant checker.
//!
//! ```text
//! instantdb-lint [--root DIR] [--deny-all] [--ranks]
//! ```
//!
//! Exits non-zero iff violations were found. `--ranks` prints the global
//! lock-rank table instead (the source of truth for INVARIANTS.md).

use std::io::Write;
use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut root = PathBuf::from(".");
    let mut print_ranks = false;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--root" => match args.next() {
                Some(dir) => root = PathBuf::from(dir),
                None => return usage("--root needs a directory"),
            },
            // Violations are always denying; the flag exists so the CI
            // invocation states its intent explicitly.
            "--deny-all" => {}
            "--ranks" => print_ranks = true,
            "-h" | "--help" => {
                let mut out = std::io::stdout().lock();
                let _ = writeln!(
                    out,
                    "instantdb-lint [--root DIR] [--deny-all] [--ranks]\n\n\
                     Checks the workspace against INVARIANTS.md rules L001-L005.\n\
                     Exits non-zero iff violations were found.\n\n\
                       --root DIR   workspace root (default: .)\n\
                       --deny-all   fail on any violation (the default; kept for CI clarity)\n\
                       --ranks      print the global lock-rank table and exit"
                );
                return ExitCode::SUCCESS;
            }
            other => return usage(&format!("unknown argument `{other}`")),
        }
    }

    let report = match instant_lint::lint_workspace(&root) {
        Ok(r) => r,
        Err(e) => {
            let mut err = std::io::stderr().lock();
            let _ = writeln!(err, "instantdb-lint: {e}");
            return ExitCode::from(2);
        }
    };

    let mut out = std::io::stdout().lock();
    if print_ranks {
        let mut decls = report.rank_decls;
        decls.sort_by_key(|d| d.rank);
        let _ = writeln!(out, "rank  declaration site");
        for d in &decls {
            let _ = writeln!(out, "{:>4}  {}:{}", d.rank, d.file, d.line);
        }
        return ExitCode::SUCCESS;
    }

    for v in &report.violations {
        let _ = writeln!(out, "{v}");
    }
    let mut err = std::io::stderr().lock();
    if report.violations.is_empty() {
        let _ = writeln!(
            err,
            "instantdb-lint: {} files clean ({} ranked locks)",
            report.files_checked,
            report.rank_decls.len()
        );
        ExitCode::SUCCESS
    } else {
        let _ = writeln!(
            err,
            "instantdb-lint: {} violation(s) in {} files",
            report.violations.len(),
            report.files_checked
        );
        ExitCode::FAILURE
    }
}

fn usage(msg: &str) -> ExitCode {
    let mut err = std::io::stderr().lock();
    let _ = writeln!(err, "instantdb-lint: {msg} (try --help)");
    ExitCode::from(2)
}
