//! A minimal Rust lexer: just enough to tell code from comments, strings,
//! and char literals, with line/column positions.
//!
//! The rule engine works on token streams, never raw text, so `unwrap` in
//! a doc comment or `"panic!"` in a string literal can never false-
//! positive. Comments are *kept* (as trivia alongside the token stream)
//! because three of the annotations this linter understands live in them:
//! `lint:allow(...)`, `lock-rank: ...`, and `SAFETY:`.

/// Kind of a lexed token. Coarser than rustc's: the rules only ever match
/// identifier text and single-character punctuation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (`unwrap`, `unsafe`, `Mutex`, ...).
    Ident,
    /// String / char / numeric literal (content irrelevant to the rules).
    Literal,
    /// A lifetime (`'a`); distinguished from char literals during lexing.
    Lifetime,
    /// One character of punctuation (`<`, `!`, `:`, `#`, ...).
    Punct,
}

/// One token with its 1-based source position.
#[derive(Debug, Clone)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: u32,
    pub col: u32,
}

impl Tok {
    pub fn is_ident(&self, text: &str) -> bool {
        self.kind == TokKind::Ident && self.text == text
    }

    pub fn is_punct(&self, ch: char) -> bool {
        self.kind == TokKind::Punct && self.text.len() == ch.len_utf8() && self.text.starts_with(ch)
    }
}

/// One comment (line or block) with the line span it covers. `text`
/// includes the comment markers.
#[derive(Debug, Clone)]
pub struct Comment {
    pub text: String,
    pub start_line: u32,
    pub end_line: u32,
}

/// Lexer output: the token stream plus comment trivia.
#[derive(Debug, Default)]
pub struct Lexed {
    pub tokens: Vec<Tok>,
    pub comments: Vec<Comment>,
}

struct Cursor {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    col: u32,
}

impl Cursor {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.chars.get(self.pos).copied()?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
            self.col = 1;
        } else {
            self.col += 1;
        }
        Some(c)
    }
}

/// Lex `source` into tokens and comments. Unterminated constructs (string,
/// block comment) simply run to end of file — the linter is a checker, not
/// a compiler, and the compiler will reject such a file anyway.
pub fn lex(source: &str) -> Lexed {
    let mut cur = Cursor {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        col: 1,
    };
    let mut out = Lexed::default();

    while let Some(c) = cur.peek(0) {
        let (line, col) = (cur.line, cur.col);
        if c.is_whitespace() {
            cur.bump();
        } else if c == '/' && cur.peek(1) == Some('/') {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch == '\n' {
                    break;
                }
                text.push(ch);
                cur.bump();
            }
            out.comments.push(Comment {
                text,
                start_line: line,
                end_line: line,
            });
        } else if c == '/' && cur.peek(1) == Some('*') {
            let mut text = String::new();
            let mut depth = 0usize;
            while let Some(ch) = cur.peek(0) {
                if ch == '/' && cur.peek(1) == Some('*') {
                    depth += 1;
                    text.push_str("/*");
                    cur.bump();
                    cur.bump();
                } else if ch == '*' && cur.peek(1) == Some('/') {
                    depth -= 1;
                    text.push_str("*/");
                    cur.bump();
                    cur.bump();
                    if depth == 0 {
                        break;
                    }
                } else {
                    text.push(ch);
                    cur.bump();
                }
            }
            out.comments.push(Comment {
                text,
                start_line: line,
                end_line: cur.line,
            });
        } else if c == '"' {
            lex_string(&mut cur);
            push_tok(&mut out, TokKind::Literal, "\"...\"", line, col);
        } else if c == '\'' {
            lex_quote(&mut cur, &mut out, line, col);
        } else if c.is_ascii_digit() {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch.is_ascii_alphanumeric() || ch == '_' {
                    text.push(ch);
                    cur.bump();
                } else {
                    break;
                }
            }
            push_tok(&mut out, TokKind::Literal, &text, line, col);
        } else if c.is_alphabetic() || c == '_' {
            let mut text = String::new();
            while let Some(ch) = cur.peek(0) {
                if ch.is_alphanumeric() || ch == '_' {
                    text.push(ch);
                    cur.bump();
                } else {
                    break;
                }
            }
            // Raw / byte string prefixes: r"..", r#".."#, b"..", br#".."#.
            let is_raw_start =
                matches!(text.as_str(), "r" | "br") && matches!(cur.peek(0), Some('"') | Some('#'));
            let is_byte_start = text == "b" && cur.peek(0) == Some('"');
            if is_raw_start && text != "b" {
                if lex_raw_string(&mut cur) {
                    push_tok(&mut out, TokKind::Literal, "r\"...\"", line, col);
                    continue;
                }
            } else if is_byte_start {
                cur.bump(); // opening quote
                lex_string_body(&mut cur);
                push_tok(&mut out, TokKind::Literal, "b\"...\"", line, col);
                continue;
            }
            push_tok(&mut out, TokKind::Ident, &text, line, col);
        } else {
            cur.bump();
            push_tok(&mut out, TokKind::Punct, &c.to_string(), line, col);
        }
    }
    out
}

fn push_tok(out: &mut Lexed, kind: TokKind, text: &str, line: u32, col: u32) {
    out.tokens.push(Tok {
        kind,
        text: text.to_string(),
        line,
        col,
    });
}

/// Consume a `"`-delimited string starting at the opening quote.
fn lex_string(cur: &mut Cursor) {
    cur.bump(); // opening quote
    lex_string_body(cur);
}

/// Consume string content up to and including the closing quote,
/// honouring backslash escapes.
fn lex_string_body(cur: &mut Cursor) {
    while let Some(ch) = cur.bump() {
        match ch {
            '\\' => {
                cur.bump();
            }
            '"' => break,
            _ => {}
        }
    }
}

/// Consume a raw string (`cur` is positioned at `#`* `"` after the `r` /
/// `br` prefix was already consumed). Returns false if this is not
/// actually a raw string (e.g. the ident `r` followed by `#[...]`).
fn lex_raw_string(cur: &mut Cursor) -> bool {
    let mut hashes = 0usize;
    while cur.peek(hashes) == Some('#') {
        hashes += 1;
    }
    if cur.peek(hashes) != Some('"') {
        return false;
    }
    for _ in 0..=hashes {
        cur.bump(); // the hashes and the opening quote
    }
    'scan: while let Some(ch) = cur.bump() {
        if ch == '"' {
            for i in 0..hashes {
                if cur.peek(i) != Some('#') {
                    continue 'scan;
                }
            }
            for _ in 0..hashes {
                cur.bump();
            }
            break;
        }
    }
    true
}

/// Disambiguate `'a'` (char literal) from `'a` (lifetime) at a `'`.
fn lex_quote(cur: &mut Cursor, out: &mut Lexed, line: u32, col: u32) {
    cur.bump(); // the quote
    match cur.peek(0) {
        Some('\\') => {
            // Escaped char literal: consume escape then up to the close.
            cur.bump();
            cur.bump();
            while let Some(ch) = cur.bump() {
                if ch == '\'' {
                    break;
                }
            }
            push_tok(out, TokKind::Literal, "'...'", line, col);
        }
        Some(c) if cur.peek(1) == Some('\'') => {
            // 'x' — a one-char literal.
            cur.bump();
            cur.bump();
            let _ = c;
            push_tok(out, TokKind::Literal, "'.'", line, col);
        }
        Some(c) if c.is_alphabetic() || c == '_' => {
            let mut text = String::from("'");
            while let Some(ch) = cur.peek(0) {
                if ch.is_alphanumeric() || ch == '_' {
                    text.push(ch);
                    cur.bump();
                } else {
                    break;
                }
            }
            push_tok(out, TokKind::Lifetime, &text, line, col);
        }
        _ => {
            push_tok(out, TokKind::Punct, "'", line, col);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .tokens
            .into_iter()
            .filter(|t| t.kind == TokKind::Ident)
            .map(|t| t.text)
            .collect()
    }

    #[test]
    fn strings_and_comments_are_not_code() {
        let src = r##"
            // unwrap in a comment
            /* panic! in /* a nested */ block */
            let s = "calls .unwrap() inside";
            let r = r#"raw unwrap"#;
            let b = b"byte unwrap";
            real_ident();
        "##;
        let ids = idents(src);
        assert!(ids.contains(&"real_ident".to_string()));
        assert!(!ids.contains(&"unwrap".to_string()));
        assert!(!ids.contains(&"panic".to_string()));
    }

    #[test]
    fn char_literal_vs_lifetime() {
        let lexed = lex("fn f<'a>(x: &'a str) { let c = 'x'; let n = '\\n'; }");
        let lifetimes: Vec<_> = lexed
            .tokens
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lifetimes.len(), 2);
        assert!(lifetimes.iter().all(|t| t.text == "'a"));
    }

    #[test]
    fn positions_are_one_based() {
        let lexed = lex("a\n  b");
        assert_eq!((lexed.tokens[0].line, lexed.tokens[0].col), (1, 1));
        assert_eq!((lexed.tokens[1].line, lexed.tokens[1].col), (2, 3));
    }

    #[test]
    fn comments_record_spans() {
        let lexed = lex("x /* one\ntwo */ y // tail");
        assert_eq!(lexed.comments.len(), 2);
        assert_eq!(
            (lexed.comments[0].start_line, lexed.comments[0].end_line),
            (1, 2)
        );
        assert!(lexed.comments[1].text.contains("tail"));
    }
}
