//! Workspace call graph and flow rules: L101 (static lock-order), L102
//! (blocking I/O under an exclusive ranked lock) and L006 (swallowed
//! `Result`).
//!
//! The analysis is a classic bottom-up summary fixpoint over a
//! heuristically-resolved call graph:
//!
//! 1. every parsed function gets a **summary** — the set of lock ranks it
//!    may (transitively) acquire with a blocking acquisition, whether it
//!    may (transitively) reach a blocking-I/O syscall, and the ranks it
//!    holds at the point it invokes a closure parameter (`with_frame`-
//!    style latch APIs);
//! 2. summaries propagate along call edges until a fixpoint;
//! 3. a final intra-procedural walk re-plays each function body with a
//!    scoped held-lock set (guards die at `drop(g)`, their binding
//!    block's end, or — for temporaries — their statement's end) and
//!    reports violations with a **witness path** into the callee chain.
//!
//! Name resolution is deliberately heuristic (see [`Resolver`]): `self`-
//! rooted receiver chains follow struct-field types; everything else
//! falls back to a workspace-unique method name, with a stop-list of
//! ubiquitous std method names so `stream.flush()` never resolves to a
//! workspace function. Unresolvable constructs are skipped — the
//! analysis under-approximates on resolution and over-approximates on
//! guard lifetime, which keeps false positives rare and makes every
//! report worth reading.
//!
//! Mirrored dynamic semantics (the `parking_lot` shim's debug checker):
//! blocking acquisitions of rank `r₂` while any rank `r₁ ≥ r₂` is held
//! are violations; `try_*` acquisitions are tracked but never checked;
//! unranked locks are exempt.

use std::collections::{BTreeMap, HashMap, HashSet};

use crate::parser::{AcquireOp, Block, CallTarget, FnDef, Node, ParsedFile, Stmt};
use crate::rules::Violation;
use crate::source::SourceFile;

/// Method names that must never resolve through the global unique-name
/// fallback: they collide with std trait methods on locals the parser
/// cannot type (`stream.flush()`, `handle.join()`, …).
const GENERIC_METHOD_NAMES: &[&str] = &[
    "read",
    "write",
    "lock",
    "flush",
    "next",
    "clone",
    "join",
    "send",
    "recv",
    "wait",
    "drop",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "iter",
    "into_iter",
    "fmt",
    "eq",
    "cmp",
    "hash",
    "from",
    "into",
    "default",
    "new",
    "as_ref",
    "as_mut",
    "to_string",
    "parse",
    "map",
    "and_then",
    "unwrap_or_else",
    "take",
    "contains",
    "extend",
    "clear",
    "start",
    "run",
    "close",
    "open",
    "seek",
    // `OpenOptions::append(bool)` — would otherwise mis-resolve to
    // `Wal::append` through the unique-name fallback.
    "append",
];

/// One function in the graph.
struct FnData {
    /// Index into the analysis' file list.
    file: usize,
    display: String,
    owner: Option<String>,
    returns_result: bool,
}

/// Where a summarized effect comes from, for witness reconstruction.
#[derive(Debug, Clone)]
enum Origin {
    /// The effect happens directly in this function at `line`.
    Direct { line: u32 },
    /// The effect is reached through a call at `line` to `callee`.
    Via { callee: usize, line: u32 },
}

/// Per-function effect summary (grows monotonically to a fixpoint).
#[derive(Default, Clone)]
struct Summary {
    /// Ranks this function may acquire with a *blocking* acquisition,
    /// directly or transitively.
    may_acquire: BTreeMap<u32, Origin>,
    /// Blocking I/O (fsync / write / flush syscalls) reachable from this
    /// function.
    io: Option<(&'static str, Origin)>,
    /// Ranks held at the point this function invokes one of its closure
    /// parameters (with the acquisition line, for diagnostics).
    callback_holds: BTreeMap<u32, u32>,
}

/// A lock held during the intra-procedural walk.
#[derive(Debug, Clone)]
struct Held {
    rank: u32,
    line: u32,
    /// `lock()` / `write()` / `try_lock` / `try_write` (mutual
    /// exclusion); `read()` is shared.
    exclusive: bool,
    binding: Option<String>,
    /// Unbound guards die at the end of their statement.
    temp: bool,
    /// Synthetic entries injected for closure bodies analyzed under a
    /// callee's callback-held ranks.
    synthetic: bool,
}

/// The resolver's view of the workspace's types.
struct Resolver {
    /// struct name → field name → identifiers in the field's type.
    fields: HashMap<String, HashMap<String, Vec<String>>>,
    /// struct name → lock-field name → rank (`None` = unranked/exempt).
    lock_fields: HashMap<String, HashMap<String, Option<u32>>>,
    /// lock-field name → (owning struct, rank) candidates.
    lock_candidates: HashMap<String, Vec<(String, Option<u32>)>>,
    /// "Owner::name" and free "name" → fn ids.
    by_qual: HashMap<String, Vec<usize>>,
    /// method/function name → fn ids (all owners).
    by_name: HashMap<String, Vec<usize>>,
    /// fn id → workspace-relative path of its defining file (used to
    /// disambiguate `module::free_fn` calls by module name).
    fn_paths: Vec<String>,
}

impl Resolver {
    /// Resolve a receiver chain ending in a (potential) lock field.
    /// `Some(Some(rank))`: a ranked lock. `Some(None)`: an unranked lock
    /// (tracked as exempt). `None`: not resolvable to a lock.
    fn resolve_lock(
        &self,
        chain: &[String],
        rooted: bool,
        owner: Option<&str>,
    ) -> Option<Option<u32>> {
        let field = chain.last()?;
        // Precise: self-rooted chain walked through struct field types.
        if rooted && chain.first().map(String::as_str) == Some("self") {
            if let Some(owner) = owner {
                if let Some(found) = self.walk_chain(owner, &chain[1..]) {
                    return Some(found);
                }
            }
        }
        // Heuristic: candidates by field name, disambiguated by the
        // penultimate chain element when it names a field of some struct
        // whose type mentions the candidate's owner.
        let candidates = self.lock_candidates.get(field)?;
        if candidates.is_empty() {
            return None;
        }
        if candidates.len() == 1 {
            return Some(candidates[0].1);
        }
        if chain.len() >= 2 {
            let penult = &chain[chain.len() - 2];
            let filtered: Vec<&(String, Option<u32>)> = candidates
                .iter()
                .filter(|(owner_struct, _)| {
                    self.fields.values().any(|fields| {
                        fields
                            .get(penult)
                            .is_some_and(|tys| tys.iter().any(|t| t == owner_struct))
                    })
                })
                .collect();
            if filtered.len() == 1 {
                return Some(filtered[0].1);
            }
            // All remaining candidates agreeing on the rank is as good
            // as unique.
            if let Some((_, first)) = filtered.first() {
                if filtered.iter().all(|(_, r)| r == first) {
                    return Some(*first);
                }
            }
        }
        let first = candidates[0].1;
        if candidates.iter().all(|(_, r)| *r == first) {
            return Some(first);
        }
        None
    }

    /// Walk `self.f1.f2…` field types from struct `start`; returns the
    /// lock rank if the final segment is a lock field.
    fn walk_chain(&self, start: &str, rest: &[String]) -> Option<Option<u32>> {
        let (last, mids) = rest.split_last()?;
        let mut cur = start.to_string();
        for mid in mids {
            let tys = self.fields.get(&cur)?.get(mid)?;
            cur = tys
                .iter()
                .find(|t| self.fields.contains_key(*t) || self.lock_fields.contains_key(*t))?
                .clone();
        }
        self.lock_fields.get(&cur)?.get(last).copied().map(Some)?
    }

    /// Resolve the type a `self.f1.f2…` chain lands on (for method
    /// dispatch), if every hop goes through a known struct.
    fn chain_type(&self, start: &str, rest: &[String]) -> Option<String> {
        let mut cur = start.to_string();
        for seg in rest {
            let tys = self.fields.get(&cur)?.get(seg)?;
            cur = tys.iter().find(|t| self.fields.contains_key(*t))?.clone();
        }
        Some(cur)
    }

    /// Resolve a call target to workspace function ids. Empty = external
    /// or ambiguous (skipped by the analysis).
    fn resolve_call(&self, target: &CallTarget, owner: Option<&str>) -> Vec<usize> {
        match target {
            CallTarget::Method {
                chain,
                name,
                rooted,
            } => {
                if *rooted && chain.first().map(String::as_str) == Some("self") {
                    if let Some(owner) = owner {
                        if let Some(ty) = self.chain_type(owner, &chain[1..]) {
                            if let Some(ids) = self.by_qual.get(&format!("{ty}::{name}")) {
                                return ids.clone();
                            }
                        }
                    }
                }
                self.unique_by_name(name)
            }
            CallTarget::Path { segments } => match segments.as_slice() {
                [] => Vec::new(),
                [name] => {
                    // Bare call: free function, only if workspace-unique
                    // (ambiguous names like the two `write_frame`s would
                    // otherwise produce wrong witness paths).
                    match self.by_qual.get(name.as_str()) {
                        Some(ids) if ids.len() == 1 => ids.clone(),
                        _ => Vec::new(),
                    }
                }
                [.., ty, name] => {
                    let ty = if ty == "Self" {
                        owner.unwrap_or(ty.as_str())
                    } else {
                        ty.as_str()
                    };
                    if let Some(ids) = self.by_qual.get(&format!("{ty}::{name}")) {
                        return ids.clone();
                    }
                    // `module::free_fn(...)`: disambiguate candidates by
                    // the module segment matching the defining file.
                    let Some(ids) = self.by_qual.get(name.as_str()) else {
                        return Vec::new();
                    };
                    if ids.len() == 1 {
                        return ids.clone();
                    }
                    let in_module: Vec<usize> = ids
                        .iter()
                        .copied()
                        .filter(|&id| {
                            let p = &self.fn_paths[id];
                            p.ends_with(&format!("/{ty}.rs")) || p.contains(&format!("/{ty}/"))
                        })
                        .collect();
                    if in_module.len() == 1 {
                        in_module
                    } else {
                        Vec::new()
                    }
                }
            },
        }
    }

    /// Global fallback: the method name resolves iff it is workspace-
    /// unique and not a ubiquitous std name.
    fn unique_by_name(&self, name: &str) -> Vec<usize> {
        if GENERIC_METHOD_NAMES.contains(&name) {
            return Vec::new();
        }
        match self.by_name.get(name) {
            Some(ids) if ids.len() == 1 => ids.clone(),
            _ => Vec::new(),
        }
    }
}

/// The whole-workspace flow analysis.
pub struct Analysis<'a> {
    files: &'a [(SourceFile, ParsedFile)],
    /// Parallel to the flattened fn list.
    fns: Vec<FnData>,
    defs: Vec<(usize, usize)>, // (file idx, fn idx within file)
    resolver: Resolver,
    summaries: Vec<Summary>,
}

impl<'a> Analysis<'a> {
    /// Build tables and run the summary fixpoint. `files` should already
    /// exclude shims and fixtures.
    pub fn build(files: &'a [(SourceFile, ParsedFile)]) -> Analysis<'a> {
        let mut fns = Vec::new();
        let mut defs = Vec::new();
        let mut resolver = Resolver {
            fields: HashMap::new(),
            lock_fields: HashMap::new(),
            lock_candidates: HashMap::new(),
            by_qual: HashMap::new(),
            by_name: HashMap::new(),
            fn_paths: Vec::new(),
        };
        for (fi, (_, parsed)) in files.iter().enumerate() {
            for s in &parsed.structs {
                let fields = resolver.fields.entry(s.name.clone()).or_default();
                for f in &s.fields {
                    fields.insert(f.name.clone(), f.type_idents.clone());
                    if f.is_lock {
                        resolver
                            .lock_fields
                            .entry(s.name.clone())
                            .or_default()
                            .insert(f.name.clone(), f.rank);
                        resolver
                            .lock_candidates
                            .entry(f.name.clone())
                            .or_default()
                            .push((s.name.clone(), f.rank));
                    }
                }
            }
            for (di, d) in parsed.fns.iter().enumerate() {
                if d.is_test {
                    continue;
                }
                let id = fns.len();
                let display = match &d.owner {
                    Some(o) => format!("{o}::{}", d.name),
                    None => d.name.clone(),
                };
                resolver
                    .by_qual
                    .entry(match &d.owner {
                        Some(o) => format!("{o}::{}", d.name),
                        None => d.name.clone(),
                    })
                    .or_default()
                    .push(id);
                resolver.by_name.entry(d.name.clone()).or_default().push(id);
                resolver.fn_paths.push(files[fi].0.ctx.rel_path.clone());
                fns.push(FnData {
                    file: fi,
                    display,
                    owner: d.owner.clone(),
                    returns_result: d.returns_result,
                });
                defs.push((fi, di));
            }
        }
        let mut analysis = Analysis {
            files,
            fns,
            defs,
            resolver,
            summaries: Vec::new(),
        };
        analysis.compute_summaries();
        analysis
    }

    fn def(&self, id: usize) -> &FnDef {
        let (fi, di) = self.defs[id];
        &self.files[fi].1.fns[di]
    }

    fn file_of(&self, id: usize) -> &SourceFile {
        &self.files[self.fns[id].file].0
    }

    /// Phase 1 + 2: direct facts, then propagate over call edges until
    /// nothing changes.
    fn compute_summaries(&mut self) {
        let n = self.fns.len();
        let mut summaries = vec![Summary::default(); n];
        // Per-fn call edges: (callees, line).
        let mut edges: Vec<Vec<(Vec<usize>, u32)>> = vec![Vec::new(); n];

        for id in 0..n {
            let owner = self.fns[id].owner.clone();
            let def = self.def(id);
            let mut walker = DirectWalker {
                resolver: &self.resolver,
                owner: owner.as_deref(),
                closure_params: &def.closure_params,
                summary: &mut summaries[id],
                edges: &mut edges[id],
                held: Vec::new(),
            };
            walker.block(&def.body);
        }

        // Fixpoint: merge callee summaries into callers.
        let mut changed = true;
        while changed {
            changed = false;
            for id in 0..n {
                for (callees, line) in edges[id].clone() {
                    for &callee in &callees {
                        if callee == id {
                            continue;
                        }
                        let callee_sum = summaries[callee].clone();
                        let sum = &mut summaries[id];
                        for &rank in callee_sum.may_acquire.keys() {
                            sum.may_acquire.entry(rank).or_insert_with(|| {
                                changed = true;
                                Origin::Via { callee, line }
                            });
                        }
                        if sum.io.is_none() {
                            if let Some((what, _)) = callee_sum.io {
                                sum.io = Some((what, Origin::Via { callee, line }));
                                changed = true;
                            }
                        }
                    }
                }
            }
        }
        self.summaries = summaries;
    }

    /// Render the witness path from `id`'s effect on `rank` down to the
    /// acquisition site: "`A::b` → `C::d` → acquires rank N at file:line".
    fn acquire_witness(&self, id: usize, rank: u32) -> String {
        let mut path = vec![format!("`{}`", self.fns[id].display)];
        let mut cur = id;
        let mut seen = HashSet::new();
        loop {
            if !seen.insert(cur) {
                path.push("…".to_string());
                break;
            }
            match self.summaries[cur].may_acquire.get(&rank) {
                Some(Origin::Direct { line }) => {
                    path.push(format!(
                        "acquires rank {rank} at {}:{line}",
                        self.file_of(cur).ctx.rel_path
                    ));
                    break;
                }
                Some(Origin::Via { callee, line }) => {
                    path.push(format!(
                        "`{}` ({}:{line})",
                        self.fns[*callee].display,
                        self.file_of(cur).ctx.rel_path
                    ));
                    cur = *callee;
                }
                None => break,
            }
        }
        path.join(" → ")
    }

    /// Witness path for a transitive blocking-I/O effect.
    fn io_witness(&self, id: usize) -> String {
        let mut path = vec![format!("`{}`", self.fns[id].display)];
        let mut cur = id;
        let mut seen = HashSet::new();
        loop {
            if !seen.insert(cur) {
                path.push("…".to_string());
                break;
            }
            match &self.summaries[cur].io {
                Some((what, Origin::Direct { line })) => {
                    path.push(format!(
                        "{what} syscall at {}:{line}",
                        self.file_of(cur).ctx.rel_path
                    ));
                    break;
                }
                Some((_, Origin::Via { callee, line })) => {
                    path.push(format!(
                        "`{}` ({}:{line})",
                        self.fns[*callee].display,
                        self.file_of(cur).ctx.rel_path
                    ));
                    cur = *callee;
                }
                None => break,
            }
        }
        path.join(" → ")
    }

    /// Phase 3: walk every function and report L101/L102 violations.
    pub fn check_flow(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        for id in 0..self.fns.len() {
            let def = self.def(id);
            let file = self.file_of(id);
            let mut walker = CheckWalker {
                analysis: self,
                file,
                owner: self.fns[id].owner.as_deref(),
                held: Vec::new(),
                out: &mut out,
            };
            walker.block(&def.body);
        }
        out
    }

    /// L006: `let _ = <workspace call returning Result>` in the hot-path
    /// crates' non-test code.
    pub fn check_swallowed_results(&self) -> Vec<Violation> {
        let mut out = Vec::new();
        for id in 0..self.fns.len() {
            let file = self.file_of(id);
            if !file.ctx.panic_hygiene_applies() {
                continue;
            }
            let owner = self.fns[id].owner.as_deref();
            self.l006_block(&self.def(id).body, file, owner, &mut out);
        }
        out
    }

    fn l006_block(
        &self,
        block: &Block,
        file: &SourceFile,
        owner: Option<&str>,
        out: &mut Vec<Violation>,
    ) {
        for stmt in &block.stmts {
            if stmt.let_underscore {
                // The last top-level call of the statement is the
                // outermost expression.
                let last_call = stmt.nodes.iter().rev().find_map(|n| match n {
                    Node::Call {
                        target, line, col, ..
                    } => Some((target, *line, *col)),
                    _ => None,
                });
                if let Some((target, line, col)) = last_call {
                    let callees = self.resolver.resolve_call(target, owner);
                    let result_fn = callees
                        .iter()
                        .find(|&&c| self.fns[c].returns_result)
                        .map(|&c| self.fns[c].display.clone());
                    if let Some(name) = result_fn {
                        if !file.allows("L006", line) && !file.in_test_code(line) {
                            out.push(Violation {
                                file: file.ctx.rel_path.clone(),
                                line,
                                col,
                                rule: "L006",
                                message: format!(
                                    "`let _ =` swallows the `Result` of `{name}`: handle or \
                                     propagate the error, or justify with \
                                     `// lint:allow(L006, reason)`"
                                ),
                            });
                        }
                    }
                }
            }
            for n in &stmt.nodes {
                match n {
                    Node::Nested(b) => self.l006_block(b, file, owner, out),
                    Node::Call { closures, .. } => {
                        for b in closures {
                            self.l006_block(b, file, owner, out);
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}

/// Phase-1 walker: collects a function's direct acquires, direct I/O,
/// call edges and callback-held ranks, tracking its own held set so
/// `callback_holds` is accurate.
struct DirectWalker<'r> {
    resolver: &'r Resolver,
    owner: Option<&'r str>,
    closure_params: &'r [String],
    summary: &'r mut Summary,
    edges: &'r mut Vec<(Vec<usize>, u32)>,
    held: Vec<Held>,
}

impl DirectWalker<'_> {
    fn block(&mut self, block: &Block) {
        let base = self.held.len();
        for stmt in &block.stmts {
            self.stmt(stmt);
            self.held.retain(|h| !h.temp || h.synthetic);
        }
        self.held.truncate(base);
    }

    fn stmt(&mut self, stmt: &Stmt) {
        for n in &stmt.nodes {
            self.node(n);
        }
    }

    fn node(&mut self, node: &Node) {
        match node {
            Node::Acquire {
                chain,
                rooted,
                op,
                binding,
                line,
                ..
            } => {
                let Some(rank) = self.resolver.resolve_lock(chain, *rooted, self.owner) else {
                    return;
                };
                if let Some(rank) = rank {
                    if op.is_blocking() {
                        self.summary
                            .may_acquire
                            .entry(rank)
                            .or_insert(Origin::Direct { line: *line });
                    }
                    self.held.push(Held {
                        rank,
                        line: *line,
                        exclusive: !matches!(op, AcquireOp::Read | AcquireOp::TryRead),
                        binding: binding.clone(),
                        temp: binding.is_none(),
                        synthetic: false,
                    });
                }
            }
            Node::DropGuard { name } => {
                if let Some(i) = self
                    .held
                    .iter()
                    .rposition(|h| h.binding.as_deref() == Some(name))
                {
                    self.held.remove(i);
                }
            }
            Node::Io { line, .. } => {
                self.summary
                    .io
                    .get_or_insert(("io", Origin::Direct { line: *line }));
                // (The direct kind is refined below; keep the first.)
            }
            Node::Call {
                target,
                closures,
                line,
                ..
            } => {
                // Closure-parameter invocation: record what is held here.
                if let CallTarget::Path { segments } = target {
                    if let [name] = segments.as_slice() {
                        if self.closure_params.iter().any(|p| p == name) {
                            for h in &self.held {
                                self.summary.callback_holds.entry(h.rank).or_insert(h.line);
                            }
                        }
                    }
                }
                let callees = self.resolver.resolve_call(target, self.owner);
                if !callees.is_empty() {
                    self.edges.push((callees, *line));
                }
                for b in closures {
                    self.block(b);
                }
            }
            Node::Nested(b) => self.block(b),
        }
    }
}

/// Phase-3 walker: re-plays a function with full summaries available and
/// reports violations.
struct CheckWalker<'r, 'o> {
    analysis: &'r Analysis<'r>,
    file: &'r SourceFile,
    owner: Option<&'r str>,
    held: Vec<Held>,
    out: &'o mut Vec<Violation>,
}

impl CheckWalker<'_, '_> {
    fn max_held(&self) -> Option<&Held> {
        self.held.iter().max_by_key(|h| h.rank)
    }

    fn max_exclusive_held(&self) -> Option<&Held> {
        self.held
            .iter()
            .filter(|h| h.exclusive)
            .max_by_key(|h| h.rank)
    }

    fn violation(&mut self, rule: &'static str, line: u32, col: u32, message: String) {
        if self.file.allows(rule, line) || self.file.in_test_code(line) {
            return;
        }
        self.out.push(Violation {
            file: self.file.ctx.rel_path.clone(),
            line,
            col,
            rule,
            message,
        });
    }

    fn block(&mut self, block: &Block) {
        let base = self.held.len();
        for stmt in &block.stmts {
            for n in &stmt.nodes {
                self.node(n);
            }
            self.held.retain(|h| !h.temp || h.synthetic);
        }
        self.held.truncate(base);
    }

    fn node(&mut self, node: &Node) {
        match node {
            Node::Acquire {
                chain,
                rooted,
                op,
                binding,
                line,
                col,
            } => {
                let resolver = &self.analysis.resolver;
                let Some(rank) = resolver.resolve_lock(chain, *rooted, self.owner) else {
                    return;
                };
                if let Some(rank) = rank {
                    if op.is_blocking() {
                        if let Some(h) = self.max_held().filter(|h| h.rank >= rank).cloned() {
                            self.violation(
                                "L101",
                                *line,
                                *col,
                                format!(
                                    "lock-order inversion: blocking acquisition of rank {rank} \
                                     while rank {} is held (acquired at {}:{}); ranks must \
                                     strictly increase (see INVARIANTS.md)",
                                    h.rank, self.file.ctx.rel_path, h.line
                                ),
                            );
                        }
                    }
                    self.held.push(Held {
                        rank,
                        line: *line,
                        exclusive: !matches!(op, AcquireOp::Read | AcquireOp::TryRead),
                        binding: binding.clone(),
                        temp: binding.is_none(),
                        synthetic: false,
                    });
                }
            }
            Node::DropGuard { name } => {
                if let Some(i) = self
                    .held
                    .iter()
                    .rposition(|h| h.binding.as_deref() == Some(name))
                {
                    self.held.remove(i);
                }
            }
            Node::Io { what, line, col } => {
                if let Some(h) = self.max_exclusive_held().cloned() {
                    self.violation(
                        "L102",
                        *line,
                        *col,
                        format!(
                            "blocking {what} while holding exclusive lock-rank {} (acquired at \
                             {}:{}): move the I/O outside the critical section, or justify with \
                             `// lint:allow(L102, reason)`",
                            h.rank, self.file.ctx.rel_path, h.line
                        ),
                    );
                }
            }
            Node::Call {
                target,
                closures,
                line,
                col,
            } => {
                let callees = self.analysis.resolver.resolve_call(target, self.owner);
                if let Some(h) = self.max_held().cloned() {
                    // L101: the callee may acquire a rank at or below the
                    // highest rank held here.
                    let mut worst: Option<(usize, u32)> = None;
                    for &callee in &callees {
                        for &rank in self.analysis.summaries[callee].may_acquire.keys() {
                            if rank <= h.rank && worst.map_or(true, |(_, w)| rank < w) {
                                worst = Some((callee, rank));
                            }
                        }
                    }
                    if let Some((callee, rank)) = worst {
                        let witness = self.analysis.acquire_witness(callee, rank);
                        self.violation(
                            "L101",
                            *line,
                            *col,
                            format!(
                                "lock-order inversion: this call may acquire rank {rank} while \
                                 rank {} is held (acquired at {}:{}): {witness}; ranks must \
                                 strictly increase (see INVARIANTS.md)",
                                h.rank, self.file.ctx.rel_path, h.line
                            ),
                        );
                    }
                }
                if let Some(h) = self.max_exclusive_held().cloned() {
                    if let Some(&callee) = callees
                        .iter()
                        .find(|&&c| self.analysis.summaries[c].io.is_some())
                    {
                        let witness = self.analysis.io_witness(callee);
                        self.violation(
                            "L102",
                            *line,
                            *col,
                            format!(
                                "blocking I/O reachable while holding exclusive lock-rank {} \
                                 (acquired at {}:{}): {witness}; move the I/O outside the \
                                 critical section, or justify with `// lint:allow(L102, reason)`",
                                h.rank, self.file.ctx.rel_path, h.line
                            ),
                        );
                    }
                }
                // Closure arguments run under whatever the callee holds
                // when it invokes its callback (with_frame-style APIs).
                let mut injected = 0usize;
                for &callee in &callees {
                    for (&rank, &cline) in &self.analysis.summaries[callee].callback_holds {
                        self.held.push(Held {
                            rank,
                            line: cline,
                            exclusive: true,
                            binding: None,
                            temp: false,
                            synthetic: true,
                        });
                        injected += 1;
                    }
                }
                for b in closures {
                    self.block(b);
                }
                for _ in 0..injected {
                    self.held.pop();
                }
            }
            Node::Nested(b) => self.block(b),
        }
    }
}
