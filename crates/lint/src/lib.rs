//! `instant_lint` — the InstantDB workspace invariant checker.
//!
//! A dependency-free tokenizer + rule engine enforcing the invariants in
//! the workspace `INVARIANTS.md`:
//!
//! | rule | invariant |
//! |------|-----------|
//! | L001 | no `unwrap`/`expect`/`panic!` in hot-path crate library code |
//! | L002 | every `Mutex`/`RwLock` carries a globally-unique `lock-rank` |
//! | L003 | every `unsafe` carries a `SAFETY:` comment |
//! | L004 | no direct `std::sync` locks outside `shims/` |
//! | L005 | no printing from library code |
//! | L006 | no `let _ =` swallowing a workspace `Result` in hot-path code |
//! | L101 | static lock-order: no path may acquire rank r₂ ≤ a held r₁ |
//! | L102 | no blocking I/O while an exclusive ranked lock is held |
//!
//! Violations render as `file:line:col: [Lxxx] message` (clickable in
//! terminals and CI). The escape hatch everywhere is
//! `// lint:allow(Lxxx, reason)` with a mandatory reason; L002
//! additionally accepts `// lock-rank: unranked(reason)` for locks whose
//! ordering discipline is not a static total order.
//!
//! L001–L006 are token rules; L101/L102 are whole-workspace flow rules
//! built on a lightweight item parser ([`parser`]) and a summary-fixpoint
//! call graph ([`callgraph`]) — the static complement of the dynamic
//! rank checker in `shims/parking_lot` (which only fires on interleavings
//! the test suite happens to execute). See `INVARIANTS.md` for the
//! witness-path diagnostic format and triage log.

pub mod callgraph;
pub mod lexer;
pub mod parser;
pub mod rules;
pub mod source;
pub mod workspace;

use std::fs;
use std::io;
use std::path::Path;

pub use rules::{RankDecl, Violation};
pub use source::{FileContext, SourceFile};

/// Lint a single file's source text under an explicit context. The
/// building block for both the workspace walk and the fixture tests.
pub fn lint_source(ctx: FileContext, source: &str) -> rules::FileReport {
    rules::check_file(&SourceFile::parse(ctx, source))
}

/// Outcome of a full workspace lint.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    pub violations: Vec<Violation>,
    pub rank_decls: Vec<RankDecl>,
    pub files_checked: usize,
}

/// Walk every workspace member's `src/` tree under `root` and run all
/// rules: per-file token rules, the cross-file rank-uniqueness pass, and
/// the workspace-wide flow analysis (L101/L102/L006).
pub fn lint_workspace(root: &Path) -> io::Result<WorkspaceReport> {
    let mut report = WorkspaceReport::default();
    // Parsed files retained for the flow analysis; shims are excluded
    // (the rank checker itself legitimately manipulates raw locks).
    let mut parsed: Vec<(SourceFile, parser::ParsedFile)> = Vec::new();
    for member in workspace::discover(root)? {
        for rel in &member.sources {
            let text = fs::read_to_string(root.join(rel))?;
            let ctx = FileContext {
                rel_path: rel.clone(),
                member: member.name.clone(),
            };
            let file = SourceFile::parse(ctx, &text);
            let file_report = rules::check_file(&file);
            report.violations.extend(file_report.violations);
            report.rank_decls.extend(file_report.rank_decls);
            report.files_checked += 1;
            if !file.ctx.is_shim() {
                let items = parser::parse_file(&file);
                parsed.push((file, items));
            }
        }
    }
    report
        .violations
        .extend(rules::check_rank_uniqueness(&report.rank_decls));
    let analysis = callgraph::Analysis::build(&parsed);
    report.violations.extend(analysis.check_flow());
    report.violations.extend(analysis.check_swallowed_results());
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok(report)
}
