//! `instant_lint` — the InstantDB workspace invariant checker.
//!
//! A dependency-free tokenizer + rule engine enforcing the invariants in
//! the workspace `INVARIANTS.md`:
//!
//! | rule | invariant |
//! |------|-----------|
//! | L001 | no `unwrap`/`expect`/`panic!` in hot-path crate library code |
//! | L002 | every `Mutex`/`RwLock` carries a globally-unique `lock-rank` |
//! | L003 | every `unsafe` carries a `SAFETY:` comment |
//! | L004 | no direct `std::sync` locks outside `shims/` |
//! | L005 | no printing from library code |
//!
//! Violations render as `file:line:col: [Lxxx] message` (clickable in
//! terminals and CI). The escape hatch everywhere is
//! `// lint:allow(Lxxx, reason)` with a mandatory reason; L002
//! additionally accepts `// lock-rank: unranked(reason)` for locks whose
//! ordering discipline is not a static total order.
//!
//! The static ranks declared here are enforced *dynamically* by the
//! `parking_lot` shim's debug-build rank checker — see
//! `shims/parking_lot` and `INVARIANTS.md`.

pub mod lexer;
pub mod rules;
pub mod source;
pub mod workspace;

use std::fs;
use std::io;
use std::path::Path;

pub use rules::{RankDecl, Violation};
pub use source::{FileContext, SourceFile};

/// Lint a single file's source text under an explicit context. The
/// building block for both the workspace walk and the fixture tests.
pub fn lint_source(ctx: FileContext, source: &str) -> rules::FileReport {
    rules::check_file(&SourceFile::parse(ctx, source))
}

/// Outcome of a full workspace lint.
#[derive(Debug, Default)]
pub struct WorkspaceReport {
    pub violations: Vec<Violation>,
    pub rank_decls: Vec<RankDecl>,
    pub files_checked: usize,
}

/// Walk every workspace member's `src/` tree under `root` and run all
/// rules, including the cross-file rank-uniqueness pass.
pub fn lint_workspace(root: &Path) -> io::Result<WorkspaceReport> {
    let mut report = WorkspaceReport::default();
    for member in workspace::discover(root)? {
        for rel in &member.sources {
            let text = fs::read_to_string(root.join(rel))?;
            let ctx = FileContext {
                rel_path: rel.clone(),
                member: member.name.clone(),
            };
            let file_report = lint_source(ctx, &text);
            report.violations.extend(file_report.violations);
            report.rank_decls.extend(file_report.rank_decls);
            report.files_checked += 1;
        }
    }
    report
        .violations
        .extend(rules::check_rank_uniqueness(&report.rank_decls));
    report
        .violations
        .sort_by(|a, b| (&a.file, a.line, a.col).cmp(&(&b.file, b.line, b.col)));
    Ok(report)
}
