//! A lightweight item/function parser on top of the lexer: just enough
//! structure for the call-graph rules (L101/L102) and the swallowed-
//! Result rule (L006).
//!
//! From each file's token stream it extracts:
//!
//! * **struct definitions** — field names, the identifiers appearing in
//!   each field's type (for receiver-chain resolution), and the
//!   `lock-rank:` annotation if the field is a `Mutex`/`RwLock`;
//! * **functions** (free and in `impl` blocks) — owner type, whether the
//!   return type mentions `Result`, which parameters are closures, and a
//!   structured **body**: a tree of blocks and statements whose nodes are
//!   the four events the flow analysis cares about — ranked-lock
//!   acquisitions, explicit `drop(guard)` calls, function/method calls
//!   (with closure arguments parsed as sub-blocks, so `with_frame`-style
//!   latch APIs can be modelled), and blocking-I/O leaves
//!   (`sync_all`/`sync_data`/`write_all`/`flush`).
//!
//! This is a heuristic parser, not a compiler front-end: it never
//! resolves types beyond following struct-field chains, and constructs it
//! does not understand are simply skipped. The analysis built on top
//! (`callgraph`) is designed so an unparsed construct can only *miss* a
//! finding, never invent one.

use crate::lexer::{Tok, TokKind};
use crate::source::{RankAnnotation, SourceFile};

/// A struct definition with the fields the resolver needs.
#[derive(Debug)]
pub struct StructDef {
    pub name: String,
    pub fields: Vec<FieldDef>,
}

/// One struct field: its name, every identifier mentioned in its type
/// (`shared: Arc<Shared>` → `["Arc", "Shared"]`), and its lock rank if
/// the type is a `Mutex<…>`/`RwLock<…>` with a `lock-rank:` annotation.
#[derive(Debug)]
pub struct FieldDef {
    pub name: String,
    pub type_idents: Vec<String>,
    pub is_lock: bool,
    /// `Some(rank)` for `// lock-rank: <N>`; `None` for unranked /
    /// unannotated locks (both are exempt from flow checking — L002
    /// already polices annotation presence).
    pub rank: Option<u32>,
    pub line: u32,
}

/// How a lock is acquired; mirrors the shim's API surface.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AcquireOp {
    Lock,
    Read,
    Write,
    TryLock,
    TryRead,
    TryWrite,
}

impl AcquireOp {
    pub fn from_name(name: &str) -> Option<AcquireOp> {
        Some(match name {
            "lock" => AcquireOp::Lock,
            "read" => AcquireOp::Read,
            "write" => AcquireOp::Write,
            "try_lock" => AcquireOp::TryLock,
            "try_read" => AcquireOp::TryRead,
            "try_write" => AcquireOp::TryWrite,
            _ => return None,
        })
    }

    /// Non-blocking acquisitions are tracked but never rank-checked
    /// (mirroring the dynamic checker: `try_*` cannot deadlock).
    pub fn is_blocking(self) -> bool {
        matches!(self, AcquireOp::Lock | AcquireOp::Read | AcquireOp::Write)
    }
}

/// Callee shape of a [`Node::Call`].
#[derive(Debug, Clone)]
pub enum CallTarget {
    /// `recv.m(...)`: the receiver is a `.`-separated chain of field
    /// accesses. `rooted` is true when the chain starts at `self` or a
    /// plain identifier (so field-type resolution may apply); false when
    /// the receiver is a computed expression (`foo().m(...)`).
    Method {
        chain: Vec<String>,
        name: String,
        rooted: bool,
    },
    /// `m(...)` or `a::b::m(...)`: path segments, last one the function
    /// name. A bare call has one segment.
    Path { segments: Vec<String> },
}

impl CallTarget {
    pub fn name(&self) -> &str {
        match self {
            CallTarget::Method { name, .. } => name,
            CallTarget::Path { segments } => segments.last().map(String::as_str).unwrap_or(""),
        }
    }
}

/// One flow-relevant event (or nested scope) inside a statement.
#[derive(Debug)]
pub enum Node {
    /// `chain.lock()` / `.read()` / `.write()` / `try_*()` on a receiver
    /// chain ending in a (potential) lock field.
    Acquire {
        chain: Vec<String>,
        rooted: bool,
        op: AcquireOp,
        binding: Option<String>,
        line: u32,
        col: u32,
    },
    /// `drop(guard)` / `std::mem::drop(guard)` with a plain identifier.
    DropGuard { name: String },
    /// A function or method call, with any closure-literal arguments
    /// parsed into their own blocks.
    Call {
        target: CallTarget,
        closures: Vec<Block>,
        line: u32,
        col: u32,
    },
    /// A blocking-I/O leaf: `sync_all`/`sync_data`/`write_all`/`flush`.
    Io {
        what: &'static str,
        line: u32,
        col: u32,
    },
    /// A nested `{ ... }` scope (block expression, match body, loop
    /// body): guards bound inside it die at its end.
    Nested(Block),
}

/// A `;`-terminated statement's events, in source order.
#[derive(Debug, Default)]
pub struct Stmt {
    pub nodes: Vec<Node>,
    /// Statement began with `let _ =` (the L006 swallowed-Result shape).
    pub let_underscore: bool,
    pub line: u32,
}

/// A braced scope.
#[derive(Debug, Default)]
pub struct Block {
    pub stmts: Vec<Stmt>,
}

/// A parsed function (free or method).
#[derive(Debug)]
pub struct FnDef {
    /// `impl` type for methods (`Db` for `impl Db { fn f }`), `None` for
    /// free functions.
    pub owner: Option<String>,
    pub name: String,
    pub line: u32,
    pub returns_result: bool,
    /// Parameter names whose types are closures (`impl Fn…`, or a
    /// generic parameter bounded by `Fn…`).
    pub closure_params: Vec<String>,
    pub body: Block,
    /// Inside `#[test]`/`#[cfg(test)]` code: excluded from flow analysis
    /// (tests deliberately exercise inversions).
    pub is_test: bool,
}

/// Everything the call-graph pass needs from one file.
#[derive(Debug, Default)]
pub struct ParsedFile {
    pub structs: Vec<StructDef>,
    pub fns: Vec<FnDef>,
}

/// Parse the item structure of `file`.
pub fn parse_file(file: &SourceFile) -> ParsedFile {
    let mut p = Parser {
        file,
        toks: file.tokens(),
        out: ParsedFile::default(),
    };
    p.parse_items(0, file.tokens().len(), None);
    p.out
}

struct Parser<'a> {
    file: &'a SourceFile,
    toks: &'a [Tok],
    out: ParsedFile,
}

const KEYWORDS_NOT_CALLS: &[&str] = &[
    "if", "else", "while", "for", "match", "loop", "return", "break", "continue", "move", "in",
    "as", "where",
];

impl<'a> Parser<'a> {
    fn tok(&self, i: usize) -> Option<&Tok> {
        self.toks.get(i)
    }

    fn is_punct(&self, i: usize, ch: char) -> bool {
        self.tok(i).is_some_and(|t| t.is_punct(ch))
    }

    fn is_ident(&self, i: usize, text: &str) -> bool {
        self.tok(i).is_some_and(|t| t.is_ident(text))
    }

    /// Scan items in `[start, end)`: struct defs, impl blocks, fns.
    /// `owner` is the enclosing impl type, if any.
    fn parse_items(&mut self, start: usize, end: usize, owner: Option<&str>) {
        let mut i = start;
        while i < end {
            if self.is_ident(i, "struct") {
                i = self.parse_struct(i, end);
            } else if self.is_ident(i, "impl") && owner.is_none() {
                i = self.parse_impl(i, end);
            } else if self.is_ident(i, "fn") {
                i = self.parse_fn(i, end, owner);
            } else if self.is_punct(i, '{') {
                // Modules, trait bodies: recurse so nested items are seen.
                let close = self.matching_brace(i, end);
                self.parse_items(i + 1, close, owner);
                i = close + 1;
            } else {
                i += 1;
            }
        }
    }

    /// Index of the `}` matching the `{` at `open` (or `end - 1`).
    fn matching_brace(&self, open: usize, end: usize) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < end {
            if self.is_punct(i, '{') {
                depth += 1;
            } else if self.is_punct(i, '}') {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        end.saturating_sub(1)
    }

    /// `struct Name { fields }` (unit / tuple structs carry nothing we
    /// need). Returns the index just past the item.
    fn parse_struct(&mut self, kw: usize, end: usize) -> usize {
        let Some(name_tok) = self.tok(kw + 1) else {
            return kw + 1;
        };
        if name_tok.kind != TokKind::Ident {
            return kw + 1;
        }
        let name = name_tok.text.clone();
        // Walk to the body `{` (skipping generics / where clause) or a
        // `;` / `(` ending a unit / tuple struct.
        let mut i = kw + 2;
        while i < end {
            if self.is_punct(i, '{') {
                break;
            }
            if self.is_punct(i, ';') || self.is_punct(i, '(') {
                return i + 1;
            }
            i += 1;
        }
        if i >= end {
            return end;
        }
        let close = self.matching_brace(i, end);
        let fields = self.parse_fields(i + 1, close);
        self.out.structs.push(StructDef { name, fields });
        close + 1
    }

    /// Fields between a struct body's braces: `vis? name : type ,`.
    fn parse_fields(&mut self, start: usize, end: usize) -> Vec<FieldDef> {
        let mut fields = Vec::new();
        let mut i = start;
        while i < end {
            // Skip attributes on the field.
            while self.is_punct(i, '#') && self.is_punct(i + 1, '[') {
                let mut depth = 0usize;
                i += 1;
                while i < end {
                    if self.is_punct(i, '[') {
                        depth += 1;
                    } else if self.is_punct(i, ']') {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    i += 1;
                }
                i += 1;
            }
            if self.is_ident(i, "pub") {
                i += 1;
                if self.is_punct(i, '(') {
                    // pub(crate) etc.
                    while i < end && !self.is_punct(i, ')') {
                        i += 1;
                    }
                    i += 1;
                }
            }
            let (Some(name_tok), true) = (self.tok(i), self.is_punct(i + 1, ':')) else {
                i += 1;
                continue;
            };
            if name_tok.kind != TokKind::Ident {
                i += 1;
                continue;
            }
            let name = name_tok.text.clone();
            let line = name_tok.line;
            // Type runs to the `,` at angle/paren depth 0, or the body end.
            let mut j = i + 2;
            let mut angle = 0i32;
            let mut paren = 0i32;
            let mut type_idents = Vec::new();
            while j < end {
                let t = &self.toks[j];
                if t.is_punct(',') && angle == 0 && paren == 0 {
                    break;
                }
                match t.text.as_str() {
                    "<" => angle += 1,
                    // `->` inside fn-pointer types closes nothing.
                    ">" if !self.is_punct(j.wrapping_sub(1), '-') => angle -= 1,
                    "(" => paren += 1,
                    ")" => paren -= 1,
                    _ => {}
                }
                if t.kind == TokKind::Ident {
                    type_idents.push(t.text.clone());
                }
                j += 1;
            }
            let is_lock = type_idents.iter().any(|t| t == "Mutex" || t == "RwLock");
            let rank = if is_lock {
                match self.file.lock_rank(line) {
                    Some(RankAnnotation::Ranked(r)) => Some(r),
                    _ => None,
                }
            } else {
                None
            };
            fields.push(FieldDef {
                name,
                type_idents,
                is_lock,
                rank,
                line,
            });
            i = j + 1;
        }
        fields
    }

    /// `impl<…> Type { … }` / `impl<…> Trait for Type { … }`. The owner
    /// is the last path-segment identifier of the implemented type.
    fn parse_impl(&mut self, kw: usize, end: usize) -> usize {
        let mut i = kw + 1;
        // Generics on the impl itself.
        if self.is_punct(i, '<') {
            i = self.skip_angles(i, end);
        }
        // First type path; if `for` follows, the real type is the second.
        let (first, mut i2) = self.read_type_path(i, end);
        let owner = if self.is_ident(i2, "for") {
            let (second, j) = self.read_type_path(i2 + 1, end);
            i2 = j;
            second
        } else {
            first
        };
        // Walk to the body (skips where clauses).
        let mut j = i2;
        while j < end && !self.is_punct(j, '{') {
            j += 1;
        }
        if j >= end {
            return end;
        }
        let close = self.matching_brace(j, end);
        if let Some(owner) = owner {
            self.parse_items(j + 1, close, Some(&owner));
        }
        close + 1
    }

    /// Read a type path (`a::b::Name<…>`), returning its last plain
    /// identifier and the index just past it (incl. generics).
    fn read_type_path(&self, mut i: usize, end: usize) -> (Option<String>, usize) {
        let mut last = None;
        while i < end {
            let Some(t) = self.tok(i) else { break };
            if t.kind == TokKind::Ident && !matches!(t.text.as_str(), "for" | "where") {
                last = Some(t.text.clone());
                i += 1;
            } else if t.is_punct(':') {
                i += 1;
            } else if t.is_punct('<') {
                i = self.skip_angles(i, end);
            } else if t.is_punct('&') || t.kind == TokKind::Lifetime || t.is_ident("mut") {
                i += 1;
            } else {
                break;
            }
        }
        (last, i)
    }

    /// Skip a balanced `<…>` starting at `<`; `->` arrows inside do not
    /// count as closers.
    fn skip_angles(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < end {
            if self.is_punct(i, '<') {
                depth += 1;
            } else if self.is_punct(i, '>') && !self.is_punct(i.wrapping_sub(1), '-') {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            }
            i += 1;
        }
        end
    }

    /// `fn name<…>(params) -> Ret { body }`. Returns the index just past
    /// the item.
    fn parse_fn(&mut self, kw: usize, end: usize, owner: Option<&str>) -> usize {
        let Some(name_tok) = self.tok(kw + 1) else {
            return kw + 1;
        };
        if name_tok.kind != TokKind::Ident {
            return kw + 1;
        }
        let name = name_tok.text.clone();
        let line = name_tok.line;
        let mut i = kw + 2;
        // Generic parameters: collect which ones are closure-bounded.
        let mut fn_generic_closures: Vec<String> = Vec::new();
        if self.is_punct(i, '<') {
            let close = self.skip_angles(i, end);
            self.collect_fn_bounded_generics(i + 1, close - 1, &mut fn_generic_closures);
            i = close;
        }
        // Parameter list.
        let mut closure_params = Vec::new();
        if self.is_punct(i, '(') {
            let mut depth = 0i32;
            let open = i;
            while i < end {
                if self.is_punct(i, '(') {
                    depth += 1;
                } else if self.is_punct(i, ')') {
                    depth -= 1;
                    if depth == 0 {
                        break;
                    }
                }
                i += 1;
            }
            self.collect_closure_params(open + 1, i, &fn_generic_closures, &mut closure_params);
            i += 1;
        }
        // Return type / where clause up to the body or `;`.
        let mut returns_result = false;
        while i < end && !self.is_punct(i, '{') {
            if self.is_punct(i, ';') {
                return i + 1; // trait method declaration, no body
            }
            if self.is_ident(i, "Result") {
                returns_result = true;
            }
            if self.is_ident(i, "where") {
                // Bounds after `where` are not the return type.
                while i < end && !self.is_punct(i, '{') && !self.is_punct(i, ';') {
                    i += 1;
                }
                break;
            }
            i += 1;
        }
        if i >= end || !self.is_punct(i, '{') {
            return i;
        }
        let close = self.matching_brace(i, end);
        let body = self.parse_block(i + 1, close);
        // Nested fns/items inside the body are still discovered.
        self.parse_items(i + 1, close, owner);
        self.out.fns.push(FnDef {
            owner: owner.map(str::to_string),
            name,
            line,
            returns_result,
            closure_params,
            body,
            is_test: self.file.in_test_code(line),
        });
        close + 1
    }

    /// Inside `fn` generics: record generic names bounded by `Fn*`
    /// (`F: FnOnce(&Page) -> R`).
    fn collect_fn_bounded_generics(&self, start: usize, end: usize, out: &mut Vec<String>) {
        let mut i = start;
        while i < end {
            if self.tok(i).is_some_and(|t| t.kind == TokKind::Ident) && self.is_punct(i + 1, ':') {
                let gname = self.toks[i].text.clone();
                let mut j = i + 2;
                while j < end && !self.is_punct(j, ',') {
                    if self
                        .tok(j)
                        .is_some_and(|t| matches!(t.text.as_str(), "Fn" | "FnOnce" | "FnMut"))
                    {
                        out.push(gname.clone());
                        break;
                    }
                    j += 1;
                }
                i = j;
            } else {
                i += 1;
            }
        }
    }

    /// Params whose type mentions `Fn*` (or a closure-bounded generic)
    /// are closure params.
    fn collect_closure_params(
        &self,
        start: usize,
        end: usize,
        generics: &[String],
        out: &mut Vec<String>,
    ) {
        let mut i = start;
        let mut angle = 0i32;
        let mut paren = 0i32;
        while i < end {
            let t = &self.toks[i];
            match t.text.as_str() {
                "<" => angle += 1,
                ">" if !self.is_punct(i.wrapping_sub(1), '-') => angle -= 1,
                "(" => paren += 1,
                ")" => paren -= 1,
                _ => {}
            }
            // A parameter name at top level of the list.
            if t.kind == TokKind::Ident
                && angle == 0
                && paren == 0
                && self.is_punct(i + 1, ':')
                && !self.is_punct(i.wrapping_sub(1), ':')
            {
                let pname = t.text.clone();
                // Scan this param's type for closure evidence.
                let mut j = i + 2;
                let mut a2 = 0i32;
                let mut p2 = 0i32;
                let mut is_closure = false;
                while j < end {
                    let u = &self.toks[j];
                    if u.is_punct(',') && a2 == 0 && p2 == 0 {
                        break;
                    }
                    match u.text.as_str() {
                        "<" => a2 += 1,
                        ">" if !self.is_punct(j.wrapping_sub(1), '-') => a2 -= 1,
                        "(" => p2 += 1,
                        ")" => p2 -= 1,
                        "Fn" | "FnOnce" | "FnMut" => is_closure = true,
                        other if generics.iter().any(|g| g == other) => is_closure = true,
                        _ => {}
                    }
                    j += 1;
                }
                if is_closure {
                    out.push(pname);
                }
                i = j;
            } else {
                i += 1;
            }
        }
    }

    /// Parse a function-body region `[start, end)` (exclusive of its own
    /// braces) into a block of statements.
    fn parse_block(&self, start: usize, end: usize) -> Block {
        let mut block = Block::default();
        let mut stmt = Stmt::default();
        let mut i = start;
        while i < end {
            let t = &self.toks[i];
            if stmt.nodes.is_empty() && stmt.line == 0 {
                stmt.line = t.line;
            }
            if t.is_punct(';') {
                block.stmts.push(std::mem::take(&mut stmt));
                i += 1;
                continue;
            }
            if t.is_punct('{') {
                let close = self.matching_brace(i, end);
                stmt.nodes
                    .push(Node::Nested(self.parse_block(i + 1, close)));
                i = close + 1;
                continue;
            }
            if t.is_punct('}') {
                // Stray close (shouldn't happen with matched input).
                i += 1;
                continue;
            }
            // `let _ =` opener.
            if t.is_ident("let")
                && self.is_ident(i + 1, "_")
                && self.is_punct(i + 2, '=')
                && stmt.nodes.is_empty()
            {
                stmt.let_underscore = true;
                stmt.line = t.line;
                i += 3;
                continue;
            }
            // `drop(name)` / `std::mem::drop(name)`.
            if t.is_ident("drop")
                && self.is_punct(i + 1, '(')
                && self.tok(i + 2).is_some_and(|u| u.kind == TokKind::Ident)
                && self.is_punct(i + 3, ')')
            {
                stmt.nodes.push(Node::DropGuard {
                    name: self.toks[i + 2].text.clone(),
                });
                i += 4;
                continue;
            }
            // Calls: an identifier directly followed by `(`. A nested
            // `fn name(...)` signature is an item, not a call.
            if t.kind == TokKind::Ident
                && self.is_punct(i + 1, '(')
                && !KEYWORDS_NOT_CALLS.contains(&t.text.as_str())
                && !self.is_punct(i.wrapping_sub(1), '!')
                && !self.is_ident(i.wrapping_sub(1), "fn")
            {
                i = self.parse_call(i, end, &mut stmt);
                continue;
            }
            i += 1;
        }
        if !stmt.nodes.is_empty() || stmt.let_underscore {
            block.stmts.push(stmt);
        }
        block
    }

    /// Parse the call whose name token is at `i` (followed by `(`).
    /// Emits an Acquire / Io / Call node and recurses into the argument
    /// region for nested events and closure literals. Returns the index
    /// of the token after the call name (arguments are consumed
    /// separately below).
    fn parse_call(&self, name_at: usize, end: usize, stmt: &mut Stmt) -> usize {
        let name_tok = &self.toks[name_at];
        let name = name_tok.text.clone();
        let (line, col) = (name_tok.line, name_tok.col);
        let open = name_at + 1; // the `(`
        let close = self.matching_paren(open, end);
        let zero_args = close == open + 1;

        let is_method = self.is_punct(name_at.wrapping_sub(1), '.');
        let target = if is_method {
            let (chain, rooted) = self.receiver_chain(name_at - 1);
            CallTarget::Method {
                chain,
                name: name.clone(),
                rooted,
            }
        } else {
            CallTarget::Path {
                segments: self.path_segments(name_at),
            }
        };

        // Lock acquisition: zero-arg lock/read/write/try_* method call.
        if let (true, true, Some(op)) = (is_method, zero_args, AcquireOp::from_name(&name)) {
            if let CallTarget::Method { chain, rooted, .. } = &target {
                if !chain.is_empty() {
                    // `let x = y.lock().clone()` binds the *clone*: a
                    // chained call consumes the guard at statement end,
                    // so any `let` binding does not name the guard.
                    let chained = self.toks.get(close + 1).is_some_and(|t| t.is_punct('.'));
                    stmt.nodes.push(Node::Acquire {
                        chain: chain.clone(),
                        rooted: *rooted,
                        op,
                        binding: if chained {
                            None
                        } else {
                            self.binding_before(name_at, chain.len())
                        },
                        line,
                        col,
                    });
                    return close + 1;
                }
            }
            // Receiver-less / computed-receiver acquire (e.g.
            // `shard_of(id).frames.lock()` keeps its chain; a truly empty
            // chain falls through to a plain call).
        }

        // Blocking-I/O leaves. `write`/`read` with arguments are I/O-ish
        // too, but far too ambiguous (Vec writes, io::Read): the leaf set
        // is the syscalls the fsync discipline actually cares about.
        if is_method {
            let io_what = match name.as_str() {
                "sync_all" | "sync_data" if zero_args => Some("fsync"),
                "write_all" if !zero_args => Some("write"),
                "flush" if zero_args => Some("flush"),
                _ => None,
            };
            if let Some(what) = io_what {
                stmt.nodes.push(Node::Io { what, line, col });
                // Arguments may still contain events.
                self.parse_args_into(open, close, stmt);
                return close + 1;
            }
        }

        let mut closures = Vec::new();
        self.parse_args(open, close, stmt, &mut closures);
        stmt.nodes.push(Node::Call {
            target,
            closures,
            line,
            col,
        });
        close + 1
    }

    fn matching_paren(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i < end {
            if self.is_punct(i, '(') {
                depth += 1;
            } else if self.is_punct(i, ')') {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        end.saturating_sub(1)
    }

    /// Argument region scan that keeps nested events but attaches closure
    /// literals to `closures` instead of the surrounding statement.
    fn parse_args(&self, open: usize, close: usize, stmt: &mut Stmt, closures: &mut Vec<Block>) {
        let mut i = open + 1;
        while i < close {
            let t = &self.toks[i];
            // Closure literal at this call's argument level: `|` right
            // after `(`, `,` or `move`.
            if t.is_punct('|') {
                let prev = self.toks.get(i.wrapping_sub(1));
                let starts_closure =
                    prev.is_some_and(|p| p.is_punct('(') || p.is_punct(',') || p.is_ident("move"));
                if starts_closure {
                    // Params run to the next `|` (or none for `||`).
                    let mut j = i + 1;
                    while j < close && !self.is_punct(j, '|') {
                        j += 1;
                    }
                    let body_start = j + 1;
                    let blk = if self.is_punct(body_start, '{') {
                        let bclose = self.matching_brace(body_start, close);
                        let b = self.parse_block(body_start + 1, bclose);
                        i = bclose + 1;
                        b
                    } else {
                        // Expression body: runs to the `,` at this call's
                        // level or the closing paren.
                        let mut k = body_start;
                        let mut depth = 0i32;
                        while k < close {
                            let u = &self.toks[k];
                            if depth == 0 && u.is_punct(',') {
                                break;
                            }
                            match u.text.as_str() {
                                "(" | "[" | "{" => depth += 1,
                                ")" | "]" | "}" => depth -= 1,
                                _ => {}
                            }
                            k += 1;
                        }
                        let b = self.parse_block(body_start, k);
                        i = k;
                        b
                    };
                    closures.push(blk);
                    continue;
                }
            }
            if t.is_punct('{') {
                let bclose = self.matching_brace(i, close);
                stmt.nodes
                    .push(Node::Nested(self.parse_block(i + 1, bclose)));
                i = bclose + 1;
                continue;
            }
            if t.kind == TokKind::Ident
                && self.is_punct(i + 1, '(')
                && !KEYWORDS_NOT_CALLS.contains(&t.text.as_str())
                && !self.is_punct(i.wrapping_sub(1), '!')
                && !self.is_ident(i.wrapping_sub(1), "fn")
            {
                i = self.parse_call(i, close, stmt);
                continue;
            }
            i += 1;
        }
    }

    /// Like [`parse_args`] but closures (none expected) stay inline.
    fn parse_args_into(&self, open: usize, close: usize, stmt: &mut Stmt) {
        let mut sink = Vec::new();
        self.parse_args(open, close, stmt, &mut sink);
        for blk in sink {
            stmt.nodes.push(Node::Nested(blk));
        }
    }

    /// Walk back from the `.` before a method name, collecting the
    /// receiver chain (`self.shared.queue` → `["self","shared","queue"]`,
    /// tuple indices included). Returns (chain, rooted): rooted is false
    /// when the chain hangs off a computed expression (`foo().x.m()`).
    fn receiver_chain(&self, dot_at: usize) -> (Vec<String>, bool) {
        let mut chain = Vec::new();
        let mut i = dot_at; // points at a `.`
        loop {
            let Some(seg) = self.tok(i.wrapping_sub(1)) else {
                return (reversed(chain), false);
            };
            if seg.kind == TokKind::Ident || seg.kind == TokKind::Literal {
                chain.push(seg.text.clone());
                let before = i.wrapping_sub(2);
                if self.is_punct(before, '.') {
                    i = before;
                    continue;
                }
                // Chain start: rooted unless it follows `)`/`]` (method
                // result) or `?`.
                let rooted = !(self.is_punct(before, ')')
                    || self.is_punct(before, ']')
                    || self.is_punct(before, '?'));
                return (reversed(chain), rooted);
            }
            // `foo().m()`, `arr[i].m()`, `x?.m()` — computed receiver.
            return (reversed(chain), false);
        }
    }

    /// Path segments ending at the call name (`a::b::m` → `[a, b, m]`).
    fn path_segments(&self, name_at: usize) -> Vec<String> {
        let mut segs = vec![self.toks[name_at].text.clone()];
        let mut i = name_at;
        while self.is_punct(i.wrapping_sub(1), ':') && self.is_punct(i.wrapping_sub(2), ':') {
            let Some(seg) = self.tok(i.wrapping_sub(3)) else {
                break;
            };
            if seg.kind != TokKind::Ident {
                break;
            }
            segs.push(seg.text.clone());
            i -= 3;
        }
        segs.reverse();
        segs
    }

    /// If the acquire expression is bound (`let g = chain.lock()` /
    /// `let Some(g) = chain.try_lock()` via `if let` / `while let` /
    /// `match` arms are approximated by the `let` forms), return the
    /// bound name. `chain_len` identifiers plus their dots precede the
    /// method name.
    fn binding_before(&self, name_at: usize, chain_len: usize) -> Option<String> {
        // name_at - 1 is `.`; the chain occupies 2*chain_len tokens
        // before it (ident + dot pairs), ending at the chain root.
        let root_at = name_at.checked_sub(2 * chain_len)?;
        let mut i = root_at.checked_sub(1)?; // token before the chain root
        if !self.is_punct(i, '=') {
            return None;
        }
        i = i.checked_sub(1)?;
        // `let Some(g) =` — closing paren before `=`.
        if self.is_punct(i, ')') {
            let inner = self.tok(i.checked_sub(1)?)?;
            if inner.kind == TokKind::Ident && self.is_punct(i.checked_sub(2)?, '(') {
                return Some(inner.text.clone());
            }
            return None;
        }
        let name = self.tok(i)?;
        if name.kind != TokKind::Ident {
            return None;
        }
        let mut j = i.checked_sub(1)?;
        if self.is_ident(j, "mut") {
            j = j.checked_sub(1)?;
        }
        if self.is_ident(j, "let") {
            return Some(name.text.clone());
        }
        None
    }
}

fn reversed(mut v: Vec<String>) -> Vec<String> {
    v.reverse();
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::{FileContext, SourceFile};

    fn parse(src: &str) -> ParsedFile {
        let file = SourceFile::parse(
            FileContext {
                rel_path: "crates/demo/src/lib.rs".into(),
                member: "crates/demo".into(),
            },
            src,
        );
        parse_file(&file)
    }

    #[test]
    fn struct_fields_and_ranks() {
        let p = parse(
            "pub struct Db {\n\
                 pool: Arc<BufferPool>,\n\
                 gate: RwLock<()>, // lock-rank: 210\n\
                 serial: Mutex<()>, // lock-rank: unranked(demo)\n\
             }\n",
        );
        assert_eq!(p.structs.len(), 1);
        let s = &p.structs[0];
        assert_eq!(s.name, "Db");
        assert_eq!(s.fields.len(), 3);
        assert_eq!(s.fields[0].type_idents, vec!["Arc", "BufferPool"]);
        assert!(!s.fields[0].is_lock);
        assert!(s.fields[1].is_lock);
        assert_eq!(s.fields[1].rank, Some(210));
        assert!(s.fields[2].is_lock);
        assert_eq!(s.fields[2].rank, None);
    }

    #[test]
    fn impl_methods_get_their_owner() {
        let p = parse(
            "impl Db { fn open() {} }\n\
             impl std::fmt::Debug for Db { fn fmt(&self) {} }\n\
             fn free() {}\n",
        );
        let names: Vec<(Option<&str>, &str)> = p
            .fns
            .iter()
            .map(|f| (f.owner.as_deref(), f.name.as_str()))
            .collect();
        assert!(names.contains(&(Some("Db"), "open")));
        assert!(names.contains(&(Some("Db"), "fmt")));
        assert!(names.contains(&(None, "free")));
    }

    #[test]
    fn acquire_nodes_with_chain_binding_and_op() {
        let p = parse(
            "impl Db {\n\
               fn f(&self) {\n\
                 let _shared = self.gate.read();\n\
                 *self.state.lock() = 1;\n\
                 let g = self.shared.queue.lock();\n\
                 drop(g);\n\
                 let q = self.serial.try_lock();\n\
               }\n\
             }\n",
        );
        let body = &p.fns[0].body;
        let mut acquires = Vec::new();
        for s in &body.stmts {
            for n in &s.nodes {
                if let Node::Acquire {
                    chain, op, binding, ..
                } = n
                {
                    acquires.push((chain.join("."), *op, binding.clone()));
                }
            }
        }
        assert_eq!(
            acquires,
            vec![
                (
                    "self.gate".to_string(),
                    AcquireOp::Read,
                    Some("_shared".to_string())
                ),
                ("self.state".to_string(), AcquireOp::Lock, None),
                (
                    "self.shared.queue".to_string(),
                    AcquireOp::Lock,
                    Some("g".to_string())
                ),
                (
                    "self.serial".to_string(),
                    AcquireOp::TryLock,
                    Some("q".to_string())
                ),
            ]
        );
        assert!(body
            .stmts
            .iter()
            .flat_map(|s| &s.nodes)
            .any(|n| matches!(n, Node::DropGuard { name } if name == "g")));
    }

    #[test]
    fn closure_args_become_sub_blocks() {
        let p = parse(
            "impl Pool {\n\
               fn f(&self) {\n\
                 self.latch.with_frame(1, |page| {\n\
                     self.low.lock();\n\
                 });\n\
               }\n\
             }\n",
        );
        let stmt = &p.fns[0].body.stmts[0];
        let call = stmt
            .nodes
            .iter()
            .find_map(|n| match n {
                Node::Call {
                    target, closures, ..
                } if target.name() == "with_frame" => Some(closures),
                _ => None,
            })
            .expect("with_frame call parsed");
        assert_eq!(call.len(), 1);
        let inner = &call[0].stmts[0].nodes[0];
        assert!(matches!(inner, Node::Acquire { chain, .. } if chain.join(".") == "self.low"));
    }

    #[test]
    fn closure_params_detected() {
        let p = parse(
            "fn with_frame<R, F: FnOnce(&mut u32) -> R>(&self, f: F) -> R { f(&mut 0) }\n\
             fn plain(x: u32) {}\n\
             fn impl_form(&self, g: impl FnMut() -> u32) { g() }\n",
        );
        assert_eq!(p.fns[0].closure_params, vec!["f"]);
        assert!(p.fns[1].closure_params.is_empty());
        assert_eq!(p.fns[2].closure_params, vec!["g"]);
    }

    #[test]
    fn io_leaves_and_result_returns() {
        let p = parse(
            "impl W {\n\
               fn sync(&self) -> Result<()> {\n\
                 self.file.sync_all();\n\
                 self.out.write_all(&buf);\n\
                 self.out.flush();\n\
                 Ok(())\n\
               }\n\
             }\n",
        );
        let f = &p.fns[0];
        assert!(f.returns_result);
        let io: Vec<&str> = f
            .body
            .stmts
            .iter()
            .flat_map(|s| &s.nodes)
            .filter_map(|n| match n {
                Node::Io { what, .. } => Some(*what),
                _ => None,
            })
            .collect();
        assert_eq!(io, vec!["fsync", "write", "flush"]);
    }

    #[test]
    fn let_underscore_and_path_calls() {
        let p = parse(
            "fn f() {\n\
                 let _ = protocol::write_frame(s, frame);\n\
                 let _ = h.join();\n\
             }\n",
        );
        let stmts = &p.fns[0].body.stmts;
        assert!(stmts[0].let_underscore);
        match &stmts[0].nodes[0] {
            Node::Call { target, .. } => match target {
                CallTarget::Path { segments } => {
                    assert_eq!(
                        segments,
                        &vec!["protocol".to_string(), "write_frame".into()]
                    )
                }
                other => panic!("expected path call, got {other:?}"),
            },
            other => panic!("expected call, got {other:?}"),
        }
        assert!(stmts[1].let_underscore);
    }

    #[test]
    fn test_code_is_marked() {
        let p = parse(
            "fn prod() {}\n\
             #[cfg(test)]\n\
             mod tests {\n\
                 #[test]\n\
                 fn t() { helper(); }\n\
             }\n",
        );
        let prod = p.fns.iter().find(|f| f.name == "prod").unwrap();
        let test = p.fns.iter().find(|f| f.name == "t").unwrap();
        assert!(!prod.is_test);
        assert!(test.is_test);
    }
}
