//! The five invariant rules (L001–L005). Each is a pure function over a
//! [`SourceFile`]'s token stream; rationale and escape hatches are
//! documented per rule and in the workspace `INVARIANTS.md`.

use std::fmt;

use crate::source::{RankAnnotation, SourceFile};

/// One rule violation, positioned for clickable terminal output.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    pub file: String,
    pub line: u32,
    pub col: u32,
    pub rule: &'static str,
    pub message: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}:{}: [{}] {}",
            self.file, self.line, self.col, self.rule, self.message
        )
    }
}

/// A `// lock-rank: <N>` declaration site, collected per file so the
/// workspace pass can check global uniqueness.
#[derive(Debug, Clone)]
pub struct RankDecl {
    pub rank: u32,
    pub file: String,
    pub line: u32,
    pub col: u32,
}

/// Everything a single-file lint pass produces.
#[derive(Debug, Default)]
pub struct FileReport {
    pub violations: Vec<Violation>,
    pub rank_decls: Vec<RankDecl>,
}

/// Run every applicable rule on one file.
pub fn check_file(file: &SourceFile) -> FileReport {
    let mut report = FileReport::default();
    l001_panic_hygiene(file, &mut report);
    l002_lock_ranks(file, &mut report);
    l003_safety_comments(file, &mut report);
    l004_std_sync_imports(file, &mut report);
    l005_print_hygiene(file, &mut report);
    report
}

/// Cross-file pass: declared lock ranks must be globally unique (two
/// locks that share a rank can never be held together under the shim's
/// strict ordering, which is almost never what the author meant).
pub fn check_rank_uniqueness(decls: &[RankDecl]) -> Vec<Violation> {
    let mut sorted: Vec<&RankDecl> = decls.iter().collect();
    sorted.sort_by_key(|d| (d.rank, d.file.clone(), d.line));
    let mut out = Vec::new();
    for pair in sorted.windows(2) {
        if pair[0].rank == pair[1].rank {
            out.push(Violation {
                file: pair[1].file.clone(),
                line: pair[1].line,
                col: pair[1].col,
                rule: "L002",
                message: format!(
                    "duplicate lock-rank {} (first declared at {}:{})",
                    pair[1].rank, pair[0].file, pair[0].line
                ),
            });
        }
    }
    out
}

fn violation(
    file: &SourceFile,
    line: u32,
    col: u32,
    rule: &'static str,
    message: String,
) -> Violation {
    Violation {
        file: file.ctx.rel_path.clone(),
        line,
        col,
        rule,
        message,
    }
}

/// L001: no `unwrap`/`expect`/`panic!` in non-test, non-binary code of
/// the four hot-path crates (`wal`, `server`, `core`, `storage`). A
/// panic there kills a daemon thread silently and voids the durability /
/// timely-degradation guarantee. Escape: `// lint:allow(L001, reason)`
/// for provably-infallible cases. `assert!`/`debug_assert!` are exempt
/// by design: they state invariants, they don't handle errors.
fn l001_panic_hygiene(file: &SourceFile, report: &mut FileReport) {
    if !file.ctx.panic_hygiene_applies() || file.ctx.is_bin() {
        return;
    }
    let toks = file.tokens();
    for (i, tok) in toks.iter().enumerate() {
        let flagged = match tok.text.as_str() {
            // Method-position only (`.unwrap()`): `unwrap_or` etc. are
            // distinct idents and never match.
            "unwrap" | "expect" | "unwrap_err" | "expect_err" => i > 0 && toks[i - 1].is_punct('.'),
            "panic" => toks.get(i + 1).is_some_and(|t| t.is_punct('!')),
            _ => false,
        };
        if !flagged || file.in_test_code(tok.line) || file.allows("L001", tok.line) {
            continue;
        }
        let what = if tok.text == "panic" {
            "panic!".to_string()
        } else {
            format!(".{}()", tok.text)
        };
        report.violations.push(violation(
            file,
            tok.line,
            tok.col,
            "L001",
            format!(
                "{what} in hot-path code: return a typed Error, or justify with \
                 `// lint:allow(L001, reason)`"
            ),
        ));
    }
}

/// L002: every `Mutex<...>` / `RwLock<...>` type mention in non-test,
/// non-shim code must carry a `// lock-rank: <N>` annotation (or
/// `lock-rank: unranked(reason)` for locks whose discipline is not a
/// static total order). Declared ranks are collected for the global
/// uniqueness pass. Rank 0 is reserved for the shim's "unchecked"
/// sentinel and may not be declared.
fn l002_lock_ranks(file: &SourceFile, report: &mut FileReport) {
    if file.ctx.is_shim() {
        return;
    }
    let toks = file.tokens();
    for (i, tok) in toks.iter().enumerate() {
        let is_lock_type = (tok.is_ident("Mutex") || tok.is_ident("RwLock"))
            && toks.get(i + 1).is_some_and(|t| t.is_punct('<'));
        if !is_lock_type || file.in_test_code(tok.line) {
            continue;
        }
        match file.lock_rank(tok.line) {
            Some(RankAnnotation::Ranked(0)) => {
                report.violations.push(violation(
                    file,
                    tok.line,
                    tok.col,
                    "L002",
                    "lock-rank 0 is reserved (it means unchecked); use \
                     `lock-rank: unranked(reason)` to opt out explicitly"
                        .to_string(),
                ));
            }
            Some(RankAnnotation::Ranked(rank)) => {
                report.rank_decls.push(RankDecl {
                    rank,
                    file: file.ctx.rel_path.clone(),
                    line: tok.line,
                    col: tok.col,
                });
            }
            Some(RankAnnotation::Unranked { reason_ok: true }) => {}
            Some(RankAnnotation::Unranked { reason_ok: false }) => {
                report.violations.push(violation(
                    file,
                    tok.line,
                    tok.col,
                    "L002",
                    "`lock-rank: unranked(...)` needs a non-empty reason".to_string(),
                ));
            }
            Some(RankAnnotation::Malformed) => {
                report.violations.push(violation(
                    file,
                    tok.line,
                    tok.col,
                    "L002",
                    "malformed lock-rank annotation: expected `lock-rank: <N>` or \
                     `lock-rank: unranked(reason)`"
                        .to_string(),
                ));
            }
            None if file.allows("L002", tok.line) => {}
            None => {
                report.violations.push(violation(
                    file,
                    tok.line,
                    tok.col,
                    "L002",
                    format!(
                        "{} needs a `// lock-rank: <N>` annotation (or \
                         `lock-rank: unranked(reason)`); see INVARIANTS.md",
                        tok.text
                    ),
                ));
            }
        }
    }
}

/// L003: every `unsafe` keyword needs a `SAFETY:` comment on the same
/// line or directly above. Applies everywhere, including tests — an
/// unjustified `unsafe` is no better for being in a test.
fn l003_safety_comments(file: &SourceFile, report: &mut FileReport) {
    for tok in file.tokens() {
        if !tok.is_ident("unsafe") {
            continue;
        }
        if file.has_safety_comment(tok.line) || file.allows("L003", tok.line) {
            continue;
        }
        report.violations.push(violation(
            file,
            tok.line,
            tok.col,
            "L003",
            "`unsafe` without a `// SAFETY:` comment explaining why the \
             obligations hold"
                .to_string(),
        ));
    }
}

/// L004: no direct `std::sync::{Mutex, RwLock, Condvar}` outside
/// `shims/` — every lock goes through the `parking_lot` shim so the
/// debug rank checker sees it. (`std::sync::Arc`, atomics, mpsc are
/// fine.)
fn l004_std_sync_imports(file: &SourceFile, report: &mut FileReport) {
    if file.ctx.is_shim() {
        return;
    }
    let toks = file.tokens();
    for i in 0..toks.len() {
        // Match the path prefix `std :: sync ::`.
        let is_std_sync = toks[i].is_ident("std")
            && toks.get(i + 1).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 2).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 3).is_some_and(|t| t.is_ident("sync"))
            && toks.get(i + 4).is_some_and(|t| t.is_punct(':'))
            && toks.get(i + 5).is_some_and(|t| t.is_punct(':'));
        if !is_std_sync {
            continue;
        }
        // Walk the rest of the path / use-tree and flag lock types.
        let mut j = i + 6;
        while let Some(t) = toks.get(j) {
            let path_token = t.kind == crate::lexer::TokKind::Ident
                || t.is_punct(':')
                || t.is_punct(',')
                || t.is_punct('{')
                || t.is_punct('}')
                || t.is_punct('*');
            if !path_token {
                break;
            }
            if matches!(t.text.as_str(), "Mutex" | "RwLock" | "Condvar")
                && !file.allows("L004", t.line)
            {
                report.violations.push(violation(
                    file,
                    t.line,
                    t.col,
                    "L004",
                    format!(
                        "direct std::sync::{} bypasses the parking_lot shim's \
                         lock-rank instrumentation; import it from `parking_lot`",
                        t.text
                    ),
                ));
            }
            j += 1;
        }
    }
}

/// L005: no `println!`/`eprintln!`/`print!`/`eprint!`/`dbg!` outside
/// binary targets and tests. Library and daemon code must not write to
/// the server's stdio; observable state belongs in typed stats or
/// returned values.
fn l005_print_hygiene(file: &SourceFile, report: &mut FileReport) {
    if file.ctx.is_shim() || file.ctx.is_bin() {
        return;
    }
    let toks = file.tokens();
    for (i, tok) in toks.iter().enumerate() {
        let is_print = matches!(
            tok.text.as_str(),
            "println" | "eprintln" | "print" | "eprint" | "dbg"
        ) && toks.get(i + 1).is_some_and(|t| t.is_punct('!'));
        if !is_print || file.in_test_code(tok.line) || file.allows("L005", tok.line) {
            continue;
        }
        report.violations.push(violation(
            file,
            tok.line,
            tok.col,
            "L005",
            format!(
                "{}! in library code: binaries and tests may print, \
                 libraries return data",
                tok.text
            ),
        ));
    }
}
