//! Workspace discovery: find every member's `src/` tree without a TOML
//! dependency.
//!
//! The only manifest syntax this understands is what the workspace
//! actually uses — a `members = [ "..." ]` array under `[workspace]` and
//! an optional `[package]` section for the root crate. Fixture
//! workspaces used by the integration tests name their manifest
//! `lint-workspace.toml` so cargo never mistakes them for real nested
//! packages.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// A workspace member with its resolved source files.
#[derive(Debug)]
pub struct Member {
    /// Workspace-relative member path (`.` for the root package).
    pub name: String,
    /// Workspace-relative paths of every `.rs` file under `src/`, sorted.
    pub sources: Vec<String>,
}

/// Discover workspace members and their `src/**/*.rs` files under `root`.
pub fn discover(root: &Path) -> io::Result<Vec<Member>> {
    let manifest = ["Cargo.toml", "lint-workspace.toml"]
        .iter()
        .map(|n| root.join(n))
        .find(|p| p.is_file())
        .ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::NotFound,
                format!(
                    "no Cargo.toml or lint-workspace.toml under {}",
                    root.display()
                ),
            )
        })?;
    let text = fs::read_to_string(&manifest)?;
    let mut member_names = parse_members(&text);
    if text.contains("[package]") {
        // The workspace root is itself a package; its src/ is walked too.
        member_names.push(".".to_string());
    }
    let mut members = Vec::new();
    for name in member_names {
        let src = root.join(&name).join("src");
        if !src.is_dir() {
            continue;
        }
        let mut sources = Vec::new();
        walk_rs(&src, &mut sources)?;
        sources.sort();
        let sources = sources.into_iter().map(|p| rel_display(root, &p)).collect();
        members.push(Member { name, sources });
    }
    Ok(members)
}

/// Extract the `members = [ ... ]` string array.
fn parse_members(manifest: &str) -> Vec<String> {
    let Some(at) = manifest.find("members") else {
        return Vec::new();
    };
    let Some(open) = manifest[at..].find('[') else {
        return Vec::new();
    };
    let body = &manifest[at + open + 1..];
    let Some(close) = body.find(']') else {
        return Vec::new();
    };
    body[..close]
        .split('"')
        .skip(1)
        .step_by(2)
        .map(|s| s.to_string())
        .collect()
}

fn walk_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        if path.is_dir() {
            walk_rs(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Workspace-relative path with forward slashes, for stable output.
fn rel_display(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_members_array() {
        let manifest = r#"
            [workspace]
            members = [
                "crates/a",
                "shims/b",
            ]
            [package]
            name = "root"
        "#;
        assert_eq!(parse_members(manifest), vec!["crates/a", "shims/b"]);
    }

    #[test]
    fn no_members_key_is_empty() {
        assert!(parse_members("[package]\nname = \"x\"\n").is_empty());
    }
}
