//! Cross-validation of the static analyzer against the dynamic checker:
//! the exact shapes the static pass flags in the `ws-l101` fixture are
//! executed here with real ranked locks from the `parking_lot` shim, and
//! must panic under its debug-build rank checker. The guards the static
//! pass leaves clean must run clean dynamically too. This keeps the two
//! enforcement layers (L101 at lint time, `rank::check` at run time)
//! honest mirrors of each other.

#![cfg(debug_assertions)] // the dynamic rank checker compiles away in release

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;

use instant_lint::lint_workspace;
use parking_lot::Mutex;

/// Executable twin of the `ws-l101` fixture's `Engine`: same ranks, same
/// call shapes, but with live ranked locks.
struct Engine {
    low: Mutex<u32>,
    high: Mutex<u32>,
}

impl Engine {
    fn new() -> Engine {
        Engine {
            low: Mutex::ranked(10, 1),
            high: Mutex::ranked(20, 2),
        }
    }

    fn grab_low(&self) -> u32 {
        *self.low.lock()
    }

    fn inverted(&self) -> u32 {
        let _g = self.high.lock();
        self.grab_low()
    }

    fn with_high<R>(&self, f: impl FnOnce(u32) -> R) -> R {
        let g = self.high.lock();
        f(*g)
    }

    fn closure_inverted(&self) -> u32 {
        self.with_high(|v| v + self.grab_low())
    }

    fn ordered(&self) -> u32 {
        let a = self.low.lock();
        let b = self.high.lock();
        *a + *b
    }

    fn closure_clean(&self) -> u32 {
        self.with_high(|v| v + 1)
    }
}

fn panic_message(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else {
        String::from("<non-string panic payload>")
    }
}

fn fixture() -> std::path::PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/ws-l101")
}

#[test]
fn every_static_l101_finding_panics_under_the_dynamic_checker() {
    // Static side: the fixture's two inversions, nothing else.
    let report = lint_workspace(&fixture()).expect("fixture workspace discoverable");
    let l101_lines: Vec<u32> = report
        .violations
        .iter()
        .filter(|v| v.rule == "L101")
        .map(|v| v.line)
        .collect();
    assert_eq!(
        l101_lines,
        vec![21, 51],
        "the direct inversion and the closure inversion: {:?}",
        report.violations
    );

    // Dynamic side: the same shapes, executed, panic with a rank
    // violation.
    let direct = catch_unwind(AssertUnwindSafe(|| Engine::new().inverted()))
        .expect_err("holding 20 then acquiring 10 must panic");
    assert!(
        panic_message(direct).contains("lock-rank violation"),
        "panic must come from the rank checker"
    );

    let through_closure = catch_unwind(AssertUnwindSafe(|| Engine::new().closure_inverted()))
        .expect_err("acquiring 10 inside the latched callback must panic");
    assert!(
        panic_message(through_closure).contains("lock-rank violation"),
        "panic must come from the rank checker"
    );
}

#[test]
fn static_guards_also_run_clean_dynamically() {
    // The shapes the static pass leaves unflagged must not panic.
    assert_eq!(Engine::new().ordered(), 3);
    assert_eq!(Engine::new().closure_clean(), 3);
}
