//! End-to-end tests: the library against each fixture workspace (exact
//! violation counts, one per rule, plus the false-positive guards those
//! fixtures embed), and the `instantdb-lint` binary's exit codes and
//! output format.

use std::path::{Path, PathBuf};
use std::process::Output;

use instant_lint::lint_workspace;

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

/// Rules of the violations reported for a fixture, in output order.
fn rules_for(name: &str) -> Vec<String> {
    lint_workspace(&fixture(name))
        .expect("fixture workspace discoverable")
        .violations
        .iter()
        .map(|v| v.rule.to_string())
        .collect()
}

#[test]
fn l001_fixture_flags_exactly_the_unwrap() {
    let report = lint_workspace(&fixture("ws-l001")).unwrap();
    assert_eq!(rules_for("ws-l001"), vec!["L001"]);
    let v = &report.violations[0];
    assert_eq!(v.file, "crates/core/src/lib.rs");
    assert_eq!(v.line, 5, "the guarded/allowed/test unwraps are exempt");
}

#[test]
fn l002_fixture_flags_exactly_the_unannotated_lock() {
    let report = lint_workspace(&fixture("ws-l002")).unwrap();
    assert_eq!(rules_for("ws-l002"), vec!["L002"]);
    assert!(report.violations[0].message.contains("lock-rank"));
    // The two annotated fields became rank declarations.
    let ranks: Vec<u32> = report.rank_decls.iter().map(|d| d.rank).collect();
    assert_eq!(ranks, vec![10, 20]);
}

#[test]
fn l002_duplicate_ranks_across_files_are_flagged() {
    let report = lint_workspace(&fixture("ws-l002-dup")).unwrap();
    assert_eq!(rules_for("ws-l002-dup"), vec!["L002"]);
    let v = &report.violations[0];
    assert!(v.message.contains("duplicate lock-rank 10"));
    assert!(
        v.message.contains("crates/a/src/lib.rs"),
        "names the first declaration site: {}",
        v.message
    );
}

#[test]
fn l003_fixture_flags_exactly_the_unjustified_unsafe() {
    let report = lint_workspace(&fixture("ws-l003")).unwrap();
    assert_eq!(rules_for("ws-l003"), vec!["L003"]);
    assert_eq!(report.violations[0].line, 4, "SAFETY-covered one is exempt");
}

#[test]
fn l004_fixture_flags_exactly_the_std_lock_import() {
    let report = lint_workspace(&fixture("ws-l004")).unwrap();
    assert_eq!(rules_for("ws-l004"), vec!["L004"]);
    let v = &report.violations[0];
    assert_eq!(v.file, "crates/a/src/lib.rs", "the shim copy is exempt");
    assert!(v.message.contains("std::sync::Mutex"));
}

#[test]
fn l005_fixture_flags_exactly_the_library_print() {
    let report = lint_workspace(&fixture("ws-l005")).unwrap();
    assert_eq!(rules_for("ws-l005"), vec!["L005"]);
    assert_eq!(
        report.violations[0].file, "crates/core/src/lib.rs",
        "src/bin/tool.rs and the test module are exempt"
    );
}

#[test]
fn l006_fixture_flags_exactly_the_swallowed_result() {
    let report = lint_workspace(&fixture("ws-l006")).unwrap();
    assert_eq!(rules_for("ws-l006"), vec!["L006"]);
    let v = &report.violations[0];
    assert_eq!(
        v.line, 16,
        "handled/non-Result/allowed/test sites are exempt"
    );
    assert!(v.message.contains("`fallible`"), "{}", v.message);
}

#[test]
fn l101_fixture_flags_both_inversions_with_witness_paths() {
    let report = lint_workspace(&fixture("ws-l101")).unwrap();
    assert_eq!(rules_for("ws-l101"), vec!["L101", "L101"]);
    let direct = &report.violations[0];
    assert_eq!(
        direct.line, 21,
        "the call into grab_low while rank 20 is held"
    );
    assert!(
        direct
            .message
            .contains("`Engine::grab_low` → acquires rank 10"),
        "witness path names the acquiring callee: {}",
        direct.message
    );
    assert!(direct.message.contains("while rank 20 is held"));
    let via_closure = &report.violations[1];
    assert_eq!(
        via_closure.line, 51,
        "the closure body runs under with_high's latch; disjoint-path and \
         correctly-ordered guards are exempt"
    );
}

#[test]
fn l102_fixture_flags_fsync_under_lock_but_not_after_release() {
    let report = lint_workspace(&fixture("ws-l102")).unwrap();
    assert_eq!(rules_for("ws-l102"), vec!["L102", "L102"]);
    assert_eq!(
        report.violations[0].line, 20,
        "direct fsync under the lock; drop()- and scope-released guards are exempt"
    );
    let transitive = &report.violations[1];
    assert_eq!(transitive.line, 26, "fsync reached through the helper");
    assert!(
        transitive.message.contains("`fsync` → io syscall"),
        "witness path reaches the leaf: {}",
        transitive.message
    );
}

#[test]
fn clean_fixture_has_no_violations() {
    let report = lint_workspace(&fixture("ws-clean")).unwrap();
    assert!(
        report.violations.is_empty(),
        "clean fixture must pass: {:?}",
        report.violations
    );
    assert_eq!(report.rank_decls.len(), 2);
}

fn run_cli(fixture_name: &str) -> Output {
    std::process::Command::new(env!("CARGO_BIN_EXE_instantdb-lint"))
        .arg("--root")
        .arg(fixture(fixture_name))
        .arg("--deny-all")
        .output()
        .expect("run instantdb-lint")
}

#[test]
fn cli_exits_nonzero_on_each_violation_fixture() {
    for name in [
        "ws-l001",
        "ws-l002",
        "ws-l002-dup",
        "ws-l003",
        "ws-l004",
        "ws-l005",
        "ws-l006",
        "ws-l101",
        "ws-l102",
    ] {
        let out = run_cli(name);
        assert_eq!(
            out.status.code(),
            Some(1),
            "{name} must fail the lint: {}",
            String::from_utf8_lossy(&out.stderr)
        );
    }
}

#[test]
fn cli_exits_zero_on_clean_fixture() {
    let out = run_cli("ws-clean");
    assert_eq!(
        out.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&out.stderr)
    );
}

#[test]
fn cli_output_is_file_line_col_rule_message() {
    let out = run_cli("ws-l001");
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout.lines().next().expect("one violation line");
    // crates/core/src/lib.rs:5:7: [L001] ...
    assert_eq!(line, format!("crates/core/src/lib.rs:5:7: [L001] .unwrap() in hot-path code: return a typed Error, or justify with `// lint:allow(L001, reason)`"));
}

#[test]
fn cli_json_format_emits_one_object_per_violation() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_instantdb-lint"))
        .arg("--root")
        .arg(fixture("ws-l006"))
        .arg("--deny-all")
        .arg("--format=json")
        .output()
        .expect("run instantdb-lint");
    assert_eq!(out.status.code(), Some(1));
    let stdout = String::from_utf8_lossy(&out.stdout);
    let lines: Vec<&str> = stdout.lines().collect();
    assert_eq!(lines.len(), 1, "one object per violation: {stdout}");
    assert!(
        lines[0].starts_with(
            "{\"file\":\"crates/core/src/lib.rs\",\"line\":16,\"col\":13,\"rule\":\"L006\","
        ),
        "stable machine-readable prefix: {}",
        lines[0]
    );
    assert!(lines[0].ends_with("\"}"), "complete object: {}", lines[0]);
}

#[test]
fn cli_lints_the_real_workspace_clean() {
    // The repository itself is the ultimate fixture: the tree this test
    // runs in must satisfy every invariant the linter enforces.
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint sits two levels below the workspace root")
        .to_path_buf();
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_instantdb-lint"))
        .arg("--root")
        .arg(&repo_root)
        .arg("--deny-all")
        .output()
        .expect("run instantdb-lint");
    assert_eq!(
        out.status.code(),
        Some(0),
        "workspace must lint clean:\n{}\n{}",
        String::from_utf8_lossy(&out.stdout),
        String::from_utf8_lossy(&out.stderr)
    );
}
