//! L003 fixture: one `unsafe` without justification, one with.

pub fn violation(p: *const u8) -> u8 {
    unsafe { *p }
}

pub fn justified(p: *const u8) -> u8 {
    // SAFETY: fixture — the caller guarantees `p` points to a live byte.
    unsafe { *p }
}

pub const STRING_GUARD: &str = "the word unsafe in a string is not code";
