//! Clean fixture: every rule satisfied — the linter must exit zero.

use parking_lot::{Mutex, RwLock};

pub struct Engine {
    pub state: Mutex<u32>,   // lock-rank: 100
    pub index: RwLock<u32>,  // lock-rank: 200
}

pub fn read_tag(bytes: &[u8; 4]) -> u32 {
    u32::from_le_bytes((&bytes[..]).try_into().unwrap()) // lint:allow(L001, slice length is fixed by the array type)
}

pub fn first_byte(p: *const u8) -> u8 {
    // SAFETY: fixture — the caller guarantees `p` points to a live byte.
    unsafe { *p }
}

#[cfg(test)]
mod tests {
    #[test]
    fn everything_goes_in_tests() {
        println!("printing, panicking, unwrapping:");
        let v: Option<u32> = Some(1);
        v.unwrap();
    }
}
