//! Binary-target guard: operator-facing entry points may print.

fn main() {
    println!("binaries may print");
}
