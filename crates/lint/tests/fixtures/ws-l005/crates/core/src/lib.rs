//! L005 fixture: one library print; strings, tests and binaries are
//! exempt.

pub fn violation() {
    println!("library code must not print");
}

pub fn string_guard() -> &'static str {
    "println! inside a string literal"
}

#[cfg(test)]
mod tests {
    #[test]
    fn tests_may_print() {
        println!("progress output in tests is fine");
    }
}
