//! L006 fixture: `let _ =` swallowing a workspace `Result` is flagged;
//! non-Result calls, allowed sites, and test code are exempt.

pub struct Error;
pub type Result<T> = std::result::Result<T, Error>;

fn fallible() -> Result<()> {
    Ok(())
}

fn infallible() -> u32 {
    7
}

pub fn swallowed() {
    let _ = fallible();
}

pub fn handled() -> Result<()> {
    fallible()
}

pub fn not_a_result() {
    let _ = infallible();
}

pub fn allowed() {
    // lint:allow(L006, fixture: the error is intentionally dropped)
    let _ = fallible();
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_is_exempt() {
        let _ = super::fallible();
    }
}
