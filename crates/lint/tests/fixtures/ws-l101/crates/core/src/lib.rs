//! L101 fixture: one real lock-order inversion, one inversion through a
//! closure passed to a `with_frame`-style latch API, and false-positive
//! guards (disjoint call path, correctly-ordered acquisition).

use parking_lot::Mutex;

pub struct Engine {
    low: Mutex<u32>,  // lock-rank: 10
    high: Mutex<u32>, // lock-rank: 20
}

impl Engine {
    fn grab_low(&self) -> u32 {
        *self.low.lock()
    }

    /// Real inversion: rank 10 is acquired (via `grab_low`) while 20 is
    /// held. The dynamic rank checker panics on this exact shape.
    pub fn inverted(&self) -> u32 {
        let _g = self.high.lock();
        self.grab_low()
    }

    fn pure_math(&self, x: u32) -> u32 {
        x + 1
    }

    /// Guard: holding 20 while calling a function on a disjoint call
    /// path (no lock acquisition anywhere below) must not be flagged.
    pub fn not_inverted(&self) -> u32 {
        let _g = self.high.lock();
        self.pure_math(1)
    }

    /// Guard: low-then-high is the correct order.
    pub fn ordered(&self) -> u32 {
        let a = self.low.lock();
        let b = self.high.lock();
        *a + *b
    }

    /// `with_frame`-style API: invokes the callback while `high` is held.
    fn with_high<R>(&self, f: impl FnOnce(u32) -> R) -> R {
        let g = self.high.lock();
        f(*g)
    }

    /// Inversion through the closure: the callback runs under rank 20
    /// and acquires rank 10.
    pub fn closure_inverted(&self) -> u32 {
        self.with_high(|v| v + self.grab_low())
    }

    /// Guard: a lock-free callback under the latch is fine.
    pub fn closure_clean(&self) -> u32 {
        self.with_high(|v| v + 1)
    }
}
