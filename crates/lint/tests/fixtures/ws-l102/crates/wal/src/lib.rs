//! L102 fixture: an fsync under a ranked lock (flagged), an fsync after
//! the guard is dropped (guard), and a transitive reach through a helper.

use std::fs::File;

use parking_lot::Mutex;

pub struct Log {
    inner: Mutex<File>, // lock-rank: 10
}

fn fsync(f: &File) -> std::io::Result<()> {
    f.sync_all()
}

impl Log {
    /// Flagged: fsync while the log lock is held.
    pub fn sync_under_lock(&self) -> std::io::Result<()> {
        let f = self.inner.lock();
        f.sync_all()
    }

    /// Flagged: the I/O is reached through a callee, with a witness path.
    pub fn sync_under_lock_via_helper(&self, side: &File) -> std::io::Result<()> {
        let _g = self.inner.lock();
        fsync(side)
    }

    /// Guard: the guard is dropped before the fsync.
    pub fn sync_after_release(&self, side: &File) -> std::io::Result<()> {
        let f = self.inner.lock();
        drop(f);
        side.sync_all()
    }

    /// Guard: the guard's block ends before the fsync.
    pub fn sync_after_scope(&self, side: &File) -> std::io::Result<()> {
        {
            let _f = self.inner.lock();
        }
        side.sync_all()
    }
}
