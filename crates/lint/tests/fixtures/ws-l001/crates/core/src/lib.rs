//! L001 fixture: exactly one violation, surrounded by false-positive
//! guards the rule must not trip on.

pub fn violation(v: Option<u32>) -> u32 {
    v.unwrap()
}

pub fn distinct_ident_guard(v: Option<u32>) -> u32 {
    v.unwrap_or(0)
}

pub fn allowed(v: Option<u32>) -> u32 {
    v.unwrap() // lint:allow(L001, fixture: justified by construction)
}

// A comment mentioning .unwrap() is not code.
pub const STRING_GUARD: &str = "calls .unwrap() inside a string";

pub fn assertion_guard(n: usize) {
    assert!(n > 0, "assertions state invariants and are exempt");
}

#[cfg(test)]
mod tests {
    #[test]
    fn test_code_may_unwrap() {
        let v: Option<u32> = Some(1);
        v.unwrap();
        panic!("tests may panic too");
    }
}
