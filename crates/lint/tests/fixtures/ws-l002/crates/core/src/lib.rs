//! L002 fixture: one unannotated lock field, plus annotated fields and
//! an import line the rule must not flag.

use parking_lot::{Mutex, RwLock};

pub struct Locks {
    pub bad: Mutex<u32>,
    pub good: Mutex<u32>, // lock-rank: 10
    // lock-rank: 20
    pub annotated_above: RwLock<u32>,
    pub exempt: RwLock<u32>, // lock-rank: unranked(fixture: ordered by external key)
}

#[cfg(test)]
mod tests {
    pub struct TestOnly {
        pub t: super::Mutex<u32>,
    }
}
