//! Shim guard: the shim itself must wrap the std primitives, so the
//! rule is silent here.

pub use std::sync::{Condvar, Mutex, RwLock};
