//! L004 fixture: one direct std lock import; Arc/atomics are fine.

use std::sync::Mutex;

use std::sync::atomic::AtomicU32;
use std::sync::Arc;

pub struct S {
    pub m: Mutex<u32>, // lock-rank: 10
    pub a: Arc<AtomicU32>,
}
