//! Second declaration of rank 10 — the cross-file uniqueness pass must
//! flag this one, naming the first site.

use parking_lot::Mutex;

pub struct B {
    pub second: Mutex<u32>, // lock-rank: 10
}
