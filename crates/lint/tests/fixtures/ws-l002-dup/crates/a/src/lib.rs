//! First declaration of rank 10 — fine on its own.

use parking_lot::Mutex;

pub struct A {
    pub first: Mutex<u32>, // lock-rank: 10
}
