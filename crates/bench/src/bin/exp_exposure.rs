//! E4: exposure over time — the paper's claim 1, quantified.
//!
//! Four stores ingest the same Poisson location stream for 60 simulated
//! days under different protection schemes; a snapshot attacker strikes at
//! sampled instants and the residual-information exposure of each store is
//! recorded. Expected shape: degradation strictly below retention at every
//! t beyond the first LCP step; static anonymization constant between them;
//! no-protection = retention until the TTL cliff.
//!
//! Run: `cargo run --release -p instant-bench --bin exp_exposure`

use instant_bench::{f, setup, Report};
use instant_common::{Duration, LevelId, MockClock, Timestamp};
use instant_core::baseline::{Protection, FOREVER};
use instant_core::db::WalMode;
use instant_core::metrics::exposure_of_table;
use instant_lcp::AttributeLcp;
use instant_workload::events::{EventStream, EventStreamConfig};
use instant_workload::location::LocationDomain;

const DAYS: u64 = 60;
const SAMPLE_EVERY_DAYS: u64 = 5;

fn main() {
    let domain = setup::location_domain();
    let schemes = vec![
        Protection::None,
        Protection::Retention(Duration::days(30)),
        Protection::StaticAnon(LevelId(2), FOREVER),
        Protection::Degradation(
            AttributeLcp::from_pairs(&[
                (0, Duration::hours(1)),
                (1, Duration::days(1)),
                (2, Duration::days(7)),
                (3, Duration::days(30)),
            ])
            .unwrap(),
        ),
    ];

    // One row per sample day, one column per scheme.
    let mut curves: Vec<Vec<f64>> = Vec::new();
    let mut tuple_curves: Vec<Vec<usize>> = Vec::new();
    let mut labels = Vec::new();
    for scheme in &schemes {
        labels.push(scheme.label());
        let (exposures, tuples) = run_scheme(&domain, scheme);
        curves.push(exposures);
        tuple_curves.push(tuples);
    }

    let mut header: Vec<String> = vec!["day".into()];
    header.extend(labels.iter().cloned());
    let header_refs: Vec<&str> = header.iter().map(|s| s.as_str()).collect();
    let mut r = Report::new(
        "E4 — exposure over time (Σ residual information; identical 30-ev/h stream)",
        &header_refs,
    );
    let samples = (DAYS / SAMPLE_EVERY_DAYS) as usize + 1;
    for s in 0..samples {
        let mut row = vec![format!("{}", s as u64 * SAMPLE_EVERY_DAYS)];
        for c in &curves {
            row.push(f(c[s], 1));
        }
        r.row_strings(row);
    }
    r.emit("e4_exposure_over_time");

    let mut r2 = Report::new("E4b — live tuples over time", &header_refs);
    for s in 0..samples {
        let mut row = vec![format!("{}", s as u64 * SAMPLE_EVERY_DAYS)];
        for c in &tuple_curves {
            row.push(c[s].to_string());
        }
        r2.row_strings(row);
    }
    r2.emit("e4b_tuples_over_time");
}

fn run_scheme(domain: &LocationDomain, scheme: &Protection) -> (Vec<f64>, Vec<usize>) {
    let clock = MockClock::new();
    // Logging off keeps the 60-day simulation fsync-free; this
    // experiment measures store contents only.
    let db = setup::events_db(&clock, domain, scheme, |cfg| {
        cfg.wal_mode = WalMode::Off;
        cfg.buffer_frames = 8192;
    });
    let mut stream = EventStream::new(
        EventStreamConfig {
            events_per_hour: 30.0,
            ..Default::default()
        },
        domain,
        4242,
        Timestamp::ZERO,
    );
    let mut exposures = Vec::new();
    let mut tuples = Vec::new();
    let table = db.catalog().get("events").unwrap();
    let mut next_event = stream.next_event();
    for day in 0..=DAYS {
        let sample_at = instant_common::Timestamp::ZERO + Duration::days(day);
        // Ingest everything arriving before this sample point.
        while next_event.at < sample_at {
            clock.set(next_event.at);
            db.pump_degradation().unwrap();
            db.insert(
                "events",
                &[
                    next_event.row[0].clone(),
                    next_event.row[1].clone(),
                    next_event.row[2].clone(),
                ],
            )
            .unwrap();
            next_event = stream.next_event();
        }
        clock.set(sample_at);
        db.pump_degradation().unwrap();
        if day % SAMPLE_EVERY_DAYS == 0 {
            let rep = exposure_of_table(&table).unwrap();
            exposures.push(rep.total_exposure);
            tuples.push(rep.tuples);
        }
    }
    (exposures, tuples)
}
