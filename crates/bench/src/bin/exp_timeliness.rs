//! E7: timeliness of degradation enforcement.
//!
//! N tuples' transitions all come due; the pump executes them in batches of
//! configurable size. Reported: throughput (transitions/s of wall time) and
//! the lateness distribution (how far behind its due time each transition
//! executed, in *simulated* time — here dominated by queue drain order).
//! Expected shape: throughput grows with batch size (fewer WAL syncs /
//! system transactions), lateness bounded by the pump interval.
//!
//! Run: `cargo run --release -p instant-bench --bin exp_timeliness`

use std::time::Instant;

use instant_bench::{rate, setup, Report};
use instant_common::{Duration, MockClock, Value};
use instant_core::baseline::Protection;
use instant_core::db::WalMode;
use instant_lcp::AttributeLcp;
use instant_workload::location::LocationDomain;
use instant_workload::rng::Rng;

const TUPLES: usize = 20_000;

fn main() {
    let domain = setup::location_domain();
    let mut r = Report::new(
        "E7 — degradation throughput & lateness vs batch size \
         (20k due transitions, sealed WAL)",
        &[
            "batch size",
            "wall ms",
            "transitions/s",
            "batches(sys txs)",
            "p50 lateness",
            "p99 lateness",
            "max lateness",
        ],
    );
    for batch in [1usize, 16, 64, 256, 1024, 0] {
        let label = if batch == 0 {
            "unbounded".to_string()
        } else {
            batch.to_string()
        };
        let row = run(&domain, batch, WalMode::Sealed);
        r.row_strings(vec![
            label,
            row.0.to_string(),
            row.1,
            row.2.to_string(),
            row.3.clone(),
            row.4.clone(),
            row.5.clone(),
        ]);
    }
    r.emit("e7_timeliness");

    // WAL-mode ablation at a fixed batch size.
    let mut r2 = Report::new(
        "E7b — WAL-mode ablation (batch 256)",
        &["wal mode", "wall ms", "transitions/s"],
    );
    for (name, mode) in [
        ("off", WalMode::Off),
        ("plain", WalMode::Plain),
        ("sealed", WalMode::Sealed),
    ] {
        let row = run(&domain, 256, mode);
        r2.row_strings(vec![name.to_string(), row.0.to_string(), row.1]);
    }
    r2.emit("e7b_wal_ablation");
}

fn run(
    domain: &LocationDomain,
    batch: usize,
    wal_mode: WalMode,
) -> (u128, String, u64, String, String, String) {
    let clock = MockClock::new();
    let scheme = Protection::Degradation(
        AttributeLcp::from_pairs(&[(0, Duration::hours(1)), (3, Duration::days(30))]).unwrap(),
    );
    let db = setup::events_db(&clock, domain, &scheme, |cfg| {
        cfg.batch_max = batch;
        cfg.wal_mode = wal_mode;
        cfg.buffer_frames = 4096;
    });
    let mut rng = Rng::new(1);
    for i in 0..TUPLES {
        let addr = domain.sample_address(&mut rng).to_string();
        db.insert(
            "events",
            &[
                Value::Int(i as i64),
                Value::Str(format!("user{}", i % 100)),
                Value::Str(addr),
            ],
        )
        .unwrap();
    }
    // Everything comes due at once.
    clock.advance(Duration::hours(2));
    let (_, sys_before) = db.tx_manager().counters();
    let start = Instant::now();
    let report = db.pump_degradation().unwrap();
    let wall = start.elapsed();
    assert_eq!(report.fired, TUPLES);
    let (_, sys_after) = db.tx_manager().counters();
    let h = db.scheduler().lateness();
    (
        wall.as_millis(),
        rate(report.fired, wall.as_secs_f64()),
        sys_after - sys_before,
        h.quantile(0.5).to_string(),
        h.quantile(0.99).to_string(),
        h.max().to_string(),
    )
}
