//! E11: crash recovery — correctness and cost.
//!
//! For growing post-checkpoint workloads: crash, recover, verify that (a)
//! every committed tuple is back at its exact degraded state (engine ==
//! abstract model), (b) nothing resurrected to finer accuracy, and report
//! the recovery wall time against the replayed log size. Expected shape:
//! recovery time linear in the post-checkpoint log.
//!
//! Run: `cargo run --release -p instant-bench --bin exp_recovery`

use std::path::PathBuf;
use std::time::Instant;

use instant_bench::{setup, Report};
use instant_common::{Clock, Duration, MockClock, Value};
use instant_core::baseline::Protection;
use instant_core::db::{Db, DbConfig};
use instant_lcp::{AttributeLcp, Degrader, Hierarchy};
use instant_workload::location::LocationDomain;
use instant_workload::rng::Rng;

fn main() {
    let domain = setup::location_domain();
    let mut r = Report::new(
        "E11 — recovery time vs post-checkpoint log (crash mid-degradation)",
        &[
            "post-ckpt inserts",
            "log bytes",
            "recovered tuples",
            "state mismatches",
            "resurrections",
            "recovery ms",
        ],
    );
    for n in [100usize, 500, 2000, 8000] {
        let row = run(&domain, n);
        r.row_strings(vec![
            n.to_string(),
            row.0.to_string(),
            row.1.to_string(),
            row.2.to_string(),
            row.3.to_string(),
            row.4.to_string(),
        ]);
    }
    r.emit("e11_recovery");
}

fn run(domain: &LocationDomain, n: usize) -> (u64, usize, usize, usize, u128) {
    let path = std::env::temp_dir().join(format!("instantdb-e11-{}-{n}", std::process::id()));
    cleanup(&path);
    let clock = MockClock::new();
    let cfg = DbConfig {
        path: Some(path.clone()),
        ..DbConfig::default()
    };
    let lcp = AttributeLcp::from_pairs(&[
        (0, Duration::hours(1)),
        (1, Duration::days(1)),
        (3, Duration::days(30)),
    ])
    .unwrap();
    let scheme = Protection::Degradation(lcp.clone());
    let schema = setup::events_schema(domain, &scheme);
    let degrader = Degrader::new(domain.hierarchy(), lcp).unwrap();

    // Phase 1: work, checkpoint, more work, degrade, crash.
    let mut expected: Vec<(i64, instant_common::Timestamp, String)> = Vec::new();
    let log_bytes;
    {
        let db = Db::open(cfg.clone(), clock.shared()).unwrap();
        db.create_table(schema.clone()).unwrap();
        let mut rng = Rng::new(n as u64);
        // Half the tuples before the checkpoint…
        for i in 0..n / 2 {
            let addr = domain.sample_address(&mut rng).to_string();
            db.insert(
                "events",
                &[
                    Value::Int(i as i64),
                    Value::Str(format!("user{}", i % 20)),
                    Value::Str(addr.clone()),
                ],
            )
            .unwrap();
            expected.push((i as i64, clock.now(), addr));
        }
        db.checkpoint().unwrap();
        // …half after, plus a degradation pass mid-flight.
        clock.advance(Duration::minutes(30));
        for i in n / 2..n {
            let addr = domain.sample_address(&mut rng).to_string();
            db.insert(
                "events",
                &[
                    Value::Int(i as i64),
                    Value::Str(format!("user{}", i % 20)),
                    Value::Str(addr.clone()),
                ],
            )
            .unwrap();
            expected.push((i as i64, clock.now(), addr));
        }
        clock.advance(Duration::hours(1));
        db.pump_degradation().unwrap(); // first batch past 1h → city
        log_bytes = db.wal().unwrap().log_size().unwrap_or(0);
        drop(db); // crash
    }

    // Phase 2: recover and verify against the abstract model.
    let start = Instant::now();
    let db = Db::recover_with_schemas(cfg, clock.shared(), vec![schema]).unwrap();
    let elapsed = start.elapsed().as_millis();
    let table = db.catalog().get("events").unwrap();
    let now = clock.now();
    let live: std::collections::HashMap<i64, Value> = table
        .scan()
        .unwrap()
        .into_iter()
        .map(|(_, t)| (t.row[0].as_int().unwrap(), t.row[2].clone()))
        .collect();
    let mut mismatches = 0usize;
    let mut resurrections = 0usize;
    for (id, birth, addr) in &expected {
        let predicted = degrader
            .value_at(&Value::Str(addr.clone()), now.since(*birth))
            .unwrap();
        match live.get(id) {
            Some(stored) => {
                if stored != &predicted {
                    mismatches += 1;
                    // A mismatch that is *finer* than predicted is a
                    // resurrection — the cardinal sin.
                    if domain.tree().level_of(stored) < domain.tree().level_of(&predicted) {
                        resurrections += 1;
                    }
                }
            }
            None => {
                if predicted != Value::Removed {
                    mismatches += 1;
                }
            }
        }
    }
    cleanup(&path);
    (log_bytes, live.len(), mismatches, resurrections, elapsed)
}

fn cleanup(path: &std::path::Path) {
    for ext in ["idb", "wal", "meta"] {
        let mut s = path.as_os_str().to_os_string();
        s.push(".");
        s.push(ext);
        let p = PathBuf::from(s);
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_dir_all(&p); // the WAL is a segment dir
    }
}
