//! E5: attack frequency vs captured accurate data — the paper's claim 2:
//! "to be effective, an attack targeting a database running a data
//! degradation process must be repeated with a frequency smaller than the
//! duration of the shortest degradation step."
//!
//! A stream runs for 14 simulated days with a 6-hour accurate stage. A
//! snapshot attacker strikes at each of several periods; we report the
//! fraction of all accurate values it ever observed. Expected shape:
//! capture ≈ 100% while the attack period ≤ the shortest step (6 h), then
//! decays ∝ step/period.
//!
//! Run: `cargo run --release -p instant-bench --bin exp_attack`

use instant_bench::{f, setup, Report};
use instant_common::{Duration, MockClock, Timestamp};
use instant_core::baseline::Protection;
use instant_core::db::WalMode;
use instant_lcp::AttributeLcp;
use instant_workload::events::{EventStream, EventStreamConfig};
use instant_workload::location::LocationDomain;

const SIM_DAYS: u64 = 14;
const ACCURATE_STAGE: Duration = Duration::hours(6);

fn main() {
    let domain = setup::location_domain();
    let periods = [
        ("1h", Duration::hours(1)),
        ("3h", Duration::hours(3)),
        ("6h", Duration::hours(6)),
        ("12h", Duration::hours(12)),
        ("1d", Duration::days(1)),
        ("3d", Duration::days(3)),
        ("7d", Duration::days(7)),
    ];
    let mut r = Report::new(
        "E5 — snapshot-attack frequency vs captured accurate values \
         (shortest step = 6h)",
        &[
            "attack period",
            "snapshots",
            "accurate captured",
            "universe",
            "fraction",
            "step/period bound",
        ],
    );
    for (label, period) in periods {
        let (captured, universe, snapshots) = run(&domain, period);
        let bound = (ACCURATE_STAGE.as_micros() as f64 / period.as_micros() as f64).min(1.0);
        r.row_strings(vec![
            label.to_string(),
            snapshots.to_string(),
            captured.to_string(),
            universe.to_string(),
            f(captured as f64 / universe as f64, 3),
            f(bound, 3),
        ]);
    }
    r.emit("e5_attack_frequency");
    println!(
        "Reading: capture fraction tracks min(1, step/period) — attacks slower \
         than the\nshortest degradation step observe proportionally less accurate data."
    );
}

fn run(domain: &LocationDomain, period: Duration) -> (usize, usize, usize) {
    let clock = MockClock::new();
    let scheme = Protection::Degradation(
        AttributeLcp::from_pairs(&[
            (0, ACCURATE_STAGE),
            (1, Duration::days(2)),
            (3, Duration::days(10)),
        ])
        .unwrap(),
    );
    // Logging off keeps the multi-day simulation fsync-free; this
    // experiment measures store contents only.
    let db = setup::events_db(&clock, domain, &scheme, |cfg| {
        cfg.wal_mode = WalMode::Off;
        cfg.buffer_frames = 8192;
    });
    let mut stream = EventStream::new(
        EventStreamConfig {
            events_per_hour: 20.0,
            ..Default::default()
        },
        domain,
        777, // identical stream for every attack period
        Timestamp::ZERO,
    );
    let horizon = Timestamp::ZERO + Duration::days(SIM_DAYS);
    let mut next_attack = Timestamp::ZERO + period;
    // Claim 2 is about *events*: which tuples was the attacker ever able to
    // observe in their accurate (d0) state? Track tuple ids, not values —
    // popular addresses recurring in later windows must not count for the
    // events the attacker already missed.
    let mut observed_accurate: std::collections::HashSet<i64> = Default::default();
    let mut inserted = 0usize;
    let mut snapshots = 0usize;
    let table = db.catalog().get("events").unwrap();
    let mut next_event = stream.next_event();
    loop {
        // Interleave events and attacks in timestamp order.
        if next_event.at < next_attack && next_event.at < horizon {
            clock.set(next_event.at);
            db.pump_degradation().unwrap();
            db.insert(
                "events",
                &[
                    next_event.row[0].clone(),
                    next_event.row[1].clone(),
                    next_event.row[2].clone(),
                ],
            )
            .unwrap();
            inserted += 1;
            next_event = stream.next_event();
        } else if next_attack < horizon {
            clock.set(next_attack);
            db.pump_degradation().unwrap();
            snapshots += 1;
            for (_tid, t) in table.scan().unwrap() {
                if t.stages[0] == Some(0) {
                    observed_accurate.insert(match t.row[0] {
                        instant_common::Value::Int(i) => i,
                        _ => unreachable!(),
                    });
                }
            }
            next_attack += period;
        } else {
            break;
        }
    }
    (observed_accurate.len(), inserted, snapshots)
}
