//! E6: usability — the paper's claim 3: "compared to data anonymization,
//! data degradation applies to attributes describing a recorded event while
//! keeping the identity of the donor intact … degrading the data rather
//! than deleting it offers a new compromise between privacy preservation
//! and application reach."
//!
//! Three application purposes query stores aged 45 days under each scheme:
//!
//! * `recent-exact` — user-facing: this user's accurate locations (d0);
//! * `user-history` — user-facing: this user's locations at city level,
//!   identity preserved (the anonymization baseline by construction cannot
//!   answer it at city accuracy; retention has expired the history);
//! * `country-stats` — analytics: events per country (d3).
//!
//! Reported: answered rows per purpose. Expected shape: degradation answers
//! the long-lived purposes where retention returns nothing, and the recent
//! accurate purpose where the static-anonymized store returns nothing.
//!
//! Run: `cargo run --release -p instant-bench --bin exp_usability`

use instant_bench::{setup, Report};
use instant_common::{Duration, LevelId, MockClock, Timestamp, Value};
use instant_core::baseline::{Protection, FOREVER};
use instant_core::db::WalMode;
use instant_core::query::session::Session;
use instant_lcp::AttributeLcp;
use instant_workload::events::{EventStream, EventStreamConfig};
use instant_workload::location::LocationDomain;

const SIM_DAYS: u64 = 45;

fn main() {
    let domain = setup::location_domain();
    let schemes = vec![
        Protection::Retention(Duration::days(30)),
        Protection::StaticAnon(LevelId(2), FOREVER),
        Protection::Degradation(
            AttributeLcp::from_pairs(&[
                (0, Duration::hours(6)),
                (1, Duration::days(2)),
                (2, Duration::days(14)),
                (3, Duration::days(60)),
            ])
            .unwrap(),
        ),
    ];
    let mut r = Report::new(
        "E6 — rows answered per purpose after 45 simulated days",
        &[
            "scheme",
            "recent-exact(d0)",
            "user-history(city)",
            "country-stats(d3)",
            "live tuples",
        ],
    );
    for scheme in &schemes {
        let (exact, history, stats, live) = run(&domain, scheme);
        r.row_strings(vec![
            scheme.label(),
            exact.to_string(),
            history.to_string(),
            stats.to_string(),
            live.to_string(),
        ]);
    }
    r.emit("e6_usability");
    println!(
        "Reading: retention serves all purposes only by keeping everything \
         accurate (maximum\nexposure) and loses all history past its TTL; \
         static anonymization cannot answer the\nidentity-linked city-level \
         purpose at all (its store is region-coarse); degradation\nanswers \
         each purpose from exactly the accuracy the purpose needs."
    );
}

fn run(domain: &LocationDomain, scheme: &Protection) -> (usize, usize, usize, usize) {
    let clock = MockClock::new();
    let db = setup::events_db(&clock, domain, scheme, |cfg| {
        cfg.wal_mode = WalMode::Off;
        cfg.buffer_frames = 8192;
    });
    let mut stream = EventStream::new(
        EventStreamConfig {
            events_per_hour: 15.0,
            users: 100,
            ..Default::default()
        },
        domain,
        2024,
        Timestamp::ZERO,
    );
    let horizon = Timestamp::ZERO + Duration::days(SIM_DAYS);
    let mut next = stream.next_event();
    while next.at < horizon {
        clock.set(next.at);
        db.pump_degradation().unwrap();
        db.insert(
            "events",
            &[
                next.row[0].clone(),
                next.row[1].clone(),
                next.row[2].clone(),
            ],
        )
        .unwrap();
        next = stream.next_event();
    }
    clock.set(horizon);
    db.pump_degradation().unwrap();

    let mut session = Session::new(db.clone());
    // Purpose 1: accurate recent fixes of the hottest user.
    session.clear_purpose();
    let exact = session
        .execute("SELECT id, location FROM events WHERE user = 'user0000'")
        .unwrap()
        .rows()
        .rows
        .len();
    // Purpose 2: that user's history at city accuracy — identity preserved.
    session
        .execute("DECLARE PURPOSE H SET ACCURACY LEVEL CITY FOR LOCATION")
        .unwrap();
    let history = session
        .execute("SELECT id, location FROM events WHERE user = 'user0000'")
        .unwrap()
        .rows()
        .rows
        .len();
    // Purpose 3: aggregate stats at country level.
    session
        .execute("DECLARE PURPOSE S SET ACCURACY LEVEL COUNTRY FOR LOCATION")
        .unwrap();
    let stats = session
        .execute("SELECT id FROM events WHERE location = 'Country00'")
        .unwrap()
        .rows()
        .rows
        .len();
    let live = db.catalog().get("events").unwrap().live_count().unwrap();
    let _ = Value::Null;
    (exact, history, stats, live)
}
