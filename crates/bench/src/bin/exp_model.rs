//! E1–E3: executable reproductions of the paper's Figures 1–3.
//!
//! Fig. 1 — the location Generalization Tree and its degradation paths.
//! Fig. 2 — the attribute LCP timeline (address 1h → city 1d → region 1mo →
//!          country 1mo → removed), driven through the real engine.
//! Fig. 3 — the tuple LCP as the product of two attribute LCPs.
//!
//! Run: `cargo run --release -p instant-bench --bin exp_model`

use instant_bench::Report;
use instant_common::{Duration, LevelId, Value};
use instant_lcp::gtree::location_tree_fig1;
use instant_lcp::hierarchy::Hierarchy;
use instant_lcp::{AttributeLcp, TupleLcp};

fn main() {
    fig1();
    fig2();
    fig3();
}

fn fig1() {
    let gt = location_tree_fig1();
    let mut r = Report::new(
        "E1 / Fig.1 — generalization tree of the location domain",
        &["level", "name", "cardinality", "example"],
    );
    let example_leaf = "4 rue Jussieu";
    for k in 0..gt.levels() {
        let level = LevelId(k);
        let form = gt
            .generalize(&Value::Str(example_leaf.into()), level)
            .unwrap();
        r.row_strings(vec![
            format!("d{k}"),
            gt.level_name(level),
            gt.cardinality_at(level).to_string(),
            form.to_string(),
        ]);
    }
    r.emit("e1_fig1_gtree");

    let mut p = Report::new(
        "E1 — full degradation path (\"all degraded forms the value can take\")",
        &["step", "value"],
    );
    for (i, (level, label)) in gt
        .degradation_path(example_leaf)
        .unwrap()
        .iter()
        .enumerate()
    {
        p.row_strings(vec![format!("{i} ({level})"), label.clone()]);
    }
    p.emit("e1_fig1_path");
}

fn fig2() {
    let lcp = AttributeLcp::fig2_location();
    let gt = location_tree_fig1();
    let mut r = Report::new(
        "E2 / Fig.2 — attribute LCP timeline for '4 rue Jussieu'",
        &["age", "state", "level", "value"],
    );
    let probes = [
        Duration::ZERO,
        Duration::minutes(59),
        Duration::hours(1),
        Duration::hours(12),
        Duration::hours(25),
        Duration::days(5),
        Duration::days(26),
        Duration::days(31),
        Duration::days(45),
        Duration::days(61),
        Duration::days(62),
    ];
    for age in probes {
        let (state, level, value) = match lcp.level_at(age) {
            Some(level) => {
                let v = gt
                    .generalize(&Value::Str("4 rue Jussieu".into()), level)
                    .unwrap();
                (format!("d{}", level.0), gt.level_name(level), v.to_string())
            }
            None => ("⊥".to_string(), "removed".to_string(), "<removed>".into()),
        };
        r.row_strings(vec![age.to_string(), state, level, value]);
    }
    r.emit("e2_fig2_lcp");
    println!(
        "lifetime = {}, shortest step (attack-frequency bound) = {}\n",
        lcp.lifetime(),
        lcp.shortest_step()
    );
}

fn fig3() {
    // Two attributes with interleaving transitions, as in Fig. 3.
    let location = AttributeLcp::from_pairs(&[
        (0, Duration::hours(1)),
        (1, Duration::days(1)),
        (2, Duration::months(1)),
    ])
    .unwrap();
    let salary =
        AttributeLcp::from_pairs(&[(0, Duration::hours(12)), (2, Duration::days(7))]).unwrap();
    let tuple = TupleLcp::combine(vec![location, salary]);
    let mut r = Report::new(
        "E3 / Fig.3 — tuple LCP (product automaton: location × salary)",
        &["tuple state", "fires at", "attribute", "enters"],
    );
    r.row_strings(vec![
        "t0".into(),
        "0s".into(),
        "-".into(),
        "(d0, d0)".into(),
    ]);
    for (i, e) in tuple.events().iter().enumerate() {
        let attr = if e.attr == 0 { "location" } else { "salary" };
        let enters = match e.to_level {
            Some(l) => format!("d{}", l.0),
            None => "⊥ removed".to_string(),
        };
        r.row_strings(vec![
            format!("t{}", i + 1),
            e.at.to_string(),
            attr.to_string(),
            enters,
        ]);
    }
    r.emit("e3_fig3_tuple_lcp");
    println!(
        "tuple states = {}, expunge age = {}, shortest step = {}",
        tuple.num_states(),
        tuple.expunge_age().unwrap(),
        tuple.shortest_step().unwrap()
    );
}
