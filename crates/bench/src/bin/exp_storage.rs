//! E12: storage reclamation under steady insert + expunge.
//!
//! A short-lifetime LCP drives continuous expunge; we track heap size, live
//! tuples and vacuum reclaim over simulated days. Expected shape: live
//! tuples plateau (steady state), heap pages plateau after the first
//! vacuum-driven reuse cycle — the store does not grow without bound even
//! though the stream never stops (complete disappearance is enforced).
//!
//! Run: `cargo run --release -p instant-bench --bin exp_storage`

use instant_bench::{setup, Report};
use instant_common::{Duration, MockClock, Timestamp, Value};
use instant_core::baseline::Protection;
use instant_core::db::WalMode;
use instant_lcp::AttributeLcp;
use instant_workload::events::{EventStream, EventStreamConfig};

const DAYS: u64 = 20;

fn main() {
    let domain = setup::location_domain();
    let clock = MockClock::new();
    // 3-day total lifetime → steady state ≈ 3 days of stream.
    let scheme = Protection::Degradation(
        AttributeLcp::from_pairs(&[
            (0, Duration::hours(2)),
            (1, Duration::days(1)),
            (3, Duration::days(2)),
        ])
        .unwrap(),
    );
    let db = setup::events_db(&clock, &domain, &scheme, |cfg| {
        cfg.wal_mode = WalMode::Off;
        cfg.buffer_frames = 8192;
    });
    let table = db.catalog().get("events").unwrap();

    let mut stream = EventStream::new(
        EventStreamConfig {
            events_per_hour: 50.0,
            ..Default::default()
        },
        &domain,
        31337,
        Timestamp::ZERO,
    );
    let mut r = Report::new(
        "E12 — storage under steady insert + expunge (50 ev/h, 3-day lifetime)",
        &[
            "day",
            "inserted",
            "live",
            "expunged",
            "heap pages",
            "vacuum reclaimed B",
        ],
    );
    let mut next = stream.next_event();
    let mut inserted = 0usize;
    for day in 0..=DAYS {
        let sample_at = Timestamp::ZERO + Duration::days(day);
        while next.at < sample_at {
            clock.set(next.at);
            db.pump_degradation().unwrap();
            db.insert(
                "events",
                &[
                    next.row[0].clone(),
                    next.row[1].clone(),
                    next.row[2].clone(),
                ],
            )
            .unwrap();
            inserted += 1;
            next = stream.next_event();
        }
        clock.set(sample_at);
        db.pump_degradation().unwrap();
        let reclaimed = db.vacuum().unwrap();
        r.row_strings(vec![
            day.to_string(),
            inserted.to_string(),
            table.live_count().unwrap().to_string(),
            db.stats()
                .expunges
                .load(std::sync::atomic::Ordering::Relaxed)
                .to_string(),
            table.heap().page_count().to_string(),
            reclaimed.to_string(),
        ]);
    }
    r.emit("e12_storage");
    let _ = Value::Null;
}
