//! E13: Section IV extensions ablation.
//!
//! (a) Event-triggered vs time-triggered degradation: how much accurate-
//!     state lifetime does an "on-logout degrade immediately" trigger shave
//!     off, in exposure terms?
//! (b) Strict vs relaxed query semantics: answered rows at each requested
//!     accuracy over a mixed-age store.
//! (c) Per-user LCPs: standard vs paranoid routing, exposure each.
//!
//! Run: `cargo run --release -p instant-bench --bin exp_ext`

use std::sync::Arc;

use instant_bench::{f, setup, Report};
use instant_common::{Duration, MockClock, Value};
use instant_core::baseline::Protection;
use instant_core::db::{Db, WalMode};
use instant_core::ext::{degrade_where, insert_for_class, per_user_tables, PrivacyClass};
use instant_core::metrics::total_exposure;
use instant_core::query::session::{QuerySemantics, Session};
use instant_lcp::AttributeLcp;
use instant_workload::location::LocationDomain;
use instant_workload::rng::Rng;

fn main() {
    let domain = setup::location_domain();
    event_triggered(&domain);
    strict_vs_relaxed(&domain);
    per_user(&domain);
}

fn mk_db(clock: &MockClock) -> Arc<Db> {
    setup::open_db(clock, |cfg| cfg.wal_mode = WalMode::Off)
}

/// (a) sessions end (logout) long before the 6 h timer; an event trigger
/// degrades on logout.
fn event_triggered(domain: &LocationDomain) {
    let mut r = Report::new(
        "E13a — event-triggered vs time-triggered degradation (500 sessions)",
        &["mode", "exposure after logouts", "accurate tuples left"],
    );
    for triggered in [false, true] {
        let clock = MockClock::new();
        let db = mk_db(&clock);
        let scheme = Protection::Degradation(
            AttributeLcp::from_pairs(&[(0, Duration::hours(6)), (3, Duration::days(30))]).unwrap(),
        );
        db.create_table(setup::events_schema(domain, &scheme))
            .unwrap();
        let mut rng = Rng::new(5);
        for i in 0..500 {
            let addr = domain.sample_address(&mut rng).to_string();
            db.insert(
                "events",
                &[
                    Value::Int(i),
                    Value::Str(format!("user{}", i % 50)),
                    Value::Str(addr),
                ],
            )
            .unwrap();
        }
        // 30 minutes in, every session logs out.
        clock.advance(Duration::minutes(30));
        let table = db.catalog().get("events").unwrap();
        if triggered {
            degrade_where(&db, &table, |_| true).unwrap();
        } else {
            db.pump_degradation().unwrap(); // nothing due yet
        }
        let exposure = total_exposure(&db).unwrap();
        let accurate = table
            .scan()
            .unwrap()
            .iter()
            .filter(|(_, t)| t.stages[0] == Some(0))
            .count();
        r.row_strings(vec![
            if triggered {
                "on-logout trigger"
            } else {
                "timer only"
            }
            .to_string(),
            f(exposure, 1),
            accurate.to_string(),
        ]);
    }
    r.emit("e13a_event_triggered");
}

/// (b) strict vs relaxed σ/π over a mixed-age population.
fn strict_vs_relaxed(domain: &LocationDomain) {
    let clock = MockClock::new();
    let db = mk_db(&clock);
    let mut session = Session::new(db.clone());
    session.register_hierarchy("geo", domain.hierarchy());
    session
        .execute(
            "CREATE TABLE events (id INT INDEXED, user TEXT, location TEXT \
             DEGRADE USING geo LCP 'd0:1h -> d1:1d -> d2:7d -> d3:30d' INDEXED)",
        )
        .unwrap();
    // Three cohorts: fresh (d0), day-old (d1), week-old (d2).
    let mut rng = Rng::new(8);
    let mut id = 0i64;
    for (cohort, advance) in [
        (200, Duration::ZERO),
        (200, Duration::days(7)),
        (200, Duration::hours(25)),
    ] {
        clock.advance(advance);
        db.pump_degradation().unwrap();
        for _ in 0..cohort {
            let addr = domain.sample_address(&mut rng).to_string();
            session
                .execute(&format!(
                    "INSERT INTO events VALUES ({id}, 'u{}', '{addr}')",
                    id % 10
                ))
                .unwrap();
            id += 1;
        }
    }
    db.pump_degradation().unwrap();
    let mut r = Report::new(
        "E13b — strict vs relaxed σ semantics (600 tuples in 3 age cohorts)",
        &["requested level", "strict rows", "relaxed rows"],
    );
    for level in 0u8..4 {
        session
            .execute(&format!(
                "DECLARE PURPOSE P SET ACCURACY LEVEL d{level} FOR LOCATION"
            ))
            .unwrap();
        session.set_semantics(QuerySemantics::Strict);
        let strict = session
            .execute("SELECT id FROM events")
            .unwrap()
            .rows()
            .rows
            .len();
        session.set_semantics(QuerySemantics::Relaxed);
        let relaxed = session
            .execute("SELECT id FROM events")
            .unwrap()
            .rows()
            .rows
            .len();
        r.row_strings(vec![
            format!("d{level}"),
            strict.to_string(),
            relaxed.to_string(),
        ]);
    }
    r.emit("e13b_strict_vs_relaxed");
}

/// (c) per-user (paranoid) LCPs via table routing.
fn per_user(domain: &LocationDomain) {
    let clock = MockClock::new();
    let db = mk_db(&clock);
    let standard =
        AttributeLcp::from_pairs(&[(0, Duration::hours(6)), (3, Duration::days(30))]).unwrap();
    let paranoid =
        AttributeLcp::from_pairs(&[(0, Duration::minutes(15)), (3, Duration::days(2))]).unwrap();
    let routes = per_user_tables(&db, "events", domain.hierarchy(), standard, paranoid).unwrap();
    let mut rng = Rng::new(13);
    for i in 0..400i64 {
        let class = if i % 4 == 0 {
            PrivacyClass::Paranoid
        } else {
            PrivacyClass::Standard
        };
        let addr = domain.sample_address(&mut rng).to_string();
        insert_for_class(&db, &routes, class, &[Value::Int(i), Value::Str(addr)]).unwrap();
    }
    clock.advance(Duration::hours(1));
    db.pump_degradation().unwrap();
    let mut r = Report::new(
        "E13c — per-user LCPs one hour after collection",
        &["class", "tuples", "exposure", "mean/value"],
    );
    for (class, name) in [
        (PrivacyClass::Standard, "events_standard"),
        (PrivacyClass::Paranoid, "events_paranoid"),
    ] {
        let table = db.catalog().get(name).unwrap();
        let rep = instant_core::metrics::exposure_of_table(&table).unwrap();
        r.row_strings(vec![
            format!("{class:?}"),
            rep.tuples.to_string(),
            f(rep.total_exposure, 1),
            f(rep.mean_exposure(), 3),
        ]);
    }
    r.emit("e13c_per_user");
}
