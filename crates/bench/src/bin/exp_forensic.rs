//! E8: forensic unrecoverability across engine configurations.
//!
//! 500 tuples degrade one step; an offline attacker then greps the raw heap
//! and WAL images for every accurate address fragment. Four configurations
//! factor the two mechanisms: heap policy {naive, overwrite} × WAL
//! {plain, sealed}. Expected: each naive/plain channel leaks independently;
//! only overwrite+sealed reaches zero before checkpoint, and checkpoint
//! truncation closes the plaintext-log channel after the fact.
//!
//! Run: `cargo run --release -p instant-bench --bin exp_forensic`

use instant_bench::{setup, Report};
use instant_common::{Duration, MockClock, Value};
use instant_core::baseline::Protection;
use instant_core::db::WalMode;
use instant_lcp::AttributeLcp;
use instant_storage::SecurePolicy;
use instant_workload::attacker::forensic_needles;
use instant_workload::location::LocationDomain;
use instant_workload::rng::Rng;

const TUPLES: usize = 500;

fn main() {
    let domain = setup::location_domain();
    let mut r = Report::new(
        "E8 — forensic recovery of degraded values (500 tuples, fragment grep)",
        &[
            "config",
            "heap hits",
            "wal hits",
            "recovered pre-ckpt",
            "recovered post-ckpt",
        ],
    );
    for (name, secure, wal) in [
        (
            "naive+plain (classical)",
            SecurePolicy::Naive,
            WalMode::Plain,
        ),
        ("naive+sealed", SecurePolicy::Naive, WalMode::Sealed),
        ("overwrite+plain", SecurePolicy::Overwrite, WalMode::Plain),
        (
            "overwrite+sealed (ours)",
            SecurePolicy::Overwrite,
            WalMode::Sealed,
        ),
    ] {
        let (heap_hits, wal_hits, pre, post, total) = run(&domain, secure, wal);
        r.row_strings(vec![
            name.to_string(),
            heap_hits.to_string(),
            wal_hits.to_string(),
            format!("{pre}/{total}"),
            format!("{post}/{total}"),
        ]);
    }
    r.emit("e8_forensic");
}

fn run(
    domain: &LocationDomain,
    secure: SecurePolicy,
    wal_mode: WalMode,
) -> (usize, usize, usize, usize, usize) {
    let clock = MockClock::new();
    let scheme = Protection::Degradation(
        AttributeLcp::from_pairs(&[(0, Duration::hours(1)), (2, Duration::days(30))]).unwrap(),
    );
    let db = setup::events_db(&clock, domain, &scheme, |cfg| {
        cfg.secure = secure;
        cfg.wal_mode = wal_mode;
        cfg.buffer_frames = 2048;
    });
    let mut rng = Rng::new(99);
    let mut fragments: std::collections::HashSet<String> = Default::default();
    for i in 0..TUPLES {
        let addr = domain.sample_address(&mut rng).to_string();
        // The distinctive fragment is the address suffix (city prefix is
        // shared with the degraded form, so it would false-positive).
        let frag = addr
            .rsplit('/')
            .next()
            .expect("generated addresses contain '/'")
            .to_string();
        fragments.insert(format!("/{frag}"));
        db.insert(
            "events",
            &[
                Value::Int(i as i64),
                Value::Str(format!("user{}", i % 50)),
                Value::Str(addr),
            ],
        )
        .unwrap();
    }
    clock.advance(Duration::hours(2));
    db.pump_degradation().unwrap();

    let scanner = forensic_needles(fragments.iter().map(|s| s.as_str()));
    let images = db.forensic_images().unwrap();
    let heap_img = &images.iter().find(|(n, _)| n == "heap").unwrap().1;
    let wal_img = images
        .iter()
        .find(|(n, _)| n == "wal")
        .map(|(_, b)| b.clone())
        .unwrap_or_default();
    let heap_report = scanner.scan([heap_img.as_slice()]);
    let wal_report = scanner.scan([wal_img.as_slice()]);
    let pre = scanner
        .scan([heap_img.as_slice(), wal_img.as_slice()])
        .recovered
        .len();

    db.checkpoint().unwrap();
    let images2 = db.forensic_images().unwrap();
    let slices: Vec<&[u8]> = images2.iter().map(|(_, b)| b.as_slice()).collect();
    let post = scanner.scan(slices).recovered.len();

    (
        heap_report.occurrences,
        wal_report.occurrences,
        pre,
        post,
        fragments.len(),
    )
}
