//! # instant-bench
//!
//! The experiment harness: reporting utilities shared by the experiment
//! binaries (`src/bin/exp_*.rs`) and Criterion benches (`benches/`).
//! Each binary regenerates one experiment of DESIGN.md §6 and prints the
//! table/series the corresponding figure of EXPERIMENTS.md quotes.

use std::fmt::Display;
use std::io::Write;
use std::path::PathBuf;

pub mod setup;

/// A simple aligned-column table printer for experiment output.
#[derive(Debug, Default)]
pub struct Report {
    title: String,
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Report {
    pub fn new(title: &str, headers: &[&str]) -> Report {
        Report {
            title: title.to_string(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    pub fn row(&mut self, cells: &[&dyn Display]) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows
            .push(cells.iter().map(|c| format!("{c}")).collect());
    }

    pub fn row_strings(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(|h| h.len()).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
            out.push('\n');
        }
        out
    }

    /// Print to stdout and also write a CSV next to the binary's cwd under
    /// `results/<slug>.csv` (best-effort).
    pub fn emit(&self, slug: &str) {
        print!("{}", self.render()); // lint:allow(L005, the bench harness reports to the operator console by contract)
        println!(); // lint:allow(L005, the bench harness reports to the operator console by contract)
        let _ = self.write_csv(slug);
    }

    fn write_csv(&self, slug: &str) -> std::io::Result<PathBuf> {
        let dir = PathBuf::from("results");
        std::fs::create_dir_all(&dir)?;
        let path = dir.join(format!("{slug}.csv"));
        let mut f = std::fs::File::create(&path)?;
        writeln!(f, "{}", self.headers.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// Format a float with fixed precision for table cells.
pub fn f(x: f64, digits: usize) -> String {
    format!("{x:.digits$}")
}

/// Format a rate (per second).
pub fn rate(count: usize, secs: f64) -> String {
    if secs <= 0.0 {
        "inf".to_string()
    } else {
        format!("{:.0}", count as f64 / secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_renders_aligned() {
        let mut r = Report::new("demo", &["scheme", "exposure"]);
        r.row(&[&"degradation", &0.25]);
        r.row(&[&"retention", &1.0]);
        let text = r.render();
        assert!(text.contains("== demo =="));
        assert!(text.contains("degradation"));
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        // Aligned: both data lines have equal length.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    #[should_panic(expected = "arity")]
    fn arity_checked() {
        let mut r = Report::new("x", &["a", "b"]);
        r.row(&[&1]);
    }

    #[test]
    fn float_format() {
        assert_eq!(f(1.23456, 2), "1.23");
        assert_eq!(rate(100, 2.0), "50");
        assert_eq!(rate(1, 0.0), "inf");
    }
}
