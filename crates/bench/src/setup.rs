//! Shared experiment scaffolding — the setup prologue every `exp_*`
//! binary used to copy-paste: the synthetic location domain, the
//! standard protected `events` table, and a tuned engine around it.
//!
//! Keeping this in one place means every experiment runs against the
//! *same* world (domain shape, selectivity, table layout), so their
//! numbers stay comparable across figures.

use std::sync::Arc;

use instant_common::MockClock;
use instant_core::baseline::Protection;
use instant_core::db::{Db, DbConfig};
use instant_core::schema::TableSchema;
use instant_workload::location::{LocationDomain, LocationShape};

/// The experiments' shared synthetic location domain: default shape,
/// 0.9 address-per-leaf fill.
pub fn location_domain() -> LocationDomain {
    LocationDomain::generate(LocationShape::default(), 0.9)
}

/// The standard `events` table protected by `scheme` (see
/// [`instant_core::baseline::protected_location_schema`]).
pub fn events_schema(domain: &LocationDomain, scheme: &Protection) -> TableSchema {
    instant_core::baseline::protected_location_schema("events", domain.hierarchy(), scheme)
        .expect("standard events schema is valid")
}

/// Open an engine on `clock` (config tuned by `tune`) with the standard
/// `events` table already created. The default tuning favours long
/// simulations: most experiments switch the WAL off and widen the pool —
/// do that inside `tune`.
pub fn events_db(
    clock: &MockClock,
    domain: &LocationDomain,
    scheme: &Protection,
    tune: impl FnOnce(&mut DbConfig),
) -> Arc<Db> {
    let db = open_db(clock, tune);
    db.create_table(events_schema(domain, scheme))
        .expect("create events table");
    db
}

/// Open a bare engine on `clock`, config tuned by `tune` (no table).
pub fn open_db(clock: &MockClock, tune: impl FnOnce(&mut DbConfig)) -> Arc<Db> {
    let mut cfg = DbConfig::default();
    tune(&mut cfg);
    Arc::new(Db::open(cfg, clock.shared()).expect("open bench engine"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use instant_common::{Duration, Value};
    use instant_core::db::WalMode;
    use instant_lcp::AttributeLcp;

    #[test]
    fn shared_prologue_builds_a_working_world() {
        let domain = location_domain();
        let clock = MockClock::new();
        let scheme = Protection::Degradation(
            AttributeLcp::from_pairs(&[(0, Duration::hours(1)), (3, Duration::days(30))]).unwrap(),
        );
        let db = events_db(&clock, &domain, &scheme, |cfg| {
            cfg.wal_mode = WalMode::Off;
            cfg.buffer_frames = 2048;
        });
        assert!(db.wal().is_none(), "tune closure applied");
        let mut rng = instant_workload::rng::Rng::new(7);
        let addr = domain.sample_address(&mut rng).to_string();
        db.insert(
            "events",
            &[Value::Int(1), Value::Str("u1".into()), Value::Str(addr)],
        )
        .unwrap();
        assert_eq!(db.catalog().get("events").unwrap().live_count().unwrap(), 1);
    }
}
