//! E9: index structures across accuracy regimes.
//!
//! The paper's indexing challenge: selective OLTP predicates at the
//! accurate level vs broad predicates over the collapsed-cardinality
//! degraded levels. Three parts:
//!
//! * raw structure probes at d0 cardinality (B+-tree vs hash vs bitmap vs
//!   linear scan) — B+-tree/hash should win;
//! * raw structure probes at d3 cardinality (2 distinct values, huge
//!   postings) — bitmap should win;
//! * engine-level SELECT through the multi-level index vs forced seq scan.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use instant_common::{Duration, LevelId, MockClock, TupleId, Value};
use instant_core::db::{Db, DbConfig, WalMode};
use instant_core::query::session::Session;
use instant_index::bitmap::BitmapIndex;
use instant_index::btree::BPlusTree;
use instant_index::hash::HashIndex;
use instant_index::SecondaryIndex;
use instant_workload::location::{LocationDomain, LocationShape};
use instant_workload::rng::Rng;

const N: usize = 100_000;

fn raw_structures(c: &mut Criterion) {
    // d0 regime: N distinct int keys, point lookups.
    let mut btree = BPlusTree::new();
    let mut hash = HashIndex::new();
    let mut bitmap = BitmapIndex::new();
    let mut scan_table: Vec<(i64, TupleId)> = Vec::new();
    for i in 0..N as i64 {
        let tid = TupleId::unpack(i as u64);
        let v = Value::Int(i);
        btree.insert(&v, tid);
        hash.insert(&v, tid);
        bitmap.insert(&v, tid);
        scan_table.push((i, tid));
    }
    let mut group = c.benchmark_group("point_lookup_d0_100k_keys");
    let probe = Value::Int((N / 2) as i64);
    group.bench_function("btree", |b| b.iter(|| btree.get(&probe)));
    group.bench_function("hash", |b| b.iter(|| hash.get(&probe)));
    group.bench_function("bitmap", |b| b.iter(|| bitmap.get(&probe)));
    group.bench_function("seq_scan", |b| {
        b.iter(|| {
            scan_table
                .iter()
                .filter(|(k, _)| *k == (N / 2) as i64)
                .map(|(_, t)| *t)
                .collect::<Vec<_>>()
        })
    });
    group.finish();

    // d3 regime: 2 distinct keys (countries), equality selects half the store.
    let mut btree3 = BPlusTree::new();
    let mut bitmap3 = BitmapIndex::new();
    let fr = Value::Str("Country00".into());
    let nl = Value::Str("Country01".into());
    let mut scan3: Vec<(u8, TupleId)> = Vec::new();
    for i in 0..N as u64 {
        let tid = TupleId::unpack(i);
        let (v, tag) = if i % 2 == 0 { (&fr, 0u8) } else { (&nl, 1u8) };
        btree3.insert(v, tid);
        bitmap3.insert(v, tid);
        scan3.push((tag, tid));
    }
    let mut group = c.benchmark_group("broad_lookup_d3_2_keys");
    group.throughput(Throughput::Elements((N / 2) as u64));
    group.bench_function("btree", |b| b.iter(|| btree3.get(&fr).len()));
    group.bench_function("bitmap", |b| b.iter(|| bitmap3.get(&fr).len()));
    group.bench_function("bitmap_count_only", |b| {
        b.iter(|| bitmap3.bitmap(&fr).unwrap().count_ones())
    });
    group.bench_function("seq_scan", |b| {
        b.iter(|| scan3.iter().filter(|(t, _)| *t == 0).count())
    });
    group.finish();

    // Conjunctive selection at degraded levels — the regime bitmaps exist
    // for: country = X AND band = Y as a word-wise AND vs intersecting
    // B+-tree postings through a hash set.
    let mut band_bitmap = BitmapIndex::new();
    let mut band_btree = BPlusTree::new();
    let band_a = Value::Range { lo: 2000, hi: 3000 };
    let band_b = Value::Range { lo: 3000, hi: 4000 };
    for i in 0..N as u64 {
        let tid = TupleId::unpack(i);
        let v = if i % 4 == 0 { &band_a } else { &band_b };
        band_bitmap.insert(v, tid);
        band_btree.insert(v, tid);
    }
    let mut group = c.benchmark_group("conjunction_d3_country_and_band");
    group.throughput(Throughput::Elements((N / 8) as u64));
    group.bench_function("bitmap_and", |b| {
        b.iter(|| {
            let a = bitmap3.bitmap(&fr).unwrap();
            let bb = band_bitmap.bitmap(&band_a).unwrap();
            a.and(bb).count_ones()
        })
    });
    group.bench_function("btree_postings_intersect", |b| {
        b.iter(|| {
            let left: std::collections::HashSet<TupleId> = btree3.get(&fr).into_iter().collect();
            band_btree
                .get(&band_a)
                .into_iter()
                .filter(|t| left.contains(t))
                .count()
        })
    });
    group.finish();

    // Range scan at d0: B+-tree leaf walk vs full scan.
    let mut group = c.benchmark_group("range_scan_d0_1pct");
    let lo = Value::Int((N / 2) as i64);
    let hi = Value::Int((N / 2 + N / 100) as i64);
    group.bench_function("btree", |b| {
        b.iter(|| btree.range(Some(&lo), Some(&hi)).unwrap().len())
    });
    group.bench_function("seq_scan", |b| {
        b.iter(|| {
            scan_table
                .iter()
                .filter(|(k, _)| *k >= (N / 2) as i64 && *k < (N / 2 + N / 100) as i64)
                .count()
        })
    });
    group.finish();
}

fn engine_level(c: &mut Criterion) {
    let domain = LocationDomain::generate(LocationShape::default(), 0.9);
    let clock = MockClock::new();
    let db = Arc::new(
        Db::open(
            DbConfig {
                wal_mode: WalMode::Off,
                buffer_frames: 8192,
                ..DbConfig::default()
            },
            clock.shared(),
        )
        .unwrap(),
    );
    let mut session = Session::new(db.clone());
    session.register_hierarchy("geo", domain.hierarchy());
    session
        .execute(
            "CREATE TABLE events (id INT INDEXED, user TEXT, location TEXT \
             DEGRADE USING geo LCP 'd0:1h -> d2:30d -> d3:30d' INDEXED)",
        )
        .unwrap();
    let mut rng = Rng::new(3);
    for i in 0..20_000i64 {
        let addr = domain.sample_address(&mut rng).to_string();
        session
            .execute(&format!("INSERT INTO events VALUES ({i}, 'u', '{addr}')"))
            .unwrap();
    }
    // Degrade everything to d2 (regions).
    clock.advance(Duration::hours(2));
    db.pump_degradation().unwrap();
    session
        .execute("DECLARE PURPOSE P SET ACCURACY LEVEL d2 FOR LOCATION")
        .unwrap();

    let mut group = c.benchmark_group("engine_select_20k_rows_at_d2");
    group.sample_size(20);
    group.bench_function("multilevel_index_eq", |b| {
        b.iter(|| {
            session
                .execute("SELECT id FROM events WHERE location = 'Country00/Region03'")
                .unwrap()
        })
    });
    group.bench_function("seq_scan_like", |b| {
        b.iter(|| {
            // LIKE forces the scan path.
            session
                .execute("SELECT id FROM events WHERE location LIKE '%Region03%'")
                .unwrap()
        })
    });
    group.bench_function("stable_index_point", |b| {
        b.iter(|| {
            session
                .execute("SELECT id FROM events WHERE id = 12345")
                .unwrap()
        })
    });
    group.finish();
    let _ = LevelId(0);
}

criterion_group!(benches, raw_structures, engine_level);
criterion_main!(benches);
