//! Buffer-pool read-path scaling (the PR-2 tentpole claim).
//!
//! Concurrent readers over a preloaded, fully-resident working set:
//!
//! * `sharded/…` — the real pool: shard lock taken only to pin, closure
//!   runs under the frame's shared latch, so readers proceed in parallel;
//! * `global_mutex/…` — the same pool accessed through one external mutex,
//!   reproducing the seed's whole-pool-lock behavior where every page
//!   touch (including the closure body) serializes.
//!
//! With threads > 1 the sharded numbers should stay roughly flat per
//! element while the global-mutex baseline degrades; at 1 thread the
//! sharded path must be no slower (in practice it wins slightly — one
//! uncontended shard lock + latch beats mutex + whole-pool critical
//! section). On a single-core host the elem/s columns stay flat for both
//! variants — the structural claim (readers never serialize on one lock)
//! is covered by `storage/tests/buffer_concurrency.rs` regardless.

use std::sync::{Arc, Mutex};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use instant_common::PageId;
use instant_storage::{BufferPool, DiskManager};

const PAGES: usize = 512;
const FRAMES: usize = 1024; // working set fully resident: pure read path
const OPS_PER_THREAD: usize = 20_000;

fn preloaded_pool(shards: usize) -> (Arc<BufferPool>, Vec<PageId>) {
    let disk = Arc::new(DiskManager::temp("bench-bufpool").unwrap());
    let pool = Arc::new(BufferPool::with_shards(disk, FRAMES, shards));
    let pages: Vec<PageId> = (0..PAGES)
        .map(|i| {
            let id = pool.allocate_page().unwrap();
            pool.with_page_mut(id, |p| p.payload_mut()[0] = i as u8)
                .unwrap();
            id
        })
        .collect();
    (pool, pages)
}

/// `threads` readers, each issuing `OPS_PER_THREAD` `with_page` calls on
/// LCG-chosen pages. `serialize` wraps every call in one shared mutex.
fn run_readers(
    pool: &Arc<BufferPool>,
    pages: &[PageId],
    threads: usize,
    serialize: Option<&Arc<Mutex<()>>>,
) -> u64 {
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let pool = pool.clone();
            let pages = pages.to_vec();
            let big_lock = serialize.cloned();
            std::thread::spawn(move || {
                let mut x = 0x1DB0_CAFEu64 + t as u64;
                let mut acc = 0u64;
                for _ in 0..OPS_PER_THREAD {
                    x = x
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    let id = pages[(x >> 33) as usize % pages.len()];
                    let _guard = big_lock.as_ref().map(|m| m.lock().unwrap());
                    acc += pool.with_page(id, |p| p.payload()[0] as u64).unwrap();
                }
                acc
            })
        })
        .collect();
    handles.into_iter().map(|h| h.join().unwrap()).sum()
}

fn bench_read_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("buffer_read_scaling");
    group.sample_size(10);
    for threads in [1usize, 2, 4, 8] {
        group.throughput(Throughput::Elements((threads * OPS_PER_THREAD) as u64));
        let (pool, pages) = preloaded_pool(16);
        group.bench_function(BenchmarkId::new("sharded", threads), |b| {
            b.iter(|| run_readers(&pool, &pages, threads, None));
        });
        let big_lock = Arc::new(Mutex::new(()));
        group.bench_function(BenchmarkId::new("global_mutex", threads), |b| {
            b.iter(|| run_readers(&pool, &pages, threads, Some(&big_lock)));
        });
    }
    group.finish();
}

fn bench_mixed_with_eviction(c: &mut Criterion) {
    // Read/write mix with the pool 2x over-subscribed: eviction and
    // write-back on the hot path, still multi-threaded.
    let mut group = c.benchmark_group("buffer_mixed_evicting");
    group.sample_size(10);
    for threads in [1usize, 4] {
        group.throughput(Throughput::Elements((threads * OPS_PER_THREAD) as u64));
        let disk = Arc::new(DiskManager::temp("bench-bufpool-evict").unwrap());
        let pool = Arc::new(BufferPool::with_shards(disk, PAGES / 2, 16));
        let pages: Vec<PageId> = (0..PAGES).map(|_| pool.allocate_page().unwrap()).collect();
        group.bench_function(BenchmarkId::from_parameter(threads), |b| {
            b.iter(|| {
                let handles: Vec<_> = (0..threads)
                    .map(|t| {
                        let pool = pool.clone();
                        let pages = pages.clone();
                        std::thread::spawn(move || {
                            let mut x = 77u64 + t as u64;
                            for i in 0..OPS_PER_THREAD {
                                x = x
                                    .wrapping_mul(6364136223846793005)
                                    .wrapping_add(1442695040888963407);
                                let id = pages[(x >> 33) as usize % pages.len()];
                                if i % 4 == 0 {
                                    pool.with_page_mut(id, |p| p.payload_mut()[1] = i as u8)
                                        .unwrap();
                                } else {
                                    pool.with_page(id, |p| p.payload()[1]).unwrap();
                                }
                            }
                        })
                    })
                    .collect();
                for h in handles {
                    h.join().unwrap();
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_read_scaling, bench_mixed_with_eviction);
criterion_main!(benches);
