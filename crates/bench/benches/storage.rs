//! E12 micro-benchmarks: the storage substrate.
//!
//! * heap insert/update/delete with secure overwrite vs naive (the price of
//!   physical erasure);
//! * vacuum throughput;
//! * WAL append+sync with plain vs sealed payloads (the cipher's cost).

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use instant_common::{Timestamp, TupleId};
use instant_storage::{BufferPool, DiskManager, HeapFile, SecurePolicy};
use instant_wal::record::{LogRecord, Payload};
use instant_wal::{KeyStore, Wal};

fn heap(policy: SecurePolicy) -> HeapFile {
    let disk = Arc::new(DiskManager::temp("bench-heap").unwrap());
    HeapFile::create(Arc::new(BufferPool::new(disk, 4096)), policy)
}

fn bench_heap_ops(c: &mut Criterion) {
    let record = vec![0xABu8; 100];
    let mut group = c.benchmark_group("heap_ops_100B");
    group.throughput(Throughput::Elements(256));
    group.sample_size(20);
    for policy in [SecurePolicy::Naive, SecurePolicy::Overwrite] {
        let label = format!("{policy:?}");
        group.bench_function(BenchmarkId::new("insert", &label), |b| {
            // Fresh heap per batch so the file does not grow unboundedly
            // across criterion's sampling iterations.
            b.iter_batched(
                || heap(policy),
                |h| {
                    for _ in 0..256 {
                        h.insert(&record, 128).unwrap();
                    }
                },
                criterion::BatchSize::SmallInput,
            );
        });
        group.bench_function(BenchmarkId::new("update_in_place", &label), |b| {
            let h = heap(policy);
            let tid = h.insert(&record, 128).unwrap();
            b.iter(|| h.update(tid, &record[..60]).unwrap());
        });
        group.bench_function(BenchmarkId::new("delete+reinsert", &label), |b| {
            let h = heap(policy);
            let mut tid = h.insert(&record, 128).unwrap();
            b.iter(|| {
                h.delete(tid).unwrap();
                tid = h.insert(&record, 128).unwrap();
            });
        });
    }
    group.finish();
}

fn bench_vacuum(c: &mut Criterion) {
    let mut group = c.benchmark_group("vacuum");
    group.sample_size(10);
    group.bench_function("10k_records_half_deleted", |b| {
        b.iter_batched(
            || {
                let h = heap(SecurePolicy::Naive);
                let mut tids = Vec::new();
                for i in 0..10_000u32 {
                    tids.push(h.insert(format!("record-{i:06}").as_bytes(), 32).unwrap());
                }
                for (i, tid) in tids.iter().enumerate() {
                    if i % 2 == 0 {
                        h.delete(*tid).unwrap();
                    }
                }
                h
            },
            |h| h.vacuum().unwrap(),
            criterion::BatchSize::PerIteration,
        );
    });
    group.finish();
}

fn bench_wal_append(c: &mut Criterion) {
    let mut group = c.benchmark_group("wal_append_sync_128B");
    group.throughput(Throughput::Elements(1));
    group.sample_size(20);
    let body = vec![0x5Au8; 128];
    group.bench_function("plain", |b| {
        let wal = Wal::temp("bench-plain").unwrap();
        b.iter(|| {
            wal.append(&LogRecord::Insert {
                tx: instant_common::TxId(1),
                table: instant_common::TableId(1),
                tid: TupleId::new(1, 0),
                row: Payload::Plain(body.clone()),
                at: Timestamp::ZERO,
            })
            .unwrap();
            wal.sync().unwrap();
        });
    });
    group.bench_function("sealed", |b| {
        let wal = Wal::temp("bench-sealed").unwrap();
        let ks = KeyStore::new(instant_common::Duration::hours(1), 9);
        b.iter(|| {
            let sealed = Payload::seal(&ks, Timestamp::ZERO, &body).unwrap();
            wal.append(&LogRecord::Insert {
                tx: instant_common::TxId(1),
                table: instant_common::TableId(1),
                tid: TupleId::new(1, 0),
                row: sealed,
                at: Timestamp::ZERO,
            })
            .unwrap();
            wal.sync().unwrap();
        });
    });
    group.finish();
}

criterion_group!(benches, bench_heap_ops, bench_vacuum, bench_wal_append);
criterion_main!(benches);
