//! Closed-loop multi-client commit throughput over the wire — the
//! traffic shape the group-commit pipeline was built for, finally
//! measured end to end (TCP framing + session dispatch + engine commit +
//! shared fsync).
//!
//! `server_throughput/clients/N` runs N blocking clients, each issuing a
//! stream of auto-commit `INSERT`s against one `instantdb-server`
//! in-process instance. Every insert pays a real durability point, so
//! the 1-client number is fsync-bound; with 4 and 8 clients the pipeline
//! folds concurrent committers into shared drains and throughput (in
//! elements/s) must rise well past the 1-client line — the CI bench lane
//! records the three lines in `BENCH_server.json` and asserts exactly
//! that shape.
//!
//! `server_shard_throughput/shards/{n}` reruns the 8-client burst with
//! the engine's WAL split over n shards — the must-not-regress
//! guardrail for the parallel commit backbone on the classic blocking
//! serving path (see `bench_shard_throughput`).
//!
//! The per-commit-fsync engine baseline (no network) lives in
//! `benches/group_commit.rs`; comparing the two artifacts bounds the
//! serving overhead.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::{Arc, Mutex};

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use instant_common::MockClock;
use instant_core::query::HierarchyRegistry;
use instant_core::{Db, DbConfig};
use instant_server::{Client, Server, ServerConfig};

/// Inserts per client per timed iteration.
const PER_CLIENT: i64 = 50;

fn start_server(workers: usize) -> Server {
    start_server_with(workers, DbConfig::default())
}

/// Serve an engine with `shards` WAL shards (independent drain
/// pipelines behind one LSN allocator).
fn start_server_sharded(workers: usize, shards: usize) -> Server {
    start_server_with(
        workers,
        DbConfig::builder().wal_shards(shards).build().unwrap(),
    )
}

fn start_server_with(workers: usize, cfg: DbConfig) -> Server {
    let clock = MockClock::new();
    let db = Arc::new(Db::open(cfg, clock.shared()).unwrap());
    Server::start(
        db,
        HierarchyRegistry::new(),
        ServerConfig {
            workers,
            max_connections: 32,
            queue_depth: 256,
            ..ServerConfig::default()
        },
    )
    .unwrap()
}

/// Append the served engine's stats-snapshot histograms as NDJSON when
/// the criterion shim's sink is armed (CI writes `BENCH_server.json`).
fn append_stats(db: &Arc<Db>, prefix: &str) {
    let Ok(path) = std::env::var("CRITERION_SHIM_JSON") else {
        return;
    };
    use std::io::Write as _;
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    for line in instant_core::metrics::stats_snapshot(db).ndjson_lines(prefix) {
        let _ = writeln!(f, "{line}");
    }
}

/// One closed-loop burst: each of the first `clients` connections fires
/// `PER_CLIENT` auto-commit inserts; every insert blocks on a real
/// durability point.
fn run_clients(pool: &[Mutex<Client>], clients: usize, next_id: &AtomicI64) {
    std::thread::scope(|s| {
        for client in pool.iter().take(clients) {
            s.spawn(move || {
                let mut client = client.lock().unwrap();
                for _ in 0..PER_CLIENT {
                    let id = next_id.fetch_add(1, Ordering::Relaxed);
                    client
                        .query(&format!("INSERT INTO events VALUES ({id}, 'payload')"))
                        .unwrap();
                }
            });
        }
    });
}

fn bench_server_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("server_throughput");
    g.sample_size(10);
    for &clients in &[1usize, 4, 8] {
        // Workers ≥ clients so the pool never serializes the committers
        // the pipeline is supposed to batch.
        let server = start_server(clients.max(4));
        let addr = server.local_addr().to_string();
        let mut admin = Client::connect(&addr).unwrap();
        admin
            .query("CREATE TABLE events (id INT, note TEXT)")
            .unwrap();
        // Connections are established once, outside the timed window —
        // the bench measures steady-state commit traffic, not dials.
        let pool: Vec<Mutex<Client>> = (0..clients)
            .map(|_| Mutex::new(Client::connect(&addr).unwrap()))
            .collect();
        let next_id = AtomicI64::new(0);
        g.throughput(Throughput::Elements((clients as i64 * PER_CLIENT) as u64));
        g.bench_with_input(
            BenchmarkId::new("clients", clients),
            &clients,
            |b, &clients| {
                b.iter(|| run_clients(&pool, clients, &next_id));
            },
        );
        drop(pool);
        admin.close().unwrap();
        // Dump the full observability snapshot (commit/query stage
        // percentiles, degradation lag, per-purpose counts) next to the
        // criterion lines — the CI bench lane extracts p50/p95/p99 from
        // these and gates on their shape.
        append_stats(server.db(), &format!("server_stats/clients/{clients}"));
        server.shutdown().unwrap();
    }
    g.finish();
}

/// The same 8-client closed-loop burst served from an engine with 1 vs
/// 4 WAL shards. Blocking auto-commit clients are the *hardest* shape
/// for sharding — each client has one commit in flight, so splitting C
/// committers over K shards thins every epoch to ~C/K — which is
/// exactly why it is the guardrail: multi-shard must not regress the
/// classic serving path, and on multi-core runners the parallel fsync
/// streams should still come out ahead. The pipelined win lives in
/// `group_commit.rs::wal_shard_scaling` (windowed `CommitHandle`
/// committers).
fn bench_shard_throughput(c: &mut Criterion) {
    const CLIENTS: usize = 8;
    let mut g = c.benchmark_group("server_shard_throughput");
    g.sample_size(10);
    for &shards in &[1usize, 4] {
        let server = start_server_sharded(CLIENTS, shards);
        let addr = server.local_addr().to_string();
        let mut admin = Client::connect(&addr).unwrap();
        admin
            .query("CREATE TABLE events (id INT, note TEXT)")
            .unwrap();
        let pool: Vec<Mutex<Client>> = (0..CLIENTS)
            .map(|_| Mutex::new(Client::connect(&addr).unwrap()))
            .collect();
        let next_id = AtomicI64::new(0);
        g.throughput(Throughput::Elements((CLIENTS as i64 * PER_CLIENT) as u64));
        g.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, _| {
            b.iter(|| run_clients(&pool, CLIENTS, &next_id));
        });
        drop(pool);
        admin.close().unwrap();
        append_stats(server.db(), &format!("server_shard_stats/{shards}"));
        server.shutdown().unwrap();
    }
    g.finish();
}

criterion_group!(benches, bench_server_throughput, bench_shard_throughput);
criterion_main!(benches);
