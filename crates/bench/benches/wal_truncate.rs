//! Checkpoint-truncation cost: segment delete vs retained-suffix rewrite
//! (the PR's tentpole claim).
//!
//! Both lanes truncate the same log: a fixed dead prefix (what the
//! checkpoint killed) followed by a *growing* retained suffix.
//!
//! * `segment_delete/retained=N` — `Wal::truncate_before`: unlink the
//!   wholly-dead segments. Time must be (near-)independent of the
//!   retained-log size — the work is O(segments freed).
//! * `rewrite_baseline/retained=N` — the seed implementation's strategy,
//!   reproduced here: stream every retained record into a fresh file and
//!   swap it in. Time grows linearly with the retained size; on the seed
//!   this ran *under the Wal lock*, so every commit ack paid for it.
//!
//! Expected shape: `segment_delete` flat across the retained sizes,
//! `rewrite_baseline` scaling with them (≈10× more retained data ≈10×
//! slower), with the gap widening as the log grows.

use std::fs::File;
use std::io::{BufWriter, Write};

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use instant_common::codec::fnv1a;
use instant_common::{TableId, Timestamp, TupleId, TxId};
use instant_wal::record::{LogRecord, Payload};
use instant_wal::segment::SegmentConfig;
use instant_wal::Wal;

/// Small segments so both the dead prefix and the retained suffix span
/// several files even at bench-friendly record counts.
const SEGMENT_BYTES: u64 = 16 * 1024;
const DEAD_RECORDS: u64 = 1_000;

fn rec(i: u64) -> LogRecord {
    LogRecord::Insert {
        tx: TxId(i),
        table: TableId(1),
        tid: TupleId::new(1, (i % u16::MAX as u64) as u16),
        row: Payload::Plain(format!("row-payload-{i:08}").into_bytes()),
        at: Timestamp::micros(i),
    }
}

/// A log with `DEAD_RECORDS` below the cut and `retained` above it, the
/// cut sitting exactly on a segment boundary (as the engine guarantees by
/// rotating before each checkpoint record).
fn build_log(retained: u64) -> Wal {
    let wal = Wal::temp_with(
        "bench-trunc",
        SegmentConfig {
            segment_bytes: SEGMENT_BYTES,
        },
    )
    .unwrap();
    for i in 0..DEAD_RECORDS {
        wal.append(&rec(i)).unwrap();
    }
    wal.rotate().unwrap();
    for i in DEAD_RECORDS..DEAD_RECORDS + retained {
        wal.append(&rec(i)).unwrap();
    }
    wal.sync().unwrap();
    wal
}

/// The seed-era truncation strategy: stream-copy every retained record
/// into a fresh framed file. (The seed did this under the Wal lock and
/// then swapped the file in; copying alone captures the O(retained)
/// cost being benchmarked.)
fn rewrite_retained_suffix(wal: &Wal, keep_from: u64) -> u64 {
    let tmp = wal.path().join("rewrite.tmp");
    let mut kept = 0u64;
    {
        let mut out = BufWriter::new(File::create(&tmp).unwrap());
        for (lsn, rec) in wal.iterate().unwrap() {
            if lsn < keep_from {
                continue;
            }
            let body = rec.encode();
            out.write_all(&(body.len() as u32).to_le_bytes()).unwrap();
            out.write_all(&fnv1a(&body).to_le_bytes()).unwrap();
            out.write_all(&body).unwrap();
            kept += 1;
        }
        out.flush().unwrap();
        out.get_ref().sync_all().unwrap();
    }
    std::fs::remove_file(&tmp).unwrap();
    kept
}

fn bench_truncate(c: &mut Criterion) {
    let mut g = c.benchmark_group("wal_truncate");
    g.sample_size(10);
    for &retained in &[500u64, 2_000, 8_000] {
        g.bench_with_input(
            BenchmarkId::new("segment_delete", retained),
            &retained,
            |b, &retained| {
                b.iter_batched(
                    || build_log(retained),
                    |wal| {
                        let dropped = wal.truncate_before(DEAD_RECORDS).unwrap();
                        assert_eq!(dropped, DEAD_RECORDS);
                        wal
                    },
                    BatchSize::LargeInput,
                );
            },
        );
        g.bench_with_input(
            BenchmarkId::new("rewrite_baseline", retained),
            &retained,
            |b, &retained| {
                b.iter_batched(
                    || build_log(retained),
                    |wal| {
                        let kept = rewrite_retained_suffix(&wal, DEAD_RECORDS);
                        assert_eq!(kept, retained);
                        wal
                    },
                    BatchSize::LargeInput,
                );
            },
        );
    }
    g.finish();
}

criterion_group!(benches, bench_truncate);
criterion_main!(benches);
