//! E10: what does degradation awareness cost the OLTP path?
//!
//! * insert throughput: stable-only table vs degradable table (the extra
//!   cost is capacity reservation, index-at-level and transition arming),
//!   across WAL modes (off / plain / sealed — sealing adds the cipher);
//! * reader latency with and without a concurrently pumping degrader.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use instant_common::{DataType, Duration, MockClock, Value};
use instant_core::db::{Db, DbConfig, WalMode};
use instant_core::schema::{Column, TableSchema};
use instant_lcp::AttributeLcp;
use instant_workload::location::{LocationDomain, LocationShape};
use instant_workload::rng::Rng;

fn schema_degradable(domain: &LocationDomain) -> TableSchema {
    TableSchema::new(
        "events",
        vec![
            Column::stable("id", DataType::Int).with_index(),
            Column::stable("user", DataType::Str),
            Column::degradable(
                "location",
                DataType::Str,
                domain.hierarchy(),
                AttributeLcp::from_pairs(&[
                    (0, Duration::hours(1)),
                    (1, Duration::days(1)),
                    (3, Duration::days(30)),
                ])
                .unwrap(),
            )
            .unwrap()
            .with_index(),
        ],
    )
    .unwrap()
}

fn schema_stable() -> TableSchema {
    TableSchema::new(
        "events",
        vec![
            Column::stable("id", DataType::Int).with_index(),
            Column::stable("user", DataType::Str),
            Column::stable("location", DataType::Str).with_index(),
        ],
    )
    .unwrap()
}

fn bench_insert(c: &mut Criterion) {
    let domain = LocationDomain::generate(LocationShape::default(), 0.9);
    let mut group = c.benchmark_group("insert_path");
    group.throughput(Throughput::Elements(1));
    group.sample_size(20);
    for (name, degradable, wal) in [
        ("stable/wal-off", false, WalMode::Off),
        ("degradable/wal-off", true, WalMode::Off),
        ("degradable/wal-plain", true, WalMode::Plain),
        ("degradable/wal-sealed", true, WalMode::Sealed),
    ] {
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let clock = MockClock::new();
            let db = Db::open(
                DbConfig {
                    wal_mode: wal,
                    buffer_frames: 8192,
                    ..DbConfig::default()
                },
                clock.shared(),
            )
            .unwrap();
            if degradable {
                db.create_table(schema_degradable(&domain)).unwrap();
            } else {
                db.create_table(schema_stable()).unwrap();
            }
            let mut rng = Rng::new(1);
            let mut i = 0i64;
            b.iter(|| {
                let addr = domain.sample_address(&mut rng).to_string();
                db.insert(
                    "events",
                    &[Value::Int(i), Value::Str("u".into()), Value::Str(addr)],
                )
                .unwrap();
                i += 1;
            });
        });
    }
    group.finish();
}

fn bench_reader_vs_degrader(c: &mut Criterion) {
    let domain = LocationDomain::generate(LocationShape::default(), 0.9);
    let mut group = c.benchmark_group("read_tuple_latency");
    group.sample_size(30);
    for degrader_active in [false, true] {
        let name = if degrader_active {
            "with_degrader"
        } else {
            "quiescent"
        };
        group.bench_function(BenchmarkId::from_parameter(name), |b| {
            let clock = MockClock::new();
            let db = Arc::new(
                Db::open(
                    DbConfig {
                        wal_mode: WalMode::Off,
                        buffer_frames: 8192,
                        batch_max: 64,
                        ..DbConfig::default()
                    },
                    clock.shared(),
                )
                .unwrap(),
            );
            db.create_table(schema_degradable(&domain)).unwrap();
            let mut rng = Rng::new(2);
            let mut tids = Vec::new();
            for i in 0..5_000i64 {
                let addr = domain.sample_address(&mut rng).to_string();
                tids.push(
                    db.insert(
                        "events",
                        &[Value::Int(i), Value::Str("u".into()), Value::Str(addr)],
                    )
                    .unwrap(),
                );
            }
            if degrader_active {
                // Make all transitions due so every pump batch competes
                // with the readers for tuple locks.
                clock.advance(Duration::hours(2));
            }
            let table = db.catalog().get("events").unwrap();
            let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
            let pump_handle = if degrader_active {
                let db2 = db.clone();
                let stop2 = stop.clone();
                Some(std::thread::spawn(move || {
                    while !stop2.load(std::sync::atomic::Ordering::Relaxed) {
                        let _ = db2.pump_one_batch();
                        std::thread::yield_now();
                    }
                }))
            } else {
                None
            };
            let mut k = 0usize;
            b.iter(|| {
                let tid = tids[k % tids.len()];
                k += 1;
                // Tuples may be mid-degradation; read through the lock path.
                let _ = db.read_tuple(&table, tid);
            });
            stop.store(true, std::sync::atomic::Ordering::Relaxed);
            if let Some(h) = pump_handle {
                h.join().unwrap();
            }
        });
    }
    group.finish();
}

criterion_group!(benches, bench_insert, bench_reader_vs_degrader);
criterion_main!(benches);
