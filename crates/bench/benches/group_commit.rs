//! Commit-throughput: group commit vs per-commit fsync (the PR-3
//! tentpole claim).
//!
//! `threads` committers each run a stream of auto-commit inserts:
//!
//! * `per_commit_fsync/…` — `group_commit: None`; every commit pays its
//!   own append + fsync under the inline path, so committers serialize on
//!   the durability point;
//! * `group_commit/…` — the pipeline; concurrent committers pile up
//!   behind the writer thread's current fsync and share the next one.
//!
//! At 1 thread the pipeline must not lose (one thread handoff against one
//! fsync — the fsync dominates). From 4 threads up it should win, and the
//! fsyncs-per-commit ratio (printed by the stress tests, not here) drops
//! with concurrency. On a single-core CI host the absolute numbers
//! flatten; the structural claim is covered by
//! `tests/group_commit.rs` regardless.
//!
//! Two further groups cover the sharded-WAL claims of the parallel
//! commit backbone:
//!
//! * `wal_shard_scaling/shards/{n}` — an async-windowed commit burst
//!   (`Db::enqueue_records` + `CommitHandle`, the server's pipelined
//!   path) against n ∈ {1, 2, 4, 8} WAL shards (independent drain
//!   pipelines behind one LSN allocator). CI gates 4-shard throughput
//!   against 1-shard on multi-core runners; a single-core host
//!   serializes the drain threads and cannot exhibit the parallelism.
//! * `wal_recovery/shards/{n}` — crash + `recover_with_schemas` wall
//!   time over the same committed workload at 1 vs 4 shards. The k-way
//!   LSN merge must not make recovery pay for the parallelism; CI gates
//!   the ratio.

use std::path::PathBuf;
use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use instant_common::{DataType, MockClock, Value};
use instant_core::schema::{Column, TableSchema};
use instant_core::{Db, DbConfig, GroupCommitConfig};

const PER_THREAD: i64 = 200;

fn schema() -> TableSchema {
    TableSchema::new(
        "events",
        vec![
            Column::stable("id", DataType::Int),
            Column::stable("note", DataType::Str),
        ],
    )
    .unwrap()
}

fn open_db(group: Option<GroupCommitConfig>) -> Arc<Db> {
    let cfg = match group {
        Some(gc) => DbConfig::builder().group_commit(gc),
        None => DbConfig::builder().no_group_commit(),
    }
    .build()
    .unwrap();
    open_db_with(cfg)
}

/// Ephemeral engine with the pipeline on and `shards` WAL shards.
fn open_db_sharded(shards: usize) -> Arc<Db> {
    let cfg = DbConfig::builder()
        .wal_shards(shards)
        .group_commit(GroupCommitConfig::default())
        .build()
        .unwrap();
    open_db_with(cfg)
}

fn open_db_with(cfg: DbConfig) -> Arc<Db> {
    let clock = MockClock::new();
    let db = Arc::new(Db::open(cfg, clock.shared()).unwrap());
    db.create_table(schema()).unwrap();
    db
}

/// Append the engine's stage-histogram percentiles (drain, fsync, ack)
/// next to the criterion shim's own lines when its NDJSON sink is armed
/// — the CI bench lane reads real latency percentiles out of
/// `BENCH_wal.json`, not just mean wall-clock.
fn append_stats(db: &Db, prefix: &str) {
    let Ok(path) = std::env::var("CRITERION_SHIM_JSON") else {
        return;
    };
    use std::io::Write as _;
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    for line in db.obs().snapshot().ndjson_lines(prefix) {
        let _ = writeln!(f, "{line}");
    }
}

fn run_committers(db: &Arc<Db>, threads: i64) {
    run_committers_payload(db, threads, "payload".len());
}

fn run_committers_payload(db: &Arc<Db>, threads: i64, payload_bytes: usize) {
    std::thread::scope(|s| {
        for t in 0..threads {
            let db = db.clone();
            s.spawn(move || {
                let note = "p".repeat(payload_bytes);
                for i in 0..PER_THREAD {
                    db.insert(
                        "events",
                        &[Value::Int(t * PER_THREAD + i), Value::Str(note.clone())],
                    )
                    .unwrap();
                }
            });
        }
    });
}

fn bench_commit_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("commit_throughput");
    g.sample_size(10);
    for &threads in &[1i64, 2, 4, 8] {
        g.throughput(Throughput::Elements((threads * PER_THREAD) as u64));
        g.bench_with_input(
            BenchmarkId::new("per_commit_fsync", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    let db = open_db(None);
                    run_committers(&db, t);
                });
            },
        );
        // Keep the last timed run's engine alive so its drain/fsync/ack
        // histograms can be dumped after the measurement.
        let last = std::cell::RefCell::new(None);
        g.bench_with_input(
            BenchmarkId::new("group_commit", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    let db = open_db(Some(GroupCommitConfig::default()));
                    run_committers(&db, t);
                    *last.borrow_mut() = Some(db);
                });
            },
        );
        if let Some(db) = last.into_inner() {
            append_stats(&db, &format!("group_commit_stats/{threads}"));
        }
    }
    g.finish();
}

/// Async-epoch committers with a bounded in-flight window, driven
/// through [`Db::enqueue_records`]/[`CommitHandle`] — the server's
/// pipelined path. A blocking committer can only ever have one commit
/// in flight, so splitting it over K shards just dilutes every epoch by
/// K (the fsyncs multiply and nothing is gained); a windowed submitter
/// keeps every shard's epoch saturated, which is the workload the
/// parallel backbone exists for.
fn run_windowed_committers(db: &Arc<Db>, threads: u64, window: usize, commits: u64) {
    use std::collections::VecDeque;
    let at = db.now();
    std::thread::scope(|s| {
        for t in 0..threads {
            let db = db.clone();
            s.spawn(move || {
                let mut inflight: VecDeque<instant_core::CommitHandle> = VecDeque::new();
                for i in 0..commits {
                    // Distinct tx ids stripe the commits over the shards.
                    let tx = instant_common::TxId(t * commits + i);
                    let records = vec![
                        instant_wal::LogRecord::Begin { tx, at },
                        instant_wal::LogRecord::Commit { tx, at },
                    ];
                    inflight.push_back(db.enqueue_records(records).unwrap());
                    if inflight.len() >= window {
                        inflight.pop_front().unwrap().wait().unwrap();
                    }
                }
                for h in inflight {
                    h.wait().unwrap();
                }
            });
        }
    });
}

/// Throughput of the same async-windowed commit burst against 1/2/4/8
/// WAL shards. Every configuration commits through the pipeline; only
/// the number of independent drain pipelines (and so the number of
/// concurrently in-flight fsyncs) varies. The per-shard drain/fsync
/// histograms land in the NDJSON artifact under `wal_shard_stats/{n}/…`
/// for the CI percentile gate.
fn bench_shard_scaling(c: &mut Criterion) {
    const THREADS: u64 = 2;
    const WINDOW: usize = 128;
    const COMMITS: u64 = 2000;
    let mut g = c.benchmark_group("wal_shard_scaling");
    g.sample_size(10);
    for &shards in &[1usize, 2, 4, 8] {
        g.throughput(Throughput::Elements(THREADS * COMMITS));
        let last = std::cell::RefCell::new(None);
        g.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &n| {
            b.iter(|| {
                let db = open_db_sharded(n);
                run_windowed_committers(&db, THREADS, WINDOW, COMMITS);
                *last.borrow_mut() = Some(db);
            });
        });
        if let Some(db) = last.into_inner() {
            append_stats(&db, &format!("wal_shard_stats/{shards}"));
        }
    }
    g.finish();
}

/// Crash-recovery wall time over an identical committed workload at 1 vs
/// 4 WAL shards. Setup (untimed) populates a fresh on-disk engine with a
/// concurrent burst and crashes it; the timed routine is
/// `Db::recover_with_schemas` alone — open every shard, k-way merge by
/// LSN, replay. The merge is O(total records · log shards); CI gates
/// that the 4-shard recovery stays within a small ratio of 1-shard.
fn bench_recovery(c: &mut Criterion) {
    const THREADS: i64 = 4;
    const ROWS: i64 = THREADS * PER_THREAD;
    let mut g = c.benchmark_group("wal_recovery");
    g.sample_size(5);
    for &shards in &[1usize, 4] {
        let dir = std::env::temp_dir().join(format!(
            "instantdb-bench-recovery-{}-{shards}",
            std::process::id()
        ));
        g.throughput(Throughput::Elements(ROWS as u64));
        g.bench_with_input(BenchmarkId::new("shards", shards), &shards, |b, &n| {
            b.iter_batched(
                || {
                    cleanup(&dir);
                    let cfg = DbConfig::builder()
                        .wal_shards(n)
                        .group_commit(GroupCommitConfig::default())
                        .path(dir.clone())
                        .build()
                        .unwrap();
                    let clock = MockClock::new();
                    {
                        let db = Arc::new(Db::open(cfg.clone(), clock.shared()).unwrap());
                        db.create_table(schema()).unwrap();
                        run_committers(&db, THREADS);
                        // Drop without checkpoint: the entire workload
                        // replays from the sharded log.
                    }
                    (cfg, clock)
                },
                |(cfg, clock)| {
                    let db = Db::recover_with_schemas(cfg, clock.shared(), vec![schema()]).unwrap();
                    assert_eq!(
                        db.catalog().get("events").unwrap().live_count().unwrap(),
                        ROWS as usize
                    );
                    db
                },
                BatchSize::PerIteration,
            );
        });
        cleanup(&dir);
    }
    g.finish();
}

fn cleanup(prefix: &std::path::Path) {
    for ext in ["idb", "wal", "meta"] {
        let mut s = prefix.as_os_str().to_os_string();
        s.push(".");
        s.push(ext);
        let p = PathBuf::from(s);
        let _ = std::fs::remove_file(&p);
        let _ = std::fs::remove_dir_all(&p); // the WAL is a segment dir
    }
}

criterion_group!(
    benches,
    bench_commit_throughput,
    bench_shard_scaling,
    bench_recovery
);
criterion_main!(benches);
