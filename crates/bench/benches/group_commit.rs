//! Commit-throughput: group commit vs per-commit fsync (the PR-3
//! tentpole claim).
//!
//! `threads` committers each run a stream of auto-commit inserts:
//!
//! * `per_commit_fsync/…` — `group_commit: None`; every commit pays its
//!   own append + fsync under the inline path, so committers serialize on
//!   the durability point;
//! * `group_commit/…` — the pipeline; concurrent committers pile up
//!   behind the writer thread's current fsync and share the next one.
//!
//! At 1 thread the pipeline must not lose (one thread handoff against one
//! fsync — the fsync dominates). From 4 threads up it should win, and the
//! fsyncs-per-commit ratio (printed by the stress tests, not here) drops
//! with concurrency. On a single-core CI host the absolute numbers
//! flatten; the structural claim is covered by
//! `tests/group_commit.rs` regardless.

use std::sync::Arc;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use instant_common::{DataType, MockClock, Value};
use instant_core::schema::{Column, TableSchema};
use instant_core::{Db, DbConfig, GroupCommitConfig};

const PER_THREAD: i64 = 200;

fn open_db(group: Option<GroupCommitConfig>) -> Arc<Db> {
    let clock = MockClock::new();
    let db = Arc::new(
        Db::open(
            DbConfig {
                group_commit: group,
                ..DbConfig::default()
            },
            clock.shared(),
        )
        .unwrap(),
    );
    db.create_table(
        TableSchema::new(
            "events",
            vec![
                Column::stable("id", DataType::Int),
                Column::stable("note", DataType::Str),
            ],
        )
        .unwrap(),
    )
    .unwrap();
    db
}

/// Append the engine's stage-histogram percentiles (drain, fsync, ack)
/// next to the criterion shim's own lines when its NDJSON sink is armed
/// — the CI bench lane reads real latency percentiles out of
/// `BENCH_wal.json`, not just mean wall-clock.
fn append_stats(db: &Db, prefix: &str) {
    let Ok(path) = std::env::var("CRITERION_SHIM_JSON") else {
        return;
    };
    use std::io::Write as _;
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    for line in db.obs().snapshot().ndjson_lines(prefix) {
        let _ = writeln!(f, "{line}");
    }
}

fn run_committers(db: &Arc<Db>, threads: i64) {
    std::thread::scope(|s| {
        for t in 0..threads {
            let db = db.clone();
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    db.insert(
                        "events",
                        &[Value::Int(t * PER_THREAD + i), Value::Str("payload".into())],
                    )
                    .unwrap();
                }
            });
        }
    });
}

fn bench_commit_throughput(c: &mut Criterion) {
    let mut g = c.benchmark_group("commit_throughput");
    g.sample_size(10);
    for &threads in &[1i64, 2, 4, 8] {
        g.throughput(Throughput::Elements((threads * PER_THREAD) as u64));
        g.bench_with_input(
            BenchmarkId::new("per_commit_fsync", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    let db = open_db(None);
                    run_committers(&db, t);
                });
            },
        );
        // Keep the last timed run's engine alive so its drain/fsync/ack
        // histograms can be dumped after the measurement.
        let last = std::cell::RefCell::new(None);
        g.bench_with_input(
            BenchmarkId::new("group_commit", threads),
            &threads,
            |b, &t| {
                b.iter(|| {
                    let db = open_db(Some(GroupCommitConfig::default()));
                    run_committers(&db, t);
                    *last.borrow_mut() = Some(db);
                });
            },
        );
        if let Some(db) = last.into_inner() {
            append_stats(&db, &format!("group_commit_stats/{threads}"));
        }
    }
    g.finish();
}

criterion_group!(benches, bench_commit_throughput);
criterion_main!(benches);
