//! E7 micro-benchmarks: the degradation pump.
//!
//! Measures transitions/second through the full system-transaction path
//! (locks, secure rewrite, index migration, sealed WAL) at several batch
//! sizes, plus the scheduler's queue operations in isolation.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use instant_common::{Duration, MockClock, Timestamp, Value};
use instant_core::baseline::{protected_location_schema, Protection};
use instant_core::db::{Db, DbConfig, WalMode};
use instant_core::scheduler::{DegradationScheduler, PendingTransition};
use instant_lcp::AttributeLcp;
use instant_workload::location::{LocationDomain, LocationShape};
use instant_workload::rng::Rng;

const TUPLES: usize = 2_000;

fn bench_pump(c: &mut Criterion) {
    let domain = LocationDomain::generate(LocationShape::default(), 0.9);
    let mut group = c.benchmark_group("degradation_pump");
    group.throughput(Throughput::Elements(TUPLES as u64));
    group.sample_size(10);
    for batch in [16usize, 256, 0] {
        group.bench_with_input(
            BenchmarkId::new(
                "batch",
                if batch == 0 {
                    "unbounded".into()
                } else {
                    batch.to_string()
                },
            ),
            &batch,
            |b, &batch| {
                b.iter_batched(
                    || {
                        // Fresh store with TUPLES due transitions.
                        let clock = MockClock::new();
                        let db = Db::open(
                            DbConfig {
                                batch_max: batch,
                                wal_mode: WalMode::Sealed,
                                buffer_frames: 4096,
                                ..DbConfig::default()
                            },
                            clock.shared(),
                        )
                        .unwrap();
                        let scheme = Protection::Degradation(
                            AttributeLcp::from_pairs(&[
                                (0, Duration::hours(1)),
                                (3, Duration::days(30)),
                            ])
                            .unwrap(),
                        );
                        db.create_table(
                            protected_location_schema("events", domain.hierarchy(), &scheme)
                                .unwrap(),
                        )
                        .unwrap();
                        let mut rng = Rng::new(7);
                        for i in 0..TUPLES {
                            let addr = domain.sample_address(&mut rng).to_string();
                            db.insert(
                                "events",
                                &[
                                    Value::Int(i as i64),
                                    Value::Str("u".into()),
                                    Value::Str(addr),
                                ],
                            )
                            .unwrap();
                        }
                        clock.advance(Duration::hours(2));
                        db
                    },
                    |db| {
                        let r = db.pump_degradation().unwrap();
                        assert_eq!(r.fired, TUPLES);
                    },
                    criterion::BatchSize::PerIteration,
                );
            },
        );
    }
    group.finish();
}

fn bench_scheduler_queue(c: &mut Criterion) {
    let mut group = c.benchmark_group("scheduler_queue");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("schedule_10k_then_drain", |b| {
        b.iter(|| {
            let s = DegradationScheduler::new();
            for i in 0..10_000u64 {
                s.schedule(PendingTransition {
                    due: Timestamp::micros((i * 7919) % 100_000),
                    table: instant_common::TableId(1),
                    tid: instant_common::TupleId::unpack(i),
                    deg_slot: 0,
                    from_stage: 0,
                });
            }
            let batch = s.due_batch(Timestamp::micros(100_000), 0);
            assert_eq!(batch.len(), 10_000);
        });
    });
    group.finish();
}

criterion_group!(benches, bench_pump, bench_scheduler_queue);
criterion_main!(benches);
