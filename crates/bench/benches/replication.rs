//! Replication lag, measured end to end: a leader commits a burst while
//! a live follower ships, fsyncs, and replays it; the timed window ends
//! when the follower's heap has caught up.
//!
//! `replication/catchup/rows/N` is the closed-loop number (elements/s =
//! replicated commits per second, including the follower's fsync and
//! replay). The leader-side `repl.lag` histogram — one sample per
//! shipping tick that moved data, covering ship → follower fsync →
//! replay → ack — lands in `BENCH_repl.json` via the criterion shim, and
//! the CI bench lane gates on its shape (p99 ≥ p50 > 0).

use std::sync::Arc;
use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use instant_common::MockClock;
use instant_core::query::HierarchyRegistry;
use instant_core::{Db, DbConfig, Session, WalMode};
use instant_repl::{ReplConfig, ReplListener, Replica, ReplicaConfig};

const CREATE_EVENTS: &str = "CREATE TABLE events (id INT, note TEXT)";
const ROWS: i64 = 200;

fn append_stats(db: &Arc<Db>, prefix: &str) {
    let Ok(path) = std::env::var("CRITERION_SHIM_JSON") else {
        return;
    };
    use std::io::Write as _;
    let Ok(mut f) = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(path)
    else {
        return;
    };
    for line in instant_core::metrics::stats_snapshot(db).ndjson_lines(prefix) {
        let _ = writeln!(f, "{line}");
    }
}

fn bench_replication_catchup(c: &mut Criterion) {
    let clock = MockClock::new();
    let leader = Arc::new(Db::open(DbConfig::default(), clock.shared()).unwrap());
    let mut session = Session::with_registry(Arc::clone(&leader), HierarchyRegistry::new());
    session.execute(CREATE_EVENTS).unwrap();

    let listener = ReplListener::start(
        Arc::clone(&leader),
        ReplConfig {
            tick: Duration::from_millis(1),
            ddl: vec![CREATE_EVENTS.to_string()],
            ..ReplConfig::default()
        },
    )
    .unwrap();

    let fclock = MockClock::new();
    let fdb = Arc::new(
        Db::open(
            DbConfig::builder().wal_mode(WalMode::Off).build().unwrap(),
            fclock.shared(),
        )
        .unwrap(),
    );
    let dir = std::env::temp_dir().join(format!("instantdb-bench-repl-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let replica = Replica::start(
        Arc::clone(&fdb),
        HierarchyRegistry::new(),
        ReplicaConfig {
            leader_addr: listener.local_addr().to_string(),
            dir: dir.clone(),
            tick: Duration::from_millis(1),
            ..ReplicaConfig::default()
        },
    )
    .unwrap();

    let caught_up = |want: usize| loop {
        if let Ok(t) = fdb.catalog().get("events") {
            if t.scan().unwrap().len() == want {
                return;
            }
        }
        std::thread::sleep(Duration::from_micros(200));
    };
    // Warm up: handshake + DDL + first segment ship, outside the timing.
    session
        .execute("INSERT INTO events VALUES (-1, 'warm')")
        .unwrap();
    caught_up(1);

    let mut g = c.benchmark_group("replication");
    g.sample_size(10);
    g.throughput(Throughput::Elements(ROWS as u64));
    let mut next_id = 0i64;
    let mut total = 1usize;
    g.bench_function("catchup/rows/200", |b| {
        b.iter(|| {
            for _ in 0..ROWS {
                session
                    .execute(&format!("INSERT INTO events VALUES ({next_id}, 'payload')"))
                    .unwrap();
                next_id += 1;
            }
            total += ROWS as usize;
            caught_up(total);
        });
    });
    g.finish();

    // Leader-side lag percentiles (repl/repl.lag) for the CI gate.
    append_stats(&leader, "repl");
    replica.stop().unwrap();
    listener.shutdown().unwrap();
    let _ = std::fs::remove_dir_all(&dir);
}

criterion_group!(benches, bench_replication_catchup);
criterion_main!(benches);
