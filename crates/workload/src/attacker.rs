//! Attacker models.
//!
//! Two adversaries from the paper's threat analysis:
//!
//! * [`SnapshotAttacker`] — compromises the *live* server at chosen instants
//!   and reads everything the DBMS itself can read (claim 1: exposure per
//!   snapshot; claim 2: "an attack … must be repeated with a frequency
//!   smaller than the duration of the shortest degradation step" to observe
//!   accurate values).
//! * [`forensic_needles`] — equips a
//!   [`instant_storage::secure::ForensicScanner`] with the accurate values
//!   an offline attacker (stolen disk / log) would hunt for (Section III's
//!   unintended-retention channels, after Stahlberg et al.).

use std::collections::HashSet;

use instant_common::{Result, Value};
use instant_core::db::Db;
use instant_core::metrics::{exposure_of_db, ExposureReport};
use instant_storage::secure::ForensicScanner;

/// What one snapshot of the live store yielded.
#[derive(Debug, Clone)]
pub struct SnapshotObservation {
    /// Exposure reports per table at snapshot time.
    pub reports: Vec<ExposureReport>,
    /// Accurate (stage-0) degradable values observed, as display strings.
    pub accurate_values: Vec<String>,
}

/// A snapshot attacker accumulating observations over repeated attacks.
#[derive(Debug, Default)]
pub struct SnapshotAttacker {
    /// Every accurate value ever observed (deduplicated).
    observed_accurate: HashSet<String>,
    pub snapshots_taken: usize,
}

impl SnapshotAttacker {
    pub fn new() -> SnapshotAttacker {
        SnapshotAttacker::default()
    }

    /// Attack now: read the whole store as the server could.
    pub fn snapshot(&mut self, db: &Db) -> Result<SnapshotObservation> {
        self.snapshots_taken += 1;
        let reports = exposure_of_db(db)?;
        let mut accurate_values = Vec::new();
        for table in db.catalog().all_tables() {
            let schema = table.schema();
            let deg_cols = schema.degradable_columns();
            for (_tid, tuple) in table.scan()? {
                for (slot, cid) in deg_cols.iter().enumerate() {
                    let Some(stage) = tuple.stages.get(slot).copied().flatten() else {
                        continue;
                    };
                    let d = schema.column(*cid).degrader().expect("degradable");
                    // Accurate = domain level 0, not merely LCP stage 0:
                    // a static-anonymization store (single coarse stage)
                    // yields the attacker nothing accurate.
                    if d.lcp().stages()[stage as usize].level == instant_common::LevelId(0) {
                        let v: &Value = &tuple.row[cid.0 as usize];
                        let s = v.to_string();
                        accurate_values.push(s.clone());
                        self.observed_accurate.insert(s);
                    }
                }
            }
        }
        Ok(SnapshotObservation {
            reports,
            accurate_values,
        })
    }

    /// Distinct accurate values captured across all snapshots so far.
    pub fn total_accurate_observed(&self) -> usize {
        self.observed_accurate.len()
    }

    /// Fraction of `universe` accurate values ever captured.
    pub fn capture_fraction(&self, universe: usize) -> f64 {
        if universe == 0 {
            0.0
        } else {
            self.observed_accurate.len() as f64 / universe as f64
        }
    }

    /// Has the attacker ever seen this exact accurate value?
    pub fn has_observed(&self, value: &str) -> bool {
        self.observed_accurate.contains(value)
    }
}

/// Build a forensic scanner hunting the byte encodings of the given
/// accurate values (typically: every address ever inserted).
pub fn forensic_needles<'a>(values: impl IntoIterator<Item = &'a str>) -> ForensicScanner {
    let mut scanner = ForensicScanner::new();
    for v in values {
        scanner.hunt(v.as_bytes().to_vec());
    }
    scanner
}

/// Convenience: scan a database's raw heap+WAL images with the scanner.
pub fn forensic_scan(
    db: &Db,
    scanner: &ForensicScanner,
) -> Result<instant_storage::secure::ForensicReport> {
    let images = db.forensic_images()?;
    let slices: Vec<&[u8]> = images.iter().map(|(_, b)| b.as_slice()).collect();
    Ok(scanner.scan(slices))
}

#[cfg(test)]
mod tests {
    use super::*;
    use instant_common::{DataType, Duration, MockClock};
    use instant_core::db::DbConfig;
    use instant_core::schema::{Column, TableSchema};
    use instant_lcp::gtree::location_tree_fig1;
    use instant_lcp::hierarchy::Hierarchy;
    use instant_lcp::AttributeLcp;
    use std::sync::Arc;

    fn setup() -> (MockClock, Db) {
        let clock = MockClock::new();
        let db = Db::open(DbConfig::default(), clock.shared()).unwrap();
        let gt: Arc<dyn Hierarchy> = Arc::new(location_tree_fig1());
        db.create_table(
            TableSchema::new(
                "person",
                vec![
                    Column::stable("id", DataType::Int),
                    Column::degradable(
                        "location",
                        DataType::Str,
                        gt,
                        AttributeLcp::fig2_location(),
                    )
                    .unwrap(),
                ],
            )
            .unwrap(),
        )
        .unwrap();
        (clock, db)
    }

    #[test]
    fn snapshot_sees_accurate_values_only_while_accurate() {
        let (clock, db) = setup();
        db.insert(
            "person",
            &[Value::Int(1), Value::Str("4 rue Jussieu".into())],
        )
        .unwrap();
        let mut attacker = SnapshotAttacker::new();
        let obs = attacker.snapshot(&db).unwrap();
        assert_eq!(obs.accurate_values, vec!["4 rue Jussieu".to_string()]);
        assert!(attacker.has_observed("4 rue Jussieu"));

        clock.advance(Duration::hours(2));
        db.pump_degradation().unwrap();
        let obs2 = attacker.snapshot(&db).unwrap();
        assert!(obs2.accurate_values.is_empty(), "only city remains");
        assert_eq!(attacker.snapshots_taken, 2);
        assert_eq!(attacker.total_accurate_observed(), 1);
        assert!((attacker.capture_fraction(4) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn slow_attacker_misses_fast_degradation() {
        let (clock, db) = setup();
        let mut attacker = SnapshotAttacker::new();
        // Value inserted, degrades after 1 h; attacker arrives at t=2 h.
        db.insert(
            "person",
            &[Value::Int(1), Value::Str("Rue de la Paix".into())],
        )
        .unwrap();
        clock.advance(Duration::hours(2));
        db.pump_degradation().unwrap();
        attacker.snapshot(&db).unwrap();
        assert_eq!(
            attacker.total_accurate_observed(),
            0,
            "attack slower than the shortest step captures nothing accurate"
        );
    }

    #[test]
    fn forensic_scanner_round_trip() {
        let (_clock, db) = setup();
        db.insert(
            "person",
            &[Value::Int(1), Value::Str("Science Park 123".into())],
        )
        .unwrap();
        let scanner = forensic_needles(["Science Park 123", "Nonexistent St"]);
        let report = forensic_scan(&db, &scanner).unwrap();
        // Live heap still holds the accurate value (it has not degraded).
        assert!(report.recovered.contains(&b"Science Park 123".to_vec()));
        assert!(!report.recovered.contains(&b"Nonexistent St".to_vec()));
    }
}
