//! Parametric location domains.
//!
//! [`LocationDomain`] generates a synthetic Generalization Tree with the
//! exact shape of the paper's Fig. 1 — address → city → region → country —
//! at configurable fan-out, plus Zipf-skewed samplers over its leaves.
//! This substitutes for the real cell-phone/RFID location feeds the paper
//! assumes (see DESIGN.md's substitution table): the degradation mechanism
//! only observes the hierarchy shape and the value skew, both of which are
//! controlled here.

use std::sync::Arc;

use instant_lcp::gtree::GeneralizationTree;
use instant_lcp::hierarchy::Hierarchy;

use crate::rng::Rng;
use crate::zipf::Zipf;

/// Fan-out specification for the synthetic location GT.
#[derive(Debug, Clone, Copy)]
pub struct LocationShape {
    pub countries: usize,
    pub regions_per_country: usize,
    pub cities_per_region: usize,
    pub addresses_per_city: usize,
}

impl Default for LocationShape {
    fn default() -> Self {
        // ~2 × 5 × 10 × 20 = 2000 addresses: enough cardinality collapse
        // (2000 → 100 → 10 → 2) to exercise every index regime.
        LocationShape {
            countries: 2,
            regions_per_country: 5,
            cities_per_region: 10,
            addresses_per_city: 20,
        }
    }
}

impl LocationShape {
    pub fn leaf_count(&self) -> usize {
        self.countries * self.regions_per_country * self.cities_per_region * self.addresses_per_city
    }
}

/// A generated location domain: the GT plus samplers.
pub struct LocationDomain {
    tree: Arc<GeneralizationTree>,
    addresses: Vec<String>,
    zipf: Zipf,
}

impl std::fmt::Debug for LocationDomain {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocationDomain")
            .field("addresses", &self.addresses.len())
            .finish()
    }
}

impl LocationDomain {
    /// Generate the domain. `theta` is the Zipf skew over addresses.
    pub fn generate(shape: LocationShape, theta: f64) -> LocationDomain {
        let mut builder =
            GeneralizationTree::builder("location", &["address", "city", "region", "country"]);
        let mut addresses = Vec::with_capacity(shape.leaf_count());
        for c in 0..shape.countries {
            let country = format!("Country{c:02}");
            for r in 0..shape.regions_per_country {
                let region = format!("{country}/Region{r:02}");
                for ci in 0..shape.cities_per_region {
                    let city = format!("{region}/City{ci:02}");
                    for a in 0..shape.addresses_per_city {
                        let address = format!("{city}/Addr{a:03}");
                        builder = builder.path(&[&address, &city, &region, &country]);
                        addresses.push(address);
                    }
                }
            }
        }
        let tree = builder.build().expect("generated GT is well-formed");
        let zipf = Zipf::new(addresses.len(), theta);
        LocationDomain {
            tree: Arc::new(tree),
            addresses,
            zipf,
        }
    }

    /// The GT as a shared hierarchy handle (for table schemas).
    pub fn hierarchy(&self) -> Arc<dyn Hierarchy> {
        self.tree.clone()
    }

    pub fn tree(&self) -> &Arc<GeneralizationTree> {
        &self.tree
    }

    /// All leaf addresses.
    pub fn addresses(&self) -> &[String] {
        &self.addresses
    }

    /// Sample an address (Zipf-skewed).
    pub fn sample_address(&self, rng: &mut Rng) -> &str {
        &self.addresses[self.zipf.sample(rng)]
    }

    /// A specific level-`k` label reachable from some leaf — handy for
    /// building predicates at degraded levels.
    pub fn label_at(&self, leaf: &str, level: u8) -> String {
        let path = self.tree.degradation_path(leaf).expect("leaf exists");
        path.iter()
            .find(|(l, _)| l.0 == level)
            .map(|(_, s)| s.clone())
            .expect("level within depth")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use instant_common::{LevelId, Value};

    #[test]
    fn default_shape_counts() {
        let d = LocationDomain::generate(LocationShape::default(), 0.8);
        assert_eq!(d.addresses().len(), 2000);
        assert_eq!(d.tree().leaf_count(), 2000);
        assert_eq!(d.tree().cardinality_at(LevelId(3)), 2);
        assert_eq!(d.tree().cardinality_at(LevelId(1)), 100);
    }

    #[test]
    fn generalization_works_on_generated_tree() {
        let d = LocationDomain::generate(LocationShape::default(), 0.8);
        let leaf = d.addresses()[0].clone();
        let country = d
            .tree()
            .generalize(&Value::Str(leaf.clone()), LevelId(3))
            .unwrap();
        assert_eq!(country, Value::Str("Country00".into()));
        assert_eq!(d.label_at(&leaf, 2), "Country00/Region00");
    }

    #[test]
    fn sampling_is_skewed_and_in_domain() {
        let d = LocationDomain::generate(LocationShape::default(), 1.0);
        let mut rng = Rng::new(17);
        let mut first = 0;
        for _ in 0..2000 {
            let a = d.sample_address(&mut rng);
            assert!(d.addresses().iter().any(|x| x == a));
            if a == d.addresses()[0] {
                first += 1;
            }
        }
        assert!(first > 10, "rank-0 address should be hot, saw {first}");
    }

    #[test]
    fn tiny_shape() {
        let d = LocationDomain::generate(
            LocationShape {
                countries: 1,
                regions_per_country: 1,
                cities_per_region: 1,
                addresses_per_city: 3,
            },
            0.0,
        );
        assert_eq!(d.addresses().len(), 3);
        assert_eq!(d.tree().cardinality_at(LevelId(3)), 1);
    }
}
