//! Deterministic PRNG (xorshift64*) for reproducible experiments.
//!
//! Every experiment binary takes a seed; two runs with the same seed
//! produce identical workloads, which is what lets EXPERIMENTS.md quote
//! stable numbers.

/// A small, fast, seedable PRNG. Not cryptographic.
#[derive(Debug, Clone)]
pub struct Rng {
    state: u64,
}

impl Rng {
    pub fn new(seed: u64) -> Rng {
        Rng {
            state: seed.wrapping_mul(0x9E3779B97F4A7C15) | 1,
        }
    }

    pub fn next_u64(&mut self) -> u64 {
        // xorshift64*
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545F4914F6CDD1D)
    }

    /// Uniform in `[0, n)`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0);
        self.next_u64() % n
    }

    /// Uniform in `[lo, hi)`.
    pub fn range(&mut self, lo: i64, hi: i64) -> i64 {
        assert!(hi > lo);
        lo + (self.below((hi - lo) as u64) as i64)
    }

    /// Uniform float in `[0, 1)`.
    pub fn unit(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Exponential with rate `lambda` (inter-arrival times of a Poisson
    /// process).
    pub fn exponential(&mut self, lambda: f64) -> f64 {
        assert!(lambda > 0.0);
        let u = loop {
            let u = self.unit();
            if u > 0.0 {
                break u;
            }
        };
        -u.ln() / lambda
    }

    /// Bernoulli.
    pub fn chance(&mut self, p: f64) -> bool {
        self.unit() < p
    }

    /// Pick an element.
    pub fn pick<'a, T>(&mut self, items: &'a [T]) -> &'a T {
        &items[self.below(items.len() as u64) as usize]
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.below(i as u64 + 1) as usize;
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_for_same_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..32).filter(|_| a.next_u64() == b.next_u64()).count();
        assert!(same < 2);
    }

    #[test]
    fn below_is_in_range() {
        let mut r = Rng::new(7);
        for _ in 0..1000 {
            assert!(r.below(10) < 10);
            let x = r.range(-5, 5);
            assert!((-5..5).contains(&x));
        }
    }

    #[test]
    fn unit_is_unit() {
        let mut r = Rng::new(9);
        let mut acc = 0.0;
        for _ in 0..1000 {
            let u = r.unit();
            assert!((0.0..1.0).contains(&u));
            acc += u;
        }
        let mean = acc / 1000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 0.5");
    }

    #[test]
    fn exponential_mean_close_to_inverse_rate() {
        let mut r = Rng::new(11);
        let lambda = 2.0;
        let n = 5000;
        let mean: f64 = (0..n).map(|_| r.exponential(lambda)).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean} far from 1/λ = 0.5");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = Rng::new(13);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<u32>>());
        assert_ne!(v, (0..50).collect::<Vec<u32>>(), "astronomically unlikely");
    }
}
