//! Query-mix generation over the standard experiment schema
//! `(id, user, location, salary)`.
//!
//! Section III of the paper frames the indexing challenge in terms of two
//! workload families whose character degradation changes:
//!
//! * **OLTP** — selective point/range lookups, here: by id, by exact
//!   address, by salary band.
//! * **OLAP/degraded** — broad selections at coarse accuracy, here: by
//!   city/region/country label at the corresponding level.
//!
//! The generator emits plain SQL strings (exercising the full front end)
//! bound to a chosen accuracy level per query.

use crate::location::LocationDomain;
use crate::rng::Rng;

/// A generated query with the purpose declaration that precedes it.
#[derive(Debug, Clone, PartialEq)]
pub struct GeneratedQuery {
    /// `DECLARE PURPOSE …` statement, if the query runs degraded.
    pub purpose: Option<String>,
    pub sql: String,
    /// Human tag for reporting (e.g. "point-id", "loc-eq@d2").
    pub tag: String,
}

/// Mix weights (need not sum to 1; normalized internally).
#[derive(Debug, Clone, Copy)]
pub struct QueryMix {
    pub point_by_id: f64,
    pub location_eq_accurate: f64,
    pub location_eq_degraded: f64,
    pub salary_band: f64,
    pub like_country: f64,
}

impl Default for QueryMix {
    fn default() -> Self {
        QueryMix {
            point_by_id: 0.4,
            location_eq_accurate: 0.15,
            location_eq_degraded: 0.25,
            salary_band: 0.15,
            like_country: 0.05,
        }
    }
}

/// Query generator.
pub struct QueryGen<'d> {
    domain: &'d LocationDomain,
    mix: QueryMix,
    rng: Rng,
    max_id: i64,
    /// Accuracy level used for "degraded" queries (1..=3).
    pub degraded_level: u8,
}

impl<'d> QueryGen<'d> {
    pub fn new(domain: &'d LocationDomain, mix: QueryMix, max_id: i64, seed: u64) -> Self {
        QueryGen {
            domain,
            mix,
            rng: Rng::new(seed),
            max_id: max_id.max(1),
            degraded_level: 2,
        }
    }

    fn purpose_at(&self, level: u8) -> String {
        format!("DECLARE PURPOSE Q SET ACCURACY LEVEL d{level} FOR LOCATION, d3 FOR SALARY")
    }

    /// Generate one query according to the mix.
    pub fn next_query(&mut self) -> GeneratedQuery {
        let m = self.mix;
        let total = m.point_by_id
            + m.location_eq_accurate
            + m.location_eq_degraded
            + m.salary_band
            + m.like_country;
        let mut x = self.rng.unit() * total;
        x -= m.point_by_id;
        if x < 0.0 {
            let id = self.rng.range(0, self.max_id);
            return GeneratedQuery {
                purpose: None,
                sql: format!("SELECT * FROM events WHERE id = {id}"),
                tag: "point-id".into(),
            };
        }
        x -= m.location_eq_accurate;
        if x < 0.0 {
            let addr = {
                let mut rng = self.rng.clone();
                let a = self.domain.sample_address(&mut rng).to_string();
                self.rng = rng;
                a
            };
            return GeneratedQuery {
                purpose: None,
                sql: format!("SELECT * FROM events WHERE location = '{addr}'"),
                tag: "loc-eq@d0".into(),
            };
        }
        x -= m.location_eq_degraded;
        if x < 0.0 {
            let level = self.degraded_level;
            let leaf = {
                let mut rng = self.rng.clone();
                let a = self.domain.sample_address(&mut rng).to_string();
                self.rng = rng;
                a
            };
            let label = self.domain.label_at(&leaf, level);
            return GeneratedQuery {
                purpose: Some(self.purpose_at(level)),
                sql: format!("SELECT * FROM events WHERE location = '{label}'"),
                tag: format!("loc-eq@d{level}"),
            };
        }
        x -= m.salary_band;
        if x < 0.0 {
            let lo = self.rng.range(1, 9) * 1000;
            return GeneratedQuery {
                purpose: None,
                sql: format!(
                    "SELECT id, salary FROM events WHERE salary BETWEEN {lo} AND {}",
                    lo + 999
                ),
                tag: "salary-band".into(),
            };
        }
        let country = format!("Country{:02}", self.rng.below(2));
        GeneratedQuery {
            purpose: Some(self.purpose_at(3)),
            sql: format!("SELECT id FROM events WHERE location LIKE '%{country}%'"),
            tag: "like-country@d3".into(),
        }
    }

    /// Generate `n` queries.
    pub fn take(&mut self, n: usize) -> Vec<GeneratedQuery> {
        (0..n).map(|_| self.next_query()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::location::LocationShape;

    fn domain() -> LocationDomain {
        LocationDomain::generate(LocationShape::default(), 0.8)
    }

    #[test]
    fn mix_produces_all_families() {
        let d = domain();
        let mut g = QueryGen::new(&d, QueryMix::default(), 1000, 42);
        let queries = g.take(500);
        let tags: std::collections::HashSet<String> =
            queries.iter().map(|q| q.tag.clone()).collect();
        assert!(tags.contains("point-id"));
        assert!(tags.contains("loc-eq@d0"));
        assert!(tags.contains("loc-eq@d2"));
        assert!(tags.contains("salary-band"));
        assert!(tags.contains("like-country@d3"));
    }

    #[test]
    fn degraded_queries_carry_purpose() {
        let d = domain();
        let mut g = QueryGen::new(&d, QueryMix::default(), 1000, 7);
        for q in g.take(200) {
            if q.tag.contains("@d0") || q.tag == "point-id" || q.tag == "salary-band" {
                assert!(q.purpose.is_none(), "{q:?}");
            } else {
                let p = q.purpose.as_ref().expect("degraded query needs purpose");
                assert!(p.starts_with("DECLARE PURPOSE"));
            }
        }
    }

    #[test]
    fn degraded_labels_exist_in_domain() {
        let d = domain();
        let mut g = QueryGen::new(&d, QueryMix::default(), 10, 9);
        g.degraded_level = 1;
        for q in g.take(100) {
            if q.tag == "loc-eq@d1" {
                // Extract the label between quotes and check shape.
                let label = q.sql.split('\'').nth(1).unwrap();
                assert!(label.contains("/City"), "level-1 label: {label}");
            }
        }
    }

    #[test]
    fn deterministic_per_seed() {
        let d = domain();
        let a: Vec<_> = QueryGen::new(&d, QueryMix::default(), 100, 5).take(50);
        let b: Vec<_> = QueryGen::new(&d, QueryMix::default(), 100, 5).take(50);
        assert_eq!(a, b);
    }
}
