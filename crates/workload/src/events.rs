//! Event-stream generation.
//!
//! Produces the rows the experiments feed to the engine: a Poisson arrival
//! process of `(id, user, location, salary)` events, users Zipf-skewed,
//! locations drawn from a [`LocationDomain`], salaries uniform in a band.
//! The stream carries explicit timestamps so a [`instant_common::MockClock`]
//! can be advanced to each arrival — months of simulated collection run in
//! milliseconds.

use instant_common::{Duration, Timestamp, Value};

use crate::location::LocationDomain;
use crate::rng::Rng;
use crate::zipf::Zipf;

/// One generated event.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub at: Timestamp,
    pub row: Vec<Value>,
}

/// Configuration of the event stream.
#[derive(Debug, Clone)]
pub struct EventStreamConfig {
    /// Mean events per hour (Poisson rate).
    pub events_per_hour: f64,
    pub users: usize,
    pub user_skew: f64,
    pub salary_lo: i64,
    pub salary_hi: i64,
}

impl Default for EventStreamConfig {
    fn default() -> Self {
        EventStreamConfig {
            events_per_hour: 100.0,
            users: 500,
            user_skew: 0.9,
            salary_lo: 1_000,
            salary_hi: 10_000,
        }
    }
}

/// Generator of timestamped events.
pub struct EventStream<'d> {
    cfg: EventStreamConfig,
    domain: &'d LocationDomain,
    users: Zipf,
    rng: Rng,
    now: Timestamp,
    next_id: i64,
}

impl<'d> EventStream<'d> {
    pub fn new(
        cfg: EventStreamConfig,
        domain: &'d LocationDomain,
        seed: u64,
        start: Timestamp,
    ) -> EventStream<'d> {
        let users = Zipf::new(cfg.users.max(1), cfg.user_skew);
        EventStream {
            cfg,
            domain,
            users,
            rng: Rng::new(seed),
            now: start,
            next_id: 0,
        }
    }

    /// Generate the next event (advances simulated time by an exponential
    /// inter-arrival).
    pub fn next_event(&mut self) -> Event {
        let rate_per_us = self.cfg.events_per_hour / (3600.0 * 1e6);
        let gap_us = self.rng.exponential(rate_per_us).min(1e15) as u64;
        self.now += Duration::micros(gap_us.max(1));
        let id = self.next_id;
        self.next_id += 1;
        let user = self.users.sample(&mut self.rng);
        let address = self.domain.sample_address(&mut self.rng).to_string();
        let salary = self.rng.range(self.cfg.salary_lo, self.cfg.salary_hi);
        Event {
            at: self.now,
            row: vec![
                Value::Int(id),
                Value::Str(format!("user{user:04}")),
                Value::Str(address),
                Value::Int(salary),
            ],
        }
    }

    /// Generate `n` events.
    pub fn take(&mut self, n: usize) -> Vec<Event> {
        (0..n).map(|_| self.next_event()).collect()
    }

    /// Generate all events arriving before `until`.
    pub fn until(&mut self, until: Timestamp) -> Vec<Event> {
        let mut out = Vec::new();
        loop {
            let e = self.next_event();
            if e.at >= until {
                // Do not emit past the horizon; time cursor stays advanced,
                // matching a stream that simply had no further arrivals.
                break;
            }
            out.push(e);
        }
        out
    }

    pub fn current_time(&self) -> Timestamp {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::location::LocationShape;

    fn domain() -> LocationDomain {
        LocationDomain::generate(LocationShape::default(), 0.8)
    }

    #[test]
    fn events_have_increasing_time_and_unique_ids() {
        let d = domain();
        let mut s = EventStream::new(EventStreamConfig::default(), &d, 1, Timestamp::ZERO);
        let events = s.take(100);
        for pair in events.windows(2) {
            assert!(pair[1].at > pair[0].at);
        }
        let ids: std::collections::HashSet<i64> = events
            .iter()
            .map(|e| match e.row[0] {
                Value::Int(i) => i,
                _ => unreachable!(),
            })
            .collect();
        assert_eq!(ids.len(), 100);
    }

    #[test]
    fn arrival_rate_is_roughly_poisson() {
        let d = domain();
        let cfg = EventStreamConfig {
            events_per_hour: 1000.0,
            ..Default::default()
        };
        let mut s = EventStream::new(cfg, &d, 2, Timestamp::ZERO);
        let events = s.take(2000);
        let span = events.last().unwrap().at.since(events[0].at);
        let hours = span.as_secs_f64() / 3600.0;
        let rate = 2000.0 / hours;
        assert!(
            (800.0..1200.0).contains(&rate),
            "measured rate {rate} far from 1000/h"
        );
    }

    #[test]
    fn until_respects_horizon() {
        let d = domain();
        let mut s = EventStream::new(EventStreamConfig::default(), &d, 3, Timestamp::ZERO);
        let horizon = Timestamp::ZERO + Duration::hours(10);
        let events = s.until(horizon);
        assert!(!events.is_empty());
        assert!(events.iter().all(|e| e.at < horizon));
        // ~100/h × 10 h ≈ 1000.
        assert!((500..1500).contains(&events.len()), "{}", events.len());
    }

    #[test]
    fn rows_are_well_formed() {
        let d = domain();
        let mut s = EventStream::new(EventStreamConfig::default(), &d, 4, Timestamp::ZERO);
        let e = s.next_event();
        assert_eq!(e.row.len(), 4);
        assert!(matches!(e.row[0], Value::Int(_)));
        assert!(matches!(&e.row[1], Value::Str(u) if u.starts_with("user")));
        assert!(matches!(&e.row[2], Value::Str(a) if a.contains("/Addr")));
        assert!(matches!(e.row[3], Value::Int(s) if (1000..10_000).contains(&s)));
    }
}
