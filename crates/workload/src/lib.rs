//! # instant-workload
//!
//! Synthetic workloads standing in for the data sources the paper's
//! introduction motivates — "cell phones give location information, cookies
//! give browsing information and RFID tags may give information even more
//! continuously" — plus the attacker models that operationalize its threat
//! analysis:
//!
//! * [`zipf`] — Zipf sampler (population skew).
//! * [`rng`] — a small deterministic PRNG (SplitMix64/xorshift) so every
//!   experiment is reproducible without threading `rand` state everywhere;
//!   `rand` remains in use where distributions are handy.
//! * [`location`] — parametric location domains: a generated
//!   address→city→region→country Generalization Tree of configurable
//!   fan-out, with leaf samplers.
//! * [`events`] — Poisson event streams: `(id, user, location, salary,
//!   timestamp)` rows for the standard experiment tables.
//! * [`queries`] — OLTP/OLAP query mixes over the standard schema at
//!   chosen accuracy levels.
//! * [`attacker`] — the paper's adversaries: the *snapshot* attacker who
//!   copies the live store at some frequency (claims 1–2), and the
//!   *forensic* attacker who scrapes raw heap/WAL images for values that
//!   degradation should have destroyed (Section III, citing Stahlberg et
//!   al.).

pub mod attacker;
pub mod events;
pub mod location;
pub mod queries;
pub mod rng;
pub mod zipf;

pub use location::LocationDomain;
pub use rng::Rng;
