//! Zipf-distributed sampling.
//!
//! Real location and user popularity is heavily skewed (a few cities host
//! most events); the Zipf sampler drives that skew in the generators.
//! Implemented by inverse-CDF over precomputed cumulative weights — exact,
//! O(log n) per sample.

use crate::rng::Rng;

/// A Zipf(θ) sampler over ranks `0..n`.
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// `theta = 0` is uniform; `theta ≈ 1` is classic Zipf; larger = more
    /// skew.
    pub fn new(n: usize, theta: f64) -> Zipf {
        assert!(n > 0, "Zipf needs a non-empty domain");
        assert!(theta >= 0.0);
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        // Guard against FP drift on the last bucket.
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf: weights }
    }

    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Sample a rank in `0..n` (rank 0 most popular).
    pub fn sample(&self, rng: &mut Rng) -> usize {
        let u = rng.unit();
        match self
            .cdf
            .binary_search_by(|c| c.partial_cmp(&u).expect("no NaN"))
        {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn uniform_when_theta_zero() {
        let z = Zipf::new(10, 0.0);
        let mut rng = Rng::new(3);
        let mut counts = [0usize; 10];
        for _ in 0..10_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for c in counts {
            assert!((700..1300).contains(&c), "count {c} far from uniform 1000");
        }
    }

    #[test]
    fn skewed_when_theta_one() {
        let z = Zipf::new(100, 1.0);
        let mut rng = Rng::new(5);
        let mut counts = vec![0usize; 100];
        for _ in 0..20_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        assert!(
            counts[0] > counts[50] * 10,
            "rank 0 ({}) must dwarf rank 50 ({})",
            counts[0],
            counts[50]
        );
        // Monotone (roughly): head larger than tail.
        let head: usize = counts[..10].iter().sum();
        let tail: usize = counts[90..].iter().sum();
        assert!(head > tail * 5);
    }

    #[test]
    fn all_ranks_reachable() {
        let z = Zipf::new(5, 1.5);
        let mut rng = Rng::new(8);
        let mut seen = [false; 5];
        for _ in 0..10_000 {
            seen[z.sample(&mut rng)] = true;
        }
        assert!(seen.iter().all(|s| *s));
    }

    #[test]
    #[should_panic]
    fn empty_domain_panics() {
        Zipf::new(0, 1.0);
    }
}
