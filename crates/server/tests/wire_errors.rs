//! Error-path coverage over the wire: malformed SQL, oversized frames,
//! protocol garbage and mid-query disconnects must each produce a typed
//! `Error` frame (or a clean close) and leave the connection and the
//! worker pool healthy.

use std::io::Write;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use instant_common::{Error, MockClock};
use instant_core::query::{HierarchyRegistry, QueryOutput};
use instant_core::{Db, DbConfig};
use instant_server::protocol::{self, Frame};
use instant_server::{Client, Server, ServerConfig};

fn server_with(cfg: ServerConfig) -> Server {
    let clock = MockClock::new();
    let db = Arc::new(Db::open(DbConfig::default(), clock.shared()).unwrap());
    Server::start(db, HierarchyRegistry::new(), cfg).unwrap()
}

fn handshake(addr: std::net::SocketAddr) -> TcpStream {
    let mut raw = TcpStream::connect(addr).unwrap();
    protocol::write_frame(&mut raw, &protocol::client_hello("raw-test")).unwrap();
    match protocol::read_frame(&mut raw, 1 << 20).unwrap().unwrap() {
        Frame::Hello { .. } => raw,
        other => panic!("handshake failed: {other:?}"),
    }
}

#[test]
fn malformed_sql_returns_parse_error_and_connection_survives() {
    let server = server_with(ServerConfig::default());
    let mut client = Client::connect(server.local_addr().to_string()).unwrap();
    client
        .query("CREATE TABLE kv (k INT INDEXED, v TEXT)")
        .unwrap();

    for bad in [
        "SELEKT * FROM kv",
        "INSERT INTO kv VALUES (",
        "CREATE TABLE broken (k WIBBLE)",
        "",
    ] {
        let err = client.query(bad).unwrap_err();
        assert!(
            matches!(err, Error::Parse(_) | Error::Schema(_)),
            "{bad:?} → {err:?}"
        );
    }
    // Unknown table: typed NotFound, same connection.
    assert!(matches!(
        client.query("SELECT * FROM nope"),
        Err(Error::NotFound(_))
    ));

    // The connection that produced five errors still works.
    client.query("INSERT INTO kv VALUES (1, 'x')").unwrap();
    let rows = client.query("SELECT k FROM kv").unwrap().rows();
    assert_eq!(rows.rows.len(), 1);
    let stats = server.stats();
    assert!(stats.query_errors >= 5, "{stats:?}");
    assert_eq!(stats.protocol_errors, 0, "{stats:?}");
    server.shutdown().unwrap();
}

#[test]
fn oversized_frame_gets_typed_error_then_clean_close() {
    let server = server_with(ServerConfig {
        max_frame_bytes: 1024,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let mut raw = handshake(addr);
    // A frame whose length prefix alone exceeds the server's limit; the
    // body never needs to exist.
    raw.write_all(&(64 * 1024 * 1024u32).to_le_bytes()).unwrap();
    raw.flush().unwrap();
    match protocol::read_frame(&mut raw, 1 << 20).unwrap().unwrap() {
        Frame::Error { class, message } => {
            assert_eq!(class, "capacity", "{message}");
        }
        other => panic!("expected typed error, got {other:?}"),
    }
    // After the typed error the server closes (framing is unrecoverable).
    assert!(
        protocol::read_frame(&mut raw, 1 << 20).unwrap().is_none(),
        "connection must be closed after an oversized frame"
    );

    // Garbage framing (a frame that lies about its length) likewise gets
    // a typed corrupt error and a close, not a hang.
    let mut raw = handshake(addr);
    raw.write_all(&5u32.to_le_bytes()).unwrap();
    raw.write_all(&[0xEE; 5]).unwrap(); // unknown kind
    raw.flush().unwrap();
    match protocol::read_frame(&mut raw, 1 << 20).unwrap().unwrap() {
        Frame::Error { class, .. } => assert_eq!(class, "corrupt"),
        other => panic!("expected typed error, got {other:?}"),
    }

    // And the pool is untouched: a well-behaved client works.
    let mut client = Client::connect(addr.to_string()).unwrap();
    client
        .query("CREATE TABLE kv (k INT INDEXED, v TEXT)")
        .unwrap();
    client.query("INSERT INTO kv VALUES (1, 'x')").unwrap();
    let stats = server.stats();
    assert!(stats.protocol_errors >= 2, "{stats:?}");
    server.shutdown().unwrap();
}

#[test]
fn oversized_reply_becomes_typed_capacity_error_and_connection_survives() {
    // The outgoing cap mirrors the incoming one: a SELECT whose result
    // frame exceeds the limit gets a typed capacity error in its reply
    // slot (the raw frame would desynchronize the client), and the
    // connection keeps working for narrower queries.
    let server = server_with(ServerConfig {
        max_frame_bytes: 1024,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.local_addr().to_string()).unwrap();
    client
        .query("CREATE TABLE kv (k INT INDEXED, v TEXT)")
        .unwrap();
    let wide = "x".repeat(120);
    for i in 0..20 {
        client
            .query(&format!("INSERT INTO kv VALUES ({i}, '{wide}')"))
            .unwrap();
    }
    let err = client.query("SELECT v FROM kv").unwrap_err();
    assert!(matches!(err, Error::Capacity(_)), "{err:?}");
    // Same connection, narrower query: fine.
    let rows = client.query("SELECT v FROM kv WHERE k = 1").unwrap().rows();
    assert_eq!(rows.rows.len(), 1);
    server.shutdown().unwrap();
}

#[test]
fn mid_query_disconnects_leave_worker_pool_healthy() {
    let server = server_with(ServerConfig {
        workers: 2,
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let mut client = Client::connect(addr.to_string()).unwrap();
    client
        .query("CREATE TABLE kv (k INT INDEXED, v TEXT)")
        .unwrap();

    // Far more vanishing clients than workers: each sends a query and
    // drops the socket without reading the reply. If a worker leaked or
    // wedged per incident, the final round trips below would hang.
    for i in 0..10 {
        let mut raw = handshake(addr);
        protocol::write_frame(
            &mut raw,
            &Frame::Query {
                sql: format!("INSERT INTO kv VALUES ({}, 'doomed')", 100 + i),
            },
        )
        .unwrap();
        drop(raw); // gone before the reply
    }

    // Every admitted query executed (commits stand even though nobody
    // read the acks), and the pool still answers.
    let deadline = Instant::now() + Duration::from_secs(10);
    let expected = 10;
    loop {
        // Wait-die can victimize this reader while the doomed inserts
        // drain — a typed, retryable conflict, exactly as embedded.
        let rows = match client.query("SELECT k FROM kv") {
            Ok(out) => out.rows(),
            Err(e) if e.is_retryable() && Instant::now() < deadline => continue,
            Err(e) => panic!("SELECT failed: {e:?}"),
        };
        if rows.rows.len() == expected {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "only {} of {expected} disconnected-client inserts landed",
            rows.rows.len()
        );
        std::thread::sleep(Duration::from_millis(20));
    }
    client.query("INSERT INTO kv VALUES (1, 'alive')").unwrap();
    let rows = client.query("SELECT k FROM kv").unwrap().rows();
    assert_eq!(rows.rows.len(), expected + 1);
    server.shutdown().unwrap();
}

#[test]
fn silent_connection_is_reaped_after_handshake_timeout() {
    // A connect-and-say-nothing client must not hold a max_connections
    // slot forever — the gate itself would become the DoS vector.
    let server = server_with(ServerConfig {
        max_connections: 1,
        handshake_timeout: Duration::from_millis(200),
        ..ServerConfig::default()
    });
    let addr = server.local_addr();
    let _silent = TcpStream::connect(addr).unwrap(); // never handshakes
                                                     // Slot occupied: a real client is refused right now…
    assert!(matches!(
        Client::connect(addr.to_string()),
        Err(Error::ServerBusy(_))
    ));
    // …but reclaimed once the handshake deadline passes.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        match Client::connect(addr.to_string()) {
            Ok(mut c) => {
                c.ping().unwrap();
                break;
            }
            Err(Error::ServerBusy(_)) if Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(20));
            }
            Err(e) => panic!("unexpected connect failure: {e:?}"),
        }
    }
    server.shutdown().unwrap();
}

#[test]
fn handshake_violations_are_refused_typed() {
    let server = server_with(ServerConfig::default());
    let addr = server.local_addr();

    // Wrong protocol version.
    let mut raw = TcpStream::connect(addr).unwrap();
    protocol::write_frame(
        &mut raw,
        &Frame::Hello {
            version: 99,
            banner: "future-client".into(),
        },
    )
    .unwrap();
    match protocol::read_frame(&mut raw, 1 << 20).unwrap().unwrap() {
        Frame::Error { class, message } => {
            assert_eq!(class, "unsupported");
            assert!(message.contains("version"), "{message}");
        }
        other => panic!("{other:?}"),
    }

    // Query before Hello.
    let mut raw = TcpStream::connect(addr).unwrap();
    protocol::write_frame(
        &mut raw,
        &Frame::Query {
            sql: "SELECT 1".into(),
        },
    )
    .unwrap();
    match protocol::read_frame(&mut raw, 1 << 20).unwrap().unwrap() {
        Frame::Error { class, .. } => assert_eq!(class, "corrupt"),
        other => panic!("{other:?}"),
    }

    // Normal clients unaffected.
    let mut client = Client::connect(addr.to_string()).unwrap();
    client.ping().unwrap();
    assert!(server.stats().protocol_errors >= 2);
    server.shutdown().unwrap();
}

#[test]
fn read_only_server_refuses_mutations_with_typed_class() {
    // A replication follower serves the same wire protocol but with the
    // session pinned read-only: every mutation must come back as the
    // typed `read_only` class (non-retryable — the client must redirect
    // to the leader, not spin), while reads keep working.
    let server = server_with(ServerConfig {
        read_only: true,
        ..ServerConfig::default()
    });
    let mut client = Client::connect(server.local_addr().to_string()).unwrap();

    for sql in [
        "CREATE TABLE kv (k INT INDEXED, v TEXT)",
        "INSERT INTO kv VALUES (1, 'x')",
        "DELETE FROM kv WHERE k = 1",
        "CHECKPOINT",
    ] {
        let err = client.query(sql).unwrap_err();
        assert!(matches!(err, Error::ReadOnly(_)), "{sql:?} → {err:?}");
        assert_eq!(err.class(), "read_only", "{sql:?}");
        assert!(!err.is_retryable(), "{sql:?} must not be retried");
    }

    // Reads and purpose declarations still flow on the same connection.
    assert!(matches!(
        client.query("SELECT 1 FROM nope"),
        Err(Error::NotFound(_) | Error::Parse(_) | Error::Schema(_))
    ));
    client.query("SHOW STATS").unwrap();
    let stats = server.stats();
    assert!(stats.query_errors >= 4, "{stats:?}");
    assert_eq!(stats.protocol_errors, 0, "{stats:?}");
    server.shutdown().unwrap();
}

#[test]
fn query_output_rows_unwrap_helper_is_reexported() {
    // Tiny sanity: the client surfaces core's QueryOutput directly, so
    // downstream code can pattern-match it without conversion glue.
    let server = server_with(ServerConfig::default());
    let mut client = Client::connect(server.local_addr().to_string()).unwrap();
    client.query("CREATE TABLE t (a INT)").unwrap();
    match client.query("SELECT a FROM t").unwrap() {
        QueryOutput::Rows(r) => assert!(r.rows.is_empty()),
        other => panic!("{other:?}"),
    }
    server.shutdown().unwrap();
}
